#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the test suite in both the default
# (parallel) and forced-serial thread configurations. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== glint-lint (workspace invariants: determinism / NaN-safety / panic-safety) =="
cargo run -q -p glint-lint -- --json

echo "== cargo test (default GLINT_THREADS) =="
cargo test --workspace -q

echo "== cargo test (GLINT_THREADS=1, forced serial) =="
GLINT_THREADS=1 cargo test --workspace -q

echo "== cargo test (strict mode: shape/finiteness checks on every tape op) =="
cargo test -q --features strict

echo "ci: all green"
