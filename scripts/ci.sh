#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the test suite in both the default
# (parallel) and forced-serial thread configurations. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== glint-lint (invariants + taint/lock-order dataflow + census & panic-surface ratchets) =="
# The --baseline stage fails on findings, on allocation-census growth, AND
# on panic-surface growth: the set of panic-capable fns reachable from the
# serving entry points may only shrink. On a regression, rerun with
# `--explain <rule>` for the witness call chains.
cargo run -q -p glint-lint -- --json --bench-out BENCH_lint.json.new --baseline BENCH_lint.json
# validate the fresh v3 snapshot with the workspace's own serde_json shim
# (schema: graph stats, named panic-surface certificate, ranked census) and
# check the committed certificate is not stale, then promote the snapshot so
# surface changes are reviewed as a diff of the committed file
cargo test -q --test invariant_lint bench_report_parses_under_serde_json_shim
cargo test -q --test invariant_lint committed_panic_surface_matches_fresh_run
mv BENCH_lint.json.new BENCH_lint.json

echo "== cargo test (default GLINT_THREADS) =="
cargo test --workspace -q

echo "== cargo test (GLINT_THREADS=1, forced serial) =="
GLINT_THREADS=1 cargo test --workspace -q

echo "== cargo test (strict mode: shape/finiteness checks on every tape op) =="
cargo test -q --features strict

echo "== trace-enabled pass (GLINT_TRACE=1 must refresh a valid BENCH_trace.json) =="
rm -f BENCH_trace.json
GLINT_TRACE=1 cargo test -q --test observability
if ! test -s BENCH_trace.json; then
  echo "TRACE STAGE FAILED: BENCH_trace.json missing or empty" >&2
  exit 1
fi
# re-parse the freshly written snapshot with the workspace's own JSON layer
cargo test -q --test observability bench_trace_snapshot_file_is_valid_when_present

echo "== inference fast path (BENCH_inference.json: alloc gate + ratchet) =="
# The harness reads the *committed* snapshots first, reruns the serving
# workload, then enforces both gates: >=10x below the BENCH_trace.json
# training baseline, and no regression past the committed BENCH_inference.json.
GLINT_TRACE=1 GLINT_BENCH_FAST=1 cargo bench -q -p glint-bench --bench micro_inference
if ! test -s BENCH_inference.json; then
  echo "INFERENCE STAGE FAILED: BENCH_inference.json missing or empty" >&2
  exit 1
fi
# re-parse the freshly written snapshot with the workspace's own JSON layer
cargo test -q --test observability bench_inference_snapshot_file_is_valid_when_present

echo "== serving path (BENCH_serve.json: loopback latency + overload shed + p95 gate) =="
# micro_serve boots a real glint-serve instance over loopback, measures
# sequential /score latency, then saturates a tiny queue to exercise the
# 429 shed path and the deadline->DriftOnly ladder. It reads the committed
# p95 budget BEFORE overwriting the snapshot and exits non-zero when the
# fresh p95 exceeds it.
GLINT_TRACE=1 cargo bench -q -p glint-bench --bench micro_serve
if ! test -s BENCH_serve.json; then
  echo "SERVE STAGE FAILED: BENCH_serve.json missing or empty" >&2
  exit 1
fi
# re-parse the freshly written snapshot with the workspace's own JSON layer
cargo test -q --test observability bench_serve_snapshot_file_is_valid_when_present

echo "== scale churn smoke (sharded incremental pipeline at 10^3 homes) =="
# micro_scale drives the multi-tenant churn harness end to end (bootstrap,
# delta ingest->verdict, dirty-set refresh, shard persistence) and enforces
# the incremental-work ratchet with a non-zero exit: pairs re-mined and
# homes re-embedded must stay strictly below the full-rebuild counterparts.
# The smoke run writes to a scratch path; the committed BENCH_scale.json
# (the 10^5-home run) is validated by the observability suite right after.
GLINT_SCALE_HOMES=1000 GLINT_SCALE_OUT=target/BENCH_scale_smoke.json \
  cargo bench -q -p glint-bench --bench micro_scale
if ! test -s target/BENCH_scale_smoke.json; then
  echo "SCALE STAGE FAILED: target/BENCH_scale_smoke.json missing or empty" >&2
  exit 1
fi
# the committed 10^5-home snapshot: schema, counter set, ratchet fields
cargo test -q --test observability bench_scale_snapshot_file_is_valid_when_present

echo "== fault-injection matrix (forced fail points, default + serial threads) =="
FAULTS=(
  "persist.save=err" "persist.save=short:24"
  "checkpoint.save=err" "checkpoint.save=short:8"
  "graph.store.save=err" "graph.store.save=short:16"
  "trainer.epoch_end=err"
  "detector.assess=err" "detector.assess=panic"
  "detector.classify=err" "detector.classify=panic"
  "serve.accept=err" "serve.parse=err" "serve.enqueue=err"
  "serve.respond=err" "serve.respond=panic"
  "shard.save=err" "shard.save=short:16"
  "shard.load=err" "shard.compact=err"
)
for threads in "" "1"; do
  for spec in "${FAULTS[@]}"; do
    if ! env ${threads:+GLINT_THREADS=$threads} GLINT_FAILPOINTS="$spec" \
      cargo test -q --test fault_injection env_forced_matrix >/dev/null 2>&1; then
      echo "FAULT MATRIX FAILED: spec=$spec GLINT_THREADS=${threads:-default}" >&2
      exit 1
    fi
  done
done
echo "   ${#FAULTS[@]} fault specs x {default, GLINT_THREADS=1}: all contained"

echo "ci: all green"
