#!/usr/bin/env python3
"""Extract the experiment tables from bench_output.txt into EXPERIMENTS.md's
measured-results appendix. Run after `cargo bench --workspace`."""
import re, sys

src = open("bench_output.txt").read()
blocks = re.findall(r"(== .+? ==\n(?:.+\n)+?)\n", src)
out = ["\n## Extracted tables (latest run)\n"]
for b in blocks:
    out.append("```text\n" + b.strip() + "\n```\n")
open("EXPERIMENTS_RESULTS.md", "w").write("\n".join(out))
print(f"extracted {len(blocks)} tables → EXPERIMENTS_RESULTS.md")
