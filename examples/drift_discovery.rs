//! Drift discovery: reproduce §4.7's workflow — train ITGNN-C with the
//! contrastive loss, fit the MAD drift detector (Algorithm 3), and scan the
//! four user-designed Home Assistant blueprint patterns that the paper
//! reports as *new* threat types.
//!
//! Run: `cargo run --release --example drift_discovery`

use glint_suite::core::construction::{node_features, OfflineBuilder};
use glint_suite::core::drift::DriftDetector;
use glint_suite::gnn::batch::{GraphSchema, PreparedGraph};
use glint_suite::gnn::models::{Itgnn, ItgnnConfig};
use glint_suite::gnn::trainer::{ContrastiveTrainer, TrainConfig};
use glint_suite::graph::builder::full_graph;
use glint_suite::rules::render::render_rule;
use glint_suite::rules::scenarios::drift_blueprints;
use glint_suite::rules::{CorpusConfig, CorpusGenerator, Platform};

fn main() {
    // training distribution: ordinary corpus graphs (no blueprint patterns)
    let corpus = CorpusGenerator::generate_corpus(&CorpusConfig {
        scale: 0.002,
        per_platform_cap: 400,
        seed: 3,
    });
    let builder = OfflineBuilder::new(corpus, 3);
    let mut dataset = builder.build_dataset(
        &[Platform::Ifttt, Platform::SmartThings, Platform::Alexa],
        120,
        8,
        true,
    );
    dataset.oversample_threats(3);
    println!(
        "training distribution: {} graphs ({:?})",
        dataset.len(),
        dataset.class_stats()
    );

    let prepared = PreparedGraph::prepare_all(dataset.graphs());
    // include HA/Google in the schema so blueprint graphs embed cleanly
    let mut schema = GraphSchema::infer(dataset.iter());
    for p in [Platform::HomeAssistant, Platform::GoogleAssistant] {
        if schema.dim_of(p).is_none() {
            schema.types.push((p, if p.is_voice() { 512 } else { 300 }));
        }
    }
    schema.types.sort_by_key(|(p, _)| p.type_index());

    println!("training ITGNN-C (contrastive, Eq. 1)…");
    let mut model = Itgnn::new(
        &schema.types,
        ItgnnConfig {
            hidden: 32,
            embed: 64,
            ..Default::default()
        },
    );
    ContrastiveTrainer::new(TrainConfig {
        epochs: 6,
        ..Default::default()
    })
    .train(&mut model, &prepared);
    let emb = ContrastiveTrainer::embed_all(&model, &prepared);
    let labels: Vec<usize> = prepared.iter().map(|g| g.label.unwrap()).collect();
    let detector = DriftDetector::fit(&emb, &labels);

    // baseline: how much does the training distribution itself drift?
    let in_dist: Vec<f64> = (0..emb.rows())
        .map(|i| detector.drift_degree(emb.row(i)))
        .collect();
    let mean_in = in_dist.iter().sum::<f64>() / in_dist.len() as f64;
    println!(
        "in-distribution mean drift degree: {mean_in:.2} (threshold {})\n",
        detector.threshold
    );

    // scan the four blueprint patterns
    for (name, rules) in drift_blueprints() {
        let graph = full_graph(&rules, &node_features);
        let e = ContrastiveTrainer::embed(&model, &PreparedGraph::from_graph(&graph));
        let degree = detector.drift_degree(&e);
        println!(
            "blueprint «{name}» — drift degree {degree:.2} {}",
            if detector.is_drifting(&e) {
                "→ DRIFTING (new threat type)"
            } else {
                ""
            }
        );
        for r in &rules {
            println!("    [{:>16}] {}", r.platform.name(), render_rule(r));
        }
        println!();
    }
    println!("Drifting samples go to the analyst queue for naming and retraining (§4.7).");
}
