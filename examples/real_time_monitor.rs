//! Real-time monitoring: simulate a day in the Figure 10 testbed home,
//! inject an attack, and watch Glint screen successive log windows.
//!
//! Run: `cargo run --release --example real_time_monitor`

use glint_suite::core::construction::OfflineBuilder;
use glint_suite::core::drift::DriftDetector;
use glint_suite::core::GlintDetector;
use glint_suite::gnn::batch::{GraphSchema, PreparedGraph};
use glint_suite::gnn::models::{Itgnn, ItgnnConfig};
use glint_suite::gnn::trainer::{ClassifierTrainer, ContrastiveTrainer, TrainConfig};
use glint_suite::rules::scenarios::table1_rules;
use glint_suite::rules::Platform;
use glint_suite::testbed::attack::{inject, AttackKind};
use glint_suite::testbed::home::figure10_home;
use glint_suite::testbed::sim::{SimConfig, Simulator};

fn main() {
    let rules = table1_rules();

    // offline: train the detector pair on oracle-labeled samples
    println!("Offline stage: training detector…");
    let builder = OfflineBuilder::new(rules.clone(), 7);
    let mut dataset = builder.build_dataset(Platform::all(), 80, 6, true);
    dataset.oversample_threats(7);
    let prepared = PreparedGraph::prepare_all(dataset.graphs());
    let schema = GraphSchema::infer(dataset.iter());
    let cfg = ItgnnConfig {
        hidden: 32,
        embed: 32,
        ..Default::default()
    };
    let mut classifier = Itgnn::new(&schema.types, cfg.clone());
    ClassifierTrainer::new(TrainConfig {
        epochs: 8,
        ..Default::default()
    })
    .train(&mut classifier, &prepared);
    let mut embedder = Itgnn::new(&schema.types, cfg);
    ContrastiveTrainer::new(TrainConfig {
        epochs: 5,
        ..Default::default()
    })
    .train(&mut embedder, &prepared);
    let emb = ContrastiveTrainer::embed_all(&embedder, &prepared);
    let labels: Vec<usize> = prepared.iter().map(|g| g.label.unwrap()).collect();
    let drift = DriftDetector::fit(&emb, &labels);
    let detector = GlintDetector::new(rules.clone(), classifier, embedder, drift);

    // online: a simulated day with a stealthy-command attack injected
    println!("Online stage: simulating 24 h of home activity…");
    let config = SimConfig {
        seed: 42,
        duration_hours: 24.0,
        ..Default::default()
    };
    let log = Simulator::new(figure10_home(), rules, config).run();
    let log = inject(&log, AttackKind::StealthyCommand, 99);
    println!(
        "  event log: {} records (stealthy vacuum command injected)",
        log.len()
    );

    // screen 3-hour windows
    let mut warned = 0;
    for w in 0..8 {
        let from = w as f64 * 3.0 * 3600.0;
        let to = from + 3.0 * 3600.0;
        let det = detector.process_window(&log, from, to);
        let flag = if det.is_threat {
            "THREAT"
        } else if det.drifting {
            "DRIFT"
        } else {
            "ok"
        };
        println!(
            "  window {:>2}h–{:>2}h: {} rules, {} edges, p(threat)={:.2}, drift={:.2} → {}",
            w * 3,
            (w + 1) * 3,
            det.graph.n_nodes(),
            det.graph.n_edges(),
            det.threat_probability,
            det.drift_degree,
            flag
        );
        if let Some(warning) = det.warning {
            warned += 1;
            if warned == 1 {
                println!("\n{}", warning.render());
            }
        }
    }
    println!("\nWindows with warnings: {warned}/8");
}
