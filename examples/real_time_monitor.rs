//! Real-time monitoring: simulate a day in the Figure 10 testbed home,
//! inject an attack, and watch Glint screen successive log windows.
//!
//! The offline stage is fault-tolerant: training checkpoints every other
//! epoch (kill the process mid-training and rerun — it resumes from the
//! last epoch boundary, bitwise-exact), and the trained parameters persist
//! to disk so later runs restore instead of retraining. The online stage
//! reports degradation events — windows where the detector fell back to
//! drift-only scoring or quarantined the graph — instead of crashing.
//!
//! Run: `cargo run --release --example real_time_monitor`
//! (run twice to see the warm-start path; delete `target/monitor_state/`
//! to retrain from scratch)
//!
//! With `--serve`, the online stage runs as a client of a local
//! `glint-serve` instance instead of calling the detector in-process:
//! each window graph is POSTed to `/score`, one verdict is corrected via
//! `/feedback`, and `/metrics` is printed before graceful shutdown.

use std::path::Path;
use std::sync::Arc;

use glint_suite::core::construction::{node_features, OfflineBuilder};
use glint_suite::core::drift::DriftDetector;
use glint_suite::core::{persist, Degradation, GlintDetector};
use glint_suite::gnn::batch::{GraphSchema, PreparedGraph};
use glint_suite::gnn::models::{Itgnn, ItgnnConfig};
use glint_suite::gnn::trainer::{
    CheckpointPolicy, ClassifierTrainer, ContrastiveTrainer, TrainConfig,
};
use glint_suite::graph::OnlineBuilder;
use glint_suite::rules::event::EventLog;
use glint_suite::rules::scenarios::table1_rules;
use glint_suite::rules::{Platform, Rule};
use glint_suite::serve::{client, Scorer, ServeConfig, Server};
use glint_suite::testbed::attack::{inject, AttackKind};
use glint_suite::testbed::home::figure10_home;
use glint_suite::testbed::sim::{SimConfig, Simulator};
use serde_json::json;

fn main() {
    let rules = table1_rules();
    let state_dir = Path::new("target/monitor_state");
    if let Err(e) = std::fs::create_dir_all(state_dir) {
        eprintln!("cannot create {}: {e}", state_dir.display());
        std::process::exit(1);
    }
    let clf_path = state_dir.join("classifier.params");
    let emb_path = state_dir.join("embedder.params");

    // offline: train the detector pair on oracle-labeled samples, or
    // restore a previous run's parameters from disk
    let builder = OfflineBuilder::new(rules.clone(), 7);
    let mut dataset = builder.build_dataset(Platform::all(), 80, 6, true);
    dataset.oversample_threats(7);
    let prepared = PreparedGraph::prepare_all(dataset.graphs());
    let schema = GraphSchema::infer(dataset.iter());
    let cfg = ItgnnConfig {
        hidden: 32,
        embed: 32,
        ..Default::default()
    };

    let mut classifier = Itgnn::new(&schema.types, cfg.clone());
    let mut embedder = Itgnn::new(&schema.types, cfg);
    let restored = persist::load_params(&mut classifier, &clf_path).is_ok()
        && persist::load_params(&mut embedder, &emb_path).is_ok();
    if restored {
        println!(
            "Offline stage: restored trained parameters from {}",
            state_dir.display()
        );
    } else {
        println!("Offline stage: training detector (checkpointing every 2 epochs)…");
        let clf_policy = CheckpointPolicy::new(state_dir.join("classifier.ckpt"), 2);
        if let Err(e) = ClassifierTrainer::new(TrainConfig {
            epochs: 8,
            ..Default::default()
        })
        .train_resumable(&mut classifier, &prepared, &clf_policy)
        {
            eprintln!("classifier training interrupted: {e}");
            eprintln!("rerun to resume from the last checkpoint");
            std::process::exit(1);
        }
        let emb_policy = CheckpointPolicy::new(state_dir.join("embedder.ckpt"), 2);
        if let Err(e) = ContrastiveTrainer::new(TrainConfig {
            epochs: 5,
            ..Default::default()
        })
        .train_resumable(&mut embedder, &prepared, &emb_policy)
        {
            eprintln!("embedder training interrupted: {e}");
            eprintln!("rerun to resume from the last checkpoint");
            std::process::exit(1);
        }
        // Durable, checksummed saves; a torn write leaves the previous
        // generation intact and the next run simply retrains.
        for (model, path) in [(&classifier, &clf_path), (&embedder, &emb_path)] {
            if let Err(e) = persist::save_params(model, path) {
                eprintln!("warning: could not persist {}: {e}", path.display());
            }
        }
    }

    let emb = ContrastiveTrainer::embed_all(&embedder, &prepared);
    let labels: Vec<usize> = prepared.iter().map(|g| g.label.unwrap()).collect();
    let drift = DriftDetector::fit(&emb, &labels);
    let detector = GlintDetector::new(rules.clone(), classifier, embedder, drift);

    // online: a simulated day with a stealthy-command attack injected
    println!("Online stage: simulating 24 h of home activity…");
    let config = SimConfig {
        seed: 42,
        duration_hours: 24.0,
        ..Default::default()
    };
    let log = Simulator::new(figure10_home(), rules.clone(), config).run();
    let log = inject(&log, AttackKind::StealthyCommand, 99);
    println!(
        "  event log: {} records (stealthy vacuum command injected)",
        log.len()
    );

    if std::env::args().any(|a| a == "--serve") {
        serve_mode(detector, &rules, &log);
        return;
    }

    // screen 3-hour windows
    let mut warned = 0;
    let mut degraded = 0;
    for w in 0..8 {
        let from = w as f64 * 3.0 * 3600.0;
        let to = from + 3.0 * 3600.0;
        let det = detector.process_window(&log, from, to);
        let flag = if det.is_threat {
            "THREAT"
        } else if det.drifting {
            "DRIFT"
        } else {
            "ok"
        };
        println!(
            "  window {:>2}h–{:>2}h: {} rules, {} edges, p(threat)={:.2}, drift={:.2} → {}",
            w * 3,
            (w + 1) * 3,
            det.graph.n_nodes(),
            det.graph.n_edges(),
            det.threat_probability,
            det.drift_degree,
            flag
        );
        match &det.degradation {
            Degradation::None => {}
            Degradation::DriftOnly(reason) => {
                degraded += 1;
                println!("    degraded (drift-only fallback): {reason}");
            }
            Degradation::Quarantined(reason) => {
                degraded += 1;
                println!("    degraded (window quarantined): {reason}");
            }
        }
        if let Some(warning) = det.warning {
            warned += 1;
            if warned == 1 {
                println!("\n{}", warning.render());
            }
        }
    }
    println!("\nWindows with warnings: {warned}/8, degraded windows: {degraded}/8");
}

/// Run the online stage over HTTP: boot a local `glint-serve` instance
/// around the trained detector, build each window graph client-side with
/// the same online constructor, and POST it to `/score`. Exercises all
/// four endpoints end-to-end, then shuts down gracefully.
fn serve_mode(detector: GlintDetector<Itgnn, Itgnn>, rules: &[Rule], log: &EventLog) {
    println!("Serve mode: booting glint-serve on an ephemeral port…");
    let server = match Server::start(
        Arc::new(detector) as Arc<dyn Scorer>,
        ServeConfig {
            // a generous budget: the point here is the wire format, not
            // deadline pressure (see tests/serve_overload.rs for that)
            deadline_ms: 1_000,
            ..Default::default()
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("could not start glint-serve: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.addr();
    println!("  listening on http://{addr}");

    let builder = OnlineBuilder::default();
    let mut degraded = 0;
    let mut first_threat = None;
    for w in 0..8 {
        let from = w as f64 * 3.0 * 3600.0;
        let to = from + 3.0 * 3600.0;
        let graph = builder.build(rules, log, from, to, &node_features);
        if first_threat.is_none() {
            first_threat = Some(graph.clone());
        }
        let body = json!({ "graph": serde_json::to_value(&graph), "deadline_ms": 1_000u64 });
        match client::post(&addr, "/score", &body) {
            Ok((200, verdict)) => {
                let fields = verdict.as_map().unwrap_or(&[]);
                let field = |name: &str| {
                    fields
                        .iter()
                        .find(|(k, _)| k == name)
                        .map(|(_, v)| v.clone())
                };
                let flag = field("verdict").and_then(|v| v.as_str().map(String::from));
                let rung = field("degradation").and_then(|v| v.as_str().map(String::from));
                let p = field("threat_probability").and_then(|v| v.as_f64());
                println!(
                    "  window {:>2}h–{:>2}h: p(threat)={} → {} [{}]",
                    w * 3,
                    (w + 1) * 3,
                    p.map_or("null".to_string(), |p| format!("{p:.2}")),
                    flag.as_deref().unwrap_or("?"),
                    rung.as_deref().unwrap_or("?"),
                );
                if rung.as_deref() != Some("full") {
                    degraded += 1;
                }
                if flag.as_deref() == Some("threat") {
                    first_threat = Some(graph);
                }
            }
            Ok((status, body)) => {
                println!("  window {:>2}h: HTTP {status}: {body:?}", w * 3);
            }
            Err(e) => {
                eprintln!("  window {:>2}h: request failed: {e}", w * 3);
            }
        }
    }

    // human-in-the-loop correction: dismiss one verdict as a false alarm
    if let Some(graph) = first_threat {
        let body = json!({
            "graph": serde_json::to_value(&graph),
            "verdict": "Normal",
            "note": "operator reviewed: scheduled vacuum run, not an attack",
        });
        match client::post(&addr, "/feedback", &body) {
            Ok((200, reply)) => println!("  feedback stored: {reply:?}"),
            Ok((status, reply)) => println!("  feedback rejected: HTTP {status}: {reply:?}"),
            Err(e) => eprintln!("  feedback failed: {e}"),
        }
    }

    match client::get(&addr, "/metrics") {
        Ok((200, metrics)) => println!("\n/metrics: {metrics:?}"),
        Ok((status, _)) => println!("\n/metrics returned HTTP {status}"),
        Err(e) => eprintln!("\n/metrics failed: {e}"),
    }
    println!("Degraded windows (served): {degraded}/8");
    server.shutdown();
    println!("Server drained and shut down.");
}
