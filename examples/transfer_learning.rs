//! Transfer learning across platforms (§3.3.4 / Table 6): pretrain on the
//! data-rich IFTTT corpus, then fine-tune on the data-poor SmartThings set
//! with the encoder frozen, and compare against training from scratch.
//!
//! Run: `cargo run --release --example transfer_learning`

use glint_suite::core::construction::OfflineBuilder;
use glint_suite::core::transfer::run_transfer;
use glint_suite::gnn::batch::GraphSchema;
use glint_suite::gnn::models::{Itgnn, ItgnnConfig};
use glint_suite::gnn::trainer::{ClassifierTrainer, TrainConfig};
use glint_suite::rules::{CorpusConfig, CorpusGenerator, Platform};

fn main() {
    let corpus = CorpusGenerator::generate_corpus(&CorpusConfig {
        scale: 0.002,
        per_platform_cap: 600,
        seed: 11,
    });
    let builder = OfflineBuilder::new(corpus, 11);

    // source: plentiful IFTTT graphs; target: a tiny SmartThings set
    let source = builder.build_dataset(&[Platform::Ifttt], 160, 8, true);
    let target = builder.build_dataset(&[Platform::SmartThings], 40, 8, true);
    println!(
        "source (IFTTT): {} graphs {:?}",
        source.len(),
        source.class_stats()
    );
    println!(
        "target (SmartThings): {} graphs {:?}",
        target.len(),
        target.class_stats()
    );

    let schema = GraphSchema::infer(source.iter().chain(target.iter()));
    let cfg = ItgnnConfig {
        hidden: 32,
        embed: 32,
        ..Default::default()
    };
    let train_cfg = TrainConfig {
        epochs: 8,
        ..Default::default()
    };

    // pretrain on the source domain
    println!("\npretraining ITGNN on IFTTT…");
    let source_split = source.split(0.8, 1);
    let mut src_train = source_split.train.clone();
    src_train.oversample_threats(1);
    let src_prepared = glint_suite::gnn::batch::PreparedGraph::prepare_all(src_train.graphs());
    let mut source_model = Itgnn::new(&schema.types, cfg.clone());
    ClassifierTrainer::new(train_cfg.clone()).train(&mut source_model, &src_prepared);
    let src_metrics = ClassifierTrainer::evaluate(
        &source_model,
        &glint_suite::gnn::batch::PreparedGraph::prepare_all(source_split.test.graphs()),
    );
    println!("source-domain test metrics: {src_metrics}");

    // transfer protocol on the target
    let target_split = target.split(0.7, 2);
    let mut tgt_train = target_split.train.clone();
    tgt_train.oversample_threats(2);
    let tgt_train = glint_suite::gnn::batch::PreparedGraph::prepare_all(tgt_train.graphs());
    let tgt_test = glint_suite::gnn::batch::PreparedGraph::prepare_all(target_split.test.graphs());

    let mut scratch = Itgnn::new(
        &schema.types,
        ItgnnConfig {
            seed: 5,
            ..cfg.clone()
        },
    );
    let mut transferred = Itgnn::new(&schema.types, ItgnnConfig { seed: 5, ..cfg });
    let outcome = run_transfer(
        &mut scratch,
        &mut transferred,
        &source_model,
        &["enc."], // tiny target: freeze the whole encoder, tune fuse + head
        &tgt_train,
        &tgt_test,
        train_cfg.clone(),
        train_cfg,
    );
    println!(
        "\ntransferred {} parameter tensors from the IFTTT model",
        outcome.transferred_params
    );
    println!("target from scratch : {}", outcome.no_transfer);
    println!("target with transfer: {}", outcome.with_transfer);
    println!(
        "improvement: {:+.1} accuracy points",
        outcome.improvement() * 100.0
    );
}
