//! Deploy-time audit: scan a cross-platform rule configuration for all six
//! literature threat types (Table 4) before anything runs, and explain which
//! rules cause each finding.
//!
//! Run: `cargo run --release --example smart_home_audit`

use glint_suite::core::construction::node_features;
use glint_suite::core::explain;
use glint_suite::core::oracle;
use glint_suite::gnn::batch::{GraphSchema, PreparedGraph};
use glint_suite::gnn::models::{Itgnn, ItgnnConfig};
use glint_suite::gnn::trainer::{ClassifierTrainer, TrainConfig};
use glint_suite::graph::builder::full_graph;
use glint_suite::rules::render::render_rule;
use glint_suite::rules::scenarios::{table4_settings, table4_threat_groups};
use glint_suite::rules::{Platform, Rule};

fn main() {
    let rules = table4_settings();
    println!(
        "Auditing {} rules from Table 4 across three platforms…\n",
        rules.len()
    );

    // 1. static policy audit over every threat group
    for (name, ids) in table4_threat_groups() {
        let group: Vec<&Rule> = ids
            .iter()
            .map(|id| rules.iter().find(|r| r.id.0 == *id).unwrap())
            .collect();
        let findings = oracle::label_rules(&group);
        println!("settings {ids:?} — expected: {name}");
        for r in &group {
            println!("    [{:>16}] {}", r.platform.name(), render_rule(r));
        }
        for f in &findings {
            println!("  ⚠ {} (rules {:?})", f.kind.name(), f.rules);
        }
        println!();
    }

    // 2. learned detector assessment of the whole configuration
    println!("Training a detector on graphs sampled from this configuration…");
    let builder = glint_suite::core::construction::OfflineBuilder::new(rules.clone(), 2);
    let mut dataset = builder.build_dataset(Platform::all(), 80, 6, true);
    dataset.oversample_threats(2);
    let prepared = PreparedGraph::prepare_all(dataset.graphs());
    let schema = GraphSchema::infer(dataset.iter());
    let mut model = Itgnn::new(
        &schema.types,
        ItgnnConfig {
            hidden: 32,
            embed: 32,
            ..Default::default()
        },
    );
    ClassifierTrainer::new(TrainConfig {
        epochs: 8,
        ..Default::default()
    })
    .train(&mut model, &prepared);

    let whole = full_graph(&rules, &node_features);
    let p = ClassifierTrainer::predict_proba(&model, &PreparedGraph::from_graph(&whole));
    println!("\nWhole-configuration threat probability: {p:.2}");

    // 3. explanation: which rules drive the verdict
    let causes = explain::top_causes(&model, &whole, 4);
    println!("Most influential rules (deletion-based attribution):");
    for i in causes {
        let node = whole.node(i);
        let rule = rules.iter().find(|r| r.id == node.rule_id).unwrap();
        println!(
            "  [{:>16} #{}] {}",
            rule.platform.name(),
            rule.id.0,
            render_rule(rule)
        );
    }
}
