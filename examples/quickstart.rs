//! Quickstart: detect the paper's running-example threat in five minutes.
//!
//! Builds the Table 1 smart home (9 rules across SmartThings, IFTTT, and
//! Alexa), constructs its interaction graph, labels it with the policy
//! oracle, trains a small ITGNN on sampled interaction graphs, and replays
//! the movie-night incident of Figure 3.
//!
//! Run: `cargo run --release --example quickstart`

use glint_suite::core::construction::{node_features, OfflineBuilder};
use glint_suite::core::drift::DriftDetector;
use glint_suite::core::oracle;
use glint_suite::core::GlintDetector;
use glint_suite::gnn::batch::{GraphSchema, PreparedGraph};
use glint_suite::gnn::models::{Itgnn, ItgnnConfig};
use glint_suite::gnn::trainer::{ClassifierTrainer, ContrastiveTrainer, TrainConfig};
use glint_suite::graph::builder::full_graph;
use glint_suite::rules::event::{EventKind, EventLog, EventRecord};
use glint_suite::rules::render::render_rule;
use glint_suite::rules::scenarios::table1_rules;
use glint_suite::rules::{Platform, Rule};

fn main() {
    // 1. the deployed rules (Table 1)
    let rules = table1_rules();
    println!("Deployed automation rules:");
    for r in &rules {
        println!(
            "  [{:>16} #{}] {}",
            r.platform.name(),
            r.id.0,
            render_rule(r)
        );
    }

    // 2. the complete interaction graph + oracle findings
    let graph = full_graph(&rules, &node_features);
    println!(
        "\nInteraction graph: {} nodes, {} edges",
        graph.n_nodes(),
        graph.n_edges()
    );
    let refs: Vec<&Rule> = rules.iter().collect();
    for f in oracle::label_rules(&refs) {
        println!(
            "  policy finding: {} involving rules {:?}",
            f.kind.name(),
            f.rules
        );
    }

    // 3. train a small ITGNN-S + ITGNN-C on sampled interaction graphs
    println!("\nTraining ITGNN on sampled interaction graphs…");
    let builder = OfflineBuilder::new(rules.clone(), 1);
    let mut dataset = builder.build_dataset(Platform::all(), 60, 6, true);
    dataset.oversample_threats(1);
    println!(
        "  dataset: {} graphs ({:?})",
        dataset.len(),
        dataset.class_stats()
    );
    let prepared = PreparedGraph::prepare_all(dataset.graphs());
    let schema = GraphSchema::infer(dataset.iter());
    let cfg = ItgnnConfig {
        hidden: 32,
        embed: 32,
        ..Default::default()
    };
    let mut classifier = Itgnn::new(&schema.types, cfg.clone());
    let train_cfg = TrainConfig {
        epochs: 8,
        ..Default::default()
    };
    ClassifierTrainer::new(train_cfg.clone()).train(&mut classifier, &prepared);
    let mut embedder = Itgnn::new(&schema.types, cfg);
    ContrastiveTrainer::new(TrainConfig {
        epochs: 5,
        ..train_cfg
    })
    .train(&mut embedder, &prepared);
    let emb = ContrastiveTrainer::embed_all(&embedder, &prepared);
    let labels: Vec<usize> = prepared.iter().map(|g| g.label.unwrap()).collect();
    let drift = DriftDetector::fit(&emb, &labels);
    let metrics = ClassifierTrainer::evaluate(&classifier, &prepared);
    println!("  training-set metrics: {metrics}");

    // 4. replay the Figure 3 incident as an event log
    let detector = GlintDetector::new(rules, classifier, embedder, drift);
    let mut log = EventLog::new();
    log.push(EventRecord::new(100.0, EventKind::RuleFired { rule_id: 1 })); // lights off (movie)
    log.push(EventRecord::new(130.0, EventKind::RuleFired { rule_id: 9 })); // door locks
    log.push(EventRecord::new(
        1900.0,
        EventKind::RuleFired { rule_id: 6 },
    )); // smoke → window opens
    log.push(EventRecord::new(
        1960.0,
        EventKind::RuleFired { rule_id: 4 },
    )); // temp 86°F → AC on
    log.push(EventRecord::new(
        2000.0,
        EventKind::RuleFired { rule_id: 5 },
    )); // AC on → windows closed
    let detection = detector.process_window(&log, 0.0, 3600.0);
    println!(
        "\nReal-time window: {} executed rules, {} causal edges, threat probability {:.2}",
        detection.graph.n_nodes(),
        detection.graph.n_edges(),
        detection.threat_probability
    );
    match detection.warning {
        Some(w) => println!("\n{}", w.render()),
        None => println!("No warning raised for this window."),
    }
}
