//! Durable file envelope: versioned, checksummed payloads written atomically
//! via temp-file + rename.
//!
//! Layout (one ASCII header line, then raw payload bytes):
//!
//! ```text
//! GLINTDUR <kind> v<version> len=<payload bytes> crc32=<8 hex digits>\n
//! <payload>
//! ```
//!
//! The writer streams the whole envelope to `<path>.glint-tmp`, fsyncs, and
//! renames over `<path>` — so a crash at any instant leaves either the old
//! file or the new file, never a torn hybrid (the rename is atomic on POSIX
//! filesystems). The reader verifies magic, kind, declared length, and
//! CRC-32 before handing the payload back; every way a file can be wrong
//! maps to a distinct [`DurableError`] variant, never a panic.

use crate::{check, injected_error, Action};
use std::fmt;
use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

const MAGIC: &str = "GLINTDUR";
const TMP_SUFFIX: &str = ".glint-tmp";

/// Every way reading or writing an envelope can fail.
#[derive(Debug)]
pub enum DurableError {
    /// Underlying filesystem error (including injected faults).
    Io(std::io::Error),
    /// The file does not start with a parseable envelope header.
    NotAnEnvelope(String),
    /// The envelope holds a different kind of payload.
    KindMismatch { expected: String, found: String },
    /// The format version is newer than this build understands.
    UnsupportedVersion { found: u32, max_supported: u32 },
    /// Fewer payload bytes on disk than the header declares (torn write).
    Truncated { expected: usize, actual: usize },
    /// Payload bytes do not match the recorded CRC-32.
    ChecksumMismatch,
    /// Structurally wrong in some other way (e.g. trailing bytes).
    Corrupt(String),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "io error: {e}"),
            DurableError::NotAnEnvelope(why) => write!(f, "not a durable envelope: {why}"),
            DurableError::KindMismatch { expected, found } => {
                write!(
                    f,
                    "envelope kind mismatch: expected `{expected}`, found `{found}`"
                )
            }
            DurableError::UnsupportedVersion {
                found,
                max_supported,
            } => write!(
                f,
                "envelope version {found} is newer than the supported maximum {max_supported}"
            ),
            DurableError::Truncated { expected, actual } => write!(
                f,
                "truncated payload: header declares {expected} bytes, file holds {actual}"
            ),
            DurableError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            DurableError::Corrupt(why) => write!(f, "corrupt envelope: {why}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), bitwise — the payloads here are
/// small enough that a table buys nothing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(TMP_SUFFIX);
    path.with_file_name(name)
}

/// Write `payload` as a durable envelope at `path`, atomically. `site` names
/// the fail-point hit before and during the write (`Action::Err` aborts
/// before touching the filesystem; `Action::ShortWrite(n)` writes `n` bytes
/// of the temp file and aborts before the rename — the destination survives
/// untouched either way).
pub fn write_durable(
    site: &str,
    path: impl AsRef<Path>,
    kind: &str,
    version: u32,
    payload: &[u8],
) -> Result<(), DurableError> {
    let path = path.as_ref();
    debug_assert!(
        !kind.contains(char::is_whitespace),
        "envelope kind must be a single token"
    );
    let header = format!(
        "{MAGIC} {kind} v{version} len={} crc32={:08x}\n",
        payload.len(),
        crc32(payload)
    );
    let mut bytes = Vec::with_capacity(header.len() + payload.len());
    bytes.extend_from_slice(header.as_bytes());
    bytes.extend_from_slice(payload);

    let fault = check(site);
    if fault == Some(Action::Err) {
        return Err(injected_error(site).into());
    }
    let tmp = tmp_path(path);
    let result = (|| -> Result<(), DurableError> {
        let mut file = File::create(&tmp)?;
        if let Some(Action::ShortWrite(n)) = fault {
            // simulated crash mid-write: the temp file is torn, the
            // destination is never touched
            file.write_all(&bytes[..n.min(bytes.len())])?;
            file.sync_all()?;
            return Err(injected_error(site).into());
        }
        file.write_all(&bytes)?;
        file.sync_all()?;
        fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() && fault.is_none() {
        // best-effort cleanup after a real IO failure; injected torn writes
        // deliberately leave their wreckage for inspection
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Read and verify a durable envelope. Returns `(version, payload)`; the
/// version is guaranteed `<= max_version`. Never panics on hostile input.
pub fn read_durable(
    path: impl AsRef<Path>,
    kind: &str,
    max_version: u32,
) -> Result<(u32, Vec<u8>), DurableError> {
    let bytes = fs::read(path.as_ref())?;
    parse_envelope(&bytes, kind, max_version)
}

/// Envelope verification on an in-memory byte string (the testable core of
/// [`read_durable`]).
pub fn parse_envelope(
    bytes: &[u8],
    kind: &str,
    max_version: u32,
) -> Result<(u32, Vec<u8>), DurableError> {
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| DurableError::NotAnEnvelope("no header line".into()))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| DurableError::NotAnEnvelope("header is not UTF-8".into()))?;
    let mut fields = header.split(' ');
    if fields.next() != Some(MAGIC) {
        return Err(DurableError::NotAnEnvelope("bad magic".into()));
    }
    let found_kind = fields
        .next()
        .ok_or_else(|| DurableError::NotAnEnvelope("missing kind".into()))?;
    if found_kind != kind {
        return Err(DurableError::KindMismatch {
            expected: kind.to_string(),
            found: found_kind.to_string(),
        });
    }
    let version: u32 = fields
        .next()
        .and_then(|f| f.strip_prefix('v'))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| DurableError::NotAnEnvelope("missing version".into()))?;
    if version > max_version {
        return Err(DurableError::UnsupportedVersion {
            found: version,
            max_supported: max_version,
        });
    }
    let len: usize = fields
        .next()
        .and_then(|f| f.strip_prefix("len="))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| DurableError::NotAnEnvelope("missing length".into()))?;
    let crc: u32 = fields
        .next()
        .and_then(|f| f.strip_prefix("crc32="))
        .and_then(|v| u32::from_str_radix(v, 16).ok())
        .ok_or_else(|| DurableError::NotAnEnvelope("missing checksum".into()))?;
    let payload = &bytes[newline + 1..];
    if payload.len() < len {
        return Err(DurableError::Truncated {
            expected: len,
            actual: payload.len(),
        });
    }
    if payload.len() > len {
        return Err(DurableError::Corrupt(format!(
            "{} trailing bytes after declared payload",
            payload.len() - len
        )));
    }
    if crc32(payload) != crc {
        return Err(DurableError::ChecksumMismatch);
    }
    Ok((version, payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScopedFail;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("glint_durable_tests").join(name);
        fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    #[test]
    fn crc32_known_vectors() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip() {
        let path = tmp_dir("round_trip").join("f.bin");
        write_durable("tests.none", &path, "blob", 3, b"hello world").unwrap();
        let (v, payload) = read_durable(&path, "blob", 3).unwrap();
        assert_eq!(v, 3);
        assert_eq!(payload, b"hello world");
    }

    #[test]
    fn typed_rejections() {
        let path = tmp_dir("rejections").join("f.bin");
        write_durable("tests.none", &path, "blob", 1, b"payload-bytes").unwrap();
        let good = fs::read(&path).unwrap();

        // truncation: drop trailing payload bytes
        assert!(matches!(
            parse_envelope(&good[..good.len() - 4], "blob", 1),
            Err(DurableError::Truncated { .. })
        ));
        // corruption: flip a payload byte
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(
            parse_envelope(&flipped, "blob", 1),
            Err(DurableError::ChecksumMismatch)
        ));
        // trailing garbage
        let mut longer = good.clone();
        longer.extend_from_slice(b"xx");
        assert!(matches!(
            parse_envelope(&longer, "blob", 1),
            Err(DurableError::Corrupt(_))
        ));
        // wrong kind, future version, not an envelope at all
        assert!(matches!(
            parse_envelope(&good, "other", 1),
            Err(DurableError::KindMismatch { .. })
        ));
        assert!(matches!(
            parse_envelope(&good, "blob", 0),
            Err(DurableError::UnsupportedVersion { .. })
        ));
        assert!(matches!(
            parse_envelope(b"{\"json\": true}\n", "blob", 1),
            Err(DurableError::NotAnEnvelope(_))
        ));
        assert!(matches!(
            parse_envelope(b"\xff\xfe\x00garbage", "blob", 1),
            Err(DurableError::NotAnEnvelope(_))
        ));
    }

    #[test]
    fn injected_error_leaves_destination_untouched() {
        let path = tmp_dir("inject_err").join("f.bin");
        write_durable("tests.write", &path, "blob", 1, b"old").unwrap();
        let _guard = ScopedFail::new("tests.write", Action::Err, 1);
        let err = write_durable("tests.write", &path, "blob", 1, b"new").unwrap_err();
        assert!(matches!(err, DurableError::Io(_)));
        let (_, payload) = read_durable(&path, "blob", 1).unwrap();
        assert_eq!(payload, b"old", "failed write must not clobber the file");
    }

    #[test]
    fn torn_write_leaves_destination_untouched() {
        let path = tmp_dir("inject_short").join("f.bin");
        write_durable("tests.torn", &path, "blob", 1, b"old").unwrap();
        let _guard = ScopedFail::new("tests.torn", Action::ShortWrite(10), 1);
        assert!(write_durable("tests.torn", &path, "blob", 1, b"new-content").is_err());
        // the destination still holds the previous generation in full
        let (_, payload) = read_durable(&path, "blob", 1).unwrap();
        assert_eq!(payload, b"old");
        // and the torn temp file is rejected with a typed error
        let tmp = tmp_path(&path);
        let torn = fs::read(&tmp).expect("torn temp file left behind");
        assert!(parse_envelope(&torn, "blob", 1).is_err());
    }
}
