//! # glint-failpoint
//!
//! Deterministic fault injection plus the durable-file primitives the rest
//! of the workspace builds its fault tolerance on.
//!
//! * [`check`] / [`arm`] / [`ScopedFail`] — named fail-point sites that can
//!   be forced (from the `GLINT_FAILPOINTS` environment variable or
//!   programmatically) to return IO errors, truncate writes, or panic. The
//!   disabled path is a single relaxed atomic load, so instrumented sites
//!   cost nothing in production.
//! * [`durable`] — a versioned, checksummed file envelope written atomically
//!   via temp-file + rename. Checkpoints, persisted models, and graph
//!   datasets all go through it, so a crash at any instant leaves either the
//!   old file or the new file on disk — never a torn hybrid.
//!
//! ## Environment syntax
//!
//! ```text
//! GLINT_FAILPOINTS="<site>=<action>[@<nth>][;<site>=<action>...]"
//! ```
//!
//! Actions: `err` (injected IO error), `short:<bytes>` (write only the first
//! `<bytes>` bytes, then fail — a torn write), `panic` (simulated crash).
//! `@<nth>` delays the fault to the nth hit of the site (1-based, default 1).
//! Each armed fault fires exactly once and then disarms, so a resumed run
//! does not re-trip the fault that killed its predecessor.
//!
//! Canonical sites wired through the workspace: `persist.save`,
//! `checkpoint.save`, `graph.store.save`, `trainer.epoch_end`,
//! `detector.assess`, `detector.classify`.

pub mod durable;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// What a forced fail point does when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Surface an injected IO error.
    Err,
    /// Write only the first `n` bytes, then surface an IO error (torn write).
    ShortWrite(usize),
    /// Panic at the site (simulated crash; callers on the serving path are
    /// expected to contain it).
    Panic,
}

/// One armed site: fires on the `nth` hit, once.
#[derive(Clone, Debug)]
struct Armed {
    action: Action,
    /// Hits remaining before the fault fires (1 = fire on the next hit).
    countdown: usize,
}

/// Fast-path gate. Starts [`UNINIT`] so the very first hit of any site pays
/// one registry initialisation (reading `GLINT_FAILPOINTS`); after that the
/// state is [`IDLE`] or [`ARMED`] and a hit costs one relaxed atomic load.
/// Never reset from `ARMED` back to `IDLE` (a stale `ARMED` only costs one
/// mutex lock per check; the map is the truth).
static STATE: AtomicU8 = AtomicU8::new(UNINIT);
/// The registry has not been initialised; the environment may still arm
/// sites. Must be the `AtomicU8::new` default above.
const UNINIT: u8 = 0;
/// Registry initialised, nothing armed from the environment (yet).
const IDLE: u8 = 1;
/// At least one site has been armed at some point.
const ARMED: u8 = 2;

fn registry() -> &'static Mutex<BTreeMap<String, Armed>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Armed>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut map = BTreeMap::new();
        if let Ok(spec) = std::env::var("GLINT_FAILPOINTS") {
            for (site, armed) in parse_spec(&spec) {
                map.insert(site, armed);
            }
        }
        let state = if map.is_empty() { IDLE } else { ARMED };
        // `arm` may already have raced the state to ARMED; never downgrade.
        let _ = STATE.compare_exchange(UNINIT, state, Ordering::Relaxed, Ordering::Relaxed);
        Mutex::new(map)
    })
}

/// Parse the `GLINT_FAILPOINTS` syntax. Malformed entries are skipped — a
/// typo in a fault-injection variable must not itself take the process down.
fn parse_spec(spec: &str) -> Vec<(String, Armed)> {
    let mut out = Vec::new();
    for entry in spec.split([';', ',']) {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let Some((site, rhs)) = entry.split_once('=') else {
            continue;
        };
        let (action_str, nth) = match rhs.split_once('@') {
            Some((a, n)) => (a, n.trim().parse::<usize>().unwrap_or(1).max(1)),
            None => (rhs, 1),
        };
        let action = match action_str.trim() {
            "err" => Action::Err,
            "panic" => Action::Panic,
            s => match s.strip_prefix("short:").map(str::trim) {
                Some(n) => Action::ShortWrite(n.parse().unwrap_or(0)),
                None => continue,
            },
        };
        out.push((
            site.trim().to_string(),
            Armed {
                action,
                countdown: nth,
            },
        ));
    }
    out
}

/// Arm `site` to fire `action` on its `nth` hit (1-based). Overwrites any
/// previous arming of the same site.
pub fn arm(site: &str, action: Action, nth: usize) {
    let mut map = registry().lock().expect("failpoint registry poisoned");
    map.insert(
        site.to_string(),
        Armed {
            action,
            countdown: nth.max(1),
        },
    );
    STATE.store(ARMED, Ordering::Relaxed);
}

/// Disarm `site` (no-op when it is not armed).
pub fn disarm(site: &str) {
    let mut map = registry().lock().expect("failpoint registry poisoned");
    map.remove(site);
}

/// Sites currently armed (for matrix drivers that introspect the env).
pub fn armed_sites() -> Vec<String> {
    let map = registry().lock().expect("failpoint registry poisoned");
    map.keys().cloned().collect()
}

/// Hit `site`: returns the action to apply if the fault fires now. The
/// common (disabled) path is one relaxed atomic load. A fired fault disarms
/// itself. An `Action::Panic` fault panics here rather than returning.
pub fn check(site: &str) -> Option<Action> {
    let mut state = STATE.load(Ordering::Relaxed);
    if state == UNINIT {
        // First hit anywhere: initialise the registry so GLINT_FAILPOINTS
        // is honoured even when nothing was armed programmatically.
        registry();
        state = STATE.load(Ordering::Relaxed);
    }
    if state != ARMED {
        return None;
    }
    let action = {
        // glint-lint: allow(hot-unwrap, hot-lock) — reached only while a
        // fault is armed (the disabled fast path above is one relaxed atomic
        // load); registry poisoning means a panic mid-arm, unrecoverable
        let mut map = registry().lock().expect("failpoint registry poisoned");
        let armed = map.get_mut(site)?;
        armed.countdown -= 1;
        if armed.countdown > 0 {
            return None;
        }
        let action = armed.action.clone();
        map.remove(site);
        action
    };
    if action == Action::Panic {
        // glint-lint: allow(hot-panic) — Action::Panic exists to inject a
        // panic at this site for fault drills; firing is the feature
        panic!("glint-failpoint: forced panic at site `{site}`");
    }
    Some(action)
}

/// Hit `site` and convert a fired fault into an `io::Error` (panic faults
/// still panic). For sites where a short write has no meaning.
pub fn trigger(site: &str) -> std::io::Result<()> {
    match check(site) {
        None => Ok(()),
        Some(_) => Err(injected_error(site)),
    }
}

/// The error every fired fail point surfaces; recognisable in assertions.
pub fn injected_error(site: &str) -> std::io::Error {
    std::io::Error::other(format!("glint-failpoint: injected fault at `{site}`"))
}

/// RAII arming for tests: arms on construction, disarms on drop (including
/// on panic), so a failed assertion cannot leak an armed site into the next
/// test of the same binary.
pub struct ScopedFail {
    site: String,
}

impl ScopedFail {
    pub fn new(site: &str, action: Action, nth: usize) -> Self {
        arm(site, action, nth);
        Self {
            site: site.to_string(),
        }
    }
}

impl Drop for ScopedFail {
    fn drop(&mut self) {
        disarm(&self.site);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_site_never_fires() {
        assert_eq!(check("tests.nothing_armed_here"), None);
        assert!(trigger("tests.nothing_armed_here").is_ok());
    }

    #[test]
    fn fires_once_on_nth_hit_then_disarms() {
        let _guard = ScopedFail::new("tests.nth", Action::Err, 3);
        assert_eq!(check("tests.nth"), None);
        assert_eq!(check("tests.nth"), None);
        assert_eq!(check("tests.nth"), Some(Action::Err));
        assert_eq!(check("tests.nth"), None, "fault must disarm after firing");
    }

    #[test]
    fn scoped_fail_disarms_on_drop() {
        {
            let _guard = ScopedFail::new("tests.scoped", Action::Err, 1);
            assert!(armed_sites().contains(&"tests.scoped".to_string()));
        }
        assert!(!armed_sites().contains(&"tests.scoped".to_string()));
        assert_eq!(check("tests.scoped"), None);
    }

    #[test]
    fn panic_action_panics_at_site() {
        let _guard = ScopedFail::new("tests.panic", Action::Panic, 1);
        let result = std::panic::catch_unwind(|| check("tests.panic"));
        assert!(result.is_err(), "panic action must panic");
    }

    #[test]
    fn spec_parsing() {
        let parsed = parse_spec("a.b=err; c.d=short:16@2 ;bogus; e=panic,f=short:x");
        let sites: Vec<&str> = parsed.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(sites, ["a.b", "c.d", "e", "f"]);
        assert_eq!(parsed[0].1.action, Action::Err);
        assert_eq!(parsed[1].1.action, Action::ShortWrite(16));
        assert_eq!(parsed[1].1.countdown, 2);
        assert_eq!(parsed[2].1.action, Action::Panic);
        assert_eq!(parsed[3].1.action, Action::ShortWrite(0));
    }
}
