//! The threat-labeling oracle: the six literature threat types of Table 4,
//! applied mechanically to the *structured* rules of a graph — the stand-in
//! for the paper's 8-week volunteer labeling campaign (§4.2). The learning
//! stack never sees these structures, only text embeddings.

use glint_rules::correlation::{action_triggers, effective_affects};
use glint_rules::{Action, Channel, Condition, Rule, StateValue, Trigger};
use serde::{Deserialize, Serialize};

/// The six policy threat types used for labeling.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreatKind {
    ConditionBypass,
    ConditionBlock,
    ActionRevert,
    ActionConflict,
    ActionLoop,
    GoalConflict,
}

impl ThreatKind {
    pub fn name(self) -> &'static str {
        match self {
            ThreatKind::ConditionBypass => "condition bypass",
            ThreatKind::ConditionBlock => "condition block",
            ThreatKind::ActionRevert => "action revert",
            ThreatKind::ActionConflict => "action conflict",
            ThreatKind::ActionLoop => "action loop",
            ThreatKind::GoalConflict => "goal conflict",
        }
    }
}

/// One detected threat among a rule set.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThreatFinding {
    pub kind: ThreatKind,
    /// The rule ids involved.
    pub rules: Vec<u32>,
}

fn action_state(
    a: &Action,
) -> Option<(
    glint_rules::DeviceKind,
    glint_rules::Location,
    glint_rules::Attribute,
    StateValue,
)> {
    match a {
        Action::SetState {
            device,
            location,
            attribute,
            state,
        } => Some((*device, *location, *attribute, *state)),
        Action::SetLevel {
            device,
            location,
            attribute,
            value,
        } => Some((*device, *location, *attribute, StateValue::Level(*value))),
        _ => None,
    }
}

/// Does any action of `a` and any action of `b` target the same device
/// attribute (coupled locations) with opposing states?
fn opposing_actions(a: &Rule, b: &Rule) -> bool {
    for aa in &a.actions {
        for ab in &b.actions {
            if let (Some((d1, l1, at1, s1)), Some((d2, l2, at2, s2))) =
                (action_state(aa), action_state(ab))
            {
                if d1 == d2 && at1 == at2 && l1.couples_with(l2) && s1.opposes(s2) {
                    return true;
                }
            }
        }
    }
    false
}

/// Do the same action (same device, attribute, state) appear in both rules?
fn same_action_goal(a: &Rule, b: &Rule) -> bool {
    for aa in &a.actions {
        for ab in &b.actions {
            if let (Some((d1, l1, at1, s1)), Some((d2, l2, at2, s2))) =
                (action_state(aa), action_state(ab))
            {
                if d1 == d2 && at1 == at2 && l1.couples_with(l2) && s1 == s2 {
                    return true;
                }
            }
        }
    }
    false
}

/// Do two time specs share any time of day (sampled at 15-minute steps)?
fn timespecs_overlap(a: glint_rules::TimeSpec, b: glint_rules::TimeSpec) -> bool {
    (0..96).any(|k| {
        let h = k as f32 * 0.25;
        a.matches(h) && b.matches(h)
    })
}

/// Do the triggers of two rules overlap (same channel & coupled location, or
/// genuinely overlapping times)? This is what makes two conflicting actions
/// *concurrent* rather than merely opposed.
fn triggers_overlap(a: &Rule, b: &Rule) -> bool {
    match (&a.trigger, &b.trigger) {
        (Trigger::Time(sa), Trigger::Time(sb)) => timespecs_overlap(*sa, *sb),
        _ => match (a.trigger.channel(), b.trigger.channel()) {
            (Some(ca), Some(cb)) => {
                ca == cb
                    && (ca.is_global() || a.trigger.location().couples_with(b.trigger.location()))
                    && thresholds_compatible(&a.trigger, &b.trigger)
            }
            _ => false,
        },
    }
}

/// Two threshold triggers on the same channel only overlap when some value
/// satisfies both ("above 85" and "below 60" can never co-fire).
fn thresholds_compatible(a: &Trigger, b: &Trigger) -> bool {
    use glint_rules::Cmp;
    let range = |t: &Trigger| -> Option<(f32, f32)> {
        match t {
            Trigger::ChannelThreshold {
                cmp: Cmp::Above,
                value,
                ..
            } => Some((*value, f32::MAX)),
            Trigger::ChannelThreshold {
                cmp: Cmp::Below,
                value,
                ..
            } => Some((f32::MIN, *value)),
            Trigger::ChannelRange { lo, hi, .. } => Some((*lo, *hi)),
            _ => None,
        }
    };
    match (range(a), range(b)) {
        (Some((lo1, hi1)), Some((lo2, hi2))) => lo1.max(lo2) < hi1.min(hi2),
        _ => true,
    }
}

/// Can rule `a` (the trigger-er) realistically fire at all in circumstances
/// where `b` is armed? Smoke/safety events co-occur with everything.
fn concurrently_reachable(a: &Rule, b: &Rule) -> bool {
    // a safety-event rule (smoke/leak) conflicts with anything scheduled
    let safety = |r: &Rule| {
        matches!(
            r.trigger.channel(),
            Some(Channel::Smoke) | Some(Channel::Leak)
        )
    };
    safety(a) || safety(b) || triggers_overlap(a, b)
}

/// Does `rule`'s action falsify `cond` (set an opposing device state / mode)?
fn action_falsifies_condition(rule: &Rule, cond: &Condition) -> bool {
    for a in &rule.actions {
        let Some((d, l, at, s)) = action_state(a) else {
            continue;
        };
        match cond {
            Condition::DeviceState {
                device,
                location,
                attribute,
                state,
            } if d == *device
                && at == *attribute
                && l.couples_with(*location)
                && s.opposes(*state) =>
            {
                return true;
            }
            Condition::HomeMode(mode) => {
                // arming/disarming/home/away actions falsify mode conditions
                if at == glint_rules::Attribute::Mode && s.opposes(*mode) {
                    return true;
                }
                // the paper's setting 4: disarm ⇒ "armed" condition blocked
                if at == glint_rules::Attribute::Mode {
                    if let (StateValue::Disarmed, StateValue::Armed)
                    | (StateValue::Armed, StateValue::Disarmed)
                    | (StateValue::HomeMode, StateValue::AwayMode)
                    | (StateValue::AwayMode, StateValue::HomeMode) = (s, *mode)
                    {
                        return true;
                    }
                }
            }
            _ => {}
        }
    }
    false
}

/// Channel-level intent of a rule's actions: (channel, net effect).
fn channel_intents(r: &Rule) -> Vec<(Channel, glint_rules::Effect)> {
    let mut out = Vec::new();
    for a in &r.actions {
        if let Some((d, _, _, s)) = action_state(a) {
            out.extend(effective_affects(d, s));
        }
    }
    out
}

/// Detect a directed action-trigger cycle among the rules.
fn has_action_loop(rules: &[&Rule]) -> Option<Vec<u32>> {
    let n = rules.len();
    let mut adj = vec![Vec::new(); n];
    for i in 0..n {
        for j in 0..n {
            if i != j && action_triggers(rules[i], rules[j]).is_some() {
                adj[i].push(j);
            }
        }
    }
    // DFS cycle detection with path recovery
    #[derive(Clone, Copy, PartialEq)]
    enum C {
        W,
        G,
        B,
    }
    fn dfs(
        u: usize,
        adj: &[Vec<usize>],
        color: &mut [C],
        path: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        color[u] = C::G;
        path.push(u);
        for &v in &adj[u] {
            match color[v] {
                C::G => {
                    let start = path.iter().position(|&x| x == v).unwrap_or(0);
                    return Some(path[start..].to_vec());
                }
                C::W => {
                    if let Some(c) = dfs(v, adj, color, path) {
                        return Some(c);
                    }
                }
                C::B => {}
            }
        }
        path.pop();
        color[u] = C::B;
        None
    }
    let mut color = vec![C::W; n];
    for s in 0..n {
        if color[s] == C::W {
            let mut path = Vec::new();
            if let Some(cycle) = dfs(s, &adj, &mut color, &mut path) {
                return Some(cycle.into_iter().map(|i| rules[i].id.0).collect());
            }
        }
    }
    None
}

/// Apply all six policies to a rule set and report every finding.
pub fn label_rules(rules: &[&Rule]) -> Vec<ThreatFinding> {
    let mut findings = Vec::new();
    let n = rules.len();

    // action loop
    if let Some(cycle) = has_action_loop(rules) {
        findings.push(ThreatFinding {
            kind: ThreatKind::ActionLoop,
            rules: cycle,
        });
    }

    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let (a, b) = (rules[i], rules[j]);
            // condition bypass: same goal, overlapping trigger, but one rule
            // guards with strictly more conditions (the coarse rule bypasses
            // the fine one's conditions)
            if i < j
                && same_action_goal(a, b)
                && triggers_overlap(a, b)
                && a.conditions.len() != b.conditions.len()
            {
                findings.push(ThreatFinding {
                    kind: ThreatKind::ConditionBypass,
                    rules: vec![a.id.0, b.id.0],
                });
            }
            // condition block: a's action falsifies one of b's conditions
            if b.conditions
                .iter()
                .any(|c| action_falsifies_condition(a, c))
            {
                findings.push(ThreatFinding {
                    kind: ThreatKind::ConditionBlock,
                    rules: vec![a.id.0, b.id.0],
                });
            }
            // action revert: a triggers b and b undoes a's device action
            if action_triggers(a, b).is_some() && opposing_actions(a, b) {
                findings.push(ThreatFinding {
                    kind: ThreatKind::ActionRevert,
                    rules: vec![a.id.0, b.id.0],
                });
            }
            // action conflict: opposing device actions reachable in
            // overlapping circumstances *without* a causal edge
            if i < j
                && opposing_actions(a, b)
                && concurrently_reachable(a, b)
                && action_triggers(a, b).is_none()
                && action_triggers(b, a).is_none()
            {
                findings.push(ThreatFinding {
                    kind: ThreatKind::ActionConflict,
                    rules: vec![a.id.0, b.id.0],
                });
            }
            // goal conflict: a triggers b via a channel and b's actions push
            // that channel the other way with a *different* device
            if let Some(glint_rules::correlation::Via::Channel(c)) = action_triggers(a, b) {
                let a_intent = channel_intents(a).into_iter().find(|(ch, _)| *ch == c);
                let b_intent = channel_intents(b).into_iter().find(|(ch, _)| *ch == c);
                if let (Some((_, ea)), Some((_, eb))) = (a_intent, b_intent) {
                    if ea.opposes(eb) && !opposing_actions(a, b) {
                        findings.push(ThreatFinding {
                            kind: ThreatKind::GoalConflict,
                            rules: vec![a.id.0, b.id.0],
                        });
                    }
                }
            }
        }
    }
    findings.sort_by_key(|f| (f.kind.name(), f.rules.clone()));
    findings.dedup();
    findings
}

/// Graph-level label: threat iff any policy fires.
pub fn is_vulnerable(rules: &[&Rule]) -> bool {
    !label_rules(rules).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glint_rules::scenarios::{table4_settings, table4_threat_groups};

    fn subset<'a>(rules: &'a [Rule], ids: &[u32]) -> Vec<&'a Rule> {
        ids.iter()
            .map(|id| rules.iter().find(|r| r.id.0 == *id).expect("rule exists"))
            .collect()
    }

    #[test]
    fn every_table4_group_is_flagged_with_its_type() {
        let rules = table4_settings();
        let expected = [
            ("condition bypass", ThreatKind::ConditionBypass),
            ("condition block", ThreatKind::ConditionBlock),
            ("action revert", ThreatKind::ActionRevert),
            ("action conflict", ThreatKind::ActionConflict),
            ("action loop", ThreatKind::ActionLoop),
            ("goal conflict", ThreatKind::GoalConflict),
        ];
        for (name, ids) in table4_threat_groups() {
            let kind = expected.iter().find(|(n, _)| *n == name).unwrap().1;
            let group = subset(&rules, &ids);
            let findings = label_rules(&group);
            assert!(
                findings.iter().any(|f| f.kind == kind),
                "{name} (rules {ids:?}) not detected as {kind:?}; got {findings:?}"
            );
        }
    }

    #[test]
    fn benign_rule_pairs_are_clean() {
        let rules = table4_settings();
        // setting 5 (light at 7pm) + setting 9 (lock at 10pm): unrelated
        let group = subset(&rules, &[105, 109]);
        assert!(label_rules(&group).is_empty(), "{:?}", label_rules(&group));
    }

    #[test]
    fn single_rule_is_never_vulnerable() {
        let rules = table4_settings();
        for r in &rules {
            assert!(label_rules(&[r]).is_empty(), "rule {} self-flagged", r.id.0);
        }
    }

    #[test]
    fn table1_running_example_is_vulnerable() {
        // the paper's running example: the smoke-window interaction is unsafe
        let rules = glint_rules::scenarios::table1_rules();
        let all: Vec<&Rule> = rules.iter().collect();
        assert!(is_vulnerable(&all));
        // specifically rules 6 (open window on smoke) and 5 (close windows
        // when AC on) revert/conflict on the window
        let pair = subset(&rules, &[5, 6]);
        let findings = label_rules(&pair);
        assert!(
            findings.iter().any(|f| matches!(
                f.kind,
                ThreatKind::ActionConflict | ThreatKind::ActionRevert
            )),
            "{findings:?}"
        );
    }

    #[test]
    fn findings_are_deduplicated_and_ordered() {
        let rules = table4_settings();
        let group = subset(&rules, &[110, 111]);
        let findings = label_rules(&group);
        let mut dedup = findings.clone();
        dedup.dedup();
        assert_eq!(findings, dedup);
    }
}
