//! Incremental Algorithm 1: delta mining over per-home rule sets.
//!
//! The batch pipeline re-runs correlation mining, graph construction, and
//! embedding over the *whole corpus* on every rule change — O(N²) pair work
//! for a change that touches one home. This module makes the pipeline
//! delta-driven, the THREATRACE discipline of scoping updates to the
//! affected neighborhood of an evolving graph:
//!
//! 1. **Vocabulary neighborhood.** Every rule is indexed by the device and
//!    channel *tokens* its actions emit and its trigger/conditions consume.
//!    The correlation oracle can only relate two rules that share a token
//!    (an action→trigger path needs a watched device or a fed channel; a
//!    shared-device coupling needs a common actuated device; a faked
//!    condition is a trigger in disguise), so when a rule is added only the
//!    pairs inside its token neighborhood are re-mined — the remainder of
//!    the home's weight map is provably unchanged.
//! 2. **Dirty-set tracking.** A delta marks exactly its home dirty;
//!    [`IncrementalPipeline::refresh`] re-embeds dirty homes only, so the
//!    GNN never re-embeds the other N−1 homes.
//! 3. **Live ingest→verdict.** [`IncrementalPipeline::ingest`] applies a
//!    delta, rebuilds the one affected home graph, forwards the delta to
//!    the [`GlintDetector`], and returns the detector's verdict — no full
//!    rebuild anywhere on the path.
//!
//! Equivalence contract: for any delta sequence, the incremental weight
//! maps, graphs, and embeddings are **bitwise identical** to a from-scratch
//! batch rebuild over the final rule sets ([`mine_all`] + [`home_graph`] are
//! the shared canonical constructors; `tests/incremental_equiv.rs` holds the
//! proptest).

use crate::detector::{Detection, GlintDetector};
use glint_gnn::batch::PreparedGraph;
use glint_gnn::models::GraphModel;
use glint_gnn::trainer::ContrastiveTrainer;
use glint_graph::graph::{EdgeKind, InteractionGraph, Node};
use glint_graph::shard::{ShardError, ShardedStore};
use glint_graph::GraphDataset;
use glint_rules::correlation::{action_invokes_trigger, action_triggers, Via};
use glint_rules::{
    ast::device_state_channel, Channel, Condition, DeviceKind, Rule, RuleId, Trigger,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Mined correlation record for one *ordered* rule pair `(a, b)`. Mirrors
/// the three edge families of `glint_graph::builder::full_graph` so a graph
/// rebuilt from these records is edge-for-edge identical to the batch
/// builder's output.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PairCorrelation {
    /// Action→trigger weight: `Some` when a's action invokes b's trigger.
    pub action_trigger: Option<f32>,
    /// a and b actuate the same device kind at coupled locations.
    pub shared_device: bool,
    /// How many of b's conditions an action of a can fake (each one is an
    /// `ActionCondition` edge, duplicates included, matching the batch
    /// builder exactly).
    pub action_condition: u32,
}

impl PairCorrelation {
    /// True when the record carries no correlation at all (not stored).
    pub fn is_empty(&self) -> bool {
        self.action_trigger.is_none() && !self.shared_device && self.action_condition == 0
    }
}

/// Pluggable Algorithm 1 kernel: how one ordered pair is mined. The default
/// [`OracleMiner`] uses the ground-truth taxonomy oracle; a learned
/// `CorrelationDiscoverer` can stand in behind the same interface.
pub trait CorrelationMiner {
    fn mine(&self, a: &Rule, b: &Rule) -> PairCorrelation;
}

/// Action→trigger weight when the path is a directly watched device.
pub const WEIGHT_DEVICE: f32 = 1.0;
/// Action→trigger weight when the path is a physical channel side effect.
pub const WEIGHT_CHANNEL: f32 = 0.75;

/// Ground-truth miner over the device/channel taxonomy.
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleMiner;

impl CorrelationMiner for OracleMiner {
    fn mine(&self, a: &Rule, b: &Rule) -> PairCorrelation {
        let action_trigger = action_triggers(a, b).map(|via| match via {
            Via::Device(_) => WEIGHT_DEVICE,
            Via::Channel(_) => WEIGHT_CHANNEL,
        });
        let shared_device = a.actuated_devices().iter().any(|(d1, l1)| {
            b.actuated_devices()
                .iter()
                .any(|(d2, l2)| d1 == d2 && l1.couples_with(*l2))
        });
        let action_condition = b
            .conditions
            .iter()
            .filter_map(condition_as_trigger)
            .filter(|t| {
                a.actions
                    .iter()
                    .any(|act| action_invokes_trigger(act, t).is_some())
            })
            .count() as u32;
        PairCorrelation {
            action_trigger,
            shared_device,
            action_condition,
        }
    }
}

fn condition_as_trigger(cond: &Condition) -> Option<Trigger> {
    match cond {
        Condition::DeviceState {
            device,
            location,
            attribute,
            state,
        } => Some(Trigger::DeviceState {
            device: *device,
            location: *location,
            attribute: *attribute,
            state: *state,
        }),
        Condition::ChannelThreshold {
            channel,
            location,
            cmp,
            value,
        } => Some(Trigger::ChannelThreshold {
            channel: *channel,
            location: *location,
            cmp: *cmp,
            value: *value,
        }),
        Condition::Time(_) | Condition::HomeMode(_) => None,
    }
}

/// One vocabulary token: a device kind or a physical channel. Two rules can
/// be correlated by the oracle only if a token emitted by one's actions is
/// consumed by the other's trigger/conditions (or both actuate the same
/// device token).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Token {
    Dev(DeviceKind),
    Chan(Channel),
}

/// Tokens a rule's actions *emit*: each actuated device kind, plus every
/// channel that device can physically affect (a superset of
/// `effective_affects` for any state, so no correlated pair escapes).
pub fn action_tokens(rule: &Rule) -> BTreeSet<Token> {
    let mut tokens = BTreeSet::new();
    for act in &rule.actions {
        if let Some((dev, _)) = act.device() {
            tokens.insert(Token::Dev(dev));
            for &(c, _) in dev.affects() {
                tokens.insert(Token::Chan(c));
            }
        }
    }
    tokens
}

/// Tokens a rule's trigger *and conditions* consume: the watched device
/// kind and/or channel. Time/voice/manual triggers consume nothing — the
/// oracle can never invoke them.
pub fn trigger_tokens(rule: &Rule) -> BTreeSet<Token> {
    let mut tokens = BTreeSet::new();
    let mut add_trigger = |t: &Trigger| match t {
        Trigger::DeviceState {
            device, attribute, ..
        } => {
            tokens.insert(Token::Dev(*device));
            if let Some(c) = device_state_channel(*device, *attribute) {
                tokens.insert(Token::Chan(c));
            }
        }
        Trigger::ChannelThreshold { channel, .. }
        | Trigger::ChannelRange { channel, .. }
        | Trigger::ChannelEvent { channel, .. } => {
            tokens.insert(Token::Chan(*channel));
        }
        Trigger::Time(_) | Trigger::Voice | Trigger::Manual => {}
    };
    add_trigger(&rule.trigger);
    for cond in &rule.conditions {
        if let Some(t) = condition_as_trigger(cond) {
            add_trigger(&t);
        }
    }
    tokens
}

/// A rule add/remove event on one home's deployed rule set.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RuleDelta {
    pub home: u64,
    pub change: RuleChange,
}

#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum RuleChange {
    Add(Rule),
    Remove(RuleId),
}

/// Why a delta could not be applied. The pipeline state is unchanged on any
/// of these.
#[derive(Debug)]
pub enum DeltaError {
    /// `Add` for a rule id the home already deploys.
    DuplicateRule { home: u64, id: u32 },
    /// `Remove` for a rule id the home does not deploy.
    UnknownRule { home: u64, id: u32 },
    /// `Remove` addressed to a home with no rules at all.
    UnknownHome { home: u64 },
    /// Shard persistence failed.
    Shard(ShardError),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::DuplicateRule { home, id } => {
                write!(f, "home {home} already deploys rule {id}")
            }
            DeltaError::UnknownRule { home, id } => {
                write!(f, "home {home} does not deploy rule {id}")
            }
            DeltaError::UnknownHome { home } => write!(f, "home {home} has no deployed rules"),
            DeltaError::Shard(e) => write!(f, "shard persistence failed: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<ShardError> for DeltaError {
    fn from(e: ShardError) -> Self {
        DeltaError::Shard(e)
    }
}

/// One home's live state: sorted rules, mined pair records, token indexes,
/// the current interaction graph, and the (possibly stale) embedding.
#[derive(Default)]
pub struct HomeState {
    /// Deployed rules, sorted by rule id (the canonical node order).
    rules: Vec<Rule>,
    /// Mined records for ordered pairs `(a_id, b_id)`; empty records are
    /// never stored.
    corr: BTreeMap<(u32, u32), PairCorrelation>,
    /// Token → rule ids whose *actions* emit it.
    act_index: BTreeMap<Token, BTreeSet<u32>>,
    /// Token → rule ids whose *trigger/conditions* consume it.
    trig_index: BTreeMap<Token, BTreeSet<u32>>,
    /// Current interaction graph (`None` while the home has no rules).
    graph: Option<InteractionGraph>,
    /// Latest contrastive embedding; `None` until the first refresh.
    embedding: Option<Vec<f32>>,
    /// Embedding is stale relative to the rules/graph.
    dirty: bool,
}

impl HomeState {
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    pub fn correlations(&self) -> &BTreeMap<(u32, u32), PairCorrelation> {
        &self.corr
    }

    pub fn graph(&self) -> Option<&InteractionGraph> {
        self.graph.as_ref()
    }

    pub fn embedding(&self) -> Option<&[f32]> {
        self.embedding.as_deref()
    }

    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    fn rule_by_id(&self, id: u32) -> Option<&Rule> {
        self.rules
            .binary_search_by_key(&id, |r| r.id.0)
            .ok()
            .and_then(|i| self.rules.get(i))
    }

    fn index_rule(&mut self, rule: &Rule) {
        for t in action_tokens(rule) {
            self.act_index.entry(t).or_default().insert(rule.id.0);
        }
        for t in trigger_tokens(rule) {
            self.trig_index.entry(t).or_default().insert(rule.id.0);
        }
    }

    fn unindex_rule(&mut self, rule: &Rule) {
        for t in action_tokens(rule) {
            if let Some(s) = self.act_index.get_mut(&t) {
                s.remove(&rule.id.0);
                if s.is_empty() {
                    self.act_index.remove(&t);
                }
            }
        }
        for t in trigger_tokens(rule) {
            if let Some(s) = self.trig_index.get_mut(&t) {
                s.remove(&rule.id.0);
                if s.is_empty() {
                    self.trig_index.remove(&t);
                }
            }
        }
    }

    /// Rule ids that could possibly be correlated with `rule` in either
    /// direction: the token neighborhood. Exact by construction — the
    /// oracle requires a shared token on every path (see module docs).
    fn neighborhood(&self, rule: &Rule) -> BTreeSet<u32> {
        let mut neigh = BTreeSet::new();
        for t in action_tokens(rule) {
            if let Some(consumers) = self.trig_index.get(&t) {
                neigh.extend(consumers.iter().copied());
            }
            // shared-device coupling is act×act, on device tokens only
            if matches!(t, Token::Dev(_)) {
                if let Some(actuators) = self.act_index.get(&t) {
                    neigh.extend(actuators.iter().copied());
                }
            }
        }
        for t in trigger_tokens(rule) {
            if let Some(emitters) = self.act_index.get(&t) {
                neigh.extend(emitters.iter().copied());
            }
        }
        neigh.remove(&rule.id.0);
        neigh
    }
}

/// Mine every ordered pair of `rules` from scratch — the batch counterpart
/// the incremental path must match bitwise.
pub fn mine_all<M: CorrelationMiner>(
    miner: &M,
    rules: &[Rule],
) -> BTreeMap<(u32, u32), PairCorrelation> {
    let mut corr = BTreeMap::new();
    for a in rules {
        for b in rules {
            if a.id == b.id {
                continue;
            }
            let pc = miner.mine(a, b);
            if !pc.is_empty() {
                corr.insert((a.id.0, b.id.0), pc);
            }
        }
    }
    corr
}

/// Canonical graph constructor shared by the incremental and batch paths:
/// nodes in `rules` order, then the three edge passes in the same order as
/// `glint_graph::builder::full_graph` (all ActionTrigger, all SharedDevice,
/// all ActionCondition, each i-major/j-minor). Returns `None` for an empty
/// rule set.
pub fn home_graph(
    rules: &[Rule],
    corr: &BTreeMap<(u32, u32), PairCorrelation>,
    feature_fn: &dyn Fn(&Rule) -> Vec<f32>,
) -> Option<InteractionGraph> {
    if rules.is_empty() {
        return None;
    }
    let nodes: Vec<Node> = rules
        .iter()
        .map(|r| Node {
            rule_id: r.id,
            platform: r.platform,
            features: feature_fn(r),
        })
        .collect();
    let mut g = InteractionGraph::new(nodes);
    for (i, a) in rules.iter().enumerate() {
        for (j, b) in rules.iter().enumerate() {
            if i != j
                && corr
                    .get(&(a.id.0, b.id.0))
                    .is_some_and(|p| p.action_trigger.is_some())
            {
                g.add_edge(i, j, EdgeKind::ActionTrigger);
            }
        }
    }
    for (i, a) in rules.iter().enumerate() {
        for (j, b) in rules.iter().enumerate() {
            if i != j && corr.get(&(a.id.0, b.id.0)).is_some_and(|p| p.shared_device) {
                g.add_edge(i, j, EdgeKind::SharedDevice);
            }
        }
    }
    for (i, a) in rules.iter().enumerate() {
        for (j, b) in rules.iter().enumerate() {
            if i == j {
                continue;
            }
            let dups = corr
                .get(&(a.id.0, b.id.0))
                .map_or(0, |p| p.action_condition);
            for _ in 0..dups {
                g.add_edge(i, j, EdgeKind::ActionCondition);
            }
        }
    }
    Some(g)
}

/// Work accounting across the pipeline's lifetime. The scale ratchet
/// asserts `remined_pairs < full_mine_pairs` and
/// `reembedded < full_reembed` — the whole point of being incremental.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Deltas applied.
    pub deltas: u64,
    /// Ordered pairs actually re-mined (neighborhood-scoped).
    pub remined_pairs: u64,
    /// Ordered pairs a from-scratch batch rebuild would have mined instead
    /// (Σ over homes of n·(n−1), accumulated per delta).
    pub full_mine_pairs: u64,
    /// Home graphs re-embedded by [`IncrementalPipeline::refresh`].
    pub reembedded: u64,
    /// Home graphs a full re-embed would have touched instead (all homes
    /// with rules, accumulated per refresh).
    pub full_reembed: u64,
    /// Home graphs rebuilt (one per effective delta).
    pub graphs_rebuilt: u64,
}

/// What one applied delta did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApplyReport {
    pub home: u64,
    /// Distinct rules in the changed rule's token neighborhood.
    pub neighborhood: usize,
    /// Ordered pairs re-mined for this delta (0 for a removal).
    pub remined_pairs: usize,
    /// Pair records dropped (removal only).
    pub removed_pairs: usize,
}

/// Outcome of [`IncrementalPipeline::ingest`]: the delta's mining report
/// plus the detector's verdict on the home's fresh graph.
pub struct IngestOutcome {
    pub report: ApplyReport,
    pub detection: Detection,
}

/// What a [`IncrementalPipeline::refresh`] pass did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RefreshReport {
    /// Dirty homes re-embedded in this pass.
    pub reembedded: usize,
    /// Homes left untouched (clean, or empty of rules).
    pub skipped: usize,
}

/// The delta-driven multi-home pipeline: per-home incremental Algorithm 1,
/// dirty-set embedding refresh, and live ingest→verdict.
pub struct IncrementalPipeline<M: CorrelationMiner = OracleMiner> {
    miner: M,
    homes: BTreeMap<u64, HomeState>,
    /// Running Σ over homes of n·(n−1) — the batch-equivalent mining cost.
    total_pairs: u64,
    stats: PipelineStats,
}

impl IncrementalPipeline<OracleMiner> {
    pub fn new() -> Self {
        Self::with_miner(OracleMiner)
    }
}

impl Default for IncrementalPipeline<OracleMiner> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: CorrelationMiner> IncrementalPipeline<M> {
    pub fn with_miner(miner: M) -> Self {
        Self {
            miner,
            homes: BTreeMap::new(),
            total_pairs: 0,
            stats: PipelineStats::default(),
        }
    }

    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    pub fn n_homes(&self) -> usize {
        self.homes.len()
    }

    pub fn home(&self, home: u64) -> Option<&HomeState> {
        self.homes.get(&home)
    }

    pub fn homes(&self) -> impl Iterator<Item = (&u64, &HomeState)> {
        self.homes.iter()
    }

    pub fn dirty_homes(&self) -> Vec<u64> {
        self.homes
            .iter()
            .filter(|(_, s)| s.dirty)
            .map(|(&h, _)| h)
            .collect()
    }

    /// Apply one delta: re-mine the vocabulary neighborhood, rebuild the
    /// home's graph, mark the home dirty. Every other home — and every
    /// pair outside the neighborhood — is untouched.
    pub fn apply(
        &mut self,
        delta: &RuleDelta,
        feature_fn: &dyn Fn(&Rule) -> Vec<f32>,
    ) -> Result<ApplyReport, DeltaError> {
        let report = match &delta.change {
            RuleChange::Add(rule) => self.apply_add(delta.home, rule)?,
            RuleChange::Remove(id) => self.apply_remove(delta.home, *id)?,
        };
        self.stats.deltas += 1;
        self.stats.remined_pairs += report.remined_pairs as u64;
        self.stats.full_mine_pairs += self.total_pairs;
        self.stats.graphs_rebuilt += 1;
        if let Some(state) = self.homes.get_mut(&delta.home) {
            state.graph = home_graph(&state.rules, &state.corr, feature_fn);
            state.dirty = true;
        }
        Ok(report)
    }

    fn apply_add(&mut self, home: u64, rule: &Rule) -> Result<ApplyReport, DeltaError> {
        let state = self.homes.entry(home).or_default();
        let Err(insert_at) = state.rules.binary_search_by_key(&rule.id.0, |r| r.id.0) else {
            return Err(DeltaError::DuplicateRule {
                home,
                id: rule.id.0,
            });
        };
        let neigh = state.neighborhood(rule);
        let mut remined = 0usize;
        for &sid in &neigh {
            let Some(other) = state.rule_by_id(sid) else {
                continue;
            };
            let forward = self.miner.mine(rule, other);
            let backward = self.miner.mine(other, rule);
            remined += 2;
            if !forward.is_empty() {
                state.corr.insert((rule.id.0, sid), forward);
            }
            if !backward.is_empty() {
                state.corr.insert((sid, rule.id.0), backward);
            }
        }
        let prior = state.rules.len() as u64;
        state.rules.insert(insert_at, rule.clone());
        state.index_rule(rule);
        self.total_pairs += 2 * prior;
        Ok(ApplyReport {
            home,
            neighborhood: neigh.len(),
            remined_pairs: remined,
            removed_pairs: 0,
        })
    }

    fn apply_remove(&mut self, home: u64, id: RuleId) -> Result<ApplyReport, DeltaError> {
        let Some(state) = self.homes.get_mut(&home) else {
            return Err(DeltaError::UnknownHome { home });
        };
        let Ok(at) = state.rules.binary_search_by_key(&id.0, |r| r.id.0) else {
            return Err(DeltaError::UnknownRule { home, id: id.0 });
        };
        let rule = state.rules.remove(at);
        state.unindex_rule(&rule);
        let before = state.corr.len();
        state.corr.retain(|&(a, b), _| a != id.0 && b != id.0);
        let removed = before - state.corr.len();
        self.total_pairs -= 2 * state.rules.len() as u64;
        Ok(ApplyReport {
            home,
            neighborhood: 0,
            remined_pairs: 0,
            removed_pairs: removed,
        })
    }

    /// Re-embed dirty homes only. Homes with no rules are cleared instead
    /// of embedded (an empty graph has nothing to embed).
    pub fn refresh(&mut self, embedder: &dyn GraphModel) -> RefreshReport {
        let mut report = RefreshReport::default();
        let mut populated = 0u64;
        for state in self.homes.values_mut() {
            if !state.rules.is_empty() {
                populated += 1;
            }
            if !state.dirty {
                report.skipped += 1;
                continue;
            }
            match &state.graph {
                Some(g) => {
                    let prepared = PreparedGraph::from_graph(g);
                    state.embedding = Some(ContrastiveTrainer::embed(embedder, &prepared));
                    report.reembedded += 1;
                }
                None => {
                    state.embedding = None;
                    report.skipped += 1;
                }
            }
            state.dirty = false;
        }
        self.stats.reembedded += report.reembedded as u64;
        self.stats.full_reembed += populated;
        report
    }

    /// The live path: apply the delta, forward it to the detector's
    /// deployed rule set, and assess the home's fresh graph — one home's
    /// worth of work per event, end to end.
    pub fn ingest<C: GraphModel, E: GraphModel>(
        &mut self,
        delta: &RuleDelta,
        detector: &mut GlintDetector<C, E>,
        feature_fn: &dyn Fn(&Rule) -> Vec<f32>,
    ) -> Result<IngestOutcome, DeltaError> {
        let report = self.apply(delta, feature_fn)?;
        detector.apply_delta(delta);
        let graph = self
            .homes
            .get(&delta.home)
            .and_then(|s| s.graph.clone())
            .unwrap_or_else(|| InteractionGraph::new(Vec::new()));
        let detection = detector.assess(graph);
        Ok(IngestOutcome { report, detection })
    }

    /// Persist one home's current graph into its shard. A home with no
    /// rules persists an empty dataset (the shard stays addressable).
    pub fn persist_home(&self, store: &mut ShardedStore, home: u64) -> Result<(), DeltaError> {
        let Some(state) = self.homes.get(&home) else {
            return Err(DeltaError::UnknownHome { home });
        };
        let mut ds = GraphDataset::new();
        if let Some(g) = &state.graph {
            ds.push(g.clone());
        }
        store.save_shard(home, &ds)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glint_rules::scenarios::table1_rules;
    use glint_rules::Platform;

    fn feat(r: &Rule) -> Vec<f32> {
        vec![r.id.0 as f32, r.actions.len() as f32]
    }

    fn add(home: u64, rule: Rule) -> RuleDelta {
        RuleDelta {
            home,
            change: RuleChange::Add(rule),
        }
    }

    fn remove(home: u64, id: u32) -> RuleDelta {
        RuleDelta {
            home,
            change: RuleChange::Remove(RuleId(id)),
        }
    }

    #[test]
    fn token_overlap_is_necessary_for_correlation() {
        // structural guarantee behind neighborhood-scoped mining: any
        // non-empty mined record implies a shared vocabulary token
        let rules = table1_rules();
        let miner = OracleMiner;
        for a in &rules {
            for b in &rules {
                if a.id == b.id {
                    continue;
                }
                let pc = miner.mine(a, b);
                if pc.is_empty() {
                    continue;
                }
                let at = action_tokens(a);
                let bt = trigger_tokens(b);
                let shared_at = !at.is_disjoint(&bt);
                let shared_dev = action_tokens(b)
                    .intersection(&at)
                    .any(|t| matches!(t, Token::Dev(_)));
                assert!(
                    shared_at || shared_dev,
                    "mined pair {}→{} without a shared token",
                    a.id.0,
                    b.id.0
                );
            }
        }
    }

    #[test]
    fn incremental_add_matches_batch_mine() {
        let rules = table1_rules();
        let mut pipe = IncrementalPipeline::new();
        for r in &rules {
            pipe.apply(&add(1, r.clone()), &feat).unwrap();
        }
        let state = pipe.home(1).unwrap();
        let batch = mine_all(&OracleMiner, state.rules());
        assert_eq!(state.correlations(), &batch);
        // the incremental graph equals the canonical batch graph
        let expected = home_graph(state.rules(), &batch, &feat).unwrap();
        assert_eq!(state.graph().unwrap(), &expected);
    }

    #[test]
    fn home_graph_matches_full_graph_builder() {
        // the canonical constructor reproduces the batch builder edge for
        // edge (order included) over the paper's Table 1 fixture
        let rules = table1_rules();
        let corr = mine_all(&OracleMiner, &rules);
        let ours = home_graph(&rules, &corr, &feat).unwrap();
        let reference = glint_graph::builder::full_graph(&rules, &feat);
        assert_eq!(ours.nodes(), reference.nodes());
        assert_eq!(ours.edges(), reference.edges());
    }

    #[test]
    fn remove_reverses_add() {
        let rules = table1_rules();
        let mut pipe = IncrementalPipeline::new();
        for r in &rules {
            pipe.apply(&add(1, r.clone()), &feat).unwrap();
        }
        let last = rules.last().unwrap();
        let report = pipe.apply(&remove(1, last.id.0), &feat).unwrap();
        assert!(report.removed_pairs > 0 || report.neighborhood == 0);
        let state = pipe.home(1).unwrap();
        let batch = mine_all(&OracleMiner, state.rules());
        assert_eq!(state.correlations(), &batch);
    }

    #[test]
    fn deltas_scope_to_their_home() {
        let rules = table1_rules();
        let mut pipe = IncrementalPipeline::new();
        pipe.apply(&add(1, rules[0].clone()), &feat).unwrap();
        pipe.apply(&add(2, rules[1].clone()), &feat).unwrap();
        let types: Vec<(Platform, usize)> = Platform::all().iter().map(|&p| (p, 2)).collect();
        let embedder = glint_gnn::models::Itgnn::new(
            &types,
            glint_gnn::models::ItgnnConfig {
                hidden: 4,
                embed: 4,
                n_scales: 1,
                ..Default::default()
            },
        );
        pipe.refresh(&embedder);
        assert_eq!(pipe.dirty_homes(), Vec::<u64>::new());
        // a delta on home 2 must not dirty home 1
        pipe.apply(&add(2, rules[2].clone()), &feat).unwrap();
        assert_eq!(pipe.dirty_homes(), vec![2]);
        let report = pipe.refresh(&embedder);
        assert_eq!(report.reembedded, 1);
    }

    #[test]
    fn bad_deltas_are_typed_and_leave_state_unchanged() {
        let rules = table1_rules();
        let mut pipe = IncrementalPipeline::new();
        pipe.apply(&add(1, rules[0].clone()), &feat).unwrap();
        let stats_before = pipe.stats().clone();
        assert!(matches!(
            pipe.apply(&add(1, rules[0].clone()), &feat),
            Err(DeltaError::DuplicateRule { home: 1, .. })
        ));
        assert!(matches!(
            pipe.apply(&remove(1, 999), &feat),
            Err(DeltaError::UnknownRule { home: 1, id: 999 })
        ));
        assert!(matches!(
            pipe.apply(&remove(77, 1), &feat),
            Err(DeltaError::UnknownHome { home: 77 })
        ));
        assert_eq!(pipe.stats(), &stats_before);
        assert_eq!(pipe.home(1).unwrap().rules().len(), 1);
    }

    #[test]
    fn stats_ratchet_remined_below_full() {
        let rules = table1_rules();
        let mut pipe = IncrementalPipeline::new();
        // spread the fixture over several homes so the full-corpus cost
        // dwarfs any one neighborhood
        for (i, r) in rules.iter().enumerate() {
            pipe.apply(&add((i % 4) as u64, r.clone()), &feat).unwrap();
        }
        let stats = pipe.stats();
        assert!(stats.full_mine_pairs > 0);
        assert!(
            stats.remined_pairs < stats.full_mine_pairs,
            "incremental mining must beat batch: {stats:?}"
        );
    }

    #[test]
    fn empty_home_round_trip() {
        let rules = table1_rules();
        let mut pipe = IncrementalPipeline::new();
        pipe.apply(&add(5, rules[0].clone()), &feat).unwrap();
        pipe.apply(&remove(5, rules[0].id.0), &feat).unwrap();
        let state = pipe.home(5).unwrap();
        assert!(state.rules().is_empty());
        assert!(state.graph().is_none());
        assert!(state.correlations().is_empty());
        // and the indexes fully drain
        assert!(state.act_index.is_empty());
        assert!(state.trig_index.is_empty());
    }

    #[test]
    fn oracle_miner_weights_follow_via() {
        let rules = table1_rules();
        let corr = mine_all(&OracleMiner, &rules);
        for (&(a, b), pc) in &corr {
            if let Some(w) = pc.action_trigger {
                let ra = rules.iter().find(|r| r.id.0 == a).unwrap();
                let rb = rules.iter().find(|r| r.id.0 == b).unwrap();
                let expected = match action_triggers(ra, rb).unwrap() {
                    Via::Device(_) => WEIGHT_DEVICE,
                    Via::Channel(_) => WEIGHT_CHANNEL,
                };
                assert_eq!(w.to_bits(), expected.to_bits());
            }
        }
    }

    #[test]
    fn persist_home_writes_a_loadable_shard() {
        let dir = std::env::temp_dir().join("glint_incremental_persist");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = ShardedStore::create(&dir).unwrap();
        let rules = table1_rules();
        let mut pipe = IncrementalPipeline::new();
        pipe.apply(&add(9, rules[0].clone()), &feat).unwrap();
        pipe.apply(&add(9, rules[8].clone()), &feat).unwrap();
        pipe.persist_home(&mut store, 9).unwrap();
        let ds = store.load_shard(9).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.graphs()[0], *pipe.home(9).unwrap().graph().unwrap());
        assert!(matches!(
            pipe.persist_home(&mut store, 1234),
            Err(DeltaError::UnknownHome { home: 1234 })
        ));
    }
}
