//! User-intervention feedback (Figure 2, steps ⑦–⑧): store special graph
//! cases (false alarms the user dismissed, confirmed threats, drift cases
//! the analyst labeled) and fine-tune the detector on them.

use glint_gnn::batch::PreparedGraph;
use glint_gnn::models::GraphModel;
use glint_gnn::trainer::{ClassifierTrainer, TrainConfig};
use glint_graph::{GraphLabel, InteractionGraph};
use serde::{Deserialize, Serialize};

/// One user/analyst verdict on a flagged graph.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FeedbackCase {
    pub graph: InteractionGraph,
    /// The user's verdict (overrides whatever the model said).
    pub verdict: GraphLabel,
    /// Free-form analyst note ("vacuum motion is expected at 9 pm").
    pub note: String,
}

/// The special-graph-case store (Figure 2 step ⑦).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FeedbackStore {
    cases: Vec<FeedbackCase>,
}

impl FeedbackStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a dismissed false alarm.
    pub fn dismiss(&mut self, graph: InteractionGraph, note: impl Into<String>) {
        self.cases.push(FeedbackCase {
            graph,
            verdict: GraphLabel::Normal,
            note: note.into(),
        });
    }

    /// Record a confirmed threat (e.g. an analyst-triaged drift case).
    pub fn confirm(&mut self, graph: InteractionGraph, note: impl Into<String>) {
        self.cases.push(FeedbackCase {
            graph,
            verdict: GraphLabel::Threat,
            note: note.into(),
        });
    }

    pub fn len(&self) -> usize {
        self.cases.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    pub fn cases(&self) -> &[FeedbackCase] {
        &self.cases
    }

    /// Fine-tune a classifier on the stored cases (Figure 2 step ⑧).
    /// The feedback set is replayed `repeats` times per epoch so a handful
    /// of corrections actually move the model.
    pub fn fine_tune(&self, model: &mut dyn GraphModel, config: TrainConfig, repeats: usize) {
        if self.cases.is_empty() {
            return;
        }
        let mut graphs = Vec::new();
        for _ in 0..repeats.max(1) {
            for c in &self.cases {
                let mut g = c.graph.clone();
                g.label = Some(c.verdict);
                graphs.push(PreparedGraph::from_graph(&g));
            }
        }
        ClassifierTrainer::new(config).train(model, &graphs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glint_gnn::models::{GcnModel, ModelConfig};
    use glint_graph::graph::{EdgeKind, Node};
    use glint_rules::{Platform, RuleId};

    fn graph(bias: f32) -> InteractionGraph {
        let nodes: Vec<Node> = (0..3)
            .map(|i| Node {
                rule_id: RuleId(i),
                platform: Platform::Ifttt,
                features: vec![bias; 4],
            })
            .collect();
        let mut g = InteractionGraph::new(nodes);
        g.add_edge(0, 1, EdgeKind::ActionTrigger);
        g.add_edge(1, 2, EdgeKind::ActionTrigger);
        g
    }

    #[test]
    fn fine_tuning_moves_the_verdict() {
        let mut model = GcnModel::new(
            4,
            ModelConfig {
                hidden: 8,
                embed: 8,
                seed: 3,
            },
        );
        let g = graph(0.5);
        let before = ClassifierTrainer::predict_proba(&model, &PreparedGraph::from_graph(&g));
        let mut store = FeedbackStore::new();
        store.confirm(g.clone(), "verified by analyst");
        store.fine_tune(
            &mut model,
            TrainConfig {
                epochs: 20,
                lr: 1e-2,
                ..Default::default()
            },
            4,
        );
        let after = ClassifierTrainer::predict_proba(&model, &PreparedGraph::from_graph(&g));
        assert!(
            after > before,
            "confirming a threat must raise its probability: {before} → {after}"
        );
        assert!(
            after > 0.5,
            "fine-tuned model should now flag the case: {after}"
        );
    }

    #[test]
    fn dismissals_suppress_false_alarms() {
        let mut model = GcnModel::new(
            4,
            ModelConfig {
                hidden: 8,
                embed: 8,
                seed: 4,
            },
        );
        let g = graph(-0.25);
        let mut store = FeedbackStore::new();
        store.dismiss(g.clone(), "vacuum motion expected");
        store.fine_tune(
            &mut model,
            TrainConfig {
                epochs: 20,
                lr: 1e-2,
                ..Default::default()
            },
            4,
        );
        let p = ClassifierTrainer::predict_proba(&model, &PreparedGraph::from_graph(&g));
        assert!(p < 0.5, "dismissed case still flagged: {p}");
    }

    #[test]
    fn empty_store_is_a_noop() {
        let mut model = GcnModel::new(
            4,
            ModelConfig {
                hidden: 8,
                embed: 8,
                seed: 5,
            },
        );
        let g = graph(0.1);
        let before = ClassifierTrainer::predict_proba(&model, &PreparedGraph::from_graph(&g));
        FeedbackStore::new().fine_tune(&mut model, TrainConfig::default(), 2);
        let after = ClassifierTrainer::predict_proba(&model, &PreparedGraph::from_graph(&g));
        assert_eq!(before, after);
    }

    #[test]
    fn store_serializes() {
        let mut store = FeedbackStore::new();
        store.dismiss(graph(0.0), "note");
        let json = serde_json::to_string(&store).unwrap();
        let back: FeedbackStore = serde_json::from_str(&json).unwrap();
        assert_eq!(store.cases(), back.cases());
    }
}
