//! Salient-node attribution for threat warnings (the Figure 3a red nodes).
//!
//! The paper points to PGExplainer/SubgraphX-style tools; this reproduction
//! uses deletion-based attribution, which needs no extra model: a node's
//! importance is how much the threat probability drops when the node is
//! removed from the graph.

use glint_gnn::batch::PreparedGraph;
use glint_gnn::models::GraphModel;
use glint_gnn::trainer::ClassifierTrainer;
use glint_graph::graph::EdgeKind;
use glint_graph::InteractionGraph;

/// Per-node importance scores for the threat prediction, descending.
pub fn node_importance(model: &dyn GraphModel, g: &InteractionGraph) -> Vec<(usize, f64)> {
    let base = ClassifierTrainer::predict_proba(model, &PreparedGraph::from_graph(g)) as f64;
    let mut scores: Vec<(usize, f64)> = (0..g.n_nodes())
        .map(|drop| {
            if g.n_nodes() <= 1 {
                return (drop, 0.0);
            }
            let reduced = remove_node(g, drop);
            let p = ClassifierTrainer::predict_proba(model, &PreparedGraph::from_graph(&reduced))
                as f64;
            (drop, base - p)
        })
        .collect();
    rank_desc(&mut scores);
    scores
}

/// Sort `(node, importance)` pairs by descending importance under the IEEE
/// total order — deterministic even when a degenerate model yields NaN
/// importances (NaN ranks first, so broken attributions are visible rather
/// than panicking).
fn rank_desc(scores: &mut [(usize, f64)]) {
    scores.sort_by(|a, b| b.1.total_cmp(&a.1));
}

/// The top-k most influential nodes (the warning's "potential causes").
pub fn top_causes(model: &dyn GraphModel, g: &InteractionGraph, k: usize) -> Vec<usize> {
    node_importance(model, g)
        .into_iter()
        .take(k)
        .map(|(i, _)| i)
        .collect()
}

fn remove_node(g: &InteractionGraph, drop: usize) -> InteractionGraph {
    let keep: Vec<usize> = (0..g.n_nodes()).filter(|&i| i != drop).collect();
    let remap = |i: usize| keep.iter().position(|&k| k == i);
    let nodes = keep.iter().map(|&i| g.node(i).clone()).collect();
    let mut out = InteractionGraph::new(nodes);
    for &(u, v, kind) in g.edges() {
        if let (Some(nu), Some(nv)) = (remap(u), remap(v)) {
            out.add_edge(nu, nv, kind);
        }
    }
    if let Some(l) = g.label {
        out.label = Some(l);
    }
    let _ = EdgeKind::ActionTrigger;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use glint_graph::graph::{GraphLabel, Node};
    use glint_rules::{Platform, RuleId};

    fn graph(n: usize) -> InteractionGraph {
        let nodes: Vec<Node> = (0..n)
            .map(|i| Node {
                rule_id: RuleId(i as u32),
                platform: Platform::Ifttt,
                features: vec![i as f32 * 0.1 + 0.1; 4],
            })
            .collect();
        let mut g = InteractionGraph::new(nodes);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, EdgeKind::ActionTrigger);
        }
        g.with_label(GraphLabel::Threat)
    }

    #[test]
    fn remove_node_rewires_edges() {
        let g = graph(4);
        let r = remove_node(&g, 1);
        assert_eq!(r.n_nodes(), 3);
        // edges 0→1 and 1→2 vanish; 2→3 becomes 1→2 in the new indexing
        assert_eq!(r.n_edges(), 1);
        assert_eq!(r.edges()[0].0, 1);
        assert_eq!(r.edges()[0].1, 2);
    }

    #[test]
    fn importance_is_a_permutation_of_nodes() {
        use glint_gnn::models::{GcnModel, ModelConfig};
        let g = graph(5);
        let model = GcnModel::new(
            4,
            ModelConfig {
                hidden: 8,
                embed: 8,
                seed: 1,
            },
        );
        let imp = node_importance(&model, &g);
        let mut idx: Vec<usize> = imp.iter().map(|(i, _)| *i).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
        let top = top_causes(&model, &g, 2);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn single_node_graph_scores_zero() {
        use glint_gnn::models::{GcnModel, ModelConfig};
        let g = graph(1);
        let model = GcnModel::new(
            4,
            ModelConfig {
                hidden: 8,
                embed: 8,
                seed: 2,
            },
        );
        let imp = node_importance(&model, &g);
        assert_eq!(imp, vec![(0, 0.0)]);
    }

    #[test]
    fn rank_desc_is_total_on_nan_importances() {
        let mut scores = vec![(0, 0.5), (1, f64::NAN), (2, 0.9), (3, f64::NEG_INFINITY)];
        rank_desc(&mut scores);
        // NaN outranks +inf under total_cmp, so a broken attribution surfaces
        // at the top of the cause list instead of panicking the sort.
        assert_eq!(
            scores.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![1, 2, 0, 3]
        );
    }
}
