//! Rule-correlation discovery (Algorithm 1 + §4.1).
//!
//! Features for an (action, trigger) phrase pair:
//! - **V1** — DTW similarity of the verb sequences and of the noun sequences
//!   (dynamic time warping over word embeddings, since phrase lengths vary);
//! - **V2** — binary semantic relations between the verb sets (synonymy,
//!   hypernymy);
//! - **V3** — binary semantic relations between the noun sets (synonymy,
//!   hypernymy, meronymy/holonymy);
//! - **V4** — the summed averaged word embeddings of the two phrases.
//!
//! Ground-truth pair labels come from the physical oracle in
//! `glint_rules::correlation`; the classifiers below must recover that
//! function from text alone — the paper's Figure 6 experiment.

use glint_ml::{forest::RandomForest, knn::Knn, mlp::MlpClassifier, Classifier};
use glint_nlp::parse::PhraseElements;
use glint_nlp::{affinity, dtw, parse_rule, wordnet, EmbeddingSpace};
use glint_rules::correlation::action_triggers;
use glint_rules::{render::render_rule, Rule};
use glint_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Dimension of the embedding part of the pair features (V4). The full
/// 300-d sum is projected by averaging into coarse buckets to keep classical
/// models tractable at corpus scale.
pub const V4_BUCKETS: usize = 60;

/// Compute Algorithm 1's feature vector for an (action, trigger) pair of
/// parsed phrases.
/// Number of scalar (non-bucket) features.
pub const N_SCALAR_FEATURES: usize = 21;

pub fn pair_features_from_phrases(action: &PhraseElements, trigger: &PhraseElements) -> Vec<f32> {
    let space = EmbeddingSpace::word_space();
    let mut v = Vec::with_capacity(N_SCALAR_FEATURES + 2 * V4_BUCKETS);
    // V1: DTW similarities (verbs, nouns, states)
    v.push(dtw::word_sequence_similarity(
        &space,
        &action.verbs,
        &trigger.verbs,
    ));
    v.push(dtw::word_sequence_similarity(
        &space,
        &action.nouns,
        &trigger.nouns,
    ));
    v.push(dtw::word_sequence_similarity(
        &space,
        &action.states,
        &trigger.states,
    ));
    // V2: verb relations (synonym, hypernym, antonym)
    v.push(any_pair(&action.verbs, &trigger.verbs, wordnet::are_synonyms) as u8 as f32);
    v.push(any_pair(&action.verbs, &trigger.verbs, wordnet::hypernym_related) as u8 as f32);
    v.push(any_pair(&action.verbs, &trigger.verbs, wordnet::are_antonyms) as u8 as f32);
    // V3: noun relations (synonym, hypernym, meronym/holonym)
    v.push(any_pair(&action.nouns, &trigger.nouns, wordnet::are_synonyms) as u8 as f32);
    v.push(any_pair(&action.nouns, &trigger.nouns, wordnet::hypernym_related) as u8 as f32);
    v.push(any_pair(&action.nouns, &trigger.nouns, wordnet::meronym_related) as u8 as f32);
    // state alignment: synonym vs antonym ("open" action vs "opens" trigger)
    let a_state_words: Vec<String> = action
        .states
        .iter()
        .chain(action.verbs.iter())
        .cloned()
        .collect();
    let t_state_words: Vec<String> = trigger
        .states
        .iter()
        .chain(trigger.verbs.iter())
        .cloned()
        .collect();
    v.push(any_pair(&a_state_words, &t_state_words, wordnet::are_synonyms) as u8 as f32);
    v.push(any_pair(&a_state_words, &t_state_words, wordnet::are_antonyms) as u8 as f32);
    // noun-concept Jaccard overlap
    v.push(concept_jaccard(&action.nouns, &trigger.nouns));
    // location overlap (same-room evidence)
    let a_locs = location_words(action);
    let t_locs = location_words(trigger);
    v.push(if a_locs.is_empty() || t_locs.is_empty() {
        0.5 // unscoped rules couple with anything
    } else {
        concept_jaccard(&a_locs, &t_locs)
    });
    // global embedding cosine
    let e_a = phrase_embedding(&space, action);
    let e_t = phrase_embedding(&space, trigger);
    v.push(glint_nlp::embed::cosine(&e_a, &e_t));
    // channel-affinity features: does any action device word push a channel
    // the trigger watches, and in a compatible direction?
    let polarity = affinity::action_polarity(&a_state_words);
    let direction = affinity::trigger_direction(&t_state_words);
    // a device-state trigger is also a trigger on the channel that device
    // senses ("the door is open" watches Contact), so fold sensed channels in
    let mut trigger_channels: Vec<String> = trigger
        .nouns
        .iter()
        .filter_map(|n| affinity::channel_concept(n))
        .collect();
    for n in &trigger.nouns {
        trigger_channels.extend(affinity::sensed_channels(n).into_iter().map(str::to_string));
    }
    let mut chan_match = 0.0f32;
    let mut signed_match = 0.0f32;
    for n in &action.nouns {
        for (c, sign) in affinity::signed_channels(n) {
            if trigger_channels.iter().any(|tc| tc == c) {
                chan_match = 1.0;
                let effective = sign as i32 * if polarity < 0 { -1 } else { 1 };
                if direction == 0 || sign == 0 || effective == direction as i32 {
                    signed_match = 1.0;
                }
            }
        }
    }
    v.push(chan_match);
    v.push(signed_match);
    v.push(polarity as f32);
    v.push(direction as f32);
    // state-polarity agreement between the action and a device-state trigger
    let t_polarity = affinity::action_polarity(&t_state_words);
    v.push(if polarity != 0 && t_polarity != 0 {
        (polarity == t_polarity) as u8 as f32
    } else {
        0.5
    });
    // direct device watch: the action drives the very device concept the
    // trigger observes, and (separately) with an agreeing state polarity —
    // the textual analogue of the oracle's Via::Device path
    let lex = glint_nlp::Lexicon::global();
    let device_concepts = |nouns: &[String]| -> Vec<String> {
        nouns
            .iter()
            .filter(|n| lex.category(n) == glint_nlp::Category::Device)
            .map(|n| lex.concept_of(n))
            .collect()
    };
    let a_devs = device_concepts(&action.nouns);
    let t_devs = device_concepts(&trigger.nouns);
    let device_watch = a_devs.iter().any(|d| t_devs.contains(d));
    v.push(device_watch as u8 as f32);
    v.push(if device_watch && polarity != 0 && t_polarity != 0 {
        (polarity == t_polarity) as u8 as f32
    } else {
        0.5
    });
    debug_assert_eq!(v.len(), N_SCALAR_FEATURES);
    // V4: summed averaged embeddings + element-wise alignment, bucket-averaged
    let dim = e_a.len();
    let bucket = dim.div_ceil(V4_BUCKETS);
    for b in 0..V4_BUCKETS {
        let lo = b * bucket;
        let hi = ((b + 1) * bucket).min(dim);
        if lo >= hi {
            v.push(0.0);
            continue;
        }
        let sum: f32 = (lo..hi).map(|i| e_a[i] + e_t[i]).sum();
        v.push(sum / (hi - lo) as f32);
    }
    for b in 0..V4_BUCKETS {
        let lo = b * bucket;
        let hi = ((b + 1) * bucket).min(dim);
        if lo >= hi {
            v.push(0.0);
            continue;
        }
        let prod: f32 = (lo..hi).map(|i| e_a[i] * e_t[i]).sum();
        v.push(prod * 10.0 / (hi - lo) as f32);
    }
    v
}

fn concept_jaccard(a: &[String], b: &[String]) -> f32 {
    use std::collections::BTreeSet;
    let lex = glint_nlp::Lexicon::global();
    let ca: BTreeSet<String> = a.iter().map(|w| lex.concept_of(w)).collect();
    let cb: BTreeSet<String> = b.iter().map(|w| lex.concept_of(w)).collect();
    if ca.is_empty() && cb.is_empty() {
        return 0.0;
    }
    let inter = ca.intersection(&cb).count() as f32;
    let union = ca.union(&cb).count() as f32;
    inter / union.max(1.0)
}

fn location_words(p: &PhraseElements) -> Vec<String> {
    let lex = glint_nlp::Lexicon::global();
    p.nouns
        .iter()
        .filter(|n| lex.category(n) == glint_nlp::Category::Location)
        .cloned()
        .collect()
}

fn phrase_embedding(space: &EmbeddingSpace, p: &PhraseElements) -> Vec<f32> {
    let mut words: Vec<&str> = Vec::new();
    words.extend(p.verbs.iter().map(String::as_str));
    words.extend(p.nouns.iter().map(String::as_str));
    words.extend(p.states.iter().map(String::as_str));
    if words.is_empty() {
        return vec![0.0; space.dim()];
    }
    let mut acc = vec![0.0f32; space.dim()];
    for w in &words {
        for (a, b) in acc.iter_mut().zip(space.word_vec(w)) {
            *a += b;
        }
    }
    let inv = 1.0 / words.len() as f32;
    acc.iter_mut().for_each(|x| *x *= inv);
    acc
}

fn any_pair(a: &[String], b: &[String], rel: impl Fn(&str, &str) -> bool) -> bool {
    a.iter().any(|x| b.iter().any(|y| rel(x, y)))
}

/// Features for a pair of *rules* from their rendered text: rule A's action
/// phrase against rule B's trigger phrase.
pub fn pair_features(a: &Rule, b: &Rule) -> Vec<f32> {
    let pa = parse_rule(&render_rule(a));
    let pb = parse_rule(&render_rule(b));
    // voice rules have no trigger clause; their whole sentence is the action
    let trigger_of_b = if pb.trigger.is_empty() {
        pb.action.clone()
    } else {
        pb.trigger
    };
    pair_features_from_phrases(&pa.action, &trigger_of_b)
}

/// A labeled action→trigger pair dataset (the §4.1 protocol: positives have
/// a real correlation, negatives do not).
pub struct PairDataset {
    pub x: Matrix,
    pub y: Vec<usize>,
    /// (rule index a, rule index b) per row.
    pub pairs: Vec<(usize, usize)>,
}

impl PairDataset {
    /// Sample `n_pos` correlated and `n_neg` uncorrelated pairs from the
    /// corpus and extract their features from rendered text.
    pub fn build(rules: &[Rule], n_pos: usize, n_neg: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // index positives
        let mut positives = Vec::new();
        for (i, a) in rules.iter().enumerate() {
            for (j, b) in rules.iter().enumerate() {
                if i != j && action_triggers(a, b).is_some() {
                    positives.push((i, j));
                }
            }
        }
        positives.shuffle(&mut rng);
        positives.truncate(n_pos);
        // Negatives are stratified: about half must be *hard* — pairs whose
        // device/channel surfaces overlap but which the oracle rejects (wrong
        // direction, state, or room). Uniform sampling yields almost only
        // easy, unrelated pairs, and a classifier trained on those over-fires
        // on near-miss pairs at deployment time.
        let want_hard = n_neg / 3;
        let mut hard = Vec::new();
        let mut easy = Vec::new();
        let mut guard = 0;
        while (hard.len() < want_hard || easy.len() < n_neg - want_hard) && guard < n_neg * 80 {
            guard += 1;
            let i = rng.gen_range(0..rules.len());
            let j = rng.gen_range(0..rules.len());
            if i == j || action_triggers(&rules[i], &rules[j]).is_some() {
                continue;
            }
            if glint_rules::correlation::shares_surface(&rules[i], &rules[j]) {
                hard.push((i, j));
            } else {
                easy.push((i, j));
            }
        }
        hard.truncate(want_hard);
        easy.truncate(n_neg - hard.len());
        let mut negatives = hard;
        negatives.append(&mut easy);
        let mut pairs: Vec<((usize, usize), usize)> = positives
            .into_iter()
            .map(|p| (p, 1usize))
            .chain(negatives.into_iter().map(|p| (p, 0usize)))
            .collect();
        pairs.shuffle(&mut rng);
        let rows: Vec<Vec<f32>> = pairs
            .iter()
            .map(|((i, j), _)| pair_features(&rules[*i], &rules[*j]))
            .collect();
        Self {
            x: Matrix::from_rows(&rows),
            y: pairs.iter().map(|(_, l)| *l).collect(),
            pairs: pairs.into_iter().map(|(p, _)| p).collect(),
        }
    }
}

/// The deployed correlation-discovery ensemble: MLP + Random Forest + kNN
/// majority vote (the paper picks these three by precision/recall/F1 and
/// falls back to manual review on disagreement — here, to the forest).
pub struct CorrelationDiscoverer {
    mlp: MlpClassifier,
    forest: RandomForest,
    knn: Knn,
    /// Per-column (mean, std) fitted on the training features. The binary
    /// scalar features and the small-magnitude embedding buckets live on very
    /// different scales; without standardization the distance-based kNN (and
    /// to a lesser degree the MLP) is dominated by whichever block happens to
    /// have the larger raw variance.
    scaler: Vec<(f32, f32)>,
    fitted: bool,
}

impl CorrelationDiscoverer {
    pub fn new(seed: u64) -> Self {
        Self {
            mlp: MlpClassifier::new(vec![64])
                .with_epochs(120)
                .with_seed(seed),
            forest: RandomForest::new(40).with_seed(seed),
            knn: Knn::new(5),
            scaler: Vec::new(),
            fitted: false,
        }
    }

    fn standardize(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for i in 0..out.rows() {
            for (j, &(mean, std)) in self.scaler.iter().enumerate() {
                let v = out.get(i, j);
                out.set(i, j, (v - mean) / std);
            }
        }
        out
    }

    /// The z-scored scalar block (V1–V3 + affinity features) — the view the
    /// distance-based kNN votes on. Euclidean distance over the full vector
    /// is dominated by the 120 embedding buckets, which individually carry
    /// far less signal than the scalar similarities.
    fn knn_view(&self, z: &Matrix) -> Matrix {
        let rows: Vec<Vec<f32>> = (0..z.rows())
            .map(|i| z.row(i)[..N_SCALAR_FEATURES].to_vec())
            .collect();
        Matrix::from_rows(&rows)
    }

    pub fn fit(&mut self, data: &PairDataset) {
        let (n, d) = (data.x.rows(), data.x.cols());
        self.scaler = (0..d)
            .map(|j| {
                let mean = (0..n).map(|i| data.x.get(i, j)).sum::<f32>() / n.max(1) as f32;
                let var = (0..n)
                    .map(|i| (data.x.get(i, j) - mean).powi(2))
                    .sum::<f32>()
                    / n.max(1) as f32;
                (mean, var.sqrt().max(1e-6))
            })
            .collect();
        let z = self.standardize(&data.x);
        self.mlp.fit(&z, &data.y);
        // trees are scale-invariant; give the forest the raw features
        self.forest.fit(&data.x, &data.y);
        self.knn.fit(&self.knn_view(&z), &data.y);
        self.fitted = true;
    }

    /// Ensemble vote per row: two-of-three majority across MLP, forest, and
    /// kNN. (The paper routes disagreements to manual review; with binary
    /// labels and three voters a majority always exists, so the vote is the
    /// automated analogue.)
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        assert!(self.fitted, "fit before predict");
        let z = self.standardize(x);
        let a = self.mlp.predict(&z);
        let b = self.forest.predict(x);
        let c = self.knn.predict(&self.knn_view(&z));
        (0..x.rows())
            .map(|i| usize::from(a[i] + b[i] + c[i] >= 2))
            .collect()
    }

    /// Predict whether rule `a`'s action invokes rule `b`'s trigger.
    pub fn predict_pair(&self, a: &Rule, b: &Rule) -> bool {
        let x = Matrix::from_rows(&[pair_features(a, b)]);
        self.predict(&x)[0] == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glint_ml::metrics::BinaryMetrics;
    use glint_rules::scenarios::table1_rules;
    use glint_rules::{CorpusConfig, CorpusGenerator};

    #[test]
    fn feature_vector_dimension_is_stable() {
        let rules = table1_rules();
        let f = pair_features(&rules[0], &rules[8]);
        assert_eq!(f.len(), N_SCALAR_FEATURES + 2 * V4_BUCKETS);
        // deterministic
        assert_eq!(f, pair_features(&rules[0], &rules[8]));
    }

    #[test]
    fn correlated_pair_scores_higher_dtw_than_uncorrelated() {
        let rules = table1_rules();
        // rule 1 (turn off lights) → rule 9 (trigger: lights off) correlated
        let f_pos = pair_features(&rules[0], &rules[8]);
        // rule 9 (lock door) → rule 7 (trigger: motion) uncorrelated
        let f_neg = pair_features(&rules[8], &rules[6]);
        // noun DTW similarity (feature 1) must be higher for the real pair
        assert!(f_pos[1] > f_neg[1], "pos={} neg={}", f_pos[1], f_neg[1]);
    }

    #[test]
    fn pair_dataset_builds_balanced_samples() {
        let cfg = CorpusConfig {
            scale: 0.0003,
            per_platform_cap: 120,
            seed: 9,
        };
        let rules = CorpusGenerator::generate_corpus(&cfg);
        let ds = PairDataset::build(&rules, 60, 80, 1);
        let pos = ds.y.iter().filter(|&&l| l == 1).count();
        let neg = ds.y.len() - pos;
        assert!(pos >= 40, "positives {pos}");
        assert_eq!(neg, 80);
        assert_eq!(ds.x.rows(), ds.y.len());
    }

    #[test]
    fn discoverer_learns_correlations_from_text() {
        let cfg = CorpusConfig {
            scale: 0.001,
            per_platform_cap: 350,
            seed: 10,
        };
        let rules = CorpusGenerator::generate_corpus(&cfg);
        let train = PairDataset::build(&rules, 300, 420, 2);
        let test = PairDataset::build(&rules, 60, 90, 3);
        let mut disc = CorrelationDiscoverer::new(0);
        disc.fit(&train);
        let pred = disc.predict(&test.x);
        let m = BinaryMetrics::from_predictions(&test.y, &pred);
        assert!(m.accuracy > 0.82, "correlation discovery too weak: {m}");
    }
}
