//! Offline dataset construction (§3.2.2 / §4.2): render rules, embed their
//! text, chain correlated rules into interaction graphs, and label each
//! graph with the policy oracle.

use crate::oracle;
use glint_graph::builder::GraphBuilder;
use glint_graph::{GraphDataset, GraphLabel, InteractionGraph};
use glint_nlp::EmbeddingSpace;
use glint_rules::{render::render_rule, Platform, Rule};
use std::collections::BTreeMap;

/// Node features for a rule: the averaged word embedding of its rendered
/// description — 512-d sentence embeddings for voice platforms, 300-d word
/// embeddings otherwise (§4.2).
pub fn node_features(rule: &Rule) -> Vec<f32> {
    let text = render_rule(rule);
    let tokens = glint_nlp::tokenize(&text);
    if rule.platform.is_voice() {
        EmbeddingSpace::sentence_space().rule_embedding(&tokens)
    } else {
        EmbeddingSpace::word_space().rule_embedding(&tokens)
    }
}

/// A labeled + unlabeled dataset pair for one platform mix.
#[derive(Clone, Debug, Default)]
pub struct DatasetBundle {
    pub labeled: GraphDataset,
    pub unlabeled: GraphDataset,
}

impl DatasetBundle {
    /// Fraction of labeled graphs that are vulnerable.
    pub fn unsafe_fraction(&self) -> f64 {
        let stats = self.labeled.class_stats();
        if stats.total() == 0 {
            0.0
        } else {
            stats.threat as f64 / stats.total() as f64
        }
    }
}

/// Offline builder: owns the corpus and the correlation index.
pub struct OfflineBuilder {
    rules: Vec<Rule>,
    seed: u64,
    /// Rule-id → embedded features, computed once (text embedding is the
    /// hot path when sampling thousands of graphs).
    feature_cache: parking_lot::Mutex<BTreeMap<u32, Vec<f32>>>,
}

impl OfflineBuilder {
    pub fn new(rules: Vec<Rule>, seed: u64) -> Self {
        Self {
            rules,
            seed,
            feature_cache: parking_lot::Mutex::new(BTreeMap::new()),
        }
    }

    fn cached_features(&self, rule: &Rule) -> Vec<f32> {
        // One guard for the whole check-compute-insert sequence: the old
        // lock-check-unlock / lock-insert-unlock pair acquired the mutex
        // twice per miss (flagged by glint-lint's lock-order pass) and let
        // two threads race to embed the same rule.
        let mut cache = self.feature_cache.lock();
        if let Some(f) = cache.get(&rule.id.0) {
            return f.clone();
        }
        let f = node_features(rule);
        cache.insert(rule.id.0, f.clone());
        f
    }

    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Label an interaction graph with the oracle (by looking up its rules).
    pub fn label_graph(&self, g: &InteractionGraph) -> GraphLabel {
        let by_id: BTreeMap<u32, &Rule> = self.rules.iter().map(|r| (r.id.0, r)).collect();
        let members: Vec<&Rule> = g
            .nodes()
            .iter()
            .filter_map(|n| by_id.get(&n.rule_id.0).copied())
            .collect();
        if oracle::is_vulnerable(&members) {
            GraphLabel::Threat
        } else {
            GraphLabel::Normal
        }
    }

    /// Build `n_graphs` interaction graphs over rules of the given platforms
    /// (node count 2–`max_nodes`), labeled by the oracle when `label` is set.
    pub fn build_dataset(
        &self,
        platforms: &[Platform],
        n_graphs: usize,
        max_nodes: usize,
        label: bool,
    ) -> GraphDataset {
        let pool: Vec<Rule> = self
            .rules
            .iter()
            .filter(|r| platforms.contains(&r.platform))
            .cloned()
            .collect();
        assert!(!pool.is_empty(), "no rules for {platforms:?}");
        let mut builder = GraphBuilder::new(&pool, self.seed);
        let mut ds = GraphDataset::new();
        let feature_fn = |r: &Rule| self.cached_features(r);
        for _ in 0..n_graphs {
            let mut g = builder.sample_graph(2, max_nodes.max(2), &feature_fn);
            if label {
                g.label = Some(self.label_graph(&g));
            }
            ds.push(g);
        }
        ds
    }

    /// The paper's three dataset families (Table 3), scaled by `scale`:
    /// labeled IFTTT (6,000), labeled SmartThings (165), labeled
    /// heterogeneous over IFTTT+SmartThings+Alexa (12,758), plus unlabeled
    /// pools (10,000 IFTTT / 19,440 five-platform).
    pub fn table3_bundles(&self, scale: f64) -> Table3 {
        let n = |full: usize| ((full as f64 * scale).round() as usize).max(24);
        let max_nodes = 12; // paper: 2–50; scaled for CPU budgets
        Table3 {
            ifttt: DatasetBundle {
                labeled: self.build_dataset(&[Platform::Ifttt], n(6000), max_nodes, true),
                unlabeled: self.build_dataset(&[Platform::Ifttt], n(10_000), max_nodes, false),
            },
            smartthings: DatasetBundle {
                labeled: self.build_dataset(&[Platform::SmartThings], n(165), max_nodes, true),
                unlabeled: GraphDataset::new(),
            },
            hetero: DatasetBundle {
                labeled: self.build_dataset(
                    &[Platform::Ifttt, Platform::SmartThings, Platform::Alexa],
                    n(12_758),
                    max_nodes,
                    true,
                ),
                unlabeled: self.build_dataset(
                    &[
                        Platform::Ifttt,
                        Platform::SmartThings,
                        Platform::Alexa,
                        Platform::GoogleAssistant,
                        Platform::HomeAssistant,
                    ],
                    n(19_440),
                    max_nodes,
                    false,
                ),
            },
        }
    }
}

/// The three Table 3 dataset families.
pub struct Table3 {
    pub ifttt: DatasetBundle,
    pub smartthings: DatasetBundle,
    pub hetero: DatasetBundle,
}

#[cfg(test)]
mod tests {
    use super::*;
    use glint_rules::{CorpusConfig, CorpusGenerator};

    fn small_corpus() -> Vec<Rule> {
        let cfg = CorpusConfig {
            scale: 0.0005,
            per_platform_cap: 160,
            seed: 21,
        };
        CorpusGenerator::generate_corpus(&cfg)
    }

    #[test]
    fn node_features_dims_by_platform() {
        let rules = glint_rules::scenarios::table1_rules();
        for r in &rules {
            let f = node_features(r);
            if r.platform.is_voice() {
                assert_eq!(f.len(), 512);
            } else {
                assert_eq!(f.len(), 300);
            }
        }
    }

    #[test]
    fn datasets_have_both_classes() {
        let builder = OfflineBuilder::new(small_corpus(), 1);
        let ds = builder.build_dataset(&[Platform::Ifttt], 60, 8, true);
        let stats = ds.class_stats();
        assert_eq!(stats.total(), 60);
        assert!(stats.threat > 0, "no vulnerable graphs sampled");
        assert!(stats.normal > 0, "no normal graphs sampled");
    }

    #[test]
    fn hetero_dataset_mixes_platforms_and_dims() {
        let builder = OfflineBuilder::new(small_corpus(), 2);
        let ds = builder.build_dataset(
            &[Platform::Ifttt, Platform::Alexa, Platform::SmartThings],
            40,
            8,
            true,
        );
        let hetero_graphs = ds.iter().filter(|g| g.is_heterogeneous()).count();
        assert!(hetero_graphs > 0, "no heterogeneous graphs in the mix");
    }

    #[test]
    fn unlabeled_pools_are_unlabeled() {
        let builder = OfflineBuilder::new(small_corpus(), 3);
        let ds = builder.build_dataset(&[Platform::Ifttt], 20, 6, false);
        assert!(ds.iter().all(|g| g.label.is_none()));
    }

    #[test]
    fn feature_cache_is_single_guard_and_consistent_under_races() {
        // Regression for the double-lock in `cached_features`: the old
        // check/unlock/insert pattern let two threads race to embed the
        // same rule (and tripped glint-lint's lock-order pass). With one
        // guard, concurrent callers must agree and never deadlock.
        let rules = glint_rules::scenarios::table1_rules();
        let builder = OfflineBuilder::new(rules.clone(), 7);
        let expected: Vec<Vec<f32>> = rules.iter().map(node_features).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let b = &builder;
                let rules = &rules;
                let expected = &expected;
                s.spawn(move || {
                    for (r, want) in rules.iter().zip(expected) {
                        assert_eq!(&b.cached_features(r), want);
                    }
                });
            }
        });
    }

    #[test]
    fn label_matches_direct_oracle_call() {
        let builder = OfflineBuilder::new(glint_rules::scenarios::table1_rules(), 4);
        let ds = builder.build_dataset(Platform::all(), 10, 9, true);
        // Table 1 rules contain known threats; at least one sampled graph
        // must be vulnerable
        assert!(ds.class_stats().threat > 0);
    }
}
