//! Drifting-interaction-pattern detection (Algorithm 3).
//!
//! In the ITGNN-C contrastive latent space: per class, compute the centroid
//! and the median absolute deviation (MAD) of distances to it; a test sample
//! whose normalized deviation exceeds `T_MAD` for *every* class is drifting.

use glint_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// The empirical threshold from the paper (Leys et al.).
pub const T_MAD: f64 = 3.0;

/// Per-class statistics of the latent space.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct ClassStats {
    centroid: Vec<f32>,
    median_dist: f64,
    mad: f64,
}

/// Fitted drift detector (Algorithm 3).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DriftDetector {
    classes: Vec<ClassStats>,
    pub threshold: f64,
}

fn dist(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt()
}

fn median(sorted: &mut [f64]) -> f64 {
    // total_cmp: NaNs sort to the end instead of panicking; callers filter
    // them out, but a panic inside a detector is never the right failure mode
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

impl DriftDetector {
    /// Fit on training embeddings (`n × d`) with binary labels.
    pub fn fit(embeddings: &Matrix, labels: &[usize]) -> Self {
        assert_eq!(embeddings.rows(), labels.len());
        let n_classes = labels.iter().copied().max().map_or(1, |m| m + 1);
        let mut classes = Vec::with_capacity(n_classes);
        for c in 0..n_classes {
            // a non-finite embedding (a NaN that leaked out of training)
            // must not poison the centroid or the distance statistics
            let rows: Vec<usize> = (0..labels.len())
                .filter(|&i| labels[i] == c && embeddings.row(i).iter().all(|v| v.is_finite()))
                .collect();
            assert!(!rows.is_empty(), "class {c} has no finite training samples");
            // centroid (Algorithm 3 line 3's mean of latent representations)
            let mut centroid = vec![0.0f32; embeddings.cols()];
            for &i in &rows {
                for (acc, &v) in centroid.iter_mut().zip(embeddings.row(i)) {
                    *acc += v;
                }
            }
            let inv = 1.0 / rows.len() as f32;
            centroid.iter_mut().for_each(|v| *v *= inv);
            // distances, median, MAD (lines 5–9)
            let mut dists: Vec<f64> = rows
                .iter()
                .map(|&i| dist(embeddings.row(i), &centroid))
                .collect();
            let med = median(&mut dists);
            let mut devs: Vec<f64> = dists.iter().map(|d| (d - med).abs()).collect();
            let mad = median(&mut devs).max(1e-9);
            classes.push(ClassStats {
                centroid,
                median_dist: med,
                mad,
            });
        }
        Self {
            classes,
            threshold: T_MAD,
        }
    }

    /// Drifting degree of one embedding: `min_i (d_i − median_i)⁺ / MAD_i`
    /// (lines 10–15). One-sided: only *outward* deviation counts — a sample
    /// closer to a centroid than the typical training point is squarely
    /// in-distribution, and the symmetric |·| of the paper's Algorithm 3
    /// would mislabel it.
    pub fn drift_degree(&self, embedding: &[f32]) -> f64 {
        self.classes
            .iter()
            .map(|c| {
                let d = dist(embedding, &c.centroid);
                if !d.is_finite() {
                    // NaN/Inf embeddings are maximally out-of-distribution;
                    // without this, NaN.max(0.0) silently evaluates to 0.0
                    // and the sample would pass as perfectly in-distribution
                    return f64::INFINITY;
                }
                (d - c.median_dist).max(0.0) / c.mad
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Is the sample drifting (degree beyond the threshold for every class)?
    pub fn is_drifting(&self, embedding: &[f32]) -> bool {
        self.drift_degree(embedding) > self.threshold
    }

    /// Batch query: indices and degrees of drifting samples. Rows are
    /// scored concurrently; the result order follows the input rows, not
    /// thread completion order.
    pub fn detect(&self, embeddings: &Matrix) -> Vec<(usize, f64)> {
        let degrees = glint_tensor::par::ordered_map(embeddings.rows(), |i| {
            self.drift_degree(embeddings.row(i))
        });
        degrees
            .into_iter()
            .enumerate()
            .filter(|&(_, deg)| deg > self.threshold)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two tight clusters at (0,0) and (10,0); drifters far away.
    fn fixture() -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..60 {
            rows.push(vec![
                rng.gen_range(-0.5f32..0.5),
                rng.gen_range(-0.5f32..0.5),
            ]);
            labels.push(0);
        }
        for _ in 0..60 {
            rows.push(vec![
                10.0 + rng.gen_range(-0.5f32..0.5),
                rng.gen_range(-0.5f32..0.5),
            ]);
            labels.push(1);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn in_distribution_samples_pass() {
        let (x, y) = fixture();
        let det = DriftDetector::fit(&x, &y);
        assert!(!det.is_drifting(&[0.1, 0.1]));
        assert!(!det.is_drifting(&[9.9, -0.2]));
    }

    #[test]
    fn far_samples_drift() {
        let (x, y) = fixture();
        let det = DriftDetector::fit(&x, &y);
        assert!(
            det.is_drifting(&[5.0, 30.0]),
            "degree {}",
            det.drift_degree(&[5.0, 30.0])
        );
        assert!(det.is_drifting(&[-50.0, 0.0]));
    }

    #[test]
    fn degree_monotone_in_distance() {
        let (x, y) = fixture();
        let det = DriftDetector::fit(&x, &y);
        let d1 = det.drift_degree(&[0.0, 5.0]);
        let d2 = det.drift_degree(&[0.0, 15.0]);
        assert!(d2 > d1);
    }

    #[test]
    fn batch_detection_counts() {
        let (x, y) = fixture();
        let det = DriftDetector::fit(&x, &y);
        let mut all = x.clone();
        // append two drifters
        all = all.concat_rows(&Matrix::from_rows(&[vec![5.0, 40.0], vec![-40.0, 5.0]]));
        let hits = det.detect(&all);
        let drifted: Vec<usize> = hits.iter().map(|(i, _)| *i).collect();
        assert!(drifted.contains(&120) && drifted.contains(&121));
        // the vast majority of the training distribution passes
        assert!(hits.len() <= 8, "too many false drifts: {}", hits.len());
    }

    #[test]
    fn nan_training_row_does_not_poison_fit() {
        let (x, y) = fixture();
        let clean = DriftDetector::fit(&x, &y);
        // append a NaN embedding labeled class 0: fit must neither panic
        // (median once sorted with partial_cmp().unwrap()) nor shift stats
        let mut polluted = x.concat_rows(&Matrix::from_rows(&[vec![f32::NAN, 0.0]]));
        let mut y2 = y.clone();
        y2.push(0);
        let det = DriftDetector::fit(&polluted, &y2);
        for p in [[0.1f32, 0.1], [9.9, -0.2], [5.0, 30.0]] {
            assert_eq!(clean.drift_degree(&p), det.drift_degree(&p));
        }
        polluted.set(x.rows(), 0, f32::INFINITY);
        let det_inf = DriftDetector::fit(&polluted, &y2);
        assert_eq!(
            clean.drift_degree(&[0.1, 0.1]),
            det_inf.drift_degree(&[0.1, 0.1])
        );
    }

    #[test]
    fn non_finite_queries_always_drift() {
        let (x, y) = fixture();
        let det = DriftDetector::fit(&x, &y);
        assert!(det.is_drifting(&[f32::NAN, 0.0]));
        assert!(det.is_drifting(&[0.0, f32::INFINITY]));
        assert_eq!(det.drift_degree(&[f32::NAN, f32::NAN]), f64::INFINITY);
        // batch path flags them too
        let all = x.concat_rows(&Matrix::from_rows(&[vec![f32::NAN, 0.0]]));
        let hits = det.detect(&all);
        assert!(hits
            .iter()
            .any(|&(i, d)| i == x.rows() && d == f64::INFINITY));
    }

    #[test]
    fn degenerate_identical_class_handled() {
        // all class-0 points identical → MAD 0 → guarded by epsilon
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![5.0], vec![6.0]]);
        let y = vec![0, 0, 0, 1, 1];
        let det = DriftDetector::fit(&x, &y);
        assert!(det.drift_degree(&[1.0]).is_finite());
        assert!(det.is_drifting(&[100.0]));
    }
}
