//! Model persistence: save/load trained parameter sets (the cloud-provided
//! "public GNN model" of §3.1 needs to ship to home hubs somehow).
//!
//! Parameters travel inside the durable envelope (checksummed, versioned,
//! atomic temp-file + rename), so a crash mid-save leaves the previous model
//! readable and a torn or bit-flipped file is rejected with a typed error.
//! [`load_params`] is strict — every tensor must restore, or the whole load
//! fails with a matched-vs-expected report. [`load_params_partial`] keeps
//! the lenient by-name/shape matching that cross-platform transfer learning
//! (§3.3.4) relies on.

use crate::error::GlintError;
use glint_failpoint::durable::{self, DurableError};
use glint_gnn::models::GraphModel;
use glint_tensor::ParamSet;
use std::path::Path;

/// Envelope kind tag for persisted parameter sets.
pub const PARAMS_KIND: &str = "glint-params";
/// Current parameter-file format version.
pub const PARAMS_VERSION: u32 = 1;
/// Fail-point site hit by [`save_params`].
pub const SITE_PERSIST_SAVE: &str = "persist.save";

/// Save a model's parameters durably (atomic write, CRC-checked envelope).
pub fn save_params(model: &dyn GraphModel, path: impl AsRef<Path>) -> Result<(), GlintError> {
    let json = serde_json::to_string(model.params())
        .map_err(|e| GlintError::Decode(format!("serialize: {e}")))?;
    durable::write_durable(
        SITE_PERSIST_SAVE,
        path,
        PARAMS_KIND,
        PARAMS_VERSION,
        json.as_bytes(),
    )?;
    Ok(())
}

/// Read a parameter set off disk, verifying the envelope when present and
/// falling back to the legacy bare-JSON format otherwise.
fn read_param_set(path: impl AsRef<Path>) -> Result<ParamSet, GlintError> {
    let bytes = std::fs::read(path.as_ref()).map_err(DurableError::Io)?;
    let text = match durable::parse_envelope(&bytes, PARAMS_KIND, PARAMS_VERSION) {
        Ok((_version, payload)) => String::from_utf8(payload)
            .map_err(|_| GlintError::Decode("payload is not UTF-8".into()))?,
        Err(DurableError::NotAnEnvelope(_)) => String::from_utf8(bytes)
            .map_err(|_| GlintError::Decode("file is neither envelope nor UTF-8 JSON".into()))?,
        Err(e) => return Err(e.into()),
    };
    serde_json::from_str(&text).map_err(|e| GlintError::Decode(format!("parse: {e}")))
}

/// Load parameters into a freshly-constructed model of the same
/// architecture. Strict: every tensor of the model must restore by name and
/// shape, with no extras in the file — any discrepancy fails the whole load
/// with a matched-vs-expected report ([`GlintError::Params`]). Silent
/// partial restores were a deployment hazard; for deliberate partial reuse
/// see [`load_params_partial`].
pub fn load_params(model: &mut dyn GraphModel, path: impl AsRef<Path>) -> Result<(), GlintError> {
    let loaded = read_param_set(path)?;
    model.params_mut().copy_exact_from(&loaded)?;
    Ok(())
}

/// Lenient load for transfer learning: restore whatever matches by name and
/// shape, skip the rest, and report how many tensors were restored out of
/// how many the model expects. Errors only when *nothing* matches (almost
/// certainly the wrong file).
pub fn load_params_partial(
    model: &mut dyn GraphModel,
    path: impl AsRef<Path>,
) -> Result<(usize, usize), GlintError> {
    let loaded = read_param_set(path)?;
    let expected = model.params().len();
    let matched = model.params_mut().copy_matching_from(&loaded);
    if matched == 0 {
        return Err(GlintError::Decode(
            "no parameters matched — wrong architecture?".into(),
        ));
    }
    Ok((matched, expected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use glint_gnn::batch::PreparedGraph;
    use glint_gnn::models::{GcnModel, GinModel, ModelConfig};
    use glint_gnn::trainer::ClassifierTrainer;
    use glint_graph::graph::{EdgeKind, Node};
    use glint_graph::InteractionGraph;
    use glint_rules::{Platform, RuleId};

    fn graph() -> PreparedGraph {
        let nodes: Vec<Node> = (0..4)
            .map(|i| Node {
                rule_id: RuleId(i),
                platform: Platform::Ifttt,
                features: vec![0.3 * i as f32, 0.5, -0.2, 0.9],
            })
            .collect();
        let mut g = InteractionGraph::new(nodes);
        g.add_edge(0, 1, EdgeKind::ActionTrigger);
        g.add_edge(1, 2, EdgeKind::ActionTrigger);
        g.add_edge(2, 3, EdgeKind::ActionTrigger);
        PreparedGraph::from_graph(&g)
    }

    fn gcn(seed: u64) -> GcnModel {
        GcnModel::new(
            4,
            ModelConfig {
                hidden: 8,
                embed: 8,
                seed,
            },
        )
    }

    #[test]
    fn save_load_round_trips_predictions() {
        let dir = std::env::temp_dir().join("glint_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");

        let model = gcn(42);
        let g = graph();
        let expected = ClassifierTrainer::predict_proba(&model, &g);
        save_params(&model, &path).unwrap();

        let mut restored = gcn(999);
        load_params(&mut restored, &path).unwrap();
        let actual = ClassifierTrainer::predict_proba(&restored, &g);
        assert!((expected - actual).abs() < 1e-6, "{expected} vs {actual}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn strict_load_rejects_wrong_architecture() {
        let dir = std::env::temp_dir().join("glint_persist_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");
        let model = gcn(1);
        save_params(&model, &path).unwrap();
        // GCN → GCN restores cleanly
        let mut same = gcn(9);
        load_params(&mut same, &path).unwrap();
        // GIN's encoder params are named differently → strict load fails
        // with a matched-vs-expected report instead of restoring a fraction
        let mut other = GinModel::new(
            4,
            ModelConfig {
                hidden: 8,
                embed: 8,
                seed: 1,
            },
        );
        let err = load_params(&mut other, &path).unwrap_err();
        match err {
            GlintError::Params(m) => {
                assert!(m.matched < m.expected, "{m}");
                assert!(!m.mismatches.is_empty());
            }
            other => panic!("expected Params error, got {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partial_load_transfers_what_matches() {
        let dir = std::env::temp_dir().join("glint_persist_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");
        let model = gcn(1);
        save_params(&model, &path).unwrap();
        let mut other = GinModel::new(
            4,
            ModelConfig {
                hidden: 8,
                embed: 8,
                seed: 1,
            },
        );
        // GIN shares the fuse/head tensor names with GCN; the encoder does
        // not — partial load reports the split instead of pretending success
        match load_params_partial(&mut other, &path) {
            Ok((matched, expected)) => assert!(matched < expected, "{matched}/{expected}"),
            Err(GlintError::Decode(_)) => {} // zero overlap is also acceptable
            Err(e) => panic!("unexpected error {e}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_and_truncated_params_are_typed_errors() {
        let dir = std::env::temp_dir().join("glint_persist_test4");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");
        let model = gcn(3);
        save_params(&model, &path).unwrap();
        let good = std::fs::read(&path).unwrap();

        let torn = dir.join("torn.bin");
        std::fs::write(&torn, &good[..good.len() / 3]).unwrap();
        let mut m = gcn(5);
        assert!(matches!(
            load_params(&mut m, &torn),
            Err(GlintError::Envelope(DurableError::Truncated { .. }))
        ));

        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        let corrupt = dir.join("corrupt.bin");
        std::fs::write(&corrupt, &flipped).unwrap();
        assert!(matches!(
            load_params(&mut m, &corrupt),
            Err(GlintError::Envelope(DurableError::ChecksumMismatch))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_save_failure_preserves_previous_model() {
        let dir = std::env::temp_dir().join("glint_persist_test5");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");
        let model = gcn(7);
        save_params(&model, &path).unwrap();
        let g = graph();
        let expected = ClassifierTrainer::predict_proba(&model, &g);

        let _guard = glint_failpoint::ScopedFail::new(
            SITE_PERSIST_SAVE,
            glint_failpoint::Action::ShortWrite(20),
            1,
        );
        assert!(save_params(&gcn(8), &path).is_err());
        let mut restored = gcn(11);
        load_params(&mut restored, &path).unwrap();
        let actual = ClassifierTrainer::predict_proba(&restored, &g);
        assert!((expected - actual).abs() < 1e-6);
        std::fs::remove_file(&path).ok();
    }
}
