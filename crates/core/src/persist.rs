//! Model persistence: save/load trained parameter sets (the cloud-provided
//! "public GNN model" of §3.1 needs to ship to home hubs somehow).

use glint_gnn::models::GraphModel;
use glint_tensor::ParamSet;
use std::fs::File;
use std::io::{self, BufReader, BufWriter};
use std::path::Path;

/// Save a model's parameters as JSON.
pub fn save_params(model: &dyn GraphModel, path: impl AsRef<Path>) -> io::Result<()> {
    let file = File::create(path)?;
    serde_json::to_writer(BufWriter::new(file), model.params()).map_err(io::Error::other)
}

/// Load parameters into a freshly-constructed model of the same
/// architecture. Returns how many tensors were restored (by name+shape).
pub fn load_params(model: &mut dyn GraphModel, path: impl AsRef<Path>) -> io::Result<usize> {
    let file = File::open(path)?;
    let loaded: ParamSet =
        serde_json::from_reader(BufReader::new(file)).map_err(io::Error::other)?;
    let n = model.params_mut().copy_matching_from(&loaded);
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "no parameters matched — wrong architecture?",
        ));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glint_gnn::batch::PreparedGraph;
    use glint_gnn::models::{GcnModel, GinModel, ModelConfig};
    use glint_gnn::trainer::ClassifierTrainer;
    use glint_graph::graph::{EdgeKind, Node};
    use glint_graph::InteractionGraph;
    use glint_rules::{Platform, RuleId};

    fn graph() -> PreparedGraph {
        let nodes: Vec<Node> = (0..4)
            .map(|i| Node {
                rule_id: RuleId(i),
                platform: Platform::Ifttt,
                features: vec![0.3 * i as f32, 0.5, -0.2, 0.9],
            })
            .collect();
        let mut g = InteractionGraph::new(nodes);
        g.add_edge(0, 1, EdgeKind::ActionTrigger);
        g.add_edge(1, 2, EdgeKind::ActionTrigger);
        g.add_edge(2, 3, EdgeKind::ActionTrigger);
        PreparedGraph::from_graph(&g)
    }

    #[test]
    fn save_load_round_trips_predictions() {
        let dir = std::env::temp_dir().join("glint_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");

        let model = GcnModel::new(
            4,
            ModelConfig {
                hidden: 8,
                embed: 8,
                seed: 42,
            },
        );
        let g = graph();
        let expected = ClassifierTrainer::predict_proba(&model, &g);
        save_params(&model, &path).unwrap();

        let mut restored = GcnModel::new(
            4,
            ModelConfig {
                hidden: 8,
                embed: 8,
                seed: 999,
            },
        );
        let n = load_params(&mut restored, &path).unwrap();
        assert!(n > 0);
        let actual = ClassifierTrainer::predict_proba(&restored, &g);
        assert!((expected - actual).abs() < 1e-6, "{expected} vs {actual}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_architecture_matches_fewer_tensors() {
        let dir = std::env::temp_dir().join("glint_persist_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let model = GcnModel::new(
            4,
            ModelConfig {
                hidden: 8,
                embed: 8,
                seed: 1,
            },
        );
        save_params(&model, &path).unwrap();
        // GCN → GCN restores the whole set
        let mut same = GcnModel::new(
            4,
            ModelConfig {
                hidden: 8,
                embed: 8,
                seed: 9,
            },
        );
        let full = load_params(&mut same, &path).unwrap();
        assert_eq!(full, model.params().len());
        // GIN's encoder params are named differently → only the shared
        // fuse/head tensors (with matching shapes) restore
        let mut other = GinModel::new(
            4,
            ModelConfig {
                hidden: 8,
                embed: 8,
                seed: 1,
            },
        );
        // zero matches (Err) is also acceptable
        if let Ok(n) = load_params(&mut other, &path) {
            assert!(n < full, "architecture mismatch matched everything: {n}");
        }
        std::fs::remove_file(&path).ok();
    }
}
