//! Cross-domain graph transfer learning (§3.3.4 / Table 6).
//!
//! Protocol: train on the source domain; copy name-matching parameters into
//! a target-domain model; freeze the transferred early layers (they carry
//! the generic interaction features); fine-tune the rest on the target
//! domain; compare against training from scratch.

use glint_gnn::batch::PreparedGraph;
use glint_gnn::models::GraphModel;
use glint_gnn::trainer::{ClassifierTrainer, TrainConfig};
use glint_ml::metrics::BinaryMetrics;

/// Outcome of one Table 6 row.
#[derive(Clone, Copy, Debug)]
pub struct TransferOutcome {
    /// Target-domain accuracy trained from scratch.
    pub no_transfer: BinaryMetrics,
    /// Target-domain accuracy with transferred + frozen early layers.
    pub with_transfer: BinaryMetrics,
    /// How many parameters were transferred by name.
    pub transferred_params: usize,
}

impl TransferOutcome {
    pub fn improvement(&self) -> f64 {
        self.with_transfer.accuracy - self.no_transfer.accuracy
    }
}

/// Run the full protocol.
///
/// * `scratch` — a fresh target-architecture model (evaluated as baseline);
/// * `transferred` — an identical fresh model that receives the source
///   parameters;
/// * `source_model` — trained on the source domain already;
/// * `freeze_prefixes` — parameter-name prefixes to freeze after transfer
///   (e.g. `["enc."]` to freeze the whole encoder, the paper's choice when
///   the target set is tiny; `["enc.l0"]` to freeze only the earliest layer
///   when the target set is large).
#[allow(clippy::too_many_arguments)]
pub fn run_transfer(
    scratch: &mut dyn GraphModel,
    transferred: &mut dyn GraphModel,
    source_model: &dyn GraphModel,
    freeze_prefixes: &[&str],
    target_train: &[PreparedGraph],
    target_test: &[PreparedGraph],
    scratch_config: TrainConfig,
    finetune_config: TrainConfig,
) -> TransferOutcome {
    // baseline: from scratch on the target domain
    let trainer = ClassifierTrainer::new(scratch_config);
    trainer.train(scratch, target_train);
    let no_transfer = ClassifierTrainer::evaluate(scratch, target_test);

    // transfer: copy matching parameters, freeze the early stack, fine-tune
    let transferred_params = transferred
        .params_mut()
        .copy_matching_from(source_model.params());
    for prefix in freeze_prefixes {
        transferred.params_mut().freeze_prefix(prefix);
    }
    let finetuner = ClassifierTrainer::new(finetune_config);
    finetuner.train(transferred, target_train);
    transferred.params_mut().unfreeze_all();
    let with_transfer = ClassifierTrainer::evaluate(transferred, target_test);

    TransferOutcome {
        no_transfer,
        with_transfer,
        transferred_params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glint_gnn::models::{GcnModel, ModelConfig};
    use glint_graph::graph::{EdgeKind, GraphLabel, Node};
    use glint_graph::InteractionGraph;
    use glint_rules::{Platform, RuleId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthetic domain: threat = cycle present; features carry a weak
    /// class-dependent shift so transfer has signal to move.
    fn domain(n: usize, seed: u64, dim: usize) -> Vec<PreparedGraph> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let threat = i % 2 == 1;
                let size = 4 + (i % 3);
                let nodes: Vec<Node> = (0..size)
                    .map(|k| Node {
                        rule_id: RuleId(k as u32),
                        platform: Platform::Ifttt,
                        features: (0..dim)
                            .map(|_| rng.gen_range(-0.5f32..0.5) + if threat { 0.3 } else { -0.3 })
                            .collect(),
                    })
                    .collect();
                let mut g = InteractionGraph::new(nodes);
                for k in 0..size - 1 {
                    g.add_edge(k, k + 1, EdgeKind::ActionTrigger);
                }
                if threat {
                    g.add_edge(size - 1, 0, EdgeKind::ActionTrigger);
                }
                PreparedGraph::from_graph(&g.with_label(if threat {
                    GraphLabel::Threat
                } else {
                    GraphLabel::Normal
                }))
            })
            .collect()
    }

    #[test]
    fn transfer_moves_parameters_and_reports() {
        let source = domain(30, 1, 6);
        let target_train = domain(8, 2, 6);
        let target_test = domain(12, 3, 6);

        let cfg = ModelConfig {
            hidden: 16,
            embed: 16,
            seed: 5,
        };
        let mut source_model = GcnModel::new(6, cfg);
        ClassifierTrainer::new(TrainConfig {
            epochs: 20,
            ..Default::default()
        })
        .train(&mut source_model, &source);

        let mut scratch = GcnModel::new(
            6,
            ModelConfig {
                hidden: 16,
                embed: 16,
                seed: 6,
            },
        );
        let mut transferred = GcnModel::new(
            6,
            ModelConfig {
                hidden: 16,
                embed: 16,
                seed: 7,
            },
        );
        let outcome = run_transfer(
            &mut scratch,
            &mut transferred,
            &source_model,
            &["enc."],
            &target_train,
            &target_test,
            TrainConfig {
                epochs: 6,
                ..Default::default()
            },
            TrainConfig {
                epochs: 6,
                ..Default::default()
            },
        );
        assert!(outcome.transferred_params > 0);
        assert!(
            outcome.with_transfer.accuracy >= 0.5,
            "{:?}",
            outcome.with_transfer
        );
        // after run_transfer the model is unfrozen again
        assert_eq!(transferred.params().frozen_count(), 0);
    }

    #[test]
    fn transfer_helps_on_tiny_target_sets() {
        // with only 6 target graphs, the transferred encoder should not hurt
        let source = domain(40, 11, 6);
        let target_train = domain(6, 12, 6);
        let target_test = domain(20, 13, 6);
        let mut source_model = GcnModel::new(
            6,
            ModelConfig {
                hidden: 16,
                embed: 16,
                seed: 8,
            },
        );
        ClassifierTrainer::new(TrainConfig {
            epochs: 25,
            ..Default::default()
        })
        .train(&mut source_model, &source);
        let mut scratch = GcnModel::new(
            6,
            ModelConfig {
                hidden: 16,
                embed: 16,
                seed: 9,
            },
        );
        let mut transferred = GcnModel::new(
            6,
            ModelConfig {
                hidden: 16,
                embed: 16,
                seed: 9,
            },
        );
        let outcome = run_transfer(
            &mut scratch,
            &mut transferred,
            &source_model,
            &["enc."],
            &target_train,
            &target_test,
            TrainConfig {
                epochs: 5,
                ..Default::default()
            },
            TrainConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        assert!(
            outcome.improvement() > -0.15,
            "transfer badly hurt: {:?} vs {:?}",
            outcome.with_transfer,
            outcome.no_transfer
        );
    }
}
