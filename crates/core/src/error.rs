//! The typed error surfaced at glint-core's public API boundary. Nothing in
//! the serving or persistence paths panics past this crate: failures either
//! become a [`GlintError`] or a quarantined
//! [`Detection`](crate::detector::Detection).

use glint_failpoint::durable::DurableError;
use glint_tensor::ParamMismatch;
use std::fmt;

/// Every failure the core pipeline can surface.
#[derive(Debug)]
pub enum GlintError {
    /// Durable-file failure: IO, truncation, checksum, kind, or version.
    Envelope(DurableError),
    /// Bytes verified but do not decode to the expected structure.
    Decode(String),
    /// Strict parameter restore found name/shape mismatches.
    Params(ParamMismatch),
    /// An input graph failed structural validation.
    InvalidGraph(String),
    /// Filesystem or injected-fault IO error.
    Io(std::io::Error),
    /// An internal computation panicked and was contained.
    Panicked(String),
}

impl fmt::Display for GlintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlintError::Envelope(e) => write!(f, "envelope error: {e}"),
            GlintError::Decode(why) => write!(f, "decode error: {why}"),
            GlintError::Params(e) => write!(f, "parameter restore error: {e}"),
            GlintError::InvalidGraph(why) => write!(f, "invalid graph: {why}"),
            GlintError::Io(e) => write!(f, "io error: {e}"),
            GlintError::Panicked(why) => write!(f, "contained panic: {why}"),
        }
    }
}

impl std::error::Error for GlintError {}

impl From<DurableError> for GlintError {
    fn from(e: DurableError) -> Self {
        GlintError::Envelope(e)
    }
}

impl From<ParamMismatch> for GlintError {
    fn from(e: ParamMismatch) -> Self {
        GlintError::Params(e)
    }
}

impl From<std::io::Error> for GlintError {
    fn from(e: std::io::Error) -> Self {
        GlintError::Io(e)
    }
}
