//! # glint-core
//!
//! Glint — the paper's system: graph learning for interactive threat
//! detection in heterogeneous smart-home rule data.
//!
//! The offline stage ([`construction`]) discovers action→trigger correlations
//! from rule *text* ([`correlation`], Algorithm 1), chains correlated rules
//! into interaction graphs, and labels them with the literature's six threat
//! policies ([`oracle`]). ITGNN models (from `glint-gnn`) are trained on the
//! result; [`transfer`] moves knowledge across platforms (§3.3.4), and
//! [`drift`] implements Algorithm 3's MAD-based drifting-sample detection in
//! the contrastive latent space. The online stage ([`detector`]) fuses
//! deployed rules with event logs, prunes temporally implausible edges, and
//! raises user-facing [`warning`]s with salient-node explanations
//! ([`explain`]).

pub mod construction;
pub mod correlation;
pub mod detector;
pub mod drift;
pub mod error;
pub mod explain;
pub mod feedback;
pub mod incremental;
pub mod oracle;
pub mod persist;
pub mod transfer;
pub mod warning;

pub use construction::{node_features, DatasetBundle, OfflineBuilder};
pub use correlation::{pair_features, CorrelationDiscoverer, PairDataset};
pub use detector::{DeadlinePressure, Degradation, Detection, GlintDetector};
pub use drift::DriftDetector;
pub use error::GlintError;
pub use feedback::FeedbackStore;
pub use incremental::{
    CorrelationMiner, DeltaError, IncrementalPipeline, OracleMiner, PairCorrelation, RuleChange,
    RuleDelta,
};
pub use oracle::{label_rules, ThreatFinding, ThreatKind};
pub use warning::Warning;
