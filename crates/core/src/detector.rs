//! The online detection pipeline (Figure 2, steps ④–⑧): construct the
//! real-time interaction graph from deployed rules + event logs, screen it
//! with the drift detector, classify it with the threat detector, and raise
//! a warning with explained causes.
//!
//! ## Degradation ladder
//!
//! Serving never panics past this API. Each graph is assessed independently
//! and lands on one rung:
//!
//! 1. **Full verdict** ([`Degradation::None`]) — drift screening + GNN
//!    classification, the normal path.
//! 2. **Drift-only fallback** ([`Degradation::DriftOnly`]) — the classifier
//!    failed (panic, injected fault, non-finite output); the verdict falls
//!    back to the MAD drift score, with a pseudo-probability derived from
//!    the drift degree.
//! 3. **Quarantine** ([`Degradation::Quarantined`]) — the graph failed
//!    structural validation or the embedding itself failed; no verdict is
//!    possible, the `Detection` carries NaN scores and the reason. In
//!    [`GlintDetector::assess_batch`] a quarantined graph degrades only its
//!    own slot — the rest of the batch is unaffected.

use crate::drift::DriftDetector;
use crate::error::GlintError;
use crate::explain;
use crate::warning::Warning;
use glint_gnn::batch::PreparedGraph;
use glint_gnn::models::GraphModel;
use glint_gnn::trainer::{ClassifierTrainer, ContrastiveTrainer};
use glint_graph::builder::OnlineBuilder;
use glint_graph::InteractionGraph;
use glint_rules::event::EventLog;
use glint_rules::Rule;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Fail-point site hit at the top of every per-graph assessment.
pub const SITE_ASSESS: &str = "detector.assess";
/// Fail-point site hit before the classifier runs (forces the drift-only
/// fallback rung).
pub const SITE_CLASSIFY: &str = "detector.classify";

/// How much of the detection pipeline actually ran for this graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Degradation {
    /// Full pipeline: drift screening + GNN classification.
    None,
    /// Classifier failed; the verdict is the drift/MAD score only. Carries
    /// the failure reason.
    DriftOnly(String),
    /// Input rejected or embedding failed; no verdict at all. Carries the
    /// reason.
    Quarantined(String),
}

impl Degradation {
    pub fn is_degraded(&self) -> bool {
        !matches!(self, Degradation::None)
    }
}

/// How much latency budget a caller has left for one assessment. The
/// serving layer translates its per-request deadline into one of these
/// rungs; the detector itself never reads a clock, so verdict content
/// stays a pure function of the graph and the chosen rung.
///
/// Each rung maps onto the degradation ladder above:
/// [`Comfortable`](DeadlinePressure::Comfortable) runs the full pipeline,
/// [`Tight`](DeadlinePressure::Tight) skips the classifier and answers
/// from the drift screen ([`Degradation::DriftOnly`]), and
/// [`Expired`](DeadlinePressure::Expired) returns an explicit
/// [`Degradation::Quarantined`] timeout verdict instead of silence.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DeadlinePressure {
    /// Enough budget for the full GNN verdict.
    Comfortable,
    /// Not enough budget for the classifier; drift screening only.
    Tight,
    /// The deadline already passed; no assessment is attempted.
    Expired,
}

/// Outcome of screening one real-time window.
#[derive(Clone, Debug)]
pub struct Detection {
    /// The real-time interaction graph that was analysed.
    pub graph: InteractionGraph,
    /// Drift screening verdict (step ⑤).
    pub drifting: bool,
    pub drift_degree: f64,
    /// Classifier verdict (threat probability and hard label).
    pub threat_probability: f32,
    pub is_threat: bool,
    /// The warning raised, if any.
    pub warning: Option<Warning>,
    /// Which rung of the degradation ladder produced this verdict.
    pub degradation: Degradation,
}

impl Detection {
    /// A quarantined detection: no verdict, NaN scores, reason attached.
    pub fn quarantined(graph: InteractionGraph, reason: String) -> Self {
        Detection {
            graph,
            drifting: false,
            drift_degree: f64::NAN,
            threat_probability: f32::NAN,
            is_threat: false,
            warning: None,
            degradation: Degradation::Quarantined(reason),
        }
    }
}

/// Everything [`Detection`] carries except the graph itself (the internal
/// assessment result, before the graph is moved into place).
struct Verdict {
    drifting: bool,
    drift_degree: f64,
    threat_probability: f32,
    is_threat: bool,
    warning: Option<Warning>,
    degradation: Degradation,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".into())
}

/// The deployed Glint instance: deployed rules + trained models.
pub struct GlintDetector<C: GraphModel, E: GraphModel> {
    rules: Vec<Rule>,
    classifier: C,
    embedder: E,
    drift: DriftDetector,
    online: OnlineBuilder,
    /// Number of causes listed in warnings.
    pub top_k_causes: usize,
}

impl<C: GraphModel, E: GraphModel> GlintDetector<C, E> {
    pub fn new(mut rules: Vec<Rule>, classifier: C, embedder: E, drift: DriftDetector) -> Self {
        // the deployed set is kept sorted by rule id so delta application
        // stays O(log n) on a live stream of hundreds of thousands of rules
        rules.sort_by_key(|r| r.id.0);
        Self {
            rules,
            classifier,
            embedder,
            drift,
            online: OnlineBuilder::default(),
            top_k_causes: 3,
        }
    }

    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Consume one rule delta from the incremental pipeline: the deployed
    /// rule set is updated in place so warnings and window processing
    /// resolve the new rules — no full rebuild. A duplicate add or unknown
    /// remove is a silent no-op: the pipeline in front of the detector
    /// already surfaced the typed error, and the detector's view must
    /// simply converge to the pipeline's.
    pub fn apply_delta(&mut self, delta: &crate::incremental::RuleDelta) {
        match &delta.change {
            crate::incremental::RuleChange::Add(rule) => {
                if let Err(at) = self.rules.binary_search_by_key(&rule.id.0, |r| r.id.0) {
                    self.rules.insert(at, rule.clone());
                }
            }
            crate::incremental::RuleChange::Remove(id) => {
                if let Ok(at) = self.rules.binary_search_by_key(&id.0, |r| r.id.0) {
                    self.rules.remove(at);
                }
            }
        }
    }

    pub fn classifier(&self) -> &C {
        &self.classifier
    }

    /// Give user feedback to the models (step ⑧: fine-tuning hooks).
    pub fn classifier_mut(&mut self) -> &mut C {
        &mut self.classifier
    }

    /// Screen one time window of the event log.
    pub fn process_window(&self, log: &EventLog, from: f64, to: f64) -> Detection {
        let graph = self.online.build(
            &self.rules,
            log,
            from,
            to,
            &crate::construction::node_features,
        );
        self.assess(graph)
    }

    /// Assess an already-constructed interaction graph. Never panics: a
    /// poisoned graph or an internal failure lands on a lower rung of the
    /// degradation ladder (drift-only fallback or quarantine) instead.
    pub fn assess(&self, graph: InteractionGraph) -> Detection {
        self.assess_mode(graph, false)
    }

    /// Deadline-aware assessment: the caller states how much latency
    /// budget remains and the verdict lands on the matching rung of the
    /// degradation ladder. `Comfortable` is exactly [`Self::assess`];
    /// `Tight` skips the classifier (embed + drift screen only, a
    /// [`Degradation::DriftOnly`] verdict with the drift-derived
    /// pseudo-probability); `Expired` returns an explicit
    /// [`Degradation::Quarantined`] timeout verdict without touching the
    /// models. Never panics, never blocks on anything but the math it was
    /// budgeted for.
    pub fn assess_under_pressure(
        &self,
        graph: InteractionGraph,
        pressure: DeadlinePressure,
    ) -> Detection {
        match pressure {
            DeadlinePressure::Comfortable => self.assess_mode(graph, false),
            DeadlinePressure::Tight => self.assess_mode(graph, true),
            DeadlinePressure::Expired => {
                let detection = Detection::quarantined(
                    graph,
                    "deadline expired before assessment began".to_string(),
                );
                if glint_trace::enabled() {
                    glint_trace::counter("detector.verdict.quarantined", 1);
                }
                detection
            }
        }
    }

    fn assess_mode(&self, graph: InteractionGraph, skip_classifier: bool) -> Detection {
        let _span = glint_trace::span("assess");
        let detection = match self.verdict(&graph, skip_classifier) {
            Ok(v) => Detection {
                graph,
                drifting: v.drifting,
                drift_degree: v.drift_degree,
                threat_probability: v.threat_probability,
                is_threat: v.is_threat,
                warning: v.warning,
                degradation: v.degradation,
            },
            Err(e) => Detection::quarantined(graph, e.to_string()),
        };
        if glint_trace::enabled() {
            let rung = match &detection.degradation {
                Degradation::None => "detector.verdict.full",
                Degradation::DriftOnly(_) => "detector.verdict.drift_only",
                Degradation::Quarantined(_) => "detector.verdict.quarantined",
            };
            glint_trace::counter(rung, 1);
            // Quarantined verdicts carry NaN scores by design — they have no
            // drift degree to report, so they must not pollute the histogram
            // with a `nonfinite` sample (the rung counter above already
            // records the event).
            if !matches!(detection.degradation, Degradation::Quarantined(_)) {
                glint_trace::histogram("detector.drift_degree", detection.drift_degree);
            }
        }
        detection
    }

    /// Like [`assess`](Self::assess), but surfaces quarantine-level
    /// failures as a typed [`GlintError`] instead of a quarantined
    /// `Detection` — for callers that treat a rejected input as an error
    /// rather than a degraded verdict. Drift-only fallback still returns
    /// `Ok` (the verdict exists, just degraded).
    pub fn try_assess(&self, graph: InteractionGraph) -> Result<Detection, GlintError> {
        let v = self.verdict(&graph, false)?;
        Ok(Detection {
            graph,
            drifting: v.drifting,
            drift_degree: v.drift_degree,
            threat_probability: v.threat_probability,
            is_threat: v.is_threat,
            warning: v.warning,
            degradation: v.degradation,
        })
    }

    /// The assessment pipeline. `Err` means quarantine (no verdict
    /// possible); `Ok` verdicts may still be degraded to drift-only.
    /// With `skip_classifier` the pipeline stops after drift screening
    /// (the deadline-pressure rung): the verdict is deliberately
    /// drift-only, not a classifier failure.
    fn verdict(
        &self,
        graph: &InteractionGraph,
        skip_classifier: bool,
    ) -> Result<Verdict, GlintError> {
        if graph.n_nodes() == 0 {
            return Ok(Verdict {
                drifting: false,
                drift_degree: 0.0,
                threat_probability: 0.0,
                is_threat: false,
                warning: None,
                degradation: Degradation::None,
            });
        }
        graph.validate().map_err(GlintError::InvalidGraph)?;
        // step ⑤: drift screening in the contrastive latent space. Batch
        // preparation and the embedder run behind a panic barrier — a graph
        // that slips past validation, or a poisoned embedder, quarantines
        // this one graph instead of killing the monitoring loop.
        let embedded = {
            let _span = glint_trace::span("embed");
            catch_unwind(AssertUnwindSafe(
                || -> Result<(PreparedGraph, Vec<f32>), GlintError> {
                    glint_failpoint::trigger(SITE_ASSESS)?;
                    let prepared = PreparedGraph::from_graph(graph);
                    let embedding = ContrastiveTrainer::embed(&self.embedder, &prepared);
                    Ok((prepared, embedding))
                },
            ))
        };
        let (prepared, embedding) = match embedded {
            Ok(Ok(x)) => x,
            Ok(Err(e)) => return Err(e),
            Err(payload) => return Err(GlintError::Panicked(panic_message(payload))),
        };
        let drift_degree = self.drift.drift_degree(&embedding);
        let drifting = drift_degree > self.drift.threshold;
        // step ⑥: classification, falling back to the drift score when the
        // classifier fails — a degraded verdict beats no verdict. Under
        // deadline pressure the classifier is skipped outright and the
        // same fallback rung answers.
        let classified = if skip_classifier {
            None
        } else {
            let _span = glint_trace::span("classify");
            Some(catch_unwind(AssertUnwindSafe(
                || -> Result<f32, GlintError> {
                    glint_failpoint::trigger(SITE_CLASSIFY)?;
                    Ok(ClassifierTrainer::predict_proba(
                        &self.classifier,
                        &prepared,
                    ))
                },
            )))
        };
        let (threat_probability, is_threat, degradation) = match classified {
            Some(Ok(Ok(p))) if p.is_finite() => (p, p > 0.5, Degradation::None),
            other => {
                let reason = match other {
                    None => "deadline pressure: classifier skipped".to_string(),
                    Some(Ok(Ok(p))) => format!("classifier produced non-finite probability {p}"),
                    Some(Ok(Err(e))) => e.to_string(),
                    Some(Err(payload)) => panic_message(payload),
                };
                // drift-only pseudo-probability: 0.5 exactly at the MAD
                // threshold, approaching 1 as the drift degree grows
                let pseudo = (drift_degree / (drift_degree + self.drift.threshold)) as f32;
                (pseudo, drifting, Degradation::DriftOnly(reason))
            }
        };
        // step ⑦: warning with explained causes. Explanation reuses the
        // classifier, so on the fallback rung (or if explain itself fails)
        // the warning is raised without cause attribution.
        let warning = if is_threat || drifting {
            let causes_idx = if degradation == Degradation::None {
                catch_unwind(AssertUnwindSafe(|| {
                    explain::top_causes(&self.classifier, graph, self.top_k_causes)
                }))
                .unwrap_or_default()
            } else {
                Vec::new()
            };
            let causes: Vec<&Rule> = causes_idx
                .iter()
                .filter_map(|&i| {
                    let id = graph.node(i).rule_id.0;
                    self.rules.iter().find(|r| r.id.0 == id)
                })
                .collect();
            Some(Warning::new(drifting && !is_threat, &causes))
        } else {
            None
        };
        Ok(Verdict {
            drifting,
            drift_degree,
            threat_probability,
            is_threat,
            warning,
            degradation,
        })
    }

    /// Assess a batch of graphs, scoring them concurrently. Results come
    /// back in input order and are identical to mapping [`Self::assess`]
    /// serially — the parallel kernels and the ordered fan-out are both
    /// deterministic. Failures are isolated per graph: a poisoned graph
    /// yields a quarantined `Detection` in its own slot and the rest of the
    /// batch is assessed normally.
    pub fn assess_batch(&self, graphs: &[InteractionGraph]) -> Vec<Detection> {
        glint_tensor::par::ordered_map(graphs.len(), |i| self.assess(graphs[i].clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glint_gnn::models::{Itgnn, ItgnnConfig};
    use glint_gnn::trainer::TrainConfig;
    use glint_graph::GraphLabel;
    use glint_rules::event::{EventKind, EventRecord};
    use glint_rules::scenarios::table1_rules;
    use glint_rules::Platform;
    use glint_tensor::Matrix;

    fn tiny_models() -> (Itgnn, Itgnn, DriftDetector) {
        // train a minimal pair of models on oracle-labeled samples of the
        // Table 1 house so the pipeline is end-to-end real
        let rules = table1_rules();
        let builder = crate::construction::OfflineBuilder::new(rules, 5);
        let mut ds = builder.build_dataset(Platform::all(), 24, 6, true);
        ds.oversample_threats(1);
        let prepared = PreparedGraph::prepare_all(ds.graphs());
        let types = glint_gnn::batch::GraphSchema::infer(ds.graphs().iter()).types;
        let cfg = ItgnnConfig {
            hidden: 12,
            embed: 8,
            n_scales: 2,
            ..Default::default()
        };
        let mut classifier = Itgnn::new(&types, cfg.clone());
        ClassifierTrainer::new(TrainConfig {
            epochs: 4,
            ..Default::default()
        })
        .train(&mut classifier, &prepared);
        let mut embedder = Itgnn::new(&types, cfg);
        ContrastiveTrainer::new(TrainConfig {
            epochs: 3,
            ..Default::default()
        })
        .train(&mut embedder, &prepared);
        let emb = ContrastiveTrainer::embed_all(&embedder, &prepared);
        let labels: Vec<usize> = prepared.iter().map(|g| g.label.unwrap()).collect();
        let drift = DriftDetector::fit(&emb, &labels);
        (classifier, embedder, drift)
    }

    #[test]
    fn end_to_end_window_processing() {
        let (classifier, embedder, drift) = tiny_models();
        let detector = GlintDetector::new(table1_rules(), classifier, embedder, drift);
        // replay the paper's running incident: movie → lights off → door
        // locked; smoke → window open; temp high → AC on → windows closed
        let mut log = EventLog::new();
        log.push(EventRecord::new(100.0, EventKind::RuleFired { rule_id: 1 }));
        log.push(EventRecord::new(130.0, EventKind::RuleFired { rule_id: 9 }));
        log.push(EventRecord::new(
            1900.0,
            EventKind::RuleFired { rule_id: 6 },
        ));
        log.push(EventRecord::new(
            1960.0,
            EventKind::RuleFired { rule_id: 4 },
        ));
        log.push(EventRecord::new(
            2000.0,
            EventKind::RuleFired { rule_id: 5 },
        ));
        let det = detector.process_window(&log, 0.0, 3000.0);
        assert_eq!(det.graph.n_nodes(), 5, "five rules executed");
        assert!(
            det.graph.n_edges() >= 2,
            "causal chain edges survive pruning"
        );
        assert!((0.0..=1.0).contains(&det.threat_probability));
        if det.is_threat {
            let w = det.warning.expect("threat must carry a warning");
            assert!(!w.causes.is_empty());
        }
    }

    #[test]
    fn empty_window_is_benign() {
        let (classifier, embedder, drift) = tiny_models();
        let detector = GlintDetector::new(table1_rules(), classifier, embedder, drift);
        let log = EventLog::new();
        let det = detector.process_window(&log, 0.0, 100.0);
        assert!(!det.is_threat);
        assert!(det.warning.is_none());
        assert_eq!(det.graph.n_nodes(), 0);
    }

    #[test]
    fn nan_feature_graph_quarantines_only_its_own_slot() {
        let (classifier, embedder, drift) = tiny_models();
        let rules = table1_rules();
        let detector = GlintDetector::new(rules.clone(), classifier, embedder, drift);
        let builder = crate::construction::OfflineBuilder::new(rules, 5);
        let ds = builder.build_dataset(Platform::all(), 6, 6, true);
        let mut graphs: Vec<_> = ds.graphs().iter().take(3).cloned().collect();
        assert!(graphs.len() >= 2, "need at least two graphs");
        // poison the middle graph with a NaN feature (bypassing add_edge's
        // construction-time checks, as a hostile producer would)
        let poisoned = {
            let g = &graphs[1];
            let mut nodes = g.nodes().to_vec();
            nodes[0].features[0] = f32::NAN;
            let mut bad = InteractionGraph::new(nodes);
            for &(s, d, k) in g.edges() {
                bad.add_edge(s, d, k);
            }
            bad
        };
        graphs[1] = poisoned;
        let detections = detector.assess_batch(&graphs);
        assert_eq!(detections.len(), 3);
        for (i, det) in detections.iter().enumerate() {
            if i == 1 {
                assert!(
                    matches!(det.degradation, Degradation::Quarantined(_)),
                    "poisoned graph must quarantine, got {:?}",
                    det.degradation
                );
                assert!(det.threat_probability.is_nan());
                assert!(!det.is_threat);
            } else {
                assert_eq!(
                    det.degradation,
                    Degradation::None,
                    "healthy graph {i} must get a full verdict"
                );
                assert!((0.0..=1.0).contains(&det.threat_probability));
            }
        }
    }

    #[test]
    fn pressure_rungs_map_onto_the_degradation_ladder() {
        let (classifier, embedder, drift) = tiny_models();
        let rules = table1_rules();
        let detector = GlintDetector::new(rules.clone(), classifier, embedder, drift);
        let builder = crate::construction::OfflineBuilder::new(rules, 5);
        let ds = builder.build_dataset(Platform::all(), 4, 6, true);
        let graph = ds.graphs()[0].clone();
        assert!(graph.n_nodes() > 0, "need a non-empty graph");

        let full = detector.assess_under_pressure(graph.clone(), DeadlinePressure::Comfortable);
        assert_eq!(full.degradation, Degradation::None);
        assert!((0.0..=1.0).contains(&full.threat_probability));

        let tight = detector.assess_under_pressure(graph.clone(), DeadlinePressure::Tight);
        match &tight.degradation {
            Degradation::DriftOnly(reason) => {
                assert!(reason.contains("deadline"), "reason: {reason}")
            }
            other => panic!("Tight must land on DriftOnly, got {other:?}"),
        }
        // drift screening still ran: the degree is real, and the
        // pseudo-probability is the drift-derived one
        assert!(tight.drift_degree.is_finite());
        assert_eq!(tight.drift_degree, full.drift_degree);
        assert!((0.0..=1.0).contains(&tight.threat_probability));

        let expired = detector.assess_under_pressure(graph, DeadlinePressure::Expired);
        match &expired.degradation {
            Degradation::Quarantined(reason) => {
                assert!(reason.contains("deadline expired"), "reason: {reason}")
            }
            other => panic!("Expired must quarantine, got {other:?}"),
        }
        assert!(expired.threat_probability.is_nan());
        assert!(!expired.is_threat);
    }

    #[test]
    fn try_assess_surfaces_invalid_graph_as_typed_error() {
        let (classifier, embedder, drift) = tiny_models();
        let detector = GlintDetector::new(table1_rules(), classifier, embedder, drift);
        let mut nodes = vec![glint_graph::graph::Node {
            rule_id: glint_rules::RuleId(1),
            platform: Platform::Ifttt,
            features: vec![1.0, f32::INFINITY],
        }];
        nodes[0].features[1] = f32::INFINITY;
        let bad = InteractionGraph::new(nodes);
        let err = detector.try_assess(bad).unwrap_err();
        assert!(
            matches!(err, crate::error::GlintError::InvalidGraph(_)),
            "got {err}"
        );
    }

    #[test]
    fn assess_flags_labeled_threat_graphs_sensibly() {
        let (classifier, embedder, drift) = tiny_models();
        let rules = table1_rules();
        let detector = GlintDetector::new(rules.clone(), classifier, embedder, drift);
        let builder = crate::construction::OfflineBuilder::new(rules, 77);
        let ds = builder.build_dataset(Platform::all(), 12, 6, true);
        let mut agree = 0;
        for g in ds.iter() {
            let want = g.label == Some(GraphLabel::Threat);
            let mut unlabeled = g.clone();
            unlabeled.label = None;
            let det = detector.assess(unlabeled);
            if det.is_threat == want {
                agree += 1;
            }
        }
        // lightly-trained tiny model: just demand better than random-ish
        assert!(agree >= 6, "agreement {agree}/12");
        let _ = Matrix::zeros(1, 1);
    }
}
