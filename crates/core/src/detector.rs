//! The online detection pipeline (Figure 2, steps ④–⑧): construct the
//! real-time interaction graph from deployed rules + event logs, screen it
//! with the drift detector, classify it with the threat detector, and raise
//! a warning with explained causes.

use crate::drift::DriftDetector;
use crate::explain;
use crate::warning::Warning;
use glint_gnn::batch::PreparedGraph;
use glint_gnn::models::GraphModel;
use glint_gnn::trainer::{ClassifierTrainer, ContrastiveTrainer};
use glint_graph::builder::OnlineBuilder;
use glint_graph::InteractionGraph;
use glint_rules::event::EventLog;
use glint_rules::Rule;

/// Outcome of screening one real-time window.
#[derive(Clone, Debug)]
pub struct Detection {
    /// The real-time interaction graph that was analysed.
    pub graph: InteractionGraph,
    /// Drift screening verdict (step ⑤).
    pub drifting: bool,
    pub drift_degree: f64,
    /// Classifier verdict (threat probability and hard label).
    pub threat_probability: f32,
    pub is_threat: bool,
    /// The warning raised, if any.
    pub warning: Option<Warning>,
}

/// The deployed Glint instance: deployed rules + trained models.
pub struct GlintDetector<C: GraphModel, E: GraphModel> {
    rules: Vec<Rule>,
    classifier: C,
    embedder: E,
    drift: DriftDetector,
    online: OnlineBuilder,
    /// Number of causes listed in warnings.
    pub top_k_causes: usize,
}

impl<C: GraphModel, E: GraphModel> GlintDetector<C, E> {
    pub fn new(rules: Vec<Rule>, classifier: C, embedder: E, drift: DriftDetector) -> Self {
        Self {
            rules,
            classifier,
            embedder,
            drift,
            online: OnlineBuilder::default(),
            top_k_causes: 3,
        }
    }

    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    pub fn classifier(&self) -> &C {
        &self.classifier
    }

    /// Give user feedback to the models (step ⑧: fine-tuning hooks).
    pub fn classifier_mut(&mut self) -> &mut C {
        &mut self.classifier
    }

    /// Screen one time window of the event log.
    pub fn process_window(&self, log: &EventLog, from: f64, to: f64) -> Detection {
        let graph = self.online.build(
            &self.rules,
            log,
            from,
            to,
            &crate::construction::node_features,
        );
        self.assess(graph)
    }

    /// Assess an already-constructed interaction graph.
    pub fn assess(&self, graph: InteractionGraph) -> Detection {
        if graph.n_nodes() == 0 {
            return Detection {
                graph,
                drifting: false,
                drift_degree: 0.0,
                threat_probability: 0.0,
                is_threat: false,
                warning: None,
            };
        }
        let prepared = PreparedGraph::from_graph(&graph);
        // step ⑤: drift screening in the contrastive latent space
        let embedding = ContrastiveTrainer::embed(&self.embedder, &prepared);
        let drift_degree = self.drift.drift_degree(&embedding);
        let drifting = drift_degree > self.drift.threshold;
        // step ⑥: classification
        let threat_probability = ClassifierTrainer::predict_proba(&self.classifier, &prepared);
        let is_threat = threat_probability > 0.5;
        // step ⑦: warning with explained causes
        let warning = if is_threat || drifting {
            let causes_idx = explain::top_causes(&self.classifier, &graph, self.top_k_causes);
            let causes: Vec<&Rule> = causes_idx
                .iter()
                .filter_map(|&i| {
                    let id = graph.node(i).rule_id.0;
                    self.rules.iter().find(|r| r.id.0 == id)
                })
                .collect();
            Some(Warning::new(drifting && !is_threat, &causes))
        } else {
            None
        };
        Detection {
            graph,
            drifting,
            drift_degree,
            threat_probability,
            is_threat,
            warning,
        }
    }

    /// Assess a batch of graphs, scoring them concurrently. Results come
    /// back in input order and are identical to mapping [`Self::assess`]
    /// serially — the parallel kernels and the ordered fan-out are both
    /// deterministic.
    pub fn assess_batch(&self, graphs: &[InteractionGraph]) -> Vec<Detection> {
        glint_tensor::par::ordered_map(graphs.len(), |i| self.assess(graphs[i].clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glint_gnn::models::{Itgnn, ItgnnConfig};
    use glint_gnn::trainer::TrainConfig;
    use glint_graph::GraphLabel;
    use glint_rules::event::{EventKind, EventRecord};
    use glint_rules::scenarios::table1_rules;
    use glint_rules::Platform;
    use glint_tensor::Matrix;

    fn tiny_models() -> (Itgnn, Itgnn, DriftDetector) {
        // train a minimal pair of models on oracle-labeled samples of the
        // Table 1 house so the pipeline is end-to-end real
        let rules = table1_rules();
        let builder = crate::construction::OfflineBuilder::new(rules, 5);
        let mut ds = builder.build_dataset(Platform::all(), 24, 6, true);
        ds.oversample_threats(1);
        let prepared = PreparedGraph::prepare_all(ds.graphs());
        let types = glint_gnn::batch::GraphSchema::infer(ds.graphs().iter()).types;
        let cfg = ItgnnConfig {
            hidden: 12,
            embed: 8,
            n_scales: 2,
            ..Default::default()
        };
        let mut classifier = Itgnn::new(&types, cfg.clone());
        ClassifierTrainer::new(TrainConfig {
            epochs: 4,
            ..Default::default()
        })
        .train(&mut classifier, &prepared);
        let mut embedder = Itgnn::new(&types, cfg);
        ContrastiveTrainer::new(TrainConfig {
            epochs: 3,
            ..Default::default()
        })
        .train(&mut embedder, &prepared);
        let emb = ContrastiveTrainer::embed_all(&embedder, &prepared);
        let labels: Vec<usize> = prepared.iter().map(|g| g.label.unwrap()).collect();
        let drift = DriftDetector::fit(&emb, &labels);
        (classifier, embedder, drift)
    }

    #[test]
    fn end_to_end_window_processing() {
        let (classifier, embedder, drift) = tiny_models();
        let detector = GlintDetector::new(table1_rules(), classifier, embedder, drift);
        // replay the paper's running incident: movie → lights off → door
        // locked; smoke → window open; temp high → AC on → windows closed
        let mut log = EventLog::new();
        log.push(EventRecord::new(100.0, EventKind::RuleFired { rule_id: 1 }));
        log.push(EventRecord::new(130.0, EventKind::RuleFired { rule_id: 9 }));
        log.push(EventRecord::new(
            1900.0,
            EventKind::RuleFired { rule_id: 6 },
        ));
        log.push(EventRecord::new(
            1960.0,
            EventKind::RuleFired { rule_id: 4 },
        ));
        log.push(EventRecord::new(
            2000.0,
            EventKind::RuleFired { rule_id: 5 },
        ));
        let det = detector.process_window(&log, 0.0, 3000.0);
        assert_eq!(det.graph.n_nodes(), 5, "five rules executed");
        assert!(
            det.graph.n_edges() >= 2,
            "causal chain edges survive pruning"
        );
        assert!((0.0..=1.0).contains(&det.threat_probability));
        if det.is_threat {
            let w = det.warning.expect("threat must carry a warning");
            assert!(!w.causes.is_empty());
        }
    }

    #[test]
    fn empty_window_is_benign() {
        let (classifier, embedder, drift) = tiny_models();
        let detector = GlintDetector::new(table1_rules(), classifier, embedder, drift);
        let log = EventLog::new();
        let det = detector.process_window(&log, 0.0, 100.0);
        assert!(!det.is_threat);
        assert!(det.warning.is_none());
        assert_eq!(det.graph.n_nodes(), 0);
    }

    #[test]
    fn assess_flags_labeled_threat_graphs_sensibly() {
        let (classifier, embedder, drift) = tiny_models();
        let rules = table1_rules();
        let detector = GlintDetector::new(rules.clone(), classifier, embedder, drift);
        let builder = crate::construction::OfflineBuilder::new(rules, 77);
        let ds = builder.build_dataset(Platform::all(), 12, 6, true);
        let mut agree = 0;
        for g in ds.iter() {
            let want = g.label == Some(GraphLabel::Threat);
            let mut unlabeled = g.clone();
            unlabeled.label = None;
            let det = detector.assess(unlabeled);
            if det.is_threat == want {
                agree += 1;
            }
        }
        // lightly-trained tiny model: just demand better than random-ish
        assert!(agree >= 6, "agreement {agree}/12");
        let _ = Matrix::zeros(1, 1);
    }
}
