//! User-facing threat warnings (Figure 3): what happened, which rules are
//! the likely causes, and where to go to fix them.

use glint_rules::{render::render_rule, Rule};
use serde::{Deserialize, Serialize};

/// One implicated rule inside a warning.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ImplicatedRule {
    pub rule_id: u32,
    pub platform: String,
    pub description: String,
}

/// A Glint notification (Figure 3a/3c).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Warning {
    pub title: String,
    /// Whether this came from the drift detector rather than the classifier.
    pub drifting: bool,
    pub causes: Vec<ImplicatedRule>,
}

impl Warning {
    /// Build a warning from the implicated rules (ordered by importance).
    pub fn new(drifting: bool, causes: &[&Rule]) -> Self {
        let title = if drifting {
            "Unusual automation interaction detected (possible new threat type)".to_string()
        } else {
            "Potential interactive bug detected!".to_string()
        };
        Self {
            title,
            drifting,
            causes: causes
                .iter()
                .map(|r| ImplicatedRule {
                    rule_id: r.id.0,
                    platform: r.platform.name().to_string(),
                    description: render_rule(r),
                })
                .collect(),
        }
    }

    /// Render the notification body (the Figure 3c inspection list).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("GLINT NOTIFICATION\n{}\n\n", self.title));
        out.push_str("We provide the following automation rules for further inspection.\n");
        out.push_str("You may stop or update rule configurations in the corresponding app.\n\n");
        for c in &self.causes {
            out.push_str(&format!(
                "  [{} Rule {}] {}\n",
                c.platform, c.rule_id, c.description
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glint_rules::scenarios::table1_rules;

    #[test]
    fn warning_lists_causes_with_platforms() {
        let rules = table1_rules();
        let causes: Vec<&Rule> = vec![&rules[4], &rules[5], &rules[8]];
        let w = Warning::new(false, &causes);
        assert_eq!(w.causes.len(), 3);
        let text = w.render();
        assert!(text.contains("IFTTT Rule 5"), "{text}");
        assert!(text.contains("Alexa Skill Rule 9"), "{text}");
        assert!(text.contains("Potential interactive bug"));
    }

    #[test]
    fn drift_warning_has_distinct_title() {
        let rules = table1_rules();
        let w = Warning::new(true, &[&rules[0]]);
        assert!(w.render().contains("new threat type"));
    }

    #[test]
    fn warning_serializes() {
        let rules = table1_rules();
        let w = Warning::new(false, &[&rules[0]]);
        let json = serde_json::to_string(&w).unwrap();
        let back: Warning = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }
}
