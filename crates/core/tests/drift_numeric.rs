//! Hand-computed numeric tests for drift detection (Algorithm 3).
//!
//! The core fixture is seven 1-D embeddings `[1, 2, 3, 4, 5, 6, 7]` in one
//! class. Every statistic is exact in binary floating point, so the tests
//! assert *equality*, not closeness:
//!
//! - centroid = 28/7 = 4
//! - distances to the centroid: {3, 2, 1, 0, 1, 2, 3} → sorted
//!   [0, 1, 1, 2, 2, 3, 3] → median = 2
//! - absolute deviations from that median: {1, 0, 1, 2, 1, 0, 1} → sorted
//!   [0, 0, 1, 1, 1, 1, 2] → MAD = 1
//! - drift degree of a query x: max(0, |x − 4| − 2) / 1
//!
//! The second half drives the same fixture through the detector's
//! drift-only fallback rung and pins the `d / (d + T_MAD)` pseudo-
//! probabilities to hand-derived values (degrees 1, 3, 9 → 0.25, 0.5,
//! 0.75 exactly).

use glint_core::detector::{Degradation, GlintDetector, SITE_CLASSIFY};
use glint_core::drift::{DriftDetector, T_MAD};
use glint_failpoint::{Action, ScopedFail};
use glint_gnn::batch::PreparedGraph;
use glint_gnn::models::{GraphModel, ModelOutput};
use glint_graph::graph::Node;
use glint_graph::InteractionGraph;
use glint_rules::{Platform, RuleId};
use glint_tensor::{Matrix, ParamSet, Tape, Var};

/// The seven-point single-class fixture.
fn seven_point_detector() -> DriftDetector {
    let x = Matrix::from_rows(&[
        vec![1.0],
        vec![2.0],
        vec![3.0],
        vec![4.0],
        vec![5.0],
        vec![6.0],
        vec![7.0],
    ]);
    DriftDetector::fit(&x, &[0, 0, 0, 0, 0, 0, 0])
}

#[test]
fn seven_point_fixture_matches_hand_computed_mad_statistics() {
    let det = seven_point_detector();
    assert_eq!(det.threshold, T_MAD);
    assert_eq!(det.threshold, 3.0);

    // degree(x) = max(0, |x − 4| − 2) / 1, all arithmetic exact
    assert_eq!(det.drift_degree(&[4.0]), 0.0, "centroid itself");
    assert_eq!(det.drift_degree(&[6.0]), 0.0, "at the median distance");
    assert_eq!(det.drift_degree(&[6.5]), 0.5);
    assert_eq!(det.drift_degree(&[7.0]), 1.0, "outermost training point");
    assert_eq!(det.drift_degree(&[1.0]), 1.0, "symmetric on the other side");
    assert_eq!(det.drift_degree(&[-1.0]), 3.0);
    assert_eq!(det.drift_degree(&[10.0]), 4.0);
    assert_eq!(det.drift_degree(&[15.0]), 9.0);

    // one-sided: closer than the median distance is squarely in-distribution
    assert_eq!(det.drift_degree(&[3.5]), 0.0);
    assert_eq!(det.drift_degree(&[4.5]), 0.0);

    // the threshold is strict: degree exactly T_MAD does not drift
    assert_eq!(det.drift_degree(&[-1.0]), det.threshold);
    assert!(!det.is_drifting(&[-1.0]));
    assert!(det.is_drifting(&[10.0]));
    assert!(!det.is_drifting(&[7.0]));
}

#[test]
fn two_class_fixture_takes_the_minimum_over_classes() {
    // class 1 is the same shape shifted to centroid 104: med 2, MAD 1 again
    let rows: Vec<Vec<f32>> = (1..=7)
        .map(|v| vec![v as f32])
        .chain((101..=107).map(|v| vec![v as f32]))
        .collect();
    let labels = [0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1];
    let det = DriftDetector::fit(&Matrix::from_rows(&rows), &labels);

    // near class 1: its degree wins the min even though class 0 screams
    assert_eq!(det.drift_degree(&[104.0]), 0.0);
    assert_eq!(det.drift_degree(&[107.0]), 1.0);
    // near class 0: identical to the single-class fixture
    assert_eq!(det.drift_degree(&[10.0]), 4.0);
    // equidistant from both centroids (d = 50 each): min(48, 48) = 48
    assert_eq!(det.drift_degree(&[54.0]), 48.0);
    // drifting requires exceeding the threshold for *every* class
    assert!(!det.is_drifting(&[0.0]), "degree min(2, 102) = 2");
    assert!(det.is_drifting(&[54.0]));
}

#[test]
fn all_identical_scores_hit_the_mad_epsilon_floor() {
    // all seven training embeddings identical: every distance is 0, so the
    // median and MAD are both 0 and only the 1e-9 floor keeps the degree
    // finite for finite queries
    let x = Matrix::from_rows(&vec![vec![5.0f32]; 7]);
    let det = DriftDetector::fit(&x, &[0; 7]);

    assert_eq!(det.drift_degree(&[5.0]), 0.0, "exactly on the point mass");
    assert!(!det.is_drifting(&[5.0]));

    // any displacement is amplified by 1/1e-9: degree = 0.5 / 1e-9, the
    // exact same (deterministic) f64 arithmetic as the implementation
    let amplified = 0.5f64 / 1e-9;
    assert_eq!(det.drift_degree(&[5.5]), amplified);
    assert_eq!(det.drift_degree(&[4.5]), amplified);
    assert!(det.drift_degree(&[5.5]).is_finite());
    assert!(det.is_drifting(&[5.5]));
}

#[test]
fn batch_detect_matches_hand_computed_degrees() {
    let det = seven_point_detector();
    let probes = Matrix::from_rows(&[vec![4.0], vec![-1.0], vec![10.0], vec![15.0]]);
    // only the strict exceedances come back, with their exact degrees
    let hits = det.detect(&probes);
    assert_eq!(hits, vec![(2, 4.0), (3, 9.0)]);
}

/// A model whose graph embedding is a fixed 1-D constant: lets the test
/// place the detector's latent point exactly where the hand computation
/// wants it. The logits are a tied 1×2 zero row (probability 0.5) so the
/// same struct doubles as the full-rung control classifier.
struct FixedEmbedder {
    params: ParamSet,
    value: f32,
}

impl FixedEmbedder {
    fn new(value: f32) -> Self {
        Self {
            params: ParamSet::new(),
            value,
        }
    }
}

impl GraphModel for FixedEmbedder {
    fn name(&self) -> &'static str {
        "fixed-embedder"
    }
    fn params(&self) -> &ParamSet {
        &self.params
    }
    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }
    fn embed_dim(&self) -> usize {
        1
    }
    fn forward(&self, tape: &mut Tape, _vars: &[Var], _g: &PreparedGraph) -> ModelOutput {
        ModelOutput {
            embedding: tape.var(Matrix::from_rows(&[vec![self.value]])),
            logits: tape.var(Matrix::from_rows(&[vec![0.0, 0.0]])),
            aux_loss: None,
        }
    }
}

/// A minimal valid one-node graph (the stub models ignore it, but it must
/// pass structural validation to reach the drift stage).
fn one_node_graph() -> InteractionGraph {
    InteractionGraph::new(vec![Node {
        rule_id: RuleId(0),
        platform: Platform::Ifttt,
        features: vec![0.25, 0.5],
    }])
}

/// Pin the drift-only fallback's `d / (d + threshold)` pseudo-probability
/// to hand-derived values by steering the embedding through a stub model.
/// Degrees 1, 3, 9 over threshold 3 give exactly 0.25, 0.5, 0.75 in f32.
///
/// All rungs live in one test function because the classify fail-point
/// site is process-global state.
#[test]
fn drift_only_pseudo_probabilities_match_hand_computation() {
    let cases: &[(f32, f64, f32, bool)] = &[
        // (embedding, expected degree, expected pseudo-probability, drifting)
        (4.0, 0.0, 0.0, false),
        (7.0, 1.0, 0.25, false),
        (-1.0, 3.0, 0.5, false), // exactly at the threshold: pseudo is ½
        (15.0, 9.0, 0.75, true),
    ];
    for &(value, degree, pseudo, drifting) in cases {
        let detector = GlintDetector::new(
            Vec::new(),
            FixedEmbedder::new(0.0), // classifier (never reached)
            FixedEmbedder::new(value),
            seven_point_detector(),
        );
        let _force_fallback = ScopedFail::new(SITE_CLASSIFY, Action::Err, 1);
        let det = detector.assess(one_node_graph());
        assert!(
            matches!(det.degradation, Degradation::DriftOnly(_)),
            "embedding {value}: expected drift-only rung, got {:?}",
            det.degradation
        );
        assert_eq!(det.drift_degree, degree, "embedding {value}");
        assert_eq!(det.threat_probability, pseudo, "embedding {value}");
        assert_eq!(det.drifting, drifting, "embedding {value}");
        // on the fallback rung the hard verdict IS the drift verdict
        assert_eq!(det.is_threat, drifting, "embedding {value}");
    }

    // full-rung control: with no fault armed the tied-logits classifier
    // answers 0.5 and the pseudo-probability machinery never runs
    let detector = GlintDetector::new(
        Vec::new(),
        FixedEmbedder::new(0.0),
        FixedEmbedder::new(15.0),
        seven_point_detector(),
    );
    let det = detector.assess(one_node_graph());
    assert_eq!(det.degradation, Degradation::None);
    assert_eq!(det.drift_degree, 9.0);
    assert_eq!(det.threat_probability, 0.5);
}
