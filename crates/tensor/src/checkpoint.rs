//! Durable training checkpoints: parameters + optimizer moments + RNG/epoch
//! cursor, written atomically through the [`glint_failpoint::durable`]
//! envelope (versioned, CRC-checked, temp-file + rename).
//!
//! A checkpoint captures everything a trainer needs to continue a run so
//! that a process killed at an epoch boundary and resumed produces bitwise
//! the same parameters as an uninterrupted run: the [`ParamSet`], the
//! [`AdamState`] (step count + first/second moments), the raw xoshiro256++
//! RNG state, the number of completed epochs, and the per-epoch loss trace.

use crate::optim::{AdamState, ParamSet};
use glint_failpoint::durable::{self, DurableError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Envelope kind tag for training checkpoints.
pub const CHECKPOINT_KIND: &str = "glint-checkpoint";
/// Current checkpoint format version. Readers reject anything newer.
pub const CHECKPOINT_VERSION: u32 = 1;
/// Fail-point site hit by [`save_checkpoint`].
pub const SITE_CHECKPOINT_SAVE: &str = "checkpoint.save";

/// Complete resumable training state at an epoch boundary.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// Model parameters after `epochs_done` epochs.
    pub params: ParamSet,
    /// Adam step count and moment estimates.
    pub opt: AdamState,
    /// Raw xoshiro256++ state of the training RNG (shuffle/pair-sampling
    /// cursor), so the resumed run consumes the identical value stream.
    pub rng_state: [u64; 4],
    /// Epochs fully completed before this snapshot.
    pub epochs_done: usize,
    /// Mean loss of each completed epoch (the eventual `TrainReport`).
    pub epoch_losses: Vec<f32>,
}

/// Why a checkpoint could not be saved or loaded.
#[derive(Debug)]
pub enum CheckpointError {
    /// Envelope-level failure: IO, truncation, checksum, version, kind.
    Envelope(DurableError),
    /// The payload verified but is not a decodable checkpoint.
    Decode(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Envelope(e) => write!(f, "checkpoint envelope error: {e}"),
            CheckpointError::Decode(why) => write!(f, "checkpoint decode error: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<DurableError> for CheckpointError {
    fn from(e: DurableError) -> Self {
        CheckpointError::Envelope(e)
    }
}

/// Serialize `ckpt` and write it durably at `path` (atomic temp + rename;
/// a crash mid-save leaves the previous checkpoint intact). Hits the
/// [`SITE_CHECKPOINT_SAVE`] fail point.
pub fn save_checkpoint(
    path: impl AsRef<Path>,
    ckpt: &TrainCheckpoint,
) -> Result<(), CheckpointError> {
    let json = serde_json::to_string(ckpt)
        .map_err(|e| CheckpointError::Decode(format!("serialize: {e}")))?;
    durable::write_durable(
        SITE_CHECKPOINT_SAVE,
        path,
        CHECKPOINT_KIND,
        CHECKPOINT_VERSION,
        json.as_bytes(),
    )?;
    Ok(())
}

/// Read and verify a checkpoint. Corrupt, truncated, wrong-kind, or
/// future-version files surface as typed errors — never a panic.
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<TrainCheckpoint, CheckpointError> {
    let (_version, payload) = durable::read_durable(path, CHECKPOINT_KIND, CHECKPOINT_VERSION)?;
    let text = String::from_utf8(payload)
        .map_err(|_| CheckpointError::Decode("payload is not UTF-8".into()))?;
    serde_json::from_str(&text).map_err(|e| CheckpointError::Decode(format!("parse: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;
    use glint_failpoint::durable::write_durable;

    fn sample() -> TrainCheckpoint {
        let mut params = ParamSet::new();
        params.add(
            "layer.w",
            Matrix::from_rows(&[vec![1.0, -2.5], vec![0.125, 3.0]]),
        );
        params.add("layer.b", Matrix::full(1, 2, 0.5));
        TrainCheckpoint {
            params,
            opt: AdamState {
                t: 17,
                m: vec![Some(Matrix::full(2, 2, 0.01)), None],
                v: vec![Some(Matrix::full(2, 2, 0.002)), None],
            },
            rng_state: [1, u64::MAX, 42, 0],
            epochs_done: 3,
            epoch_losses: vec![0.9, 0.5, 0.25],
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("glint_checkpoint_tests");
        std::fs::create_dir_all(&dir).expect("create test dir");
        dir.join(name)
    }

    #[test]
    fn round_trip_is_bitwise() {
        let path = tmp("round_trip.ckpt");
        let ckpt = sample();
        save_checkpoint(&path, &ckpt).unwrap();
        let back = load_checkpoint(&path).unwrap();
        assert_eq!(back.epochs_done, 3);
        assert_eq!(back.rng_state, ckpt.rng_state);
        assert_eq!(back.opt.t, 17);
        for ((_, a), (_, b)) in ckpt.params.iter().zip(back.params.iter()) {
            assert_eq!(a.shape(), b.shape());
            for (x, y) in a.data().iter().zip(b.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "param restore must be bitwise");
            }
        }
        let m0 = back.opt.m[0].as_ref().unwrap();
        assert_eq!(m0.get(1, 1).to_bits(), 0.01f32.to_bits());
        assert!(back.opt.m[1].is_none());
    }

    #[test]
    fn truncated_and_corrupt_files_are_typed_errors() {
        let path = tmp("mangle.ckpt");
        save_checkpoint(&path, &sample()).unwrap();
        let good = std::fs::read(&path).unwrap();

        let short_path = tmp("mangle_short.ckpt");
        std::fs::write(&short_path, &good[..good.len() / 2]).unwrap();
        assert!(matches!(
            load_checkpoint(&short_path),
            Err(CheckpointError::Envelope(DurableError::Truncated { .. }))
        ));

        let mut flipped = good.clone();
        let mid = flipped.len() - 8;
        flipped[mid] ^= 0xff;
        let flip_path = tmp("mangle_flip.ckpt");
        std::fs::write(&flip_path, &flipped).unwrap();
        assert!(matches!(
            load_checkpoint(&flip_path),
            Err(CheckpointError::Envelope(DurableError::ChecksumMismatch))
        ));

        let garbage_path = tmp("mangle_garbage.ckpt");
        std::fs::write(&garbage_path, b"not a checkpoint at all").unwrap();
        assert!(matches!(
            load_checkpoint(&garbage_path),
            Err(CheckpointError::Envelope(DurableError::NotAnEnvelope(_)))
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let path = tmp("future.ckpt");
        write_durable(
            "tests.none",
            &path,
            CHECKPOINT_KIND,
            CHECKPOINT_VERSION + 1,
            b"{}",
        )
        .unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::Envelope(
                DurableError::UnsupportedVersion { .. }
            ))
        ));
    }

    #[test]
    fn valid_but_wrong_payload_is_decode_error() {
        let path = tmp("wrong_payload.ckpt");
        write_durable(
            "tests.none",
            &path,
            CHECKPOINT_KIND,
            CHECKPOINT_VERSION,
            b"[1, 2, 3]",
        )
        .unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::Decode(_))
        ));
    }
}
