//! Parallel execution layer for the dense and sparse kernels.
//!
//! Every kernel here is a drop-in for its serial twin on [`Matrix`]/[`Csr`]
//! and produces **bitwise-identical** results at any thread count: work is
//! partitioned by *output row*, each output element is accumulated by
//! exactly one worker, and each worker runs exactly the serial per-element
//! loop (the `*_block` kernels shared with the serial entry points). There
//! is no atomics-based reduction and no operation reordering — parallel ==
//! serial is an equality, not a tolerance.
//!
//! Thread-count resolution, in priority order:
//! 1. a [`with_threads`] override on the current thread (used by tests and
//!    by nested parallel sections to force serial execution in workers);
//! 2. the `GLINT_THREADS` environment variable, read once lazily
//!    (`GLINT_THREADS=1` forces serial everywhere);
//! 3. [`std::thread::available_parallelism`].
//!
//! Small problems skip the fan-out entirely: below [`MIN_PAR_WORK`]
//! flop-equivalents the scoped-thread setup costs more than it saves, so the
//! kernels fall through to the serial path. The interaction graphs in this
//! workspace are tiny (2–50 nodes) — for them the win comes from batching
//! *across* graphs (see `glint-gnn`'s trainer and `glint-core`'s batch
//! scoring), not from splitting one small matmul.

use crate::matrix::{matmul_block, matmul_t_block, t_matmul_block};
use crate::{Csr, Matrix};
use std::cell::Cell;
use std::sync::OnceLock;

/// Minimum number of multiply-accumulates before a kernel fans out.
/// Below this, thread spawn/join overhead (~10µs) dwarfs the arithmetic.
pub const MIN_PAR_WORK: usize = 1 << 16;

fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        std::env::var("GLINT_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The thread count the next parallel kernel on this thread will use.
pub fn current_threads() -> usize {
    OVERRIDE.with(Cell::get).unwrap_or_else(configured_threads)
}

/// Run `f` with the parallel kernels forced to `n` threads on this thread
/// (1 = serial). Restores the previous setting on exit, including on panic —
/// the equivalence tests rely on this to compare thread counts in-process.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "thread count must be at least 1");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(OVERRIDE.with(|c| c.replace(Some(n))));
    f()
}

/// Split `n` rows into `parts` contiguous near-equal ranges.
fn partition(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.min(n).max(1);
    let base = n / parts;
    let rem = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut lo = 0;
    for p in 0..parts {
        let hi = lo + base + usize::from(p < rem);
        ranges.push((lo, hi));
        lo = hi;
    }
    ranges
}

/// Fan a row-partitioned kernel out over `threads` scoped workers. `out`
/// must be zero-initialized; its buffer is split into disjoint row blocks
/// via `split_at_mut`, so workers never share a cache line's ownership.
/// Workers run with a serial override in place: a kernel that itself calls
/// a parallel kernel (e.g. through batched scoring) must not fan out again.
fn run_partitioned<F>(out: &mut Matrix, threads: usize, kernel: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    let w = out.cols();
    let ranges = partition(out.rows(), threads);
    crossbeam::thread::scope(|s| {
        let mut rest = out.data_mut();
        let mut handles = Vec::with_capacity(ranges.len());
        for &(lo, hi) in &ranges {
            let (block, tail) = rest.split_at_mut((hi - lo) * w);
            rest = tail;
            let kernel = &kernel;
            handles.push(s.spawn(move || with_threads(1, || kernel(lo, hi, block))));
        }
        for h in handles {
            // glint-lint: allow(hot-unwrap) — a worker panic must propagate
            // to the caller; there is no partial result to salvage
            h.join().expect("parallel kernel worker panicked");
        }
    })
    // glint-lint: allow(hot-unwrap) — scope teardown only errs if a worker
    // panicked, which must propagate
    .expect("scoped thread pool failed");
}

/// Parallel `a × b`; exact same result as [`Matrix::matmul`].
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    if glint_trace::enabled() {
        glint_trace::counter("tensor.matmul.calls", 1);
        glint_trace::counter(
            "tensor.matmul.flops",
            2 * (a.rows() * a.cols() * b.cols()) as u64,
        );
    }
    let threads = current_threads();
    if threads <= 1 || a.rows() < 2 || a.rows() * a.cols() * b.cols() < MIN_PAR_WORK {
        return a.matmul(b);
    }
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul {}x{} × {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = Matrix::zeros(a.rows(), b.cols());
    let b_finite = b.finite_rows();
    run_partitioned(&mut out, threads, |lo, hi, block| {
        matmul_block(a, b, &b_finite, lo, hi, block)
    });
    out
}

/// Parallel `a × b` into a caller-provided **zeroed** output buffer of shape
/// `a.rows × b.cols`. Identical counters, dispatch thresholds, block kernel
/// and therefore bitwise-identical results to [`matmul`] — the only
/// difference is that the output allocation is the caller's (the tape-free
/// inference path feeds pooled buffers through here; see `crate::infer`).
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    if glint_trace::enabled() {
        glint_trace::counter("tensor.matmul.calls", 1);
        glint_trace::counter(
            "tensor.matmul.flops",
            2 * (a.rows() * a.cols() * b.cols()) as u64,
        );
    }
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul {}x{} × {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(
        out.shape(),
        (a.rows(), b.cols()),
        "matmul_into output shape mismatch"
    );
    let b_finite = b.finite_rows();
    let threads = current_threads();
    if threads <= 1 || a.rows() < 2 || a.rows() * a.cols() * b.cols() < MIN_PAR_WORK {
        matmul_block(a, b, &b_finite, 0, a.rows(), out.data_mut());
        return;
    }
    run_partitioned(out, threads, |lo, hi, block| {
        matmul_block(a, b, &b_finite, lo, hi, block)
    });
}

/// Parallel `aᵀ × b`; exact same result as [`Matrix::t_matmul`].
pub fn t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    if glint_trace::enabled() {
        glint_trace::counter("tensor.matmul.calls", 1);
        glint_trace::counter(
            "tensor.matmul.flops",
            2 * (a.rows() * a.cols() * b.cols()) as u64,
        );
    }
    let threads = current_threads();
    if threads <= 1 || a.cols() < 2 || a.rows() * a.cols() * b.cols() < MIN_PAR_WORK {
        return a.t_matmul(b);
    }
    assert_eq!(
        a.rows(),
        b.rows(),
        "t_matmul {}x{} × {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = Matrix::zeros(a.cols(), b.cols());
    let b_finite = b.finite_rows();
    run_partitioned(&mut out, threads, |lo, hi, block| {
        t_matmul_block(a, b, &b_finite, lo, hi, block)
    });
    out
}

/// Parallel `a × bᵀ`; exact same result as [`Matrix::matmul_t`].
pub fn matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
    if glint_trace::enabled() {
        glint_trace::counter("tensor.matmul.calls", 1);
        glint_trace::counter(
            "tensor.matmul.flops",
            2 * (a.rows() * a.cols() * b.rows()) as u64,
        );
    }
    let threads = current_threads();
    if threads <= 1 || a.rows() < 2 || a.rows() * a.cols() * b.rows() < MIN_PAR_WORK {
        return a.matmul_t(b);
    }
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_t {}x{} × {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = Matrix::zeros(a.rows(), b.rows());
    run_partitioned(&mut out, threads, |lo, hi, block| {
        matmul_t_block(a, b, lo, hi, block)
    });
    out
}

/// Parallel sparse × dense `a × h`; exact same result as [`Csr::spmm`].
pub fn spmm(a: &Csr, h: &Matrix) -> Matrix {
    if glint_trace::enabled() {
        glint_trace::counter("tensor.spmm.calls", 1);
        glint_trace::counter("tensor.spmm.flops", 2 * (a.nnz() * h.cols()) as u64);
    }
    let threads = current_threads();
    if threads <= 1 || a.rows() < 2 || a.nnz() * h.cols() < MIN_PAR_WORK {
        return a.spmm(h);
    }
    assert_eq!(
        a.cols(),
        h.rows(),
        "spmm {}x{} × {}x{}",
        a.rows(),
        a.cols(),
        h.rows(),
        h.cols()
    );
    let mut out = Matrix::zeros(a.rows(), h.cols());
    run_partitioned(&mut out, threads, |lo, hi, block| {
        a.spmm_block(h, lo, hi, block)
    });
    out
}

/// Parallel sparse × dense `a × h` into a caller-provided **zeroed** output
/// buffer of shape `a.rows × h.cols`. Identical counters, dispatch
/// thresholds and block kernel to [`spmm`], so results are bitwise
/// identical — only the output allocation moves to the caller.
pub fn spmm_into(a: &Csr, h: &Matrix, out: &mut Matrix) {
    if glint_trace::enabled() {
        glint_trace::counter("tensor.spmm.calls", 1);
        glint_trace::counter("tensor.spmm.flops", 2 * (a.nnz() * h.cols()) as u64);
    }
    assert_eq!(
        a.cols(),
        h.rows(),
        "spmm {}x{} × {}x{}",
        a.rows(),
        a.cols(),
        h.rows(),
        h.cols()
    );
    assert_eq!(
        out.shape(),
        (a.rows(), h.cols()),
        "spmm_into output shape mismatch"
    );
    let threads = current_threads();
    if threads <= 1 || a.rows() < 2 || a.nnz() * h.cols() < MIN_PAR_WORK {
        a.spmm_block(h, 0, a.rows(), out.data_mut());
        return;
    }
    run_partitioned(out, threads, |lo, hi, block| a.spmm_block(h, lo, hi, block));
}

/// Parallel transposed sparse × dense `aᵀ × h`; exact same result as
/// [`Csr::t_spmm`]. The serial kernel scatters into output rows, so this
/// first regroups the stored entries by column (ascending source row — the
/// serial accumulation order per output element) and then partitions the
/// output rows like every other kernel.
pub fn t_spmm(a: &Csr, h: &Matrix) -> Matrix {
    if glint_trace::enabled() {
        glint_trace::counter("tensor.spmm.calls", 1);
        glint_trace::counter("tensor.spmm.flops", 2 * (a.nnz() * h.cols()) as u64);
    }
    let threads = current_threads();
    if threads <= 1 || a.cols() < 2 || a.nnz() * h.cols() < MIN_PAR_WORK {
        return a.t_spmm(h);
    }
    assert_eq!(
        a.rows(),
        h.rows(),
        "t_spmm {}x{} × {}x{}",
        a.rows(),
        a.cols(),
        h.rows(),
        h.cols()
    );
    let (col_ptr, entries) = a.csc_groups();
    let mut out = Matrix::zeros(a.cols(), h.cols());
    run_partitioned(&mut out, threads, |lo, hi, block| {
        a.t_spmm_block(h, &col_ptr, &entries, lo, hi, block)
    });
    out
}

/// Map `f` over `0..n` on the configured number of threads, preserving input
/// order in the output. Items are dealt round-robin to workers, each worker
/// runs serially (nested kernels see a `with_threads(1)` override), and the
/// results are reassembled by index — so the output is identical to
/// `(0..n).map(f).collect()` regardless of thread count. This is the
/// batching primitive behind `glint-gnn`'s mini-batch gradient accumulation
/// and `glint-core`'s batch scoring.
pub fn ordered_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = current_threads().min(n.max(1));
    if threads <= 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    crossbeam::thread::scope(|s| {
        let mut rest = slots.as_mut_slice();
        let mut handles = Vec::with_capacity(threads);
        // contiguous partition: worker w owns items [lo, hi)
        for (lo, hi) in partition(n, threads) {
            let (block, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            let f = &f;
            handles.push(s.spawn(move || {
                with_threads(1, || {
                    for (off, slot) in block.iter_mut().enumerate() {
                        *slot = Some(f(lo + off));
                    }
                })
            }));
        }
        for h in handles {
            // glint-lint: allow(hot-unwrap) — a worker panic must propagate
            // to the caller; there is no partial result to salvage
            h.join().expect("ordered_map worker panicked");
        }
    })
    // glint-lint: allow(hot-unwrap) — scope teardown only errs if a worker
    // panicked, which must propagate
    .expect("scoped thread pool failed");
    slots
        .into_iter()
        // glint-lint: allow(hot-unwrap) — the contiguous partition covers
        // every index exactly once, so each slot was written before join
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect(),
        )
    }

    fn random_csr(rng: &mut StdRng, rows: usize, cols: usize, nnz: usize) -> Csr {
        let triplets: Vec<(usize, usize, f32)> = (0..nnz)
            .map(|_| {
                (
                    rng.gen_range(0..rows),
                    rng.gen_range(0..cols),
                    rng.gen_range(-1.0f32..1.0),
                )
            })
            .collect();
        Csr::from_triplets(rows, cols, &triplets)
    }

    /// Shapes big enough to clear MIN_PAR_WORK so the fan-out actually runs.
    #[test]
    fn parallel_kernels_match_serial_bitwise() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = random_matrix(&mut rng, 130, 70);
        let b = random_matrix(&mut rng, 70, 90);
        let c = random_matrix(&mut rng, 130, 90);
        let d = random_matrix(&mut rng, 95, 70);
        let s = random_csr(&mut rng, 300, 260, 9000);
        let h = random_matrix(&mut rng, 260, 40);
        let ht = random_matrix(&mut rng, 300, 40);
        for threads in [2, 3, 8] {
            with_threads(threads, || {
                assert_eq!(matmul(&a, &b), a.matmul(&b));
                assert_eq!(t_matmul(&a, &c), a.t_matmul(&c));
                assert_eq!(matmul_t(&a, &d), a.matmul_t(&d));
                assert_eq!(spmm(&s, &h), s.spmm(&h));
                assert_eq!(t_spmm(&s, &ht), s.t_spmm(&ht));
            });
        }
    }

    #[test]
    fn with_threads_nests_and_restores() {
        let outer = current_threads();
        with_threads(4, || {
            assert_eq!(current_threads(), 4);
            with_threads(1, || assert_eq!(current_threads(), 1));
            assert_eq!(current_threads(), 4);
        });
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn partition_covers_exactly() {
        for (n, parts) in [(10, 3), (3, 10), (0, 4), (16, 4), (7, 1)] {
            let ranges = partition(n, parts);
            let mut next = 0;
            for (lo, hi) in ranges {
                assert_eq!(lo, next);
                assert!(hi >= lo);
                next = hi;
            }
            assert_eq!(next, n);
        }
    }

    #[test]
    fn ordered_map_preserves_order() {
        for threads in [1, 2, 5] {
            let out = with_threads(threads, || ordered_map(23, |i| i * i));
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
        assert_eq!(ordered_map(0, |i| i), Vec::<usize>::new());
    }
}
