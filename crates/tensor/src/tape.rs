//! Tape-based reverse-mode automatic differentiation.
//!
//! The tape is an append-only arena of nodes; [`Var`] is an index into it.
//! A fresh tape is built per forward pass (graphs here are tiny, so the
//! rebuild cost is negligible), and [`Tape::backward`] walks the arena in
//! reverse, accumulating gradients per node.
//!
//! Fused loss ops ([`Tape::softmax_cross_entropy`], [`Tape::bce_with_logits`],
//! [`Tape::contrastive_pair`]) carry analytic gradients so the numerically
//! delicate parts never go through the generic op graph.

use crate::{Csr, Matrix};

/// Strict-mode dynamic checks (`--features strict`): shape, bounds, and
/// finiteness contracts on every tape op, covering what the token-level
/// linter (`glint-lint`) cannot see statically. Everything is
/// `debug_assert!`-based, so even with the feature on, release builds pay
/// nothing; with the feature off this module does not exist.
#[cfg(feature = "strict")]
mod strict {
    use crate::{Csr, Matrix};

    pub fn shape_eq(op: &str, a: &Matrix, b: &Matrix) {
        debug_assert_eq!(a.shape(), b.shape(), "strict: `{op}` operand shapes differ");
    }

    pub fn matmul_dims(op: &str, a: &Matrix, b: &Matrix) {
        debug_assert_eq!(
            a.cols(),
            b.rows(),
            "strict: `{op}` inner dimensions differ ({}x{} × {}x{})",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        );
    }

    pub fn spmm_operands(adj: &Csr, h: &Matrix) {
        #[cfg(debug_assertions)]
        adj.validate();
        debug_assert_eq!(
            adj.cols(),
            h.rows(),
            "strict: spmm adjacency cols must equal feature rows"
        );
    }

    pub fn bias_shape(x: &Matrix, bias: &Matrix) {
        debug_assert!(
            bias.rows() == 1 && bias.cols() == x.cols(),
            "strict: bias must be 1x{}, got {}x{}",
            x.cols(),
            bias.rows(),
            bias.cols()
        );
    }

    pub fn rows_in_bounds(op: &str, idx: &[usize], rows: usize) {
        debug_assert!(
            idx.iter().all(|&i| i < rows),
            "strict: `{op}` row index out of bounds (rows = {rows})"
        );
    }

    /// Backward contract: each parent gradient matches its parent's value
    /// shape and stays finite.
    pub fn grad_ok(parent: &Matrix, grad: &Matrix) {
        debug_assert_eq!(
            grad.shape(),
            parent.shape(),
            "strict: gradient shape must equal parent value shape"
        );
        debug_assert!(grad.all_finite(), "strict: non-finite gradient");
    }
}

/// Handle to a tape node.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// Backward function: `(grad_out, parent_values, node_value) -> parent grads`.
///
/// A `None` entry means "identity pass-through": that parent's gradient is
/// `grad_out` itself. Ops whose Jacobian w.r.t. a parent is the identity
/// (`add`, `sub`'s first operand, `add_bias`'s input) return `None` instead
/// of cloning `grad_out`, and [`Tape::backward`] accumulates straight from
/// the upstream buffer — no per-edge copy.
type BackFn = Box<dyn Fn(&Matrix, &[&Matrix], &Matrix) -> Vec<Option<Matrix>>>;

struct Node {
    value: Matrix,
    parents: Vec<usize>,
    back: Option<BackFn>,
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
pub struct Grads {
    inner: Vec<Option<Matrix>>,
}

impl Grads {
    /// Gradient of the loss w.r.t. `v`, if `v` participated in the loss.
    pub fn get(&self, v: Var) -> Option<&Matrix> {
        self.inner.get(v.0).and_then(Option::as_ref)
    }

    /// Assemble a gradient set directly, `inner[i]` being the gradient for
    /// `Var(i)`. Used by mini-batch training to feed an optimizer step with
    /// gradients reduced across several per-graph tapes.
    pub fn from_options(inner: Vec<Option<Matrix>>) -> Self {
        Self { inner }
    }

    /// Global L2 norm over a set of vars (for clipping diagnostics).
    pub fn global_norm(&self, vars: &[Var]) -> f32 {
        vars.iter()
            .filter_map(|&v| self.get(v))
            .map(|g| g.data().iter().map(|x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }
}

/// Reverse-mode autodiff tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, parents: Vec<usize>, back: Option<BackFn>) -> Var {
        debug_assert!(value.all_finite(), "non-finite value entering tape");
        self.nodes.push(Node {
            value,
            parents,
            back,
        });
        Var(self.nodes.len() - 1)
    }

    /// Register a leaf (parameter or input). Gradients are accumulated for
    /// every leaf; the caller decides which ones feed an optimizer.
    pub fn var(&mut self, value: Matrix) -> Var {
        self.push(value, Vec::new(), None)
    }

    /// Alias of [`Tape::var`] for readability at call sites with constants.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.var(value)
    }

    /// Current value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    // ---- element-wise binary ----

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        #[cfg(feature = "strict")]
        strict::shape_eq("add", self.value(a), self.value(b));
        let value = self.value(a).add(self.value(b));
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(|_, _, _| vec![None, None])),
        )
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        #[cfg(feature = "strict")]
        strict::shape_eq("sub", self.value(a), self.value(b));
        let value = self.value(a).sub(self.value(b));
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(|g, _, _| vec![None, Some(g.scale(-1.0))])),
        )
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        #[cfg(feature = "strict")]
        strict::shape_eq("mul", self.value(a), self.value(b));
        let value = self.value(a).mul(self.value(b));
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(|g, p, _| {
                vec![Some(g.mul(p[1])), Some(g.mul(p[0]))]
            })),
        )
    }

    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let value = self.value(a).scale(s);
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |g, _, _| vec![Some(g.scale(s))])),
        )
    }

    // ---- linear algebra ----

    // Forward and backward products go through the `par` entry points: they
    // return bitwise-serial results but fan out over threads once the
    // operands clear `par::MIN_PAR_WORK` (tiny graphs stay serial).
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        #[cfg(feature = "strict")]
        strict::matmul_dims("matmul", self.value(a), self.value(b));
        let value = crate::par::matmul(self.value(a), self.value(b));
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(|g, p, _| {
                vec![
                    Some(crate::par::matmul_t(g, p[1])),
                    Some(crate::par::t_matmul(p[0], g)),
                ]
            })),
        )
    }

    /// Sparse propagation `adj × h` with `adj` a constant CSR matrix.
    pub fn spmm(&mut self, adj: &Csr, h: Var) -> Var {
        #[cfg(feature = "strict")]
        strict::spmm_operands(adj, self.value(h));
        let value = crate::par::spmm(adj, self.value(h));
        let adj = adj.clone();
        self.push(
            value,
            vec![h.0],
            Some(Box::new(move |g, _, _| {
                vec![Some(crate::par::t_spmm(&adj, g))]
            })),
        )
    }

    /// Broadcast-add a `1 × c` bias row to every row of `x`.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        #[cfg(feature = "strict")]
        strict::bias_shape(self.value(x), self.value(bias));
        let value = self.value(x).add_row_broadcast(self.value(bias));
        self.push(
            value,
            vec![x.0, bias.0],
            Some(Box::new(|g, _, _| vec![None, Some(g.sum_rows())])),
        )
    }

    /// Affine layer `x × w + bias` (bias broadcast over rows).
    pub fn linear(&mut self, x: Var, w: Var, bias: Var) -> Var {
        let xw = self.matmul(x, w);
        self.add_bias(xw, bias)
    }

    // ---- activations ----

    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| x.max(0.0));
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|g, p, _| {
                vec![Some(g.zip(p[0], |gi, x| if x > 0.0 { gi } else { 0.0 }))]
            })),
        )
    }

    pub fn leaky_relu(&mut self, a: Var, alpha: f32) -> Var {
        let value = self.value(a).map(|x| if x > 0.0 { x } else { alpha * x });
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |g, p, _| {
                vec![Some(
                    g.zip(p[0], |gi, x| if x > 0.0 { gi } else { alpha * gi }),
                )]
            })),
        )
    }

    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|g, _, y| {
                vec![Some(g.zip(y, |gi, yi| gi * yi * (1.0 - yi)))]
            })),
        )
    }

    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::tanh);
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|g, _, y| {
                vec![Some(g.zip(y, |gi, yi| gi * (1.0 - yi * yi)))]
            })),
        )
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let value = self.value(a).softmax_rows();
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|g, _, y| {
                let mut out = Matrix::zeros(y.rows(), y.cols());
                for r in 0..y.rows() {
                    let yr = y.row(r);
                    let gr = g.row(r);
                    let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                    let orow = out.row_mut(r);
                    for ((o, &yi), &gi) in orow.iter_mut().zip(yr).zip(gr) {
                        *o = yi * (gi - dot);
                    }
                }
                vec![Some(out)]
            })),
        )
    }

    /// Inverted dropout with a fixed pre-sampled mask (1.0 = keep). The mask
    /// is expected to be already scaled by `1/keep_prob`.
    pub fn dropout_mask(&mut self, a: Var, mask: &Matrix) -> Var {
        #[cfg(feature = "strict")]
        strict::shape_eq("dropout_mask", self.value(a), mask);
        let value = self.value(a).mul(mask);
        let mask = mask.clone();
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |g, _, _| vec![Some(g.mul(&mask))])),
        )
    }

    // ---- shape ops ----

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let value = self.value(a).transpose();
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|g, _, _| vec![Some(g.transpose())])),
        )
    }

    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).concat_cols(self.value(b));
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(|g, p, _| {
                let ca = p[0].cols();
                let cb = p[1].cols();
                let mut ga = Matrix::zeros(g.rows(), ca);
                let mut gb = Matrix::zeros(g.rows(), cb);
                for r in 0..g.rows() {
                    ga.row_mut(r).copy_from_slice(&g.row(r)[..ca]);
                    gb.row_mut(r).copy_from_slice(&g.row(r)[ca..]);
                }
                vec![Some(ga), Some(gb)]
            })),
        )
    }

    pub fn gather_rows(&mut self, a: Var, idx: &[usize]) -> Var {
        #[cfg(feature = "strict")]
        strict::rows_in_bounds("gather_rows", idx, self.value(a).rows());
        let value = self.value(a).gather_rows(idx);
        let idx = idx.to_vec();
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |g, p, _| {
                let mut out = Matrix::zeros(p[0].rows(), p[0].cols());
                for (r, &i) in idx.iter().enumerate() {
                    for (o, &x) in out.row_mut(i).iter_mut().zip(g.row(r)) {
                        *o += x;
                    }
                }
                vec![Some(out)]
            })),
        )
    }

    /// Column-wise mean over rows → `1 × c` (mean readout).
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let value = self.value(a).mean_rows();
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|g, p, _| {
                let n = p[0].rows().max(1) as f32;
                let mut out = Matrix::zeros(p[0].rows(), p[0].cols());
                for r in 0..p[0].rows() {
                    for (o, &gi) in out.row_mut(r).iter_mut().zip(g.row(0)) {
                        *o = gi / n;
                    }
                }
                vec![Some(out)]
            })),
        )
    }

    /// Column-wise sum over rows → `1 × c` (sum readout, GIN-style).
    pub fn sum_rows_readout(&mut self, a: Var) -> Var {
        let value = self.value(a).sum_rows();
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|g, p, _| {
                let mut out = Matrix::zeros(p[0].rows(), p[0].cols());
                for r in 0..p[0].rows() {
                    out.row_mut(r).copy_from_slice(g.row(0));
                }
                vec![Some(out)]
            })),
        )
    }

    /// Column-wise max over rows → `1 × c` (max readout). Gradient is routed
    /// to the (first) argmax row per column.
    pub fn max_rows(&mut self, a: Var) -> Var {
        let val = self.value(a);
        let mut argmax = vec![0usize; val.cols()];
        for (c, am) in argmax.iter_mut().enumerate() {
            let mut best = f32::NEG_INFINITY;
            for r in 0..val.rows() {
                if val.get(r, c) > best {
                    best = val.get(r, c);
                    *am = r;
                }
            }
        }
        let value = val.max_rows();
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |g, p, _| {
                let mut out = Matrix::zeros(p[0].rows(), p[0].cols());
                for (c, &r) in argmax.iter().enumerate() {
                    out.set(r, c, g.get(0, c));
                }
                vec![Some(out)]
            })),
        )
    }

    /// Mean over all elements → `1 × 1`.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = Matrix::full(1, 1, self.value(a).mean());
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|g, p, _| {
                let n = p[0].len().max(1) as f32;
                vec![Some(Matrix::full(
                    p[0].rows(),
                    p[0].cols(),
                    g.get(0, 0) / n,
                ))]
            })),
        )
    }

    /// Sum over all elements → `1 × 1`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Matrix::full(1, 1, self.value(a).sum());
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|g, p, _| {
                vec![Some(Matrix::full(p[0].rows(), p[0].cols(), g.get(0, 0)))]
            })),
        )
    }

    /// Weighted sum of equally-shaped matrices: `Σ_p w[0,p] · hs[p]`.
    ///
    /// Used for inter-metapath attention fusion: `w` is a `1 × P` attention
    /// row and each `hs[p]` an `n × d` metapath summary.
    pub fn weighted_sum(&mut self, hs: &[Var], w: Var) -> Var {
        assert!(!hs.is_empty());
        assert_eq!(self.value(w).shape(), (1, hs.len()), "weights must be 1×P");
        let shape = self.value(hs[0]).shape();
        let mut value = Matrix::zeros(shape.0, shape.1);
        for (p, &h) in hs.iter().enumerate() {
            assert_eq!(self.value(h).shape(), shape, "weighted_sum shape mismatch");
            value.axpy(self.value(w).get(0, p), self.value(h));
        }
        let mut parents: Vec<usize> = hs.iter().map(|v| v.0).collect();
        parents.push(w.0);
        let n_h = hs.len();
        self.push(
            value,
            parents,
            Some(Box::new(move |g, p, _| {
                let w_val = p[n_h];
                let mut grads: Vec<Option<Matrix>> =
                    (0..n_h).map(|i| Some(g.scale(w_val.get(0, i)))).collect();
                let mut gw = Matrix::zeros(1, n_h);
                for (i, h) in p.iter().take(n_h).enumerate() {
                    gw.set(0, i, g.dot(h));
                }
                grads.push(Some(gw));
                grads
            })),
        )
    }

    // ---- fused losses ----

    /// Class-weighted softmax cross-entropy over logits `n × k` with integer
    /// targets. Implements the classification term of Eq. (2):
    /// `L = Σ w_{y_n} · CE_n / Σ w_{y_n}`.
    pub fn softmax_cross_entropy(
        &mut self,
        logits: Var,
        targets: &[usize],
        class_weights: &[f32],
    ) -> Var {
        let z = self.value(logits);
        assert_eq!(z.rows(), targets.len());
        let probs = z.softmax_rows();
        let weights: Vec<f32> = targets.iter().map(|&t| class_weights[t]).collect();
        let w_sum: f32 = weights.iter().sum::<f32>().max(1e-12);
        let mut loss = 0.0;
        for (r, &t) in targets.iter().enumerate() {
            loss -= weights[r] * probs.get(r, t).max(1e-12).ln();
        }
        loss /= w_sum;
        let targets = targets.to_vec();
        self.push(
            Matrix::full(1, 1, loss),
            vec![logits.0],
            Some(Box::new(move |g, p, _| {
                let probs = p[0].softmax_rows();
                let mut out = probs;
                for (r, &t) in targets.iter().enumerate() {
                    let w = weights[r] / w_sum;
                    for c in 0..out.cols() {
                        let y = if c == t { 1.0 } else { 0.0 };
                        let v = (out.get(r, c) - y) * w * g.get(0, 0);
                        out.set(r, c, v);
                    }
                }
                vec![Some(out)]
            })),
        )
    }

    /// Mean binary cross-entropy with logits; `targets[i] ∈ [0, 1]` pairs with
    /// row `i` of the `n × 1` logit column. Used for the VIPool loss term.
    pub fn bce_with_logits(&mut self, logits: Var, targets: &[f32]) -> Var {
        let z = self.value(logits);
        assert_eq!(z.cols(), 1, "bce expects an n×1 logit column");
        assert_eq!(z.rows(), targets.len());
        let n = targets.len().max(1) as f32;
        let mut loss = 0.0;
        for (r, &t) in targets.iter().enumerate() {
            let x = z.get(r, 0);
            // stable: max(x,0) - x t + ln(1 + e^{-|x|})
            loss += x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln();
        }
        loss /= n;
        let targets = targets.to_vec();
        self.push(
            Matrix::full(1, 1, loss),
            vec![logits.0],
            Some(Box::new(move |g, p, _| {
                let mut out = Matrix::zeros(p[0].rows(), 1);
                for (r, &t) in targets.iter().enumerate() {
                    let x = p[0].get(r, 0);
                    let s = 1.0 / (1.0 + (-x).exp());
                    out.set(r, 0, (s - t) / n * g.get(0, 0));
                }
                vec![Some(out)]
            })),
        )
    }

    /// Contrastive pair loss (Eq. 1) over two `1 × d` embeddings.
    ///
    /// Same label: `‖a − b‖²`. Different label: `max(0, ε − ‖a − b‖)²`.
    pub fn contrastive_pair(&mut self, a: Var, b: Var, same_label: bool, margin: f32) -> Var {
        let av = self.value(a);
        let bv = self.value(b);
        assert_eq!(av.shape(), bv.shape());
        let d2 = av.sq_dist(bv);
        let d = d2.sqrt();
        let loss = if same_label {
            d2
        } else {
            let m = (margin - d).max(0.0);
            m * m
        };
        self.push(
            Matrix::full(1, 1, loss),
            vec![a.0, b.0],
            Some(Box::new(move |g, p, _| {
                let diff = p[0].sub(p[1]);
                let d = diff.norm();
                let coeff = if same_label {
                    2.0
                } else if d < margin && d > 1e-12 {
                    -2.0 * (margin - d) / d
                } else {
                    0.0
                };
                let ga = diff.scale(coeff * g.get(0, 0));
                let gb = ga.scale(-1.0);
                vec![Some(ga), Some(gb)]
            })),
        )
    }

    // ---- backward ----

    /// Run reverse-mode accumulation from a scalar (`1 × 1`) loss node.
    pub fn backward(&self, loss: Var) -> Grads {
        let _span = glint_trace::span("tape_backward");
        if glint_trace::enabled() {
            glint_trace::counter("tensor.backward.calls", 1);
            glint_trace::counter("tensor.backward.nodes", self.nodes.len() as u64);
        }
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        let mut grads: Vec<Option<Matrix>> = Vec::with_capacity(self.nodes.len());
        grads.resize_with(self.nodes.len(), || None);
        grads[loss.0] = Some(Matrix::full(1, 1, 1.0));
        for i in (0..=loss.0).rev() {
            // Parents are strictly earlier in the append-only arena, so the
            // split lets us read this node's gradient while scattering into
            // parent slots without cloning it first.
            let (earlier, later) = grads.split_at_mut(i);
            let Some(g) = later[0].as_ref() else { continue };
            let node = &self.nodes[i];
            let Some(back) = &node.back else { continue };
            let parent_vals: Vec<&Matrix> =
                node.parents.iter().map(|&p| &self.nodes[p].value).collect();
            let pgrads = back(g, &parent_vals, &node.value);
            debug_assert_eq!(pgrads.len(), node.parents.len());
            #[cfg(feature = "strict")]
            for (pv, pg) in parent_vals.iter().zip(&pgrads) {
                strict::grad_ok(pv, pg.as_ref().unwrap_or(g));
            }
            for (&p, pg) in node.parents.iter().zip(pgrads) {
                debug_assert!(p < i, "tape parent must precede its node");
                match (&mut earlier[p], pg) {
                    (Some(acc), Some(pg)) => acc.axpy(1.0, &pg),
                    (Some(acc), None) => acc.axpy(1.0, g),
                    (slot @ None, Some(pg)) => *slot = Some(pg),
                    (slot @ None, None) => *slot = Some(g.clone()),
                }
            }
        }
        Grads { inner: grads }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_mul_chain_gradient() {
        // f = sum((a + b) ∘ a); df/da = (2a + b), df/db = a
        let mut t = Tape::new();
        let a = t.var(Matrix::row_vector(vec![1.0, 2.0]));
        let b = t.var(Matrix::row_vector(vec![3.0, 4.0]));
        let s = t.add(a, b);
        let m = t.mul(s, a);
        let loss = t.sum_all(m);
        assert_eq!(t.value(loss).get(0, 0), 1.0 * 4.0 + 2.0 * 6.0);
        let g = t.backward(loss);
        assert_eq!(g.get(a).unwrap().data(), &[5.0, 8.0]);
        assert_eq!(g.get(b).unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn matmul_gradient_shapes() {
        let mut t = Tape::new();
        let a = t.var(Matrix::zeros(3, 4));
        let b = t.var(Matrix::zeros(4, 2));
        let c = t.matmul(a, b);
        let loss = t.sum_all(c);
        let g = t.backward(loss);
        assert_eq!(g.get(a).unwrap().shape(), (3, 4));
        assert_eq!(g.get(b).unwrap().shape(), (4, 2));
    }

    #[test]
    fn sigmoid_gradient_at_zero() {
        let mut t = Tape::new();
        let a = t.var(Matrix::full(1, 1, 0.0));
        let s = t.sigmoid(a);
        let loss = t.sum_all(s);
        let g = t.backward(loss);
        // dσ/dx at 0 = 0.25
        assert!((g.get(a).unwrap().get(0, 0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn softmax_ce_gradient_is_p_minus_y() {
        let mut t = Tape::new();
        let logits = t.var(Matrix::from_rows(&[vec![1.0, 2.0]]));
        let loss = t.softmax_cross_entropy(logits, &[1], &[1.0, 1.0]);
        let g = t.backward(loss);
        let probs = Matrix::from_rows(&[vec![1.0, 2.0]]).softmax_rows();
        let gl = g.get(logits).unwrap();
        assert!((gl.get(0, 0) - probs.get(0, 0)).abs() < 1e-6);
        assert!((gl.get(0, 1) - (probs.get(0, 1) - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn contrastive_same_label_pulls_together() {
        let mut t = Tape::new();
        let a = t.var(Matrix::row_vector(vec![1.0, 0.0]));
        let b = t.var(Matrix::row_vector(vec![0.0, 0.0]));
        let loss = t.contrastive_pair(a, b, true, 1.0);
        assert!((t.value(loss).get(0, 0) - 1.0).abs() < 1e-6);
        let g = t.backward(loss);
        // gradient on a points away from b (loss decreases by moving a to b)
        assert!(g.get(a).unwrap().get(0, 0) > 0.0);
    }

    #[test]
    fn contrastive_diff_label_beyond_margin_is_zero() {
        let mut t = Tape::new();
        let a = t.var(Matrix::row_vector(vec![10.0, 0.0]));
        let b = t.var(Matrix::row_vector(vec![0.0, 0.0]));
        let loss = t.contrastive_pair(a, b, false, 1.0);
        assert_eq!(t.value(loss).get(0, 0), 0.0);
        let g = t.backward(loss);
        assert_eq!(g.get(a).unwrap().data(), &[0.0, 0.0]);
    }

    #[test]
    fn gather_rows_scatter_adds() {
        let mut t = Tape::new();
        let a = t.var(Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]));
        let g1 = t.gather_rows(a, &[0, 0, 2]);
        let loss = t.sum_all(g1);
        let g = t.backward(loss);
        assert_eq!(g.get(a).unwrap().data(), &[2.0, 0.0, 1.0]);
    }

    #[test]
    fn weighted_sum_gradients() {
        let mut t = Tape::new();
        let h0 = t.var(Matrix::row_vector(vec![1.0, 2.0]));
        let h1 = t.var(Matrix::row_vector(vec![3.0, 4.0]));
        let w = t.var(Matrix::row_vector(vec![0.25, 0.75]));
        let out = t.weighted_sum(&[h0, h1], w);
        assert_eq!(t.value(out).data(), &[0.25 + 2.25, 0.5 + 3.0]);
        let loss = t.sum_all(out);
        let g = t.backward(loss);
        assert_eq!(g.get(h0).unwrap().data(), &[0.25, 0.25]);
        assert_eq!(g.get(w).unwrap().data(), &[3.0, 7.0]);
    }

    #[test]
    fn max_rows_routes_gradient_to_argmax() {
        let mut t = Tape::new();
        let a = t.var(Matrix::from_rows(&[vec![1.0, 5.0], vec![3.0, 2.0]]));
        let m = t.max_rows(a);
        assert_eq!(t.value(m).data(), &[3.0, 5.0]);
        let loss = t.sum_all(m);
        let g = t.backward(loss);
        assert_eq!(g.get(a).unwrap().data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn diamond_graph_accumulates_both_paths() {
        // loss = sum(a + a) => grad a = 2
        let mut t = Tape::new();
        let a = t.var(Matrix::full(1, 1, 3.0));
        let s = t.add(a, a);
        let loss = t.sum_all(s);
        let g = t.backward(loss);
        assert_eq!(g.get(a).unwrap().get(0, 0), 2.0);
    }
}
