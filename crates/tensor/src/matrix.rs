//! Row-major dense `f32` matrix with the kernel set GNN training needs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major `f32` matrix.
///
/// Vectors are represented as `1 × n` or `n × 1` matrices. All binary ops
/// panic on shape mismatch — shape errors are programming errors in this
/// workspace, not runtime conditions.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        if glint_trace::enabled() {
            glint_trace::counter("tensor.alloc.matrices", 1);
            glint_trace::counter("tensor.alloc.elements", (rows * cols) as u64);
        }
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create from a flat row-major buffer. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Create from nested rows (test convenience).
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// A `1 × n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let n = data.len();
        Self {
            rows: 1,
            cols: n,
            data,
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Per-row flags: is every element of the row finite? The zero-skip fast
    /// paths below may only skip a `0 × b_row` product when that product is
    /// exactly zero, i.e. when `b_row` has no NaN/Inf (IEEE 754: `0 × NaN`
    /// and `0 × ∞` are NaN and must reach the accumulator).
    pub(crate) fn finite_rows(&self) -> Vec<bool> {
        (0..self.rows)
            .map(|r| self.row(r).iter().all(|v| v.is_finite()))
            .collect()
    }

    /// Matrix product `self × rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul {}x{} × {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let b_finite = rhs.finite_rows();
        matmul_block(self, rhs, &b_finite, 0, self.rows, &mut out.data);
        out
    }

    /// `selfᵀ × rhs` without materializing the transpose.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul {}x{} × {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        let b_finite = rhs.finite_rows();
        t_matmul_block(self, rhs, &b_finite, 0, self.cols, &mut out.data);
        out
    }

    /// `self × rhsᵀ` without materializing the transpose.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t {}x{} × {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        matmul_t_block(self, rhs, 0, self.rows, &mut out.data);
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise binary zip into a new matrix. Panics on shape mismatch.
    pub fn zip(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a + b)
    }

    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a - b)
    }

    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a * b)
    }

    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Accumulate `alpha * rhs` into `self`.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Add a `1 × cols` row vector to every row (broadcast bias add).
    /// Written in one pass straight into the output buffer — no
    /// clone-then-mutate round trip over the input.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut data = Vec::with_capacity(self.data.len());
        for r in 0..self.rows {
            for (&x, &b) in self.row(r).iter().zip(&bias.data) {
                data.push(x + b);
            }
        }
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place variant of [`add_row_broadcast`](Self::add_row_broadcast):
    /// `self[r][c] += bias[c]` — identical arithmetic, zero allocations.
    pub fn add_row_broadcast_inplace(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        for row in self.data.chunks_mut(bias.cols.max(1)) {
            for (o, &b) in row.iter_mut().zip(&bias.data) {
                *o += b;
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column-wise mean: returns a `1 × cols` matrix.
    pub fn mean_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        for r in 0..self.rows {
            for (o, &x) in out.data.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        let inv = 1.0 / self.rows as f32;
        out.map_inplace(|x| x * inv);
        out
    }

    /// Column-wise max: returns a `1 × cols` matrix (−∞ on zero rows).
    pub fn max_rows(&self) -> Matrix {
        let mut out = Matrix::full(1, self.cols, f32::NEG_INFINITY);
        for r in 0..self.rows {
            for (o, &x) in out.data.iter_mut().zip(self.row(r)) {
                if x > *o {
                    *o = x;
                }
            }
        }
        out
    }

    /// Column-wise sum: returns a `1 × cols` matrix.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &x) in out.data.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Row-wise softmax (numerically stabilized). Exponentials are written
    /// straight into the output buffer — no clone-then-mutate round trip.
    pub fn softmax_rows(&self) -> Matrix {
        let mut data = Vec::with_capacity(self.data.len());
        for r in 0..self.rows {
            let row = self.row(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let start = data.len();
            let mut sum = 0.0;
            for &x in row {
                let e = (x - max).exp();
                sum += e;
                data.push(e);
            }
            if sum > 0.0 {
                for x in &mut data[start..] {
                    *x /= sum;
                }
            }
        }
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place variant of [`softmax_rows`](Self::softmax_rows): identical
    /// per-row max/exp/normalize arithmetic, zero allocations.
    pub fn softmax_rows_inplace(&mut self) {
        for row in self.data.chunks_mut(self.cols.max(1)) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            if sum > 0.0 {
                for x in row.iter_mut() {
                    *x /= sum;
                }
            }
        }
    }

    /// Gather rows by index into a new matrix.
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (o, &i) in idx.iter().enumerate() {
            out.row_mut(o).copy_from_slice(self.row(i));
        }
        out
    }

    /// Horizontal concatenation `[self | rhs]`.
    pub fn concat_cols(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "concat_cols row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.data[r * out.cols..r * out.cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * out.cols + self.cols..(r + 1) * out.cols].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Vertical concatenation (stack on top of each other).
    pub fn concat_rows(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "concat_rows col mismatch");
        let mut data = Vec::with_capacity((self.rows + rhs.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&rhs.data);
        Matrix {
            rows: self.rows + rhs.rows,
            cols: self.cols,
            data,
        }
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Squared Euclidean distance between two equally-shaped matrices.
    pub fn sq_dist(&self, rhs: &Matrix) -> f32 {
        assert_eq!(self.shape(), rhs.shape());
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Dot product treating both matrices as flat vectors.
    pub fn dot(&self, rhs: &Matrix) -> f32 {
        assert_eq!(self.len(), rhs.len());
        self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).sum()
    }

    /// Index of the maximum element in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

// ---------------------------------------------------------------------------
// Block kernels.
//
// Each function computes output rows `[row_lo, row_hi)` into `out_block`, a
// slice covering exactly those rows of the (zero-initialized) result buffer.
// The serial entry points above call them over the full row range; the
// parallel layer (`par`) hands each worker a disjoint block via
// `split_at_mut`. Because each output element is accumulated by exactly one
// worker using exactly the serial per-element loop, the parallel results are
// bitwise identical to the serial ones at any thread count.
// ---------------------------------------------------------------------------

/// Rows `[row_lo, row_hi)` of `a × rhs`. `b_finite` must be `rhs.finite_rows()`.
pub(crate) fn matmul_block(
    a: &Matrix,
    rhs: &Matrix,
    b_finite: &[bool],
    row_lo: usize,
    row_hi: usize,
    out_block: &mut [f32],
) {
    debug_assert_eq!(out_block.len(), (row_hi - row_lo) * rhs.cols);
    // ikj loop order: stream rhs rows, accumulate into the output row.
    for i in row_lo..row_hi {
        let a_row = a.row(i);
        let out_row = &mut out_block[(i - row_lo) * rhs.cols..(i - row_lo + 1) * rhs.cols];
        for (k, &av) in a_row.iter().enumerate() {
            // glint-lint: allow(float-eq) — deliberate IEEE exact-zero skip:
            // 0 × finite is exactly 0, and non-finite rhs rows disable it so
            // 0 × NaN/inf still propagates
            if av == 0.0 && b_finite[k] {
                continue;
            }
            let b_row = rhs.row(k);
            for (o, &b) in out_row.iter_mut().zip(b_row) {
                *o += av * b;
            }
        }
    }
}

/// Output rows `[row_lo, row_hi)` of `aᵀ × rhs`. Output row `i` is the
/// product of `a`'s column `i` with all of `rhs`; iterating `k` ascending
/// preserves the serial accumulation order for every output element
/// regardless of how the rows are partitioned.
pub(crate) fn t_matmul_block(
    a: &Matrix,
    rhs: &Matrix,
    b_finite: &[bool],
    row_lo: usize,
    row_hi: usize,
    out_block: &mut [f32],
) {
    debug_assert_eq!(out_block.len(), (row_hi - row_lo) * rhs.cols);
    for (k, &k_finite) in b_finite.iter().enumerate() {
        let a_row = a.row(k);
        let b_row = rhs.row(k);
        for (i, &av) in a_row.iter().enumerate().take(row_hi).skip(row_lo) {
            // glint-lint: allow(float-eq) — deliberate IEEE exact-zero skip,
            // same contract as matmul_block above
            if av == 0.0 && k_finite {
                continue;
            }
            let out_row = &mut out_block[(i - row_lo) * rhs.cols..(i - row_lo + 1) * rhs.cols];
            for (o, &b) in out_row.iter_mut().zip(b_row) {
                *o += av * b;
            }
        }
    }
}

/// Output rows `[row_lo, row_hi)` of `a × rhsᵀ`. Pure dot products — every
/// element of both operands reaches the accumulator, so no finite-row
/// bookkeeping is needed.
pub(crate) fn matmul_t_block(
    a: &Matrix,
    rhs: &Matrix,
    row_lo: usize,
    row_hi: usize,
    out_block: &mut [f32],
) {
    debug_assert_eq!(out_block.len(), (row_hi - row_lo) * rhs.rows);
    for i in row_lo..row_hi {
        let a_row = a.row(i);
        for j in 0..rhs.rows {
            let b_row = rhs.row(j);
            let mut acc = 0.0;
            for (&av, &b) in a_row.iter().zip(b_row) {
                acc += av * b;
            }
            out_block[(i - row_lo) * rhs.rows + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_hand_checked() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 0.5]]);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
        let s = m.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // monotone: larger logits get larger mass
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
    }

    #[test]
    fn concat_and_gather() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let b = Matrix::from_rows(&[vec![4.0], vec![5.0], vec![6.0]]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(1), &[2.0, 5.0]);
        let g = c.gather_rows(&[2, 0]);
        assert_eq!(g.row(0), &[3.0, 6.0]);
        assert_eq!(g.row(1), &[1.0, 4.0]);
    }

    #[test]
    fn mean_and_max_rows() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, -2.0]]);
        assert_eq!(m.mean_rows(), Matrix::row_vector(vec![2.0, 4.0]));
        assert_eq!(m.max_rows(), Matrix::row_vector(vec![3.0, 10.0]));
    }

    #[test]
    fn bias_broadcast() {
        let m = Matrix::zeros(2, 3);
        let b = Matrix::row_vector(vec![1.0, 2.0, 3.0]);
        let out = m.add_row_broadcast(&b);
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    /// IEEE 754: `0 × NaN = NaN` and `0 × ∞ = NaN`. The zero-skip fast path
    /// must not swallow them — a NaN that sneaks into an activation must
    /// surface in the product, not vanish behind a sparsity optimization.
    #[test]
    fn matmul_zero_times_nan_propagates() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 0.0]]);
        let b = Matrix::from_rows(&[vec![f32::NAN, 3.0], vec![4.0, 5.0]]);
        let c = a.matmul(&b);
        // row 0: 0×NaN + 1×4 must be NaN, 0×3 + 1×5 is skippable-clean
        assert!(c.get(0, 0).is_nan(), "0 × NaN was skipped: {:?}", c);
        assert!(c.get(1, 0).is_nan(), "2 × NaN lost: {:?}", c);
        let b_inf = Matrix::from_rows(&[vec![f32::INFINITY, 3.0], vec![4.0, 5.0]]);
        assert!(a.matmul(&b_inf).get(0, 0).is_nan(), "0 × ∞ must be NaN");
        // clean zeros still act as exact zeros
        let b_ok = Matrix::from_rows(&[vec![6.0, 3.0], vec![4.0, 5.0]]);
        assert_eq!(
            a.matmul(&b_ok),
            Matrix::from_rows(&[vec![4.0, 5.0], vec![12.0, 6.0]])
        );
    }

    #[test]
    fn t_matmul_zero_times_nan_propagates() {
        // column 0 of `a` is all zeros; b[0][0] is NaN ⇒ out[0][0] = 0 × NaN
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![0.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![f32::NAN, 1.0], vec![2.0, 3.0]]);
        let c = a.t_matmul(&b);
        // out[0][0] = 0×NaN + 0×2 = NaN; out[0][1] = 0×1 + 0×3 = 0 (finite
        // operands: the zero products are exact and may be skipped)
        assert!(c.get(0, 0).is_nan(), "{:?}", c);
        assert_eq!(c.get(0, 1), 0.0);
        assert_eq!(c.get(1, 1), 7.0);
        assert!(c.get(1, 0).is_nan(), "1 × NaN reaches out[1][0]");
        assert!(
            a.transpose().matmul(&b).get(0, 0).is_nan(),
            "explicit transpose agrees"
        );
    }

    #[test]
    fn matmul_t_nan_propagates() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0]]);
        let b = Matrix::from_rows(&[vec![f32::NAN, 2.0], vec![3.0, 4.0]]);
        let c = a.matmul_t(&b);
        assert!(c.get(0, 0).is_nan());
        assert_eq!(c.get(0, 1), 4.0);
    }

    #[test]
    fn argmax_rows_is_deterministic_on_nan() {
        let m = Matrix::from_rows(&[
            vec![0.0, 3.0, 1.0],
            vec![2.0, f32::NAN, f32::INFINITY],
            vec![f32::NAN, f32::NAN, f32::NAN],
        ]);
        // Positive NaN is the maximum of the IEEE total order, so it wins the
        // argmax (deterministically) instead of panicking the comparator;
        // ties resolve to the last index, as Iterator::max_by specifies.
        assert_eq!(m.argmax_rows(), vec![1, 1, 2]);
    }
}
