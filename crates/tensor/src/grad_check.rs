//! Finite-difference gradient checking used by this crate's own tests and by
//! the GNN layer tests upstream.

use crate::tape::{Tape, Var};
use crate::Matrix;

/// Result of a gradient check: worst absolute and relative error seen, plus
/// where it happened (input index, flat element index, analytic value,
/// numeric value) for diagnosing which layer parameter disagrees.
#[derive(Debug, Clone, Copy)]
pub struct CheckReport {
    pub max_abs_err: f32,
    pub max_rel_err: f32,
    pub worst: Option<(usize, usize, f32, f32)>,
}

impl CheckReport {
    /// An element passes when either error is below `tol` (tiny gradients
    /// have meaningless relative error; large ones meaningless absolute
    /// error). The report tracks the worst element by that same criterion,
    /// so the check passes iff every element does.
    pub fn ok(&self, tol: f32) -> bool {
        self.max_abs_err < tol || self.max_rel_err < tol
    }
}

/// Compare analytic gradients against central finite differences.
///
/// `build` receives a fresh tape and the current parameter values (in the same
/// order as `inputs`) and must return the scalar loss var along with the vars
/// bound for each input. Each input is perturbed element-wise with step `h`.
pub fn check_gradients(
    inputs: &[Matrix],
    h: f32,
    build: impl Fn(&mut Tape, &[Matrix]) -> (Var, Vec<Var>),
) -> CheckReport {
    // analytic pass
    let mut tape = Tape::new();
    let (loss, vars) = build(&mut tape, inputs);
    let grads = tape.backward(loss);

    let mut report = CheckReport {
        max_abs_err: 0.0,
        max_rel_err: 0.0,
        worst: None,
    };
    let mut worst_score = f32::NEG_INFINITY;
    for (i, input) in inputs.iter().enumerate() {
        let analytic = grads
            .get(vars[i])
            .cloned()
            .unwrap_or_else(|| Matrix::zeros(input.rows(), input.cols()));
        for k in 0..input.len() {
            let mut plus = inputs.to_vec();
            plus[i].data_mut()[k] += h;
            let mut minus = inputs.to_vec();
            minus[i].data_mut()[k] -= h;
            let mut tp = Tape::new();
            let (lp, _) = build(&mut tp, &plus);
            let mut tm = Tape::new();
            let (lm, _) = build(&mut tm, &minus);
            let numeric = (tp.value(lp).get(0, 0) - tm.value(lm).get(0, 0)) / (2.0 * h);
            let a = analytic.data()[k];
            let abs = (a - numeric).abs();
            let rel = abs / a.abs().max(numeric.abs()).max(1e-6);
            report.max_abs_err = report.max_abs_err.max(abs);
            report.max_rel_err = report.max_rel_err.max(rel);
            // worst element under the pass criterion of `ok`: its smaller
            // error is what has to clear the tolerance
            let score = abs.min(rel);
            if score > worst_score {
                worst_score = score;
                report.worst = Some((i, k, a, numeric));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, Csr};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_sigmoid_pipeline_grad_checks() {
        let mut rng = StdRng::seed_from_u64(42);
        let x = init::uniform(&mut rng, 3, 4, 1.0);
        let w = init::uniform(&mut rng, 4, 2, 1.0);
        let report = check_gradients(&[x, w], 1e-3, |tape, ins| {
            let x = tape.var(ins[0].clone());
            let w = tape.var(ins[1].clone());
            let y = tape.matmul(x, w);
            let s = tape.sigmoid(y);
            let loss = tape.mean_all(s);
            (loss, vec![x, w])
        });
        assert!(report.ok(2e-2), "grad check failed: {report:?}");
    }

    #[test]
    fn spmm_relu_readout_grad_checks() {
        let mut rng = StdRng::seed_from_u64(7);
        let adj = Csr::normalized_adjacency(4, &[(0, 1), (1, 2), (2, 3)]);
        let h = init::uniform(&mut rng, 4, 3, 1.0);
        let report = check_gradients(&[h], 1e-3, |tape, ins| {
            let h = tape.var(ins[0].clone());
            let p = tape.spmm(&adj, h);
            let r = tape.relu(p);
            let m = tape.mean_rows(r);
            let loss = tape.sum_all(m);
            (loss, vec![h])
        });
        assert!(report.ok(2e-2), "grad check failed: {report:?}");
    }

    #[test]
    fn softmax_attention_grad_checks() {
        let mut rng = StdRng::seed_from_u64(13);
        let scores = init::uniform(&mut rng, 1, 3, 1.0);
        let h = init::uniform(&mut rng, 2, 2, 1.0);
        let report = check_gradients(&[scores, h], 1e-3, |tape, ins| {
            let s = tape.var(ins[0].clone());
            let h0 = tape.var(ins[1].clone());
            let h1 = tape.scale(h0, 2.0);
            let h2 = tape.scale(h0, -1.0);
            let w = tape.softmax_rows(s);
            let fused = tape.weighted_sum(&[h0, h1, h2], w);
            let loss = tape.mean_all(fused);
            (loss, vec![s, h0])
        });
        assert!(report.ok(2e-2), "grad check failed: {report:?}");
    }

    #[test]
    fn weighted_ce_grad_checks() {
        let mut rng = StdRng::seed_from_u64(23);
        let logits = init::uniform(&mut rng, 4, 2, 2.0);
        let targets = [0usize, 1, 1, 0];
        let report = check_gradients(&[logits], 1e-3, |tape, ins| {
            let z = tape.var(ins[0].clone());
            let loss = tape.softmax_cross_entropy(z, &targets, &[1.0, 3.0]);
            (loss, vec![z])
        });
        assert!(report.ok(2e-2), "grad check failed: {report:?}");
    }

    #[test]
    fn bce_grad_checks() {
        let mut rng = StdRng::seed_from_u64(29);
        let logits = init::uniform(&mut rng, 5, 1, 2.0);
        let targets = [1.0, 0.0, 1.0, 0.0, 1.0];
        let report = check_gradients(&[logits], 1e-3, |tape, ins| {
            let z = tape.var(ins[0].clone());
            let loss = tape.bce_with_logits(z, &targets);
            (loss, vec![z])
        });
        assert!(report.ok(2e-2), "grad check failed: {report:?}");
    }

    #[test]
    fn contrastive_grad_checks_both_branches() {
        let mut rng = StdRng::seed_from_u64(31);
        for same in [true, false] {
            let a = init::uniform(&mut rng, 1, 4, 0.4);
            let b = init::uniform(&mut rng, 1, 4, 0.4);
            let report = check_gradients(&[a, b], 1e-3, |tape, ins| {
                let a = tape.var(ins[0].clone());
                let b = tape.var(ins[1].clone());
                let loss = tape.contrastive_pair(a, b, same, 10.0);
                (loss, vec![a, b])
            });
            assert!(
                report.ok(3e-2),
                "grad check failed (same={same}): {report:?}"
            );
        }
    }
}
