//! Parameter initialization (seeded, deterministic).

use crate::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Glorot/Xavier uniform: `U(−√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
pub fn xavier_uniform(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-limit..=limit))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Kaiming/He uniform for ReLU fan-in.
pub fn kaiming_uniform(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let limit = (6.0 / rows as f32).sqrt();
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-limit..=limit))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Uniform in `[-limit, limit]`.
pub fn uniform(rng: &mut StdRng, rows: usize, cols: usize, limit: f32) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-limit..=limit))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Approximately standard-normal entries scaled by `std` (sum of uniforms).
pub fn normal(rng: &mut StdRng, rows: usize, cols: usize, std: f32) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| {
            // Irwin–Hall(12) − 6 ≈ N(0, 1)
            let s: f32 = (0..12).map(|_| rng.gen_range(0.0f32..1.0)).sum();
            (s - 6.0) * std
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_limit_and_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = xavier_uniform(&mut rng, 10, 20);
        let limit = (6.0f32 / 30.0).sqrt();
        assert!(m.data().iter().all(|x| x.abs() <= limit));
        let mut rng2 = StdRng::seed_from_u64(7);
        assert_eq!(m, xavier_uniform(&mut rng2, 10, 20));
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = normal(&mut rng, 100, 100, 1.0);
        let mean = m.mean();
        let var = m
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / m.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
