//! Tape-free forward-only execution with pooled activation buffers.
//!
//! Training needs the autograd tape: every op records its value and a
//! backward closure, and every intermediate activation must stay alive
//! until `backward` runs. Serving needs none of that — `BENCH_trace.json`
//! showed the detector paying the full tape price per assessment (~29.8k
//! matrix allocations / 2.28M elements over a 105-step run) just to throw
//! the tape away. This module is the serving-side substrate:
//!
//! - [`BufferPool`] — a free list of activation buffers. Acquiring a matrix
//!   reuses a previously released buffer when one is large enough
//!   (re-zeroed, so the row-partitioned accumulation kernels see exactly
//!   the state a fresh `Matrix::zeros` would give them); only a miss
//!   allocates, and only a miss ticks the `tensor.alloc.*` counters.
//! - [`InferCtx`] — the pool plus forward kernels mirroring the tape op
//!   set. Products go through `par::{matmul_into, spmm_into}`, which share
//!   the dispatch thresholds, the `GLINT_THREADS` fan-out and the exact
//!   `*_block` kernels of the tape path — results are **bitwise
//!   identical** to a tape forward at any thread count (property-tested in
//!   `crates/gnn/tests/infer_equiv.rs`).
//! - Fused affine+activation kernels ([`InferCtx::linear_relu`],
//!   [`InferCtx::linear_sigmoid`]) and in-place element-wise helpers: the
//!   bias add and the activation are applied in one pass over the product
//!   buffer. Fusion here is *element-wise only* — each output element sees
//!   the same sequence of f32 operations as the unfused tape ops, so
//!   bitwise equivalence survives. Matmul/spmm accumulation is never fused
//!   into an existing accumulator (that would reorder the floating-point
//!   reduction).
//! - [`with_ctx`] — a thread-local context. Repeated assessments on a
//!   persistent thread reach a steady state where the pool serves every
//!   activation and the serving path stops allocating matrices entirely.
//!
//! The tape stays authoritative for training: gradients, strict-mode
//! checks and the optimizer all hang off it. This module only ever
//! re-implements *value* computation, and the equivalence proptests pin it
//! to the tape op-for-op.

use crate::{Csr, Matrix};
use std::cell::RefCell;

/// Upper bound on retained free buffers — the working set of one forward
/// pass is far below this; the cap only guards against pathological churn.
const MAX_POOLED: usize = 512;

/// Free list of activation buffers, recycled across forward passes.
#[derive(Default)]
pub struct BufferPool {
    free: Vec<Vec<f32>>,
}

impl BufferPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffers currently sitting in the free list (test hook for
    /// the no-growth-after-warm-up invariant).
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// A zeroed `rows × cols` matrix: recycled from the free list when a
    /// buffer with enough capacity exists, freshly allocated otherwise.
    /// Only the miss path allocates (and ticks `tensor.alloc.*`).
    pub fn acquire(&mut self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        if let Some(pos) = self.free.iter().position(|b| b.capacity() >= len) {
            let mut buf = self.free.swap_remove(pos);
            buf.clear();
            buf.resize(len, 0.0);
            if glint_trace::enabled() {
                glint_trace::counter("infer.pool.hits", 1);
            }
            return Matrix::from_vec(rows, cols, buf);
        }
        if glint_trace::enabled() {
            glint_trace::counter("infer.pool.misses", 1);
        }
        Matrix::zeros(rows, cols)
    }

    /// Return a matrix's buffer to the free list.
    pub fn release(&mut self, m: Matrix) {
        if self.free.len() < MAX_POOLED {
            self.free.push(m.into_vec());
        }
    }
}

/// Forward-only execution context: a [`BufferPool`] plus the tape op set
/// re-expressed as pooled/in-place kernels. Every method documents which
/// tape op it mirrors; the arithmetic is identical element for element.
#[derive(Default)]
pub struct InferCtx {
    pool: BufferPool,
}

impl InferCtx {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Pooled zeroed matrix (see [`BufferPool::acquire`]).
    pub fn acquire(&mut self, rows: usize, cols: usize) -> Matrix {
        self.pool.acquire(rows, cols)
    }

    /// Pooled matrix filled with a constant (mirrors `Matrix::full`).
    pub fn filled(&mut self, rows: usize, cols: usize, value: f32) -> Matrix {
        let mut m = self.pool.acquire(rows, cols);
        for x in m.data_mut() {
            *x = value;
        }
        m
    }

    /// Pooled copy of an existing matrix.
    pub fn copy_of(&mut self, src: &Matrix) -> Matrix {
        let mut m = self.pool.acquire(src.rows(), src.cols());
        m.data_mut().copy_from_slice(src.data());
        m
    }

    /// Hand an activation back for reuse.
    pub fn release(&mut self, m: Matrix) {
        self.pool.release(m);
    }

    // ---- products (mirror `Tape::matmul` / `Tape::spmm`) ----

    /// `a × b` into a pooled buffer via [`crate::par::matmul_into`].
    pub fn matmul(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = self.pool.acquire(a.rows(), b.cols());
        crate::par::matmul_into(a, b, &mut out);
        out
    }

    /// Sparse `adj × h` into a pooled buffer via [`crate::par::spmm_into`].
    pub fn spmm(&mut self, adj: &Csr, h: &Matrix) -> Matrix {
        let mut out = self.pool.acquire(adj.rows(), h.cols());
        crate::par::spmm_into(adj, h, &mut out);
        out
    }

    // ---- fused affine (+ activation) kernels (mirror `Tape::linear`) ----

    /// Affine layer `x × w + bias` — the bias broadcast is applied in place
    /// on the product buffer (one pass, no `add_row_broadcast` copy).
    pub fn linear(&mut self, x: &Matrix, w: &Matrix, bias: &Matrix) -> Matrix {
        let mut out = self.matmul(x, w);
        out.add_row_broadcast_inplace(bias);
        out
    }

    /// Fused `relu(x × w + bias)`: bias add and activation in a single pass
    /// over each product element — same f32 sequence as `linear` + `relu`.
    pub fn linear_relu(&mut self, x: &Matrix, w: &Matrix, bias: &Matrix) -> Matrix {
        let mut out = self.matmul(x, w);
        fused_bias_act(&mut out, bias, |v| v.max(0.0));
        out
    }

    /// Fused `sigmoid(x × w + bias)` — see [`linear_relu`](Self::linear_relu).
    pub fn linear_sigmoid(&mut self, x: &Matrix, w: &Matrix, bias: &Matrix) -> Matrix {
        let mut out = self.matmul(x, w);
        fused_bias_act(&mut out, bias, |v| 1.0 / (1.0 + (-v).exp()));
        out
    }

    // ---- shape ops (mirror the corresponding tape ops) ----

    /// Horizontal concatenation `[a | b]` (mirrors `Tape::concat_cols`).
    pub fn concat_cols(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows(), b.rows(), "concat_cols row mismatch");
        let (ca, cb) = (a.cols(), b.cols());
        let mut out = self.pool.acquire(a.rows(), ca + cb);
        for r in 0..a.rows() {
            let (left, right) = out.row_mut(r).split_at_mut(ca);
            left.copy_from_slice(a.row(r));
            right.copy_from_slice(b.row(r));
        }
        out
    }

    /// Gather rows by index (mirrors `Tape::gather_rows`).
    pub fn gather_rows(&mut self, a: &Matrix, idx: &[usize]) -> Matrix {
        let mut out = self.pool.acquire(idx.len(), a.cols());
        for (o, &i) in idx.iter().enumerate() {
            out.row_mut(o).copy_from_slice(a.row(i));
        }
        out
    }

    /// Column-wise mean → `1 × c` (mirrors `Tape::mean_rows`; identical
    /// accumulate-then-scale order to `Matrix::mean_rows`).
    pub fn mean_rows(&mut self, a: &Matrix) -> Matrix {
        let mut out = self.pool.acquire(1, a.cols());
        if a.rows() == 0 {
            return out;
        }
        for r in 0..a.rows() {
            for (o, &x) in out.data_mut().iter_mut().zip(a.row(r)) {
                *o += x;
            }
        }
        let inv = 1.0 / a.rows() as f32;
        out.map_inplace(|x| x * inv);
        out
    }

    /// Column-wise max → `1 × c` (mirrors `Tape::max_rows` / `Matrix::max_rows`:
    /// starts from −∞, strict `>` update).
    pub fn max_rows(&mut self, a: &Matrix) -> Matrix {
        let mut out = self.filled(1, a.cols(), f32::NEG_INFINITY);
        for r in 0..a.rows() {
            for (o, &x) in out.data_mut().iter_mut().zip(a.row(r)) {
                if x > *o {
                    *o = x;
                }
            }
        }
        out
    }

    /// Column-wise sum → `1 × c` (mirrors `Tape::sum_rows_readout`).
    pub fn sum_rows(&mut self, a: &Matrix) -> Matrix {
        let mut out = self.pool.acquire(1, a.cols());
        for r in 0..a.rows() {
            for (o, &x) in out.data_mut().iter_mut().zip(a.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// `Σ_p w[0,p] · hs[p]` (mirrors `Tape::weighted_sum`: a zeroed
    /// accumulator receiving the same `axpy` sequence in order).
    pub fn weighted_sum(&mut self, hs: &[&Matrix], w: &Matrix) -> Matrix {
        assert!(!hs.is_empty());
        assert_eq!(w.shape(), (1, hs.len()), "weights must be 1×P");
        let shape = hs[0].shape();
        let mut out = self.pool.acquire(shape.0, shape.1);
        for (p, h) in hs.iter().enumerate() {
            assert_eq!(h.shape(), shape, "weighted_sum shape mismatch");
            out.axpy(w.get(0, p), h);
        }
        out
    }
}

/// One fused pass over the product buffer: `out[r][c] = act(out[r][c] + bias[c])`.
/// Each element sees exactly the unfused sequence (bias add, then the
/// activation applied to that sum), so fusion preserves bitwise equality.
fn fused_bias_act(out: &mut Matrix, bias: &Matrix, act: impl Fn(f32) -> f32) {
    assert_eq!(bias.rows(), 1, "bias must be a row vector");
    assert_eq!(bias.cols(), out.cols(), "bias width mismatch");
    let cols = out.cols().max(1);
    for row in out.data_mut().chunks_mut(cols) {
        for (o, &b) in row.iter_mut().zip(bias.data()) {
            *o = act(*o + b);
        }
    }
}

// ---- in-place element-wise helpers (mirror the tape's value maps) ----

/// `a += b` element-wise (mirrors `Tape::add`'s `a + b` value).
pub fn add_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "add_assign shape mismatch");
    for (x, &y) in a.data_mut().iter_mut().zip(b.data()) {
        *x += y;
    }
}

/// `a *= b` element-wise (mirrors `Tape::mul`'s Hadamard value).
pub fn mul_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "mul_assign shape mismatch");
    for (x, &y) in a.data_mut().iter_mut().zip(b.data()) {
        *x *= y;
    }
}

/// In-place ReLU (mirrors `Tape::relu`'s `x.max(0.0)` map).
pub fn relu_inplace(m: &mut Matrix) {
    m.map_inplace(|x| x.max(0.0));
}

/// In-place logistic sigmoid (mirrors `Tape::sigmoid`'s map).
pub fn sigmoid_inplace(m: &mut Matrix) {
    m.map_inplace(|x| 1.0 / (1.0 + (-x).exp()));
}

/// In-place tanh (mirrors `Tape::tanh`'s map).
pub fn tanh_inplace(m: &mut Matrix) {
    m.map_inplace(f32::tanh);
}

thread_local! {
    static CTX: RefCell<InferCtx> = RefCell::new(InferCtx::new());
}

/// Run `f` with this thread's persistent inference context. Buffers
/// released back to the context are reused by later calls on the same
/// thread, which is what makes repeated assessments allocation-free at
/// steady state. A nested call (the context is already borrowed higher up
/// this thread's stack) runs on a fresh scratch context instead of
/// panicking the `RefCell`.
pub fn with_ctx<R>(f: impl FnOnce(&mut InferCtx) -> R) -> R {
    CTX.with(|c| match c.try_borrow_mut() {
        Ok(mut ctx) => f(&mut ctx),
        Err(_) => f(&mut InferCtx::new()),
    })
}

/// Free-buffer count of this thread's persistent pool (test hook).
pub fn thread_pool_free_buffers() -> usize {
    CTX.with(|c| {
        c.try_borrow()
            .map(|ctx| ctx.pool().free_buffers())
            .unwrap_or(0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_matmul_matches_serial() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let mut ctx = InferCtx::new();
        let c = ctx.matmul(&a, &b);
        assert_eq!(c, a.matmul(&b));
        ctx.release(c);
        // second product reuses the released buffer and still matches
        let c2 = ctx.matmul(&b, &a);
        assert_eq!(c2, b.matmul(&a));
        assert_eq!(ctx.pool().free_buffers(), 0);
        ctx.release(c2);
        assert_eq!(ctx.pool().free_buffers(), 1);
    }

    #[test]
    fn fused_linear_matches_unfused_ops_bitwise() {
        let x = Matrix::from_rows(&[vec![0.5, -1.5], vec![2.0, 0.25]]);
        let w = Matrix::from_rows(&[vec![1.0, -2.0, 0.5], vec![0.75, 3.0, -0.125]]);
        let b = Matrix::row_vector(vec![0.1, -0.2, 0.3]);
        let mut ctx = InferCtx::new();
        let reference = x.matmul(&w).add_row_broadcast(&b);
        let lin = ctx.linear(&x, &w, &b);
        for (l, r) in lin.data().iter().zip(reference.data()) {
            assert_eq!(l.to_bits(), r.to_bits());
        }
        let relu_ref = reference.map(|v| v.max(0.0));
        let fused = ctx.linear_relu(&x, &w, &b);
        for (l, r) in fused.data().iter().zip(relu_ref.data()) {
            assert_eq!(l.to_bits(), r.to_bits());
        }
        let sig_ref = reference.map(|v| 1.0 / (1.0 + (-v).exp()));
        let fused_sig = ctx.linear_sigmoid(&x, &w, &b);
        for (l, r) in fused_sig.data().iter().zip(sig_ref.data()) {
            assert_eq!(l.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn pool_reuses_buffers_and_rezeroes() {
        let mut pool = BufferPool::new();
        let mut m = pool.acquire(3, 3);
        m.data_mut().fill(7.0);
        pool.release(m);
        let m2 = pool.acquire(2, 4); // smaller: must fit in the 9-cap buffer
        assert!(m2.data().iter().all(|&x| x == 0.0), "recycled buffer dirty");
        assert_eq!(pool.free_buffers(), 0);
        pool.release(m2);
        assert_eq!(pool.free_buffers(), 1);
    }

    #[test]
    fn readouts_match_matrix_kernels() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, -2.0]]);
        let mut ctx = InferCtx::new();
        assert_eq!(ctx.mean_rows(&m), m.mean_rows());
        assert_eq!(ctx.max_rows(&m), m.max_rows());
        assert_eq!(ctx.sum_rows(&m), m.sum_rows());
        let g = ctx.gather_rows(&m, &[1, 0, 1]);
        assert_eq!(g, m.gather_rows(&[1, 0, 1]));
        let cc = ctx.concat_cols(&m, &g.gather_rows(&[0, 1]));
        assert_eq!(cc.shape(), (2, 4));
        assert_eq!(cc.row(0), &[1.0, 10.0, 3.0, -2.0]);
    }

    #[test]
    fn weighted_sum_matches_tape_formulation() {
        let h0 = Matrix::row_vector(vec![1.0, 2.0]);
        let h1 = Matrix::row_vector(vec![3.0, 4.0]);
        let w = Matrix::row_vector(vec![0.25, 0.75]);
        let mut ctx = InferCtx::new();
        let out = ctx.weighted_sum(&[&h0, &h1], &w);
        let mut reference = Matrix::zeros(1, 2);
        reference.axpy(0.25, &h0);
        reference.axpy(0.75, &h1);
        for (l, r) in out.data().iter().zip(reference.data()) {
            assert_eq!(l.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn nested_with_ctx_does_not_panic() {
        let n = with_ctx(|outer| {
            let m = outer.acquire(2, 2);
            let inner = with_ctx(|inner| inner.acquire(1, 1).len());
            outer.release(m);
            inner
        });
        assert_eq!(n, 1);
    }
}
