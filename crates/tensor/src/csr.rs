//! Compressed-sparse-row matrices for graph propagation.
//!
//! Interaction graphs are tiny (2–50 nodes) but numerous, so the CSR type is
//! optimized for cheap construction from edge lists and fast `A × H`
//! products rather than for mutation.

use crate::Matrix;
use serde::{Deserialize, Serialize};

/// A sparse `rows × cols` matrix in CSR layout.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    rows: usize,
    cols: usize,
    /// `indptr[r]..indptr[r+1]` is the slice of `indices`/`values` for row r.
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f32>,
}

impl Csr {
    /// Build from (row, col, value) triplets. Duplicate coordinates are summed.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        let mut per_row: Vec<Vec<(usize, f32)>> = vec![Vec::new(); rows];
        for &(r, c, v) in triplets {
            assert!(
                r < rows && c < cols,
                "triplet ({r},{c}) out of {rows}x{cols}"
            );
            per_row[r].push((c, v));
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        indptr.push(0);
        for row in &mut per_row {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut last: Option<usize> = None;
            for &(c, v) in row.iter() {
                if last == Some(c) {
                    if let Some(tail) = values.last_mut() {
                        *tail += v;
                    }
                } else {
                    indices.push(c);
                    values.push(v);
                    last = Some(c);
                }
            }
            indptr.push(indices.len());
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Check the structural invariants of the CSR layout: `indptr` has
    /// `rows + 1` monotone entries bracketing `indices`/`values`, and every
    /// column index is in range. Strict mode (`--features strict`) runs this
    /// before each sparse product; it is also a cheap sanity check after
    /// deserializing a persisted matrix.
    pub fn validate(&self) {
        assert_eq!(self.indptr.len(), self.rows + 1, "csr indptr length");
        assert_eq!(self.indptr.first().copied(), Some(0), "csr indptr start");
        assert_eq!(
            self.indptr.last().copied(),
            Some(self.indices.len()),
            "csr indptr end"
        );
        assert!(
            self.indptr.windows(2).all(|w| w[0] <= w[1]),
            "csr indptr must be monotone"
        );
        assert_eq!(
            self.indices.len(),
            self.values.len(),
            "csr indices/values length"
        );
        assert!(
            self.indices.iter().all(|&c| c < self.cols),
            "csr column index out of range"
        );
    }

    /// Identity CSR.
    pub fn eye(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Symmetrically normalized adjacency with self loops:
    /// `Â = D^{-1/2} (A + I) D^{-1/2}` (the GCN propagation matrix).
    ///
    /// `edges` are directed pairs; the adjacency is symmetrized first, as in
    /// the paper's graph classification setting.
    pub fn normalized_adjacency(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut triplets: Vec<(usize, usize, f32)> = Vec::with_capacity(edges.len() * 2 + n);
        // glint-lint: allow(hash-collection, taint-flow) — membership-only
        // dedup set: never iterated, so hash order cannot reach the CSR layout
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of bounds for {n} nodes");
            if seen.insert((u, v)) {
                triplets.push((u, v, 1.0));
            }
            if u != v && seen.insert((v, u)) {
                triplets.push((v, u, 1.0));
            }
        }
        for i in 0..n {
            if seen.insert((i, i)) {
                triplets.push((i, i, 1.0));
            }
        }
        let mut deg = vec![0.0f32; n];
        for &(r, _, v) in &triplets {
            deg[r] += v;
        }
        let inv_sqrt: Vec<f32> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let norm: Vec<(usize, usize, f32)> = triplets
            .into_iter()
            .map(|(r, c, v)| (r, c, v * inv_sqrt[r] * inv_sqrt[c]))
            .collect();
        Self::from_triplets(n, n, &norm)
    }

    /// Row-normalized adjacency `D^{-1} A` (no self loops added), used by
    /// mean-neighbourhood aggregators.
    pub fn row_normalized(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut triplets: Vec<(usize, usize, f32)> = Vec::new();
        // glint-lint: allow(hash-collection, taint-flow) — membership-only
        // dedup set: never iterated, so hash order cannot reach the CSR layout
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in edges {
            assert!(u < n && v < n);
            if seen.insert((u, v)) {
                triplets.push((u, v, 1.0));
            }
            if u != v && seen.insert((v, u)) {
                triplets.push((v, u, 1.0));
            }
        }
        let mut deg = vec![0.0f32; n];
        for &(r, _, _) in &triplets {
            deg[r] += 1.0;
        }
        let norm: Vec<(usize, usize, f32)> = triplets
            .into_iter()
            .map(|(r, c, v)| (r, c, v / deg[r].max(1.0)))
            .collect();
        Self::from_triplets(n, n, &norm)
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterate the stored entries of one row as `(col, value)` pairs.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        self.indices[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Sparse × dense product `self × h`.
    pub fn spmm(&self, h: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            h.rows(),
            "spmm {}x{} × {}x{}",
            self.rows,
            self.cols,
            h.rows(),
            h.cols()
        );
        let mut out = Matrix::zeros(self.rows, h.cols());
        self.spmm_block(h, 0, self.rows, out.data_mut());
        out
    }

    /// Rows `[row_lo, row_hi)` of `self × h` into `out_block` (a
    /// zero-initialized slice covering exactly those output rows). Output
    /// rows are independent in CSR, so the parallel layer partitions them
    /// directly; each element sees the serial accumulation order.
    pub(crate) fn spmm_block(
        &self,
        h: &Matrix,
        row_lo: usize,
        row_hi: usize,
        out_block: &mut [f32],
    ) {
        let w = h.cols();
        debug_assert_eq!(out_block.len(), (row_hi - row_lo) * w);
        for r in row_lo..row_hi {
            let lo = self.indptr[r];
            let hi = self.indptr[r + 1];
            let out_row = &mut out_block[(r - row_lo) * w..(r - row_lo + 1) * w];
            for k in lo..hi {
                let c = self.indices[k];
                let v = self.values[k];
                for (o, &x) in out_row.iter_mut().zip(h.row(c)) {
                    *o += v * x;
                }
            }
        }
    }

    /// Transposed sparse × dense product `selfᵀ × h` (used in backward passes).
    pub fn t_spmm(&self, h: &Matrix) -> Matrix {
        assert_eq!(
            self.rows,
            h.rows(),
            "t_spmm {}x{} × {}x{}",
            self.rows,
            self.cols,
            h.rows(),
            h.cols()
        );
        let mut out = Matrix::zeros(self.cols, h.cols());
        for r in 0..self.rows {
            let lo = self.indptr[r];
            let hi = self.indptr[r + 1];
            let h_row = h.row(r);
            for k in lo..hi {
                let c = self.indices[k];
                let v = self.values[k];
                let out_row = out.row_mut(c);
                for (o, &x) in out_row.iter_mut().zip(h_row) {
                    *o += v * x;
                }
            }
        }
        out
    }

    /// Column-grouped (CSC) view of the stored entries: `(col_ptr, entries)`
    /// where `entries[col_ptr[c]..col_ptr[c + 1]]` lists the `(row, value)`
    /// pairs of column `c` in **ascending row order**. That ordering is what
    /// makes a column-partitioned `t_spmm` bitwise-identical to the serial
    /// scatter loop: serially, output row `c` accumulates its contributions
    /// in ascending source-row order too.
    pub(crate) fn csc_groups(&self) -> (Vec<usize>, Vec<(usize, f32)>) {
        let mut col_ptr = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            col_ptr[c + 1] += 1;
        }
        for c in 0..self.cols {
            col_ptr[c + 1] += col_ptr[c];
        }
        let mut cursor = col_ptr.clone();
        let mut entries = vec![(0usize, 0.0f32); self.values.len()];
        for r in 0..self.rows {
            for k in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[k];
                entries[cursor[c]] = (r, self.values[k]);
                cursor[c] += 1;
            }
        }
        (col_ptr, entries)
    }

    /// Output rows `[col_lo, col_hi)` of `selfᵀ × h` into `out_block`, using
    /// a precomputed [`Self::csc_groups`] view. Each output row (= column of
    /// `self`) is written by exactly one caller, so disjoint column ranges
    /// can run on different threads.
    pub(crate) fn t_spmm_block(
        &self,
        h: &Matrix,
        col_ptr: &[usize],
        entries: &[(usize, f32)],
        col_lo: usize,
        col_hi: usize,
        out_block: &mut [f32],
    ) {
        let w = h.cols();
        debug_assert_eq!(out_block.len(), (col_hi - col_lo) * w);
        for c in col_lo..col_hi {
            let out_row = &mut out_block[(c - col_lo) * w..(c - col_lo + 1) * w];
            for &(r, v) in &entries[col_ptr[c]..col_ptr[c + 1]] {
                for (o, &x) in out_row.iter_mut().zip(h.row(r)) {
                    *o += v * x;
                }
            }
        }
    }

    /// Densify (test/debug helper).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                m.set(r, c, m.get(r, c) + v);
            }
        }
        m
    }

    /// Restrict to a subset of node indices (both rows and columns), keeping
    /// their induced sub-adjacency. `keep` must be sorted & unique.
    pub fn induced_subgraph(&self, keep: &[usize]) -> Csr {
        debug_assert!(
            keep.windows(2).all(|w| w[0] < w[1]),
            "keep must be sorted+unique"
        );
        let mut remap = vec![usize::MAX; self.cols];
        for (new, &old) in keep.iter().enumerate() {
            remap[old] = new;
        }
        let mut triplets = Vec::new();
        for (new_r, &old_r) in keep.iter().enumerate() {
            for (c, v) in self.row_iter(old_r) {
                if remap[c] != usize::MAX {
                    triplets.push((new_r, remap[c], v));
                }
            }
        }
        Csr::from_triplets(keep.len(), keep.len(), &triplets)
    }

    /// True when the matrix is exactly symmetric in its stored pattern+values.
    pub fn is_symmetric(&self, tol: f32) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let d = self.to_dense();
        for r in 0..self.rows {
            for c in 0..r {
                if (d.get(r, c) - d.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_sum_duplicates_and_sort() {
        let m = Csr::from_triplets(2, 3, &[(0, 2, 1.0), (0, 0, 2.0), (0, 2, 3.0), (1, 1, 5.0)]);
        assert_eq!(m.nnz(), 3);
        let d = m.to_dense();
        assert_eq!(d.get(0, 0), 2.0);
        assert_eq!(d.get(0, 2), 4.0);
        assert_eq!(d.get(1, 1), 5.0);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = Csr::from_triplets(3, 3, &[(0, 1, 2.0), (1, 0, 1.0), (2, 2, 3.0)]);
        let h = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.spmm(&h), m.to_dense().matmul(&h));
        assert_eq!(m.t_spmm(&h), m.to_dense().transpose().matmul(&h));
    }

    #[test]
    fn normalized_adjacency_is_symmetric_with_self_loops() {
        let a = Csr::normalized_adjacency(3, &[(0, 1), (1, 2)]);
        assert!(a.is_symmetric(1e-6));
        // path graph: middle node degree 3 (incl. self loop), ends degree 2
        let d = a.to_dense();
        assert!((d.get(0, 0) - 0.5).abs() < 1e-6); // 1/sqrt(2)/sqrt(2)
        assert!((d.get(0, 1) - 1.0 / (2.0f32 * 3.0).sqrt()).abs() < 1e-6);
        // rows of Â need not sum to 1, but every diagonal entry is positive
        for i in 0..3 {
            assert!(d.get(i, i) > 0.0);
        }
    }

    #[test]
    fn row_normalized_rows_sum_to_one_for_connected_nodes() {
        let a = Csr::row_normalized(4, &[(0, 1), (0, 2), (2, 3)]);
        let d = a.to_dense();
        for r in 0..4 {
            let s: f32 = (0..4).map(|c| d.get(r, c)).sum();
            assert!((s - 1.0).abs() < 1e-6, "row {r} sums to {s}");
        }
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let a = Csr::from_triplets(4, 4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        let sub = a.induced_subgraph(&[1, 2]);
        let d = sub.to_dense();
        assert_eq!(d.get(0, 1), 1.0); // old edge 1→2 survives
        assert_eq!(d.get(1, 0), 0.0); // old 2→3 and 3→0 dropped
    }

    #[test]
    fn eye_spmm_is_identity() {
        let h = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(Csr::eye(2).spmm(&h), h);
    }

    /// A stored zero (e.g. `+1` and `-1` triplets summing out) must still
    /// multiply its dense row: `0 × NaN = NaN` has to reach the output.
    #[test]
    fn spmm_stored_zero_times_nan_propagates() {
        let m = Csr::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, -1.0), (1, 1, 2.0)]);
        let h = Matrix::from_rows(&[vec![f32::NAN, 1.0], vec![3.0, 4.0]]);
        let c = m.spmm(&h);
        assert!(c.get(0, 0).is_nan(), "0 × NaN was lost: {:?}", c);
        assert_eq!(c.get(0, 1), 0.0);
        assert_eq!(c.row(1), &[6.0, 8.0]);
    }

    #[test]
    fn t_spmm_nan_propagates() {
        let m = Csr::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 2.0)]);
        let h = Matrix::from_rows(&[vec![f32::NAN, 1.0], vec![3.0, 4.0]]);
        // out = mᵀ × h: out[1][*] pulls h row 0 (NaN), out[0][*] pulls row 1
        let c = m.t_spmm(&h);
        assert!(c.get(1, 0).is_nan(), "{:?}", c);
        assert_eq!(c.row(0), &[6.0, 8.0]);
    }

    #[test]
    fn csc_groups_round_trip() {
        let m = Csr::from_triplets(3, 4, &[(2, 0, 5.0), (0, 0, 1.0), (0, 3, 2.0), (1, 2, 3.0)]);
        let (col_ptr, entries) = m.csc_groups();
        assert_eq!(col_ptr.len(), 5);
        assert_eq!(entries.len(), m.nnz());
        // column 0 lists rows ascending: (0, 1.0) then (2, 5.0)
        assert_eq!(&entries[col_ptr[0]..col_ptr[1]], &[(0, 1.0), (2, 5.0)]);
        assert_eq!(&entries[col_ptr[2]..col_ptr[3]], &[(1, 3.0)]);
        // rebuilding the dense matrix from the groups matches to_dense
        let mut d = Matrix::zeros(3, 4);
        for c in 0..4 {
            for &(r, v) in &entries[col_ptr[c]..col_ptr[c + 1]] {
                d.set(r, c, d.get(r, c) + v);
            }
        }
        assert_eq!(d, m.to_dense());
    }
}
