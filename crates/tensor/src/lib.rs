//! # glint-tensor
//!
//! Dense/sparse numeric substrate for the Glint reproduction.
//!
//! The paper implements its models in PyTorch + DGL; this crate provides the
//! minimal-but-complete stand-in: a row-major [`Matrix`] type with the dense
//! kernels GNN training needs, a CSR sparse matrix ([`csr::Csr`]) for
//! normalized adjacency propagation, a tape-based reverse-mode autograd
//! engine ([`tape::Tape`]), parameter initialization, first-order
//! optimizers (SGD with momentum, Adam), and durable training checkpoints
//! ([`checkpoint`]) for crash-safe resume-exact training.
//!
//! Design notes (following the Rust performance-book idioms):
//! - all tensors are `f32`, row-major, contiguous `Vec<f32>`;
//! - autograd nodes live in an arena indexed by [`tape::Var`] (no `Rc`
//!   cycles, no interior mutability in hot loops);
//! - sparse × dense products iterate CSR rows directly and are the only
//!   graph-propagation primitive the models need.

pub mod checkpoint;
pub mod csr;
pub mod grad_check;
pub mod infer;
pub mod init;
pub mod matrix;
pub mod optim;
pub mod par;
pub mod tape;

pub use checkpoint::{load_checkpoint, save_checkpoint, CheckpointError, TrainCheckpoint};
pub use csr::Csr;
pub use infer::{BufferPool, InferCtx};
pub use matrix::Matrix;
pub use optim::{Adam, AdamState, Optimizer, ParamId, ParamMismatch, ParamSet, Sgd};
pub use tape::{Tape, Var};

/// Numeric tolerance used across the crate's tests and gradient checks.
pub const EPS: f32 = 1e-4;
