//! Parameter containers and first-order optimizers.
//!
//! Models own a [`ParamSet`]; each forward pass binds the parameters onto a
//! fresh [`Tape`] (in registration order) and after `backward` the optimizer
//! applies the gradients back onto the set. Freezing (for the paper's
//! transfer-learning stage, §3.3.4) is a per-parameter flag the optimizers
//! honour.

use crate::tape::{Grads, Tape, Var};
use crate::Matrix;
use serde::{Deserialize, Serialize};

/// Handle to a parameter inside a [`ParamSet`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ParamId(pub usize);

/// Named, orderable collection of trainable matrices.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ParamSet {
    names: Vec<String>,
    mats: Vec<Matrix>,
    frozen: Vec<bool>,
}

impl ParamSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter; returns its stable id.
    pub fn add(&mut self, name: impl Into<String>, mat: Matrix) -> ParamId {
        self.names.push(name.into());
        self.mats.push(mat);
        self.frozen.push(false);
        ParamId(self.mats.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.mats.len()
    }

    pub fn is_empty(&self) -> bool {
        self.mats.is_empty()
    }

    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.mats[id.0]
    }

    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.mats[id.0]
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Bind every parameter onto `tape`, returning vars in registration order.
    pub fn bind(&self, tape: &mut Tape) -> Vec<Var> {
        self.mats.iter().map(|m| tape.var(m.clone())).collect()
    }

    /// Freeze parameters whose name starts with `prefix` (transfer learning).
    /// Returns how many parameters were frozen.
    pub fn freeze_prefix(&mut self, prefix: &str) -> usize {
        let mut n = 0;
        for (name, f) in self.names.iter().zip(&mut self.frozen) {
            if name.starts_with(prefix) {
                *f = true;
                n += 1;
            }
        }
        n
    }

    /// Unfreeze everything.
    pub fn unfreeze_all(&mut self) {
        self.frozen.iter_mut().for_each(|f| *f = false);
    }

    pub fn is_frozen(&self, id: ParamId) -> bool {
        self.frozen[id.0]
    }

    /// Count of frozen parameters.
    pub fn frozen_count(&self) -> usize {
        self.frozen.iter().filter(|&&f| f).count()
    }

    /// Total scalar count (for the §4.8.2 model-size measurement).
    pub fn num_scalars(&self) -> usize {
        self.mats.iter().map(Matrix::len).sum()
    }

    /// Serialized size in bytes if stored as raw f32 (model-size metric).
    pub fn byte_size(&self) -> usize {
        self.num_scalars() * std::mem::size_of::<f32>()
    }

    /// Copy parameter values from another set where names match (transfer).
    /// Returns the number of transferred matrices.
    pub fn copy_matching_from(&mut self, source: &ParamSet) -> usize {
        let mut n = 0;
        for (i, name) in self.names.iter().enumerate() {
            if let Some(j) = source.names.iter().position(|s| s == name) {
                if source.mats[j].shape() == self.mats[i].shape() {
                    self.mats[i] = source.mats[j].clone();
                    n += 1;
                }
            }
        }
        n
    }

    /// Strict variant of [`copy_matching_from`](Self::copy_matching_from):
    /// every parameter in `self` must find a same-name, same-shape source, and
    /// `source` must carry no extras. Any discrepancy is an error describing
    /// exactly what failed to line up — nothing is silently skipped (the
    /// destination is still mutated for whatever did match; callers treat an
    /// `Err` as fatal and discard the set).
    pub fn copy_exact_from(&mut self, source: &ParamSet) -> Result<(), ParamMismatch> {
        let mut mismatches = Vec::new();
        for (i, name) in self.names.iter().enumerate() {
            match source.names.iter().position(|s| s == name) {
                None => mismatches.push(format!("missing parameter `{name}`")),
                Some(j) if source.mats[j].shape() != self.mats[i].shape() => {
                    mismatches.push(format!(
                        "shape mismatch for `{name}`: expected {:?}, found {:?}",
                        self.mats[i].shape(),
                        source.mats[j].shape()
                    ));
                }
                Some(j) => self.mats[i] = source.mats[j].clone(),
            }
        }
        for name in &source.names {
            if !self.names.contains(name) {
                mismatches.push(format!("unexpected parameter `{name}`"));
            }
        }
        if mismatches.is_empty() {
            Ok(())
        } else {
            Err(ParamMismatch {
                expected: self.names.len(),
                matched: self.names.len()
                    - mismatches
                        .iter()
                        .filter(|m| !m.starts_with("unexpected"))
                        .count(),
                mismatches,
            })
        }
    }

    /// Iterate `(name, matrix)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Matrix)> {
        self.names.iter().map(String::as_str).zip(self.mats.iter())
    }
}

/// Why a strict parameter restore was rejected: the matched-vs-expected
/// count plus a line per discrepancy.
#[derive(Debug, Clone)]
pub struct ParamMismatch {
    pub expected: usize,
    pub matched: usize,
    pub mismatches: Vec<String>,
}

impl std::fmt::Display for ParamMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parameter set mismatch ({}/{} matched): {}",
            self.matched,
            self.expected,
            self.mismatches.join("; ")
        )
    }
}

impl std::error::Error for ParamMismatch {}

/// Optimizer over a [`ParamSet`].
pub trait Optimizer {
    /// Apply one update step. `vars[i]` must be the tape var bound from
    /// parameter `i` this pass (i.e. the output of [`ParamSet::bind`]).
    fn step(&mut self, params: &mut ParamSet, vars: &[Var], grads: &Grads);
}

/// SGD with classical momentum and optional L2 weight decay.
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    pub weight_decay: f32,
    velocity: Vec<Option<Matrix>>,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    pub fn with_momentum(mut self, m: f32) -> Self {
        self.momentum = m;
        self
    }

    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet, vars: &[Var], grads: &Grads) {
        if self.velocity.len() < params.len() {
            self.velocity.resize_with(params.len(), || None);
        }
        let (lr, mom, wd) = (self.lr, self.momentum, self.weight_decay);
        // Fully in-place: updates are element-wise independent, so one fused
        // pass per parameter replaces the old clone/scale/axpy sequence with
        // the same floating-point expressions (bitwise-identical trajectory,
        // zero allocations after the velocity buffers exist).
        // i indexes four parallel arrays (frozen, mats, vars, velocity)
        #[allow(clippy::needless_range_loop)]
        for i in 0..params.len() {
            if params.frozen[i] {
                continue;
            }
            let Some(g) = grads.get(vars[i]) else {
                continue;
            };
            let p = &mut params.mats[i];
            if mom > 0.0 {
                let v = self.velocity[i].get_or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
                for ((pk, vk), &gk) in p.data_mut().iter_mut().zip(v.data_mut()).zip(g.data()) {
                    let upd = if wd > 0.0 { gk + wd * *pk } else { gk };
                    *vk = *vk * mom + upd;
                    *pk += -lr * *vk;
                }
            } else {
                for (pk, &gk) in p.data_mut().iter_mut().zip(g.data()) {
                    let upd = if wd > 0.0 { gk + wd * *pk } else { gk };
                    *pk += -lr * upd;
                }
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    t: u64,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Snapshot the optimizer's mutable state (step count + moment
    /// estimates) for exact-resume checkpointing. Hyperparameters are not
    /// included — they come from the training config on resume.
    pub fn state(&self) -> AdamState {
        AdamState {
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restore a snapshot taken by [`state`](Self::state). The next `step`
    /// continues the bias-correction schedule and moment estimates exactly
    /// where the snapshotted optimizer left off.
    pub fn restore(&mut self, state: AdamState) {
        self.t = state.t;
        self.m = state.m;
        self.v = state.v;
    }
}

/// Serializable snapshot of [`Adam`]'s mutable state.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AdamState {
    pub t: u64,
    pub m: Vec<Option<Matrix>>,
    pub v: Vec<Option<Matrix>>,
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet, vars: &[Var], grads: &Grads) {
        if self.m.len() < params.len() {
            self.m.resize_with(params.len(), || None);
            self.v.resize_with(params.len(), || None);
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, beta1, beta2, eps, wd) =
            (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        // Fused in-place update. Each element's arithmetic mirrors the old
        // clone/scale/axpy/mul sequence exactly (same f32 expressions in the
        // same order), so trajectories and `state()` round-trips stay
        // bitwise-identical — the step just stops allocating O(params) fresh
        // matrices once the moment buffers exist.
        // i indexes the parallel arrays (frozen, mats, vars, m, v)
        #[allow(clippy::needless_range_loop)]
        for i in 0..params.len() {
            if params.frozen[i] {
                continue;
            }
            let Some(g) = grads.get(vars[i]) else {
                continue;
            };
            let m = self.m[i].get_or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            let v = self.v[i].get_or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            let p = &mut params.mats[i];
            for (((pk, mk), vk), &gk) in p
                .data_mut()
                .iter_mut()
                .zip(m.data_mut())
                .zip(v.data_mut())
                .zip(g.data())
            {
                let grad = if wd > 0.0 { gk + wd * *pk } else { gk };
                *mk = *mk * beta1 + (1.0 - beta1) * grad;
                *vk = *vk * beta2 + (1.0 - beta2) * (grad * grad);
                let mh = *mk / bc1;
                let vh = *vk / bc2;
                *pk -= lr * mh / (vh.sqrt() + eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    /// Minimise f(w) = (w − 3)² with each optimizer; both must converge.
    fn run_quadratic(opt: &mut dyn Optimizer) -> f32 {
        let mut params = ParamSet::new();
        params.add("w", Matrix::full(1, 1, 0.0));
        for _ in 0..300 {
            let mut tape = Tape::new();
            let vars = params.bind(&mut tape);
            let target = tape.constant(Matrix::full(1, 1, 3.0));
            let diff = tape.sub(vars[0], target);
            let sq = tape.mul(diff, diff);
            let loss = tape.sum_all(sq);
            let grads = tape.backward(loss);
            opt.step(&mut params, &vars, &grads);
        }
        params.get(ParamId(0)).get(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1).with_momentum(0.5);
        assert!((run_quadratic(&mut opt) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        assert!((run_quadratic(&mut opt) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn frozen_params_do_not_move() {
        let mut params = ParamSet::new();
        params.add("enc.w", Matrix::full(1, 1, 1.0));
        params.add("head.w", Matrix::full(1, 1, 1.0));
        assert_eq!(params.freeze_prefix("enc."), 1);
        let mut opt = Sgd::new(0.5);
        let mut tape = Tape::new();
        let vars = params.bind(&mut tape);
        let s = tape.add(vars[0], vars[1]);
        let loss = tape.sum_all(s);
        let grads = tape.backward(loss);
        opt.step(&mut params, &vars, &grads);
        assert_eq!(params.get(ParamId(0)).get(0, 0), 1.0, "frozen param moved");
        assert!(
            params.get(ParamId(1)).get(0, 0) < 1.0,
            "live param should move"
        );
    }

    #[test]
    fn copy_exact_rejects_any_mismatch() {
        let mut src = ParamSet::new();
        src.add("enc.w", Matrix::full(2, 2, 5.0));
        src.add("head.w", Matrix::full(1, 3, 7.0));

        let mut exact = ParamSet::new();
        exact.add("enc.w", Matrix::zeros(2, 2));
        exact.add("head.w", Matrix::zeros(1, 3));
        assert!(exact.copy_exact_from(&src).is_ok());
        assert_eq!(exact.get(ParamId(1)).get(0, 2), 7.0);

        let mut shape_off = ParamSet::new();
        shape_off.add("enc.w", Matrix::zeros(2, 2));
        shape_off.add("head.w", Matrix::zeros(1, 4));
        let err = shape_off.copy_exact_from(&src).unwrap_err();
        assert_eq!(err.matched, 1);
        assert_eq!(err.expected, 2);
        assert!(err.to_string().contains("head.w"), "{err}");

        let mut missing = ParamSet::new();
        missing.add("enc.w", Matrix::zeros(2, 2));
        missing.add("other.w", Matrix::zeros(1, 1));
        let err = missing.copy_exact_from(&src).unwrap_err();
        assert!(err.to_string().contains("missing parameter `other.w`"));
        assert!(err.to_string().contains("unexpected parameter `head.w`"));
    }

    #[test]
    fn adam_state_round_trip_resumes_exact() {
        // run 10 steps straight vs 5 steps + snapshot/restore + 5 steps
        let run = |split: Option<usize>| -> f32 {
            let mut params = ParamSet::new();
            params.add("w", Matrix::full(1, 1, 0.0));
            let mut opt = Adam::new(0.1);
            for step in 0..10 {
                if split == Some(step) {
                    let snap = opt.state();
                    opt = Adam::new(0.1);
                    opt.restore(snap);
                }
                let mut tape = Tape::new();
                let vars = params.bind(&mut tape);
                let target = tape.constant(Matrix::full(1, 1, 3.0));
                let diff = tape.sub(vars[0], target);
                let sq = tape.mul(diff, diff);
                let loss = tape.sum_all(sq);
                let grads = tape.backward(loss);
                opt.step(&mut params, &vars, &grads);
            }
            params.get(ParamId(0)).get(0, 0)
        };
        assert_eq!(run(None).to_bits(), run(Some(5)).to_bits());
    }

    #[test]
    fn copy_matching_transfers_by_name_and_shape() {
        let mut src = ParamSet::new();
        src.add("enc.w", Matrix::full(2, 2, 5.0));
        src.add("head.w", Matrix::full(1, 3, 7.0));
        let mut dst = ParamSet::new();
        dst.add("enc.w", Matrix::zeros(2, 2));
        dst.add("head.w", Matrix::zeros(1, 4)); // shape mismatch: skipped
        assert_eq!(dst.copy_matching_from(&src), 1);
        assert_eq!(dst.get(ParamId(0)).get(0, 0), 5.0);
        assert_eq!(dst.get(ParamId(1)).get(0, 0), 0.0);
    }
}
