//! Allocation-counter regression tests for the serving/optimizer fast
//! paths. `BENCH_trace.json` measured ~29.8k matrix allocations per
//! 105-step run before the tape-free refactor; these tests pin the two
//! properties that recover that budget:
//!
//! 1. optimizer steps are allocation-free once their state buffers exist
//!    (the old `Adam::step`/`Sgd::step` cloned every gradient and moment
//!    matrix on every step);
//! 2. the pooled inference kernels stop allocating after warm-up, and a
//!    fixed training loop stays under a pinned allocation ceiling.
//!
//! The trace registry is process-global, so every test that toggles it
//! serializes on one lock and leaves tracing disabled on exit.

use glint_tensor::{Adam, InferCtx, Matrix, Optimizer, ParamSet, Sgd, Tape};
use std::sync::Mutex;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with tracing enabled and a clean registry; returns `f`'s value
/// (typically counter readings taken inside). Restores the disabled state.
fn with_trace<R>(f: impl FnOnce() -> R) -> R {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    glint_trace::set_enabled(true);
    glint_trace::reset();
    let out = f();
    glint_trace::reset();
    glint_trace::set_enabled(false);
    out
}

/// One quadratic training step: forward + backward on a fresh tape, then
/// `opt.step`. Returns the grads-producing closure's artifacts so callers
/// can meter the step in isolation.
fn quadratic_step(opt: &mut dyn Optimizer, params: &mut ParamSet, metered: bool) -> u64 {
    let mut tape = Tape::new();
    let vars = params.bind(&mut tape);
    let loss = quadratic_loss(&mut tape, &vars);
    let grads = tape.backward(loss);
    if metered {
        with_trace(|| {
            opt.step(params, &vars, &grads);
            glint_trace::counter_value("tensor.alloc.matrices")
        })
    } else {
        opt.step(params, &vars, &grads);
        0
    }
}

/// `sum(w^2) + sum(b^2)` over the two bound parameters.
fn quadratic_loss(tape: &mut Tape, vars: &[glint_tensor::Var]) -> glint_tensor::Var {
    let sq0 = tape.mul(vars[0], vars[0]);
    let l0 = tape.sum_all(sq0);
    let sq1 = tape.mul(vars[1], vars[1]);
    let l1 = tape.sum_all(sq1);
    tape.add(l0, l1)
}

fn two_params() -> ParamSet {
    let mut params = ParamSet::new();
    params.add("w", Matrix::full(4, 6, 0.5));
    params.add("b", Matrix::full(1, 6, 0.1));
    params
}

#[test]
fn adam_steps_allocate_nothing_after_warmup() {
    let mut params = two_params();
    let mut opt = Adam::new(0.01).with_weight_decay(0.01);
    // Warm-up: the first step lazily allocates the m/v moment buffers.
    quadratic_step(&mut opt, &mut params, false);
    for _ in 0..5 {
        let allocs = quadratic_step(&mut opt, &mut params, true);
        assert_eq!(
            allocs, 0,
            "Adam::step must update parameters and moments in place"
        );
    }
}

#[test]
fn adam_warmup_allocates_exactly_the_moment_buffers() {
    let mut params = two_params();
    let mut opt = Adam::new(0.01);
    // First step: m + v per parameter, nothing else.
    let allocs = quadratic_step(&mut opt, &mut params, true);
    assert_eq!(allocs, 4, "2 params x (m, v) state buffers");
}

#[test]
fn sgd_steps_allocate_nothing_after_warmup() {
    let mut params = two_params();
    let mut opt = Sgd::new(0.01).with_momentum(0.9).with_weight_decay(0.01);
    // Warm-up: the first step lazily allocates the velocity buffers.
    quadratic_step(&mut opt, &mut params, false);
    for _ in 0..5 {
        let allocs = quadratic_step(&mut opt, &mut params, true);
        assert_eq!(
            allocs, 0,
            "Sgd::step must update parameters and velocity in place"
        );
    }
}

#[test]
fn sgd_without_momentum_never_allocates() {
    let mut params = two_params();
    let mut opt = Sgd::new(0.01);
    // No momentum → no state buffers: even the first step is free.
    let allocs = quadratic_step(&mut opt, &mut params, true);
    assert_eq!(allocs, 0);
}

#[test]
fn pooled_inference_kernels_stop_allocating_once_warm() {
    let a = Matrix::full(8, 12, 0.3);
    let b = Matrix::full(12, 8, 0.2);
    let bias = Matrix::full(1, 8, 0.05);
    let mut ctx = InferCtx::new();
    // Warm-up pass populates the pool with the working set.
    let c = ctx.linear_relu(&a, &b, &bias);
    ctx.release(c);
    let (allocs, hits, misses) = with_trace(|| {
        for _ in 0..10 {
            let c = ctx.linear_relu(&a, &b, &bias);
            ctx.release(c);
        }
        (
            glint_trace::counter_value("tensor.alloc.matrices"),
            glint_trace::counter_value("infer.pool.hits"),
            glint_trace::counter_value("infer.pool.misses"),
        )
    });
    assert_eq!(allocs, 0, "warm pool must serve every activation");
    assert_eq!(misses, 0);
    assert_eq!(hits, 10, "every acquire is a pool hit after warm-up");
}

/// Pinned `tensor.alloc.matrices` count for a fixed 105-step training
/// workload (the same step count `BENCH_trace.json` measures). The backward
/// pass and the optimizer no longer clone per step: this pin is the ratchet
/// that keeps those allocations from creeping back.
#[test]
fn fixed_105_step_workload_stays_under_allocation_ceiling() {
    let mut params = two_params();
    let mut opt = Adam::new(0.01);
    let allocs = with_trace(|| {
        for _ in 0..105 {
            let mut tape = Tape::new();
            let vars = params.bind(&mut tape);
            let loss = quadratic_loss(&mut tape, &vars);
            let grads = tape.backward(loss);
            opt.step(&mut params, &vars, &grads);
        }
        glint_trace::counter_value("tensor.alloc.matrices")
    });
    // The whole run costs exactly the one-off Adam moment buffers (2 params
    // x m/v): backward's pass-through gradients and the in-place optimizer
    // allocate nothing per step. The pre-refactor tape/optimizer (grad
    // clones in backward, clone-per-step optimizers) sat far above this.
    assert_eq!(
        allocs, 4,
        "105-step workload must only allocate the optimizer state buffers"
    );
}
