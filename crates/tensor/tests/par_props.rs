//! Property-based equivalence suite for the parallel execution layer.
//!
//! Two families of properties:
//! - **algebraic**: sparse products agree with their densified dense-matmul
//!   counterparts (to numeric tolerance — different accumulation orders);
//! - **exactness**: every parallel kernel returns *bitwise identical*
//!   results to its serial twin at 1, 2, and 8 threads, including for
//!   inputs salted with zeros, NaN, and ±∞. Bit-level comparison, not
//!   `==`, because `NaN != NaN` would vacuously pass NaN outputs.
//!
//! Matrices are generated from a proptest-driven seed through the workspace
//! RNG: shapes are fixed large enough to clear `par::MIN_PAR_WORK` so the
//! fan-out actually executes (a threshold fallback to serial would make the
//! equality trivially true).

use glint_tensor::{par, Csr, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize, salted: bool) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            if salted {
                match rng.gen_range(0..10usize) {
                    0 => 0.0,
                    1 => f32::NAN,
                    2 => f32::INFINITY,
                    3 => f32::NEG_INFINITY,
                    _ => rng.gen_range(-2.0f32..2.0),
                }
            } else if rng.gen_bool(0.2) {
                0.0 // exercise the zero-skip fast path
            } else {
                rng.gen_range(-2.0f32..2.0)
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn random_csr(rng: &mut StdRng, rows: usize, cols: usize, nnz: usize) -> Csr {
    let triplets: Vec<(usize, usize, f32)> = (0..nnz)
        .map(|_| {
            (
                rng.gen_range(0..rows),
                rng.gen_range(0..cols),
                rng.gen_range(-2.0f32..2.0),
            )
        })
        .collect();
    Csr::from_triplets(rows, cols, &triplets)
}

/// Bitwise equality, NaN-safe (same shape, same bit pattern per element).
fn bits_eq(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Dense kernels: parallel == serial, bit for bit, at several thread
    /// counts. 64×32 × 32×32 = 65 536 MACs = exactly `MIN_PAR_WORK`.
    #[test]
    fn parallel_dense_kernels_bitwise_equal_serial(seed in 0u64..1 << 48) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(&mut rng, 64, 32, false);
        let b = random_matrix(&mut rng, 32, 32, false);
        let g = random_matrix(&mut rng, 64, 32, false);
        let serial_mm = a.matmul(&b);
        let serial_tm = a.t_matmul(&g);
        let serial_mt = a.matmul_t(&g);
        for threads in [1usize, 2, 8] {
            par::with_threads(threads, || {
                prop_assert!(bits_eq(&par::matmul(&a, &b), &serial_mm), "matmul @ {threads}");
                prop_assert!(bits_eq(&par::t_matmul(&a, &g), &serial_tm), "t_matmul @ {threads}");
                prop_assert!(bits_eq(&par::matmul_t(&a, &g), &serial_mt), "matmul_t @ {threads}");
                Ok(())
            })?;
        }
    }

    /// Same exactness with NaN/∞/zero-salted inputs: the zero-skip fast path
    /// and the row partitioning must both preserve IEEE semantics.
    #[test]
    fn parallel_dense_kernels_bitwise_equal_serial_with_nans(seed in 0u64..1 << 48) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(&mut rng, 64, 32, true);
        let b = random_matrix(&mut rng, 32, 32, true);
        let serial = a.matmul(&b);
        for threads in [2usize, 8] {
            par::with_threads(threads, || {
                prop_assert!(bits_eq(&par::matmul(&a, &b), &serial), "salted matmul @ {threads}");
                Ok(())
            })?;
        }
    }

    /// Sparse kernels: parallel == serial bitwise; serial == densified dense
    /// matmul to tolerance (the accumulation orders differ).
    #[test]
    fn parallel_sparse_kernels_equal_serial_and_dense(seed in 0u64..1 << 48) {
        let mut rng = StdRng::seed_from_u64(seed);
        // nnz chosen so nnz × h.cols clears MIN_PAR_WORK even after
        // duplicate triplets merge (~3400 distinct × 24 ≈ 82k MACs)
        let s = random_csr(&mut rng, 120, 100, 4000);
        let h = random_matrix(&mut rng, 100, 24, false);
        let ht = random_matrix(&mut rng, 120, 24, false);
        let serial_spmm = s.spmm(&h);
        let serial_t = s.t_spmm(&ht);
        // algebraic reference: densify and use the dense kernels
        let dense = s.to_dense();
        prop_assert!(serial_spmm.sq_dist(&dense.matmul(&h)) < 1e-6);
        prop_assert!(serial_t.sq_dist(&dense.t_matmul(&ht)) < 1e-6);
        for threads in [1usize, 2, 8] {
            par::with_threads(threads, || {
                prop_assert!(bits_eq(&par::spmm(&s, &h), &serial_spmm), "spmm @ {threads}");
                prop_assert!(bits_eq(&par::t_spmm(&s, &ht), &serial_t), "t_spmm @ {threads}");
                Ok(())
            })?;
        }
    }

    /// Sub-threshold shapes take the serial fallback and must (trivially but
    /// importantly) agree too — the dispatch itself must not change results.
    #[test]
    fn small_shapes_fall_back_identically(seed in 0u64..1 << 48) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(&mut rng, 5, 4, false);
        let b = random_matrix(&mut rng, 4, 3, false);
        par::with_threads(8, || {
            prop_assert!(bits_eq(&par::matmul(&a, &b), &a.matmul(&b)));
            Ok(())
        })?;
    }
}
