//! Strict-mode integration tests. This whole file only compiles when the
//! `strict` feature is enabled (CI runs the suite once with `--features
//! strict`); the checks themselves are `debug_assert!`s, so they also need a
//! debug build to fire — which `cargo test` provides.
#![cfg(feature = "strict")]

use glint_tensor::{Csr, Matrix, Tape};

/// A well-formed forward + backward pass must sail through every strict
/// check: this pins down that the checks are not over-eager.
#[test]
fn clean_pass_satisfies_strict_checks() {
    let mut tape = Tape::new();
    let adj = Csr::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (2, 2, 1.0)]);
    let h = tape.var(Matrix::from_rows(&[
        vec![1.0, 2.0],
        vec![3.0, 4.0],
        vec![5.0, 6.0],
    ]));
    let w = tape.var(Matrix::from_rows(&[vec![0.5, -0.5], vec![0.25, 0.75]]));
    let bias = tape.var(Matrix::from_vec(1, 2, vec![0.1, -0.1]));

    let agg = tape.spmm(&adj, h);
    let lin = tape.linear(agg, w, bias);
    let act = tape.relu(lin);
    let pooled = tape.gather_rows(act, &[0, 2]);
    let loss = tape.mean_all(pooled);

    let grads = tape.backward(loss);
    assert!(grads.get(w).is_some());
    assert!(grads.get(w).unwrap().all_finite());
}

/// spmm with mismatched inner dimensions: the adjacency has 3 columns but the
/// feature matrix only 2 rows. Without strict mode this silently computes
/// (out-of-range columns simply never match a row); strict mode refuses it.
#[test]
#[should_panic(expected = "spmm")]
fn spmm_dim_mismatch_panics_under_strict() {
    let mut tape = Tape::new();
    let adj = Csr::from_triplets(2, 3, &[(0, 2, 1.0), (1, 0, 1.0)]);
    let h = tape.var(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
    let _ = tape.spmm(&adj, h);
}

/// gather_rows with an out-of-bounds row index must be rejected before it
/// reaches the unchecked copy.
#[test]
#[should_panic(expected = "gather_rows")]
fn gather_rows_out_of_bounds_panics_under_strict() {
    let mut tape = Tape::new();
    let a = tape.var(Matrix::from_rows(&[vec![1.0], vec![2.0]]));
    let _ = tape.gather_rows(a, &[0, 2]);
}
