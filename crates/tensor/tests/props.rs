//! Property-based tests for the numeric substrate.

use glint_tensor::{Csr, Matrix, Tape};
use proptest::prelude::*;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn edge_list(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..n, 0..n), 0..n * 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transpose_is_an_involution(m in small_matrix(3, 5)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_distributes_over_addition(a in small_matrix(3, 4), b in small_matrix(4, 2), c in small_matrix(4, 2)) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.sq_dist(&rhs) < 1e-6, "distributivity violated");
    }

    #[test]
    fn t_matmul_agrees_with_explicit_transpose(a in small_matrix(4, 3), b in small_matrix(4, 2)) {
        prop_assert!(a.t_matmul(&b).sq_dist(&a.transpose().matmul(&b)) < 1e-8);
    }

    #[test]
    fn softmax_rows_are_distributions(m in small_matrix(4, 6)) {
        let s = m.softmax_rows();
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(s.row(r).iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn spmm_matches_dense_matmul(edges in edge_list(5), h in small_matrix(5, 3)) {
        let adj = Csr::normalized_adjacency(5, &edges);
        prop_assert!(adj.spmm(&h).sq_dist(&adj.to_dense().matmul(&h)) < 1e-6);
        prop_assert!(adj.t_spmm(&h).sq_dist(&adj.to_dense().transpose().matmul(&h)) < 1e-6);
    }

    #[test]
    fn normalized_adjacency_is_symmetric_psd_diag(edges in edge_list(6)) {
        let adj = Csr::normalized_adjacency(6, &edges);
        prop_assert!(adj.is_symmetric(1e-6));
        let d = adj.to_dense();
        for i in 0..6 {
            prop_assert!(d.get(i, i) > 0.0, "self loop lost at {i}");
        }
    }

    #[test]
    fn backward_of_linear_matches_manual(x in small_matrix(3, 4), w in small_matrix(4, 2)) {
        // loss = sum(x·w) ⇒ dL/dx = 1·wᵀ (broadcast), dL/dw = xᵀ·1
        let mut tape = Tape::new();
        let xv = tape.var(x.clone());
        let wv = tape.var(w.clone());
        let y = tape.matmul(xv, wv);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        let ones = Matrix::full(3, 2, 1.0);
        let gx_expected = ones.matmul_t(&w);
        let gw_expected = x.t_matmul(&ones);
        prop_assert!(grads.get(xv).unwrap().sq_dist(&gx_expected) < 1e-6);
        prop_assert!(grads.get(wv).unwrap().sq_dist(&gw_expected) < 1e-6);
    }

    #[test]
    fn relu_gradient_is_a_mask(x in small_matrix(2, 5)) {
        let mut tape = Tape::new();
        let xv = tape.var(x.clone());
        let y = tape.relu(xv);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        let g = grads.get(xv).unwrap();
        for (gi, &xi) in g.data().iter().zip(x.data()) {
            prop_assert_eq!(*gi, if xi > 0.0 { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn induced_subgraph_preserves_internal_structure(edges in edge_list(6)) {
        let adj = Csr::from_triplets(
            6,
            6,
            &edges.iter().map(|&(u, v)| (u, v, 1.0)).collect::<Vec<_>>(),
        );
        let keep = vec![1usize, 3, 5];
        let sub = adj.induced_subgraph(&keep);
        let dense = adj.to_dense();
        let sub_dense = sub.to_dense();
        for (ni, &oi) in keep.iter().enumerate() {
            for (nj, &oj) in keep.iter().enumerate() {
                prop_assert!((sub_dense.get(ni, nj) - dense.get(oi, oj)).abs() < 1e-6);
            }
        }
    }
}
