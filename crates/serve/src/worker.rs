//! Worker pool with panic isolation.
//!
//! This is the serving layer's degradation boundary — the only file in
//! the crate allowed to `catch_unwind`. A panic anywhere inside a
//! handler (scoring, serialization, injected `panic` faults) is caught
//! here: the in-flight request gets a typed `500`, the poisoned worker
//! exits, and a replacement worker is spawned so pool capacity recovers.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::handlers;
use crate::http;
use crate::server::Shared;

/// Spawn one worker thread. The live count is registered *before* the
/// thread starts so a shutdown racing the spawn still waits for it.
pub(crate) fn spawn_worker(shared: &Arc<Shared>) {
    shared.workers.register();
    let shared = Arc::clone(shared);
    std::thread::spawn(move || worker_loop(&shared));
}

/// Pop admitted jobs until the queue is closed and drained. Each job is
/// handled under `catch_unwind`; a caught panic terminates this worker
/// (its loop state is suspect) after answering the victim request and
/// arranging a replacement.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        if glint_trace::enabled() {
            glint_trace::gauge("serve.queue.depth", shared.queue.backlog() as f64);
        }
        // A clone of the victim's stream, taken before the handler can
        // poison anything, so the typed 500 can still be delivered.
        let spare = job.stream.try_clone().ok();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handlers::handle_connection(shared, job)
        }));
        if outcome.is_err() {
            shared.metrics.respawns.fetch_add(1, Ordering::Relaxed);
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            if glint_trace::enabled() {
                glint_trace::counter("serve.worker.respawns", 1);
            }
            if let Some(mut stream) = spare {
                let _ = http::write_json(
                    &mut stream,
                    500,
                    &handlers::error_body(
                        "worker_panic",
                        "worker panicked while handling this request; a replacement worker \
                         was spawned",
                    ),
                );
            }
            if !shared.shutdown.load(Ordering::Relaxed) {
                spawn_worker(shared);
            }
            break;
        }
    }
    shared.workers.deregister();
}
