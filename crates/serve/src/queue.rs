//! Bounded MPMC admission queue: one acceptor pushes, N workers pop.
//!
//! Admission control is the queue's whole design: `try_push` never
//! blocks and never grows past the fixed capacity — when the queue is
//! full the caller gets the item back and answers `429` itself. `pop`
//! blocks until an item arrives or the queue is closed *and* drained, so
//! graceful shutdown finishes every admitted request before workers exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why `try_push` refused the item (the item rides back to the caller so
/// its connection can still be answered).
pub(crate) enum PushError<T> {
    /// At capacity: shed with `429 Retry-After`.
    Full(T),
    /// Shutting down: no new admissions.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

pub(crate) struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
}

impl<T> Bounded<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                capacity,
                closed: false,
            }),
            not_empty: Condvar::new(),
        }
    }

    /// Admit `item` if there is room. Returns the queue depth after the
    /// push, or the item back when full/closed. Never blocks.
    pub(crate) fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let depth = {
            let mut inner = self.guard();
            if inner.closed {
                return Err(PushError::Closed(item));
            }
            if inner.items.len() >= inner.capacity {
                return Err(PushError::Full(item));
            }
            inner.items.push_back(item);
            inner.items.len()
        };
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocking pop. `None` means the queue is closed *and* fully
    /// drained — the worker's signal to exit.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = self.guard();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Stop admissions and wake every blocked worker. Idempotent.
    pub(crate) fn close(&self) {
        {
            let mut inner = self.guard();
            inner.closed = true;
        }
        self.not_empty.notify_all();
    }

    pub(crate) fn backlog(&self) -> usize {
        self.guard().items.len()
    }

    /// The admission queue's single lock site. The critical sections are a
    /// `VecDeque` push/pop under a fixed capacity check. A poisoned lock
    /// (worker panic mid-section) recovers via `into_inner`: the `VecDeque`
    /// is valid after any interrupted push/pop.
    fn guard(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner
            // glint-lint: allow(hot-lock) — the admission queue is the
            // designed hand-off point between the acceptor and the workers;
            // bounded capacity keeps the critical section O(1)
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_push_sheds_at_capacity() {
        let q = Bounded::new(2);
        assert!(matches!(q.try_push(1), Ok(1)));
        assert!(matches!(q.try_push(2), Ok(2)));
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert_eq!(q.backlog(), 2);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = Bounded::new(4);
        let _ = q.try_push(1);
        let _ = q.try_push(2);
        q.close();
        assert!(matches!(q.try_push(3), Err(PushError::Closed(3))));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_wakes_on_push_across_threads() {
        let q = std::sync::Arc::new(Bounded::new(1));
        let q2 = std::sync::Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        let _ = q.try_push(7u32);
        assert_eq!(handle.join().ok().flatten(), Some(7));
    }
}
