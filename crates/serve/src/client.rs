//! Minimal blocking HTTP client for the serving endpoints.
//!
//! Used by the overload tests, the fault matrix, the `micro_serve`
//! bench, and the `--serve` mode of the real-time monitor example. The
//! write and read halves are exposed separately so an overload test can
//! open many connections, write every request, and only then collect the
//! responses — the pattern that actually saturates the admission queue.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use serde_json::Value;

fn invalid(message: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.to_string())
}

/// Open a connection, send one request, and read the response.
pub fn request(
    addr: &SocketAddr,
    method: &str,
    path: &str,
    body: Option<&Value>,
) -> std::io::Result<(u16, Value)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    write_request(&mut stream, method, path, body)?;
    read_response(&mut stream)
}

/// `POST` a JSON body; returns `(status, parsed body)`.
pub fn post(addr: &SocketAddr, path: &str, body: &Value) -> std::io::Result<(u16, Value)> {
    request(addr, "POST", path, Some(body))
}

/// `GET` a path; returns `(status, parsed body)`.
pub fn get(addr: &SocketAddr, path: &str) -> std::io::Result<(u16, Value)> {
    request(addr, "GET", path, None)
}

/// Write one HTTP/1.1 request onto an already-open stream.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&Value>,
) -> std::io::Result<()> {
    let payload = match body {
        Some(value) => serde_json::to_string(value).map_err(|e| invalid(&e.to_string()))?,
        None => String::new(),
    };
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: glint\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()
}

/// Read a complete response (the server always closes after one
/// exchange) and parse it into `(status, body)`.
pub fn read_response(stream: &mut TcpStream) -> std::io::Result<(u16, Value)> {
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &str) -> std::io::Result<(u16, Value)> {
    let Some((head, body)) = raw.split_once("\r\n\r\n") else {
        return Err(invalid("response has no head/body separator"));
    };
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("unparseable status line"))?;
    let value = if body.trim().is_empty() {
        Value::Null
    } else {
        serde_json::from_str(body).unwrap_or(Value::Null)
    };
    Ok((status, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_response_extracts_status_and_body() {
        let raw = "HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\n\r\n{\"a\":1}";
        let (status, body) = parse_response(raw).expect("parses");
        assert_eq!(status, 429);
        assert_eq!(body.as_map().and_then(|m| m[0].1.as_u64()), Some(1));
    }

    #[test]
    fn parse_response_rejects_garbage() {
        assert!(parse_response("not http").is_err());
        assert!(parse_response("HTTP/1.1 abc\r\n\r\n{}").is_err());
    }
}
