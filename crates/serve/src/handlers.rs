//! Request handlers: routing, deadline-pressure computation, and the
//! JSON wire format for all four endpoints.
//!
//! Every failure mode an attacker-controlled or overloaded network can
//! produce — malformed bytes, oversized bodies, missing fields, expired
//! deadlines, injected faults — comes back as a typed JSON error with an
//! appropriate status. The handlers never panic on input; the only
//! panics reaching [`crate::worker`] are injected faults or genuine bugs.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use glint_core::{DeadlinePressure, Degradation, Detection};
use glint_graph::{GraphLabel, InteractionGraph};
use serde_json::{json, Value};

use crate::clock;
use crate::http;
use crate::server::{Job, Shared};

/// Handle one admitted connection end-to-end: parse, route, score,
/// respond, record latency. Runs inside the worker's `catch_unwind`.
pub(crate) fn handle_connection(shared: &Shared, job: Job) {
    let Job {
        mut stream,
        admitted_at,
    } = job;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.cfg.read_timeout_ms.max(1),
    )));
    let (status, body) = match http::read_request(&mut stream, shared.cfg.max_body_bytes) {
        Ok(request) => route(shared, &request, admitted_at),
        Err(e) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            (400, error_body("parse", &e.to_string()))
        }
    };
    let (status, body) = if glint_failpoint::check(crate::SITE_RESPOND).is_some() {
        // Injected respond fault: the real payload is replaced by a typed
        // 500 so the client still gets an answer, never silence.
        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        (
            500,
            error_body("respond", "injected fault while writing the response"),
        )
    } else {
        (status, body)
    };
    let _ = http::write_json(&mut stream, status, &body);
    shared.metrics.answered.fetch_add(1, Ordering::Relaxed);
    let latency = clock::now().saturating_duration_since(admitted_at);
    let us = latency.as_micros() as u64;
    shared.metrics.record_latency_us(us);
    if glint_trace::enabled() {
        glint_trace::counter("serve.answered", 1);
        glint_trace::histogram("serve.latency_ms", us as f64 / 1000.0);
    }
}

fn route(shared: &Shared, request: &http::Request, admitted_at: Instant) -> (u16, Value) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/score") => handle_score(shared, &request.body, admitted_at),
        ("POST", "/score_batch") => handle_score_batch(shared, &request.body, admitted_at),
        ("POST", "/feedback") => handle_feedback(shared, &request.body),
        ("GET", "/metrics") => handle_metrics(shared),
        (_, path) => (
            404,
            error_body("not_found", &format!("no route for {path}")),
        ),
    }
}

/// The request's deadline: client `deadline_ms` capped by the server
/// budget, burning from the moment the connection was admitted (queue
/// wait counts against the client's budget — that is the contract that
/// makes admission-time 429s honest).
fn request_deadline(shared: &Shared, fields: &[(String, Value)], admitted_at: Instant) -> Instant {
    let cap = shared.cfg.deadline_ms.max(1);
    let requested = fields
        .iter()
        .find(|(k, _)| k == "deadline_ms")
        .and_then(|(_, v)| v.as_u64())
        .unwrap_or(cap);
    admitted_at + Duration::from_millis(requested.clamp(1, cap))
}

/// Score one graph under the degradation ladder. The detector never sees
/// the clock — only the discrete pressure rung computed here.
fn score_one(shared: &Shared, graph: InteractionGraph, deadline: Instant) -> Detection {
    let now = clock::now();
    let pressure = if now >= deadline {
        DeadlinePressure::Expired
    } else if deadline.saturating_duration_since(now) < shared.estimated_full_cost() {
        DeadlinePressure::Tight
    } else {
        DeadlinePressure::Comfortable
    };
    let before = clock::now();
    let detection = shared.scorer.score(graph, pressure);
    match &detection.degradation {
        Degradation::None => {
            shared.metrics.full.fetch_add(1, Ordering::Relaxed);
            shared.observe_full_cost(clock::now().saturating_duration_since(before));
        }
        Degradation::DriftOnly(_) => {
            shared.metrics.drift_only.fetch_add(1, Ordering::Relaxed);
            if glint_trace::enabled() {
                glint_trace::counter("serve.degraded.drift_only", 1);
            }
        }
        Degradation::Quarantined(_) => {
            shared.metrics.quarantined.fetch_add(1, Ordering::Relaxed);
            if glint_trace::enabled() {
                glint_trace::counter("serve.degraded.quarantined", 1);
            }
        }
    }
    detection
}

fn handle_score(shared: &Shared, body: &str, admitted_at: Instant) -> (u16, Value) {
    let parsed: Value = match serde_json::from_str(body) {
        Ok(v) => v,
        Err(e) => return (400, error_body("bad_json", &e.to_string())),
    };
    let Some(fields) = parsed.as_map() else {
        return (400, error_body("bad_request", "body must be a JSON object"));
    };
    let Some(graph_value) = fields.iter().find(|(k, _)| k == "graph").map(|(_, v)| v) else {
        return (400, error_body("bad_request", "missing `graph` field"));
    };
    let graph: InteractionGraph = match serde_json::from_value(graph_value) {
        Ok(g) => g,
        Err(e) => return (400, error_body("bad_graph", &e.to_string())),
    };
    let deadline = request_deadline(shared, fields, admitted_at);
    let detection = score_one(shared, graph, deadline);
    (200, detection_body(&detection))
}

/// Score `{"graphs": […]}` under one shared deadline. Later graphs feel
/// more pressure — a batch that started comfortably may finish on the
/// drift-only or quarantined rung, with the rung visible per-slot.
fn handle_score_batch(shared: &Shared, body: &str, admitted_at: Instant) -> (u16, Value) {
    let parsed: Value = match serde_json::from_str(body) {
        Ok(v) => v,
        Err(e) => return (400, error_body("bad_json", &e.to_string())),
    };
    let Some(fields) = parsed.as_map() else {
        return (400, error_body("bad_request", "body must be a JSON object"));
    };
    let Some(graphs) = fields
        .iter()
        .find(|(k, _)| k == "graphs")
        .and_then(|(_, v)| v.as_seq())
    else {
        return (400, error_body("bad_request", "missing `graphs` array"));
    };
    let deadline = request_deadline(shared, fields, admitted_at);
    let mut results = Vec::with_capacity(graphs.len());
    let mut degraded = 0u64;
    for slot in graphs {
        match serde_json::from_value::<InteractionGraph>(slot) {
            Ok(graph) => {
                let detection = score_one(shared, graph, deadline);
                if detection.degradation != Degradation::None {
                    degraded += 1;
                }
                results.push(detection_body(&detection));
            }
            Err(e) => results.push(error_body("bad_graph", &e.to_string())),
        }
    }
    (200, json!({ "results": results, "degraded": degraded }))
}

fn handle_feedback(shared: &Shared, body: &str) -> (u16, Value) {
    let parsed: Value = match serde_json::from_str(body) {
        Ok(v) => v,
        Err(e) => return (400, error_body("bad_json", &e.to_string())),
    };
    let Some(fields) = parsed.as_map() else {
        return (400, error_body("bad_request", "body must be a JSON object"));
    };
    let Some(graph_value) = fields.iter().find(|(k, _)| k == "graph").map(|(_, v)| v) else {
        return (400, error_body("bad_request", "missing `graph` field"));
    };
    let graph: InteractionGraph = match serde_json::from_value(graph_value) {
        Ok(g) => g,
        Err(e) => return (400, error_body("bad_graph", &e.to_string())),
    };
    let Some(verdict_value) = fields.iter().find(|(k, _)| k == "verdict").map(|(_, v)| v) else {
        return (
            400,
            error_body("bad_request", "missing `verdict` field (Normal|Threat)"),
        );
    };
    let verdict: GraphLabel = match serde_json::from_value(verdict_value) {
        Ok(v) => v,
        Err(e) => return (400, error_body("bad_verdict", &e.to_string())),
    };
    let note = fields
        .iter()
        .find(|(k, _)| k == "note")
        .and_then(|(_, v)| v.as_str())
        .unwrap_or("submitted via /feedback");
    let stored = {
        let mut store = shared
            .feedback
            // glint-lint: allow(hot-lock) — feedback writes are rare
            // (human-in-the-loop cadence); a poisoned store recovers via
            // into_inner since cases are appended atomically
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match verdict {
            GraphLabel::Normal => store.dismiss(graph, note),
            GraphLabel::Threat => store.confirm(graph, note),
        }
        store.len() as u64
    };
    if glint_trace::enabled() {
        glint_trace::counter("serve.feedback", 1);
    }
    (200, json!({ "stored": stored }))
}

fn handle_metrics(shared: &Shared) -> (u16, Value) {
    let uptime = clock::now().saturating_duration_since(shared.started);
    let [p50, p95, p99] = shared.metrics.percentiles_ms();
    let answered = shared.metrics.answered.load(Ordering::Relaxed);
    let body = json!({
        "uptime_s": uptime.as_secs_f64(),
        "qps": crate::metrics::safe_div(answered as f64, uptime.as_secs_f64()),
        "p50_latency_ms": p50,
        "p95_latency_ms": p95,
        "p99_latency_ms": p99,
        "deadline_ms": shared.cfg.deadline_ms,
        "queue_depth": shared.queue.backlog() as u64,
        "queue_capacity": shared.cfg.queue_capacity as u64,
        "accepted": shared.metrics.accepted.load(Ordering::Relaxed),
        "shed": shared.metrics.shed.load(Ordering::Relaxed),
        "answered": answered,
        "errors": shared.metrics.errors.load(Ordering::Relaxed),
        "verdicts": {
            "full": shared.metrics.full.load(Ordering::Relaxed),
            "drift_only": shared.metrics.drift_only.load(Ordering::Relaxed),
            "quarantined": shared.metrics.quarantined.load(Ordering::Relaxed),
        },
        "worker_respawns": shared.metrics.respawns.load(Ordering::Relaxed),
    });
    (200, body)
}

/// The `/score` wire format: verdict, probability (null when the verdict
/// is quarantined — NaN has no JSON encoding), drift evidence, and the
/// degradation rung with its reason, so a client can always tell a full
/// answer from a degraded one.
fn detection_body(detection: &Detection) -> Value {
    let (rung, reason) = match &detection.degradation {
        Degradation::None => ("full", Value::Null),
        Degradation::DriftOnly(reason) => ("drift_only", Value::Str(reason.clone())),
        Degradation::Quarantined(reason) => ("quarantined", Value::Str(reason.clone())),
    };
    let probability = if detection.threat_probability.is_finite() {
        Value::F64(f64::from(detection.threat_probability))
    } else {
        Value::Null
    };
    let warning = match &detection.warning {
        Some(w) => serde_json::to_value(w),
        None => Value::Null,
    };
    json!({
        "verdict": if detection.is_threat { "threat" } else { "normal" },
        "threat_probability": probability,
        "drifting": detection.drifting,
        "drift_degree": detection.drift_degree,
        "degradation": rung,
        "reason": reason,
        "warning": warning,
    })
}

/// Typed error payload shared by every failure path.
pub(crate) fn error_body(kind: &str, message: &str) -> Value {
    json!({ "error": { "kind": kind, "message": message } })
}
