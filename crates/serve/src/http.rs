//! Hand-rolled HTTP/1.1 request parsing and response writing — exactly
//! the slice of the protocol the four endpoints need (no keep-alive, no
//! chunked encoding, `Connection: close` on every exchange), so the whole
//! wire layer stays dependency-free and auditable.

use std::io::{Read, Write};
use std::net::TcpStream;

/// The request head may not exceed this (method line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

pub(crate) struct Request {
    pub method: String,
    pub path: String,
    pub body: String,
}

fn invalid(message: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.to_string())
}

/// Position just past the `\r\n\r\n` head terminator, if present.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Read and parse one request. Every malformed input is a typed
/// `InvalidData` error the handler answers with `400` — parsing never
/// panics, whatever the bytes.
pub(crate) fn read_request(stream: &mut TcpStream, max_body: usize) -> std::io::Result<Request> {
    glint_failpoint::trigger(crate::SITE_PARSE)?;
    read_request_impl(stream, max_body)
}

/// Consume a request that will be refused without scoring (shed path).
/// Closing with unread data would RST the connection and destroy the
/// `429` in flight, so the refusal drains first — a lingering close.
/// Does not arm [`crate::SITE_PARSE`]: a shed drain must not steal a
/// fault aimed at real parsing.
pub(crate) fn drain_request(stream: &mut TcpStream, max_body: usize) {
    let _ = read_request_impl(stream, max_body);
}

fn read_request_impl(stream: &mut TcpStream, max_body: usize) -> std::io::Result<Request> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 2048];
    let head_len = loop {
        if let Some(end) = head_end(&buf) {
            break end;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(invalid("request head exceeds the 16 KiB limit"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(invalid(
                "connection closed before the request head completed",
            ));
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
    };
    let head = std::str::from_utf8(buf.get(..head_len).unwrap_or(&[]))
        .map_err(|_| invalid("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let mut request_line = lines.next().unwrap_or("").split_whitespace();
    let method = request_line.next().unwrap_or("").to_string();
    let target = request_line.next().unwrap_or("");
    if method.is_empty() || target.is_empty() {
        return Err(invalid("malformed request line"));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| invalid("unparseable Content-Length"))?;
        }
    }
    if content_length > max_body {
        return Err(invalid("request body exceeds the server limit"));
    }
    let mut body_bytes: Vec<u8> = buf.get(head_len..).unwrap_or(&[]).to_vec();
    while body_bytes.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(invalid("connection closed mid-body"));
        }
        body_bytes.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
    }
    body_bytes.truncate(content_length);
    let body = String::from_utf8(body_bytes).map_err(|_| invalid("request body is not UTF-8"))?;
    Ok(Request { method, path, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Write a complete JSON response (`Connection: close` — one exchange
/// per connection keeps the worker loop trivially stateless).
pub(crate) fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", status, reason(status));
    head.push_str("Content-Type: application/json\r\n");
    head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

pub(crate) fn write_json(
    stream: &mut TcpStream,
    status: u16,
    body: &serde_json::Value,
) -> std::io::Result<()> {
    let text = serde_json::to_string(body).unwrap_or_else(|_| "{}".to_string());
    write_response(stream, status, &text, &[])
}
