//! # glint-serve
//!
//! Deadline-bounded real-time scoring service over [`glint_core`]'s
//! detector: a dependency-free HTTP/1.1 server (hand-rolled parser over
//! `std::net`, matching the workspace's shim-only policy) built around
//! robustness under load rather than raw feature count.
//!
//! ## Endpoints
//!
//! * `POST /score` — score one interaction graph (`{"graph": …,
//!   "deadline_ms": …}`), answering on the detector's degradation ladder.
//! * `POST /score_batch` — score `{"graphs": […]}` under one shared
//!   deadline; later graphs in the batch feel more deadline pressure.
//! * `POST /feedback` — record a user verdict (`{"graph": …, "verdict":
//!   "Normal"|"Threat", "note": …}`) in the special-case store.
//! * `GET /metrics` — queue depth, shed/degraded counts, latency
//!   percentiles, qps.
//!
//! ## Robustness contract
//!
//! * **Bounded admission** — requests enter a fixed-capacity MPMC queue;
//!   when it is full the acceptor answers `429` with `Retry-After`
//!   immediately instead of queueing unboundedly.
//! * **Per-request deadlines** — the client's `deadline_ms` (capped by
//!   the server budget) burns from the moment the connection is admitted.
//!   A request that cannot afford the full GNN verdict gets a
//!   [`DriftOnly`](glint_core::Degradation::DriftOnly) answer; one past
//!   its deadline gets an explicit quarantined timeout verdict — never
//!   silence.
//! * **Worker panic isolation** — a panic inside a handler is contained
//!   by the worker loop: the in-flight request receives a typed `500`,
//!   the poisoned worker exits, and a replacement is spawned.
//! * **Graceful shutdown** — [`Server::shutdown`] is idempotent, stops
//!   admission, drains the queue, and joins every worker.
//! * **Fail-point sites** — [`SITE_ACCEPT`], [`SITE_PARSE`],
//!   [`SITE_ENQUEUE`], [`SITE_RESPOND`] let the fault matrix force a
//!   failure at every network-layer stage and prove it stays typed and
//!   contained.

mod handlers;
mod http;
mod metrics;
mod queue;
mod server;
mod worker;

pub mod client;

pub use server::{Scorer, ServeConfig, Server};

/// Fail-point site hit on every accepted connection, before admission.
/// A fired fault drops the connection (the client sees a closed socket).
pub const SITE_ACCEPT: &str = "serve.accept";
/// Fail-point site hit at the top of request parsing. A fired fault
/// surfaces as a typed `400` response.
pub const SITE_PARSE: &str = "serve.parse";
/// Fail-point site hit before the request enters the bounded queue. A
/// fired fault surfaces as a typed `503` response.
pub const SITE_ENQUEUE: &str = "serve.enqueue";
/// Fail-point site hit before the response is written. `err` downgrades
/// the response to a typed `500`; `panic` simulates a worker crash
/// mid-response (contained by the worker loop, which respawns).
pub const SITE_RESPOND: &str = "serve.respond";

/// The serving layer's single wall-clock read site. Deadlines and latency
/// metrics need a monotonic clock; verdict *content* never depends on it —
/// the detector only ever sees the discrete
/// [`DeadlinePressure`](glint_core::DeadlinePressure) rung.
pub(crate) mod clock {
    use std::time::Instant;

    pub(crate) fn now() -> Instant {
        // glint-lint: allow(wall-clock) — deadline enforcement and latency
        // metrics need a monotonic clock; verdicts depend only on the
        // discrete pressure rung derived from it, never on the raw time
        Instant::now()
    }
}
