//! Serving metrics: lock-free counters for admission/degradation
//! accounting plus a fixed-size latency ring whose percentiles back
//! `GET /metrics` and the `micro_serve` snapshot.
//!
//! Percentile math is a pure function over recorded samples — no clock
//! reads, no allocation surprises — so `/metrics` stays cheap and the
//! numbers are reproducible from the same sample window.

use std::sync::atomic::AtomicU64;
use std::sync::Mutex;

/// Latency samples kept for percentile estimation (a sliding window, so
/// long-running servers report recent behaviour, not lifetime averages).
const LATENCY_WINDOW: usize = 4096;

struct Ring {
    buf: Vec<u64>,
    next: usize,
}

impl Ring {
    fn push(&mut self, value: u64) {
        if self.buf.len() < LATENCY_WINDOW {
            self.buf.push(value);
            return;
        }
        if let Some(slot) = self.buf.get_mut(self.next) {
            *slot = value;
        }
        self.next = if self.next + 1 >= LATENCY_WINDOW {
            0
        } else {
            self.next + 1
        };
    }
}

pub(crate) struct Metrics {
    /// Requests admitted into the queue.
    pub accepted: AtomicU64,
    /// Requests refused with `429` at the admission gate.
    pub shed: AtomicU64,
    /// Responses successfully written (any status).
    pub answered: AtomicU64,
    /// Typed error responses (parse failures, injected faults, panics).
    pub errors: AtomicU64,
    /// Verdicts per degradation rung.
    pub full: AtomicU64,
    pub drift_only: AtomicU64,
    pub quarantined: AtomicU64,
    /// Workers respawned after a contained panic.
    pub respawns: AtomicU64,
    latencies_us: Mutex<Ring>,
}

impl Metrics {
    pub(crate) fn new() -> Self {
        Self {
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            answered: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            full: AtomicU64::new(0),
            drift_only: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            latencies_us: Mutex::new(Ring {
                buf: Vec::new(),
                next: 0,
            }),
        }
    }

    pub(crate) fn record_latency_us(&self, us: u64) {
        self.lock_ring().push(us);
    }

    /// `[p50, p95, p99]` in milliseconds over the current window.
    pub(crate) fn percentiles_ms(&self) -> [f64; 3] {
        let mut sorted = self.lock_ring().buf.clone();
        sorted.sort_unstable();
        [
            percentile_us(&sorted, 50) as f64 / 1000.0,
            percentile_us(&sorted, 95) as f64 / 1000.0,
            percentile_us(&sorted, 99) as f64 / 1000.0,
        ]
    }

    fn lock_ring(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.latencies_us
            // glint-lint: allow(hot-lock) — one push into a preallocated
            // ring per answered request; the critical section is a single
            // array write, and a poisoned lock recovers via into_inner (the
            // ring is valid after any interrupted write)
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Nearest-rank percentile over an ascending-sorted sample window.
/// Pure: no clocks, no locks, total for every input including empty.
pub(crate) fn percentile_us(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() - 1) * pct.min(100) / 100;
    sorted.get(idx).copied().unwrap_or(0)
}

/// Division guarded against a zero denominator (uptime/sample counts can
/// legitimately be zero right after boot).
pub(crate) fn safe_div(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&sorted, 50), 50);
        assert_eq!(percentile_us(&sorted, 95), 95);
        assert_eq!(percentile_us(&sorted, 99), 99);
        assert_eq!(percentile_us(&sorted, 100), 100);
        assert_eq!(percentile_us(&[], 95), 0);
        assert_eq!(percentile_us(&[7], 99), 7);
    }

    #[test]
    fn ring_wraps_at_window() {
        let mut ring = Ring {
            buf: Vec::new(),
            next: 0,
        };
        for i in 0..(LATENCY_WINDOW + 10) {
            ring.push(i as u64);
        }
        assert_eq!(ring.buf.len(), LATENCY_WINDOW);
        // the first 10 slots were overwritten by the newest samples
        assert_eq!(ring.buf.first().copied(), Some(LATENCY_WINDOW as u64));
    }

    #[test]
    fn safe_div_handles_zero() {
        assert_eq!(safe_div(10.0, 0.0), 0.0);
        assert!((safe_div(10.0, 4.0) - 2.5).abs() < 1e-12);
    }
}
