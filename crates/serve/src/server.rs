//! Server lifecycle: bind, admit, dispatch, drain.
//!
//! One acceptor thread owns the listener and the admission decision
//! (bounded queue or immediate `429`); a fixed pool of worker threads
//! owns parsing, scoring, and responding. Shutdown is idempotent: stop
//! admissions, wake the acceptor, drain the queue, join every worker.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use glint_core::feedback::FeedbackStore;
use glint_core::{DeadlinePressure, Detection, GlintDetector};
use glint_gnn::models::GraphModel;
use glint_graph::InteractionGraph;

use crate::clock;
use crate::handlers;
use crate::http;
use crate::queue::{Bounded, PushError};
use crate::worker;

/// Anything that can turn a graph plus a deadline-pressure rung into a
/// [`Detection`]. Implemented for every [`GlintDetector`] so the server
/// is generic over model types without infecting its own API.
pub trait Scorer: Send + Sync {
    fn score(&self, graph: InteractionGraph, pressure: DeadlinePressure) -> Detection;
}

impl<C, E> Scorer for GlintDetector<C, E>
where
    C: GraphModel + Send + Sync,
    E: GraphModel + Send + Sync,
{
    fn score(&self, graph: InteractionGraph, pressure: DeadlinePressure) -> Detection {
        self.assess_under_pressure(graph, pressure)
    }
}

/// Server tuning knobs. The defaults suit a local real-time monitor; the
/// overload tests shrink `workers`/`queue_capacity` to force shedding
/// deterministically.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port; see [`Server::addr`]).
    pub addr: String,
    /// Worker threads scoring requests.
    pub workers: usize,
    /// Bounded queue capacity — the only place requests ever wait.
    pub queue_capacity: usize,
    /// Server-side deadline budget in ms; client `deadline_ms` is capped
    /// here. 25 ms sits exactly on a glint-trace histogram bucket edge,
    /// so the latency histograms split at the deadline.
    pub deadline_ms: u64,
    /// Floor for the estimated full-verdict cost (ms). The live estimate
    /// is an EWMA of observed full verdicts; a non-zero floor makes the
    /// deadline→DriftOnly degradation deterministic in tests.
    pub full_cost_floor_ms: u64,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Per-connection socket read timeout (slow-sender guard).
    pub read_timeout_ms: u64,
    /// `Retry-After` seconds advertised on `429` responses.
    pub retry_after_s: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            deadline_ms: 25,
            full_cost_floor_ms: 0,
            max_body_bytes: 4 << 20,
            read_timeout_ms: 2_000,
            retry_after_s: 1,
        }
    }
}

/// One admitted connection. The deadline clock starts at admission, so
/// time spent waiting in the queue burns the request's budget.
pub(crate) struct Job {
    pub stream: TcpStream,
    pub admitted_at: Instant,
}

/// Live-worker accounting so shutdown can wait for the pool to drain,
/// across respawns.
pub(crate) struct WorkerSet {
    alive: Mutex<usize>,
    changed: Condvar,
}

impl WorkerSet {
    fn new() -> Self {
        Self {
            alive: Mutex::new(0),
            changed: Condvar::new(),
        }
    }

    fn guard(&self) -> std::sync::MutexGuard<'_, usize> {
        self.alive
            // glint-lint: allow(hot-lock) — touched once per worker
            // lifetime (spawn/exit), not per request; a poisoned count
            // recovers via into_inner since the counter is valid after any
            // interrupted increment
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub(crate) fn register(&self) {
        *self.guard() += 1;
    }

    pub(crate) fn deregister(&self) {
        {
            let mut alive = self.guard();
            *alive = alive.saturating_sub(1);
        }
        self.changed.notify_all();
    }

    fn wait_idle(&self) {
        let mut alive = self.guard();
        while *alive > 0 {
            alive = self
                .changed
                .wait(alive)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// State shared by the acceptor, the workers, and the handlers.
pub(crate) struct Shared {
    pub scorer: Arc<dyn Scorer>,
    pub cfg: ServeConfig,
    pub queue: Bounded<Job>,
    pub metrics: crate::metrics::Metrics,
    pub feedback: Mutex<FeedbackStore>,
    pub shutdown: AtomicBool,
    pub workers: WorkerSet,
    pub started: Instant,
    /// EWMA of observed full-verdict cost in µs (0 = no observation yet).
    full_cost_ewma_us: AtomicU64,
}

impl Shared {
    /// Current estimate of what a full GNN verdict costs, floored by the
    /// configured minimum. Requests whose remaining budget is below this
    /// degrade to drift-only instead of blowing the deadline.
    pub(crate) fn estimated_full_cost(&self) -> Duration {
        let ewma = self.full_cost_ewma_us.load(Ordering::Relaxed);
        Duration::from_micros(ewma.max(self.cfg.full_cost_floor_ms.saturating_mul(1_000)))
    }

    /// Fold one observed full-verdict duration into the EWMA (α = 1/8).
    /// Racy read-modify-write is fine: the estimate only steers the
    /// degradation decision, never the verdict content.
    pub(crate) fn observe_full_cost(&self, spent: Duration) {
        let us = spent.as_micros() as u64;
        let old = self.full_cost_ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 {
            us
        } else {
            (old.saturating_mul(7).saturating_add(us)) / 8
        };
        self.full_cost_ewma_us.store(new, Ordering::Relaxed);
    }
}

/// A running scoring service. Dropping the handle shuts it down.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Bind, spawn the worker pool and the acceptor, and return once the
    /// server is reachable at [`Server::addr`].
    pub fn start(scorer: Arc<dyn Scorer>, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(cfg.addr.as_str())?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            scorer,
            queue: Bounded::new(cfg.queue_capacity.max(1)),
            metrics: crate::metrics::Metrics::new(),
            feedback: Mutex::new(FeedbackStore::new()),
            shutdown: AtomicBool::new(false),
            workers: WorkerSet::new(),
            started: clock::now(),
            full_cost_ewma_us: AtomicU64::new(0),
            cfg,
        });
        for _ in 0..shared.cfg.workers.max(1) {
            worker::spawn_worker(&shared);
        }
        let accept_shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || accept_loop(&accept_shared, &listener));
        Ok(Server {
            shared,
            addr,
            acceptor: Mutex::new(Some(handle)),
        })
    }

    /// The bound address (resolves the `:0` ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests currently waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.backlog()
    }

    /// Workers respawned after a contained panic.
    pub fn worker_respawns(&self) -> u64 {
        self.shared.metrics.respawns.load(Ordering::Relaxed)
    }

    /// Graceful, idempotent shutdown: stop admissions, drain every
    /// already-admitted request, join the acceptor and all workers.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // The acceptor is parked in accept(); a throwaway connection
        // wakes it so it can observe the flag and exit.
        let _ = TcpStream::connect(self.addr);
        let handle = {
            let mut acceptor = self
                .acceptor
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            acceptor.take()
        };
        if let Some(h) = handle {
            let _ = h.join();
        }
        self.shared.queue.close();
        self.shared.workers.wait_idle();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accept connections and apply admission control. The only work done on
/// this thread per connection is the queue push (or the `429`/`503`
/// refusal), so admission keeps up even when every worker is busy.
fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        let conn = listener.accept();
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let stream = match conn {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        };
        if glint_failpoint::check(crate::SITE_ACCEPT).is_some() {
            // Injected accept fault: the connection is dropped before
            // admission. Contained — the client sees a closed socket and
            // the next connection is served normally.
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let mut stream = stream;
        if glint_failpoint::check(crate::SITE_ENQUEUE).is_some() {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
            http::drain_request(&mut stream, shared.cfg.max_body_bytes);
            let _ = http::write_json(
                &mut stream,
                503,
                &handlers::error_body("enqueue", "injected fault while enqueueing the request"),
            );
            continue;
        }
        let job = Job {
            stream,
            admitted_at: clock::now(),
        };
        match shared.queue.try_push(job) {
            Ok(depth) => {
                shared.metrics.accepted.fetch_add(1, Ordering::Relaxed);
                if glint_trace::enabled() {
                    glint_trace::counter("serve.accepted", 1);
                    glint_trace::gauge("serve.queue.depth", depth as f64);
                }
            }
            Err(PushError::Full(job)) => {
                // Admission control: never queue unboundedly. Shed with
                // 429 + Retry-After, synchronously, from this thread.
                shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
                if glint_trace::enabled() {
                    glint_trace::counter("serve.shed", 1);
                }
                let retry = shared.cfg.retry_after_s.to_string();
                let body = serde_json::to_string(&handlers::error_body(
                    "overload",
                    "request queue is full; retry after the advertised delay",
                ))
                .unwrap_or_else(|_| "{}".to_string());
                let mut stream = job.stream;
                // Lingering close: drain the refused request (bounded by a
                // short timeout so a slow sender cannot pin the acceptor)
                // before answering, else the close RSTs away the 429.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                http::drain_request(&mut stream, shared.cfg.max_body_bytes);
                let _ = http::write_response(&mut stream, 429, &body, &[("Retry-After", &retry)]);
            }
            Err(PushError::Closed(_)) => break,
        }
    }
    shared.queue.close();
}
