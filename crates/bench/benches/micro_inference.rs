//! E-EFF — §4.8.2: efficiency microbenchmarks (Criterion).
//!
//! Per-graph prediction latency vs graph size (paper: ≈0.61 s per
//! heterogeneous graph on their GPU stack — we report CPU numbers and the
//! scaling shape), plus the serialized ITGNN model size (paper: 6.13 MB).

use criterion::{criterion_group, BenchmarkId, Criterion};
use glint_core::construction::node_features;
use glint_gnn::batch::{GraphSchema, PreparedGraph};
use glint_gnn::models::{GraphModel, Itgnn, ItgnnConfig};
use glint_gnn::trainer::ClassifierTrainer;
use glint_graph::builder::GraphBuilder;
use glint_rules::{CorpusConfig, CorpusGenerator, Rule};

fn build_graphs_of_size(rules: &[Rule], n_nodes: usize, count: usize) -> Vec<PreparedGraph> {
    let mut builder = GraphBuilder::new(rules, n_nodes as u64);
    (0..count)
        .map(|_| {
            let g = builder.sample_graph(n_nodes, n_nodes, &node_features);
            PreparedGraph::from_graph(&g)
        })
        .collect()
}

fn bench_inference(c: &mut Criterion) {
    let cfg = CorpusConfig {
        scale: 0.001,
        per_platform_cap: 400,
        seed: 0xe44,
    };
    let rules = CorpusGenerator::generate_corpus(&cfg);
    // schema covering all five platforms
    let sample = build_graphs_of_size(&rules, 6, 8);
    let dummy: Vec<glint_graph::InteractionGraph> = Vec::new();
    let _ = dummy;
    let schema = GraphSchema {
        types: {
            let mut t: Vec<(glint_rules::Platform, usize)> = Vec::new();
            for g in &sample {
                for b in &g.by_type {
                    if !t.iter().any(|(p, _)| *p == b.platform) {
                        t.push((b.platform, b.feats.cols()));
                    }
                }
            }
            t.sort_by_key(|(p, _)| p.type_index());
            t
        },
    };
    let model = Itgnn::new(&schema.types, ItgnnConfig::default());
    println!(
        "ITGNN parameter count: {} scalars, serialized ≈ {:.2} MB (paper: 6.13 MB)",
        model.params().num_scalars(),
        model.params().byte_size() as f64 / 1e6
    );

    let mut group = c.benchmark_group("itgnn_inference");
    group.sample_size(20);
    for &n in &[2usize, 8, 20, 50] {
        let graphs = build_graphs_of_size(&rules, n, 4);
        group.bench_with_input(BenchmarkId::new("nodes", n), &graphs, |b, graphs| {
            let mut k = 0;
            b.iter(|| {
                let g = &graphs[k % graphs.len()];
                k += 1;
                std::hint::black_box(ClassifierTrainer::predict(&model, g))
            });
        });
    }
    group.finish();
}

fn bench_graph_prep(c: &mut Criterion) {
    let cfg = CorpusConfig {
        scale: 0.001,
        per_platform_cap: 400,
        seed: 0xe45,
    };
    let rules = CorpusGenerator::generate_corpus(&cfg);
    let mut builder = GraphBuilder::new(&rules, 1);
    let graph = builder.sample_graph(10, 10, &node_features);
    c.bench_function("prepare_graph_10_nodes", |b| {
        b.iter(|| std::hint::black_box(PreparedGraph::from_graph(&graph)))
    });
}

fn bench_embedding(c: &mut Criterion) {
    let rules = glint_rules::scenarios::table1_rules();
    c.bench_function("rule_text_embedding", |b| {
        let mut k = 0;
        b.iter(|| {
            let r = &rules[k % rules.len()];
            k += 1;
            std::hint::black_box(node_features(r))
        })
    });
}

criterion_group!(benches, bench_inference, bench_graph_prep, bench_embedding);

fn main() {
    benches();
    // with GLINT_TRACE=1 this snapshots kernel/inference counters to the
    // repo-root BENCH_trace.json (no-op otherwise)
    if let Some(path) = glint_bench::export_trace("micro_inference") {
        println!("trace exported to {}", path.display());
    }
}
