//! E-EFF — §4.8.2: efficiency microbenchmarks (Criterion).
//!
//! Per-graph prediction latency vs graph size (paper: ≈0.61 s per
//! heterogeneous graph on their GPU stack — we report CPU numbers and the
//! scaling shape), plus the serialized ITGNN model size (paper: 6.13 MB).

use criterion::{criterion_group, BenchmarkId, Criterion};
use glint_core::construction::node_features;
use glint_gnn::batch::{GraphSchema, PreparedGraph};
use glint_gnn::models::{GraphModel, Itgnn, ItgnnConfig};
use glint_gnn::trainer::ClassifierTrainer;
use glint_graph::builder::GraphBuilder;
use glint_rules::{CorpusConfig, CorpusGenerator, Rule};

fn build_graphs_of_size(rules: &[Rule], n_nodes: usize, count: usize) -> Vec<PreparedGraph> {
    let mut builder = GraphBuilder::new(rules, n_nodes as u64);
    (0..count)
        .map(|_| {
            let g = builder.sample_graph(n_nodes, n_nodes, &node_features);
            PreparedGraph::from_graph(&g)
        })
        .collect()
}

/// Schema covering every platform observed across `graphs`.
fn schema_of(graphs: &[PreparedGraph]) -> GraphSchema {
    let mut t: Vec<(glint_rules::Platform, usize)> = Vec::new();
    for g in graphs {
        for b in &g.by_type {
            if !t.iter().any(|(p, _)| *p == b.platform) {
                t.push((b.platform, b.feats.cols()));
            }
        }
    }
    t.sort_by_key(|(p, _)| p.type_index());
    GraphSchema { types: t }
}

fn bench_inference(c: &mut Criterion) {
    let cfg = CorpusConfig {
        scale: 0.001,
        per_platform_cap: 400,
        seed: 0xe44,
    };
    let rules = CorpusGenerator::generate_corpus(&cfg);
    // schema covering all five platforms
    let sample = build_graphs_of_size(&rules, 6, 8);
    let schema = schema_of(&sample);
    let model = Itgnn::new(&schema.types, ItgnnConfig::default());
    println!(
        "ITGNN parameter count: {} scalars, serialized ≈ {:.2} MB (paper: 6.13 MB)",
        model.params().num_scalars(),
        model.params().byte_size() as f64 / 1e6
    );

    let mut group = c.benchmark_group("itgnn_inference");
    group.sample_size(20);
    for &n in &[2usize, 8, 20, 50] {
        let graphs = build_graphs_of_size(&rules, n, 4);
        group.bench_with_input(BenchmarkId::new("nodes", n), &graphs, |b, graphs| {
            let mut k = 0;
            b.iter(|| {
                let g = &graphs[k % graphs.len()];
                k += 1;
                std::hint::black_box(ClassifierTrainer::predict(&model, g))
            });
        });
    }
    group.finish();
}

fn bench_graph_prep(c: &mut Criterion) {
    let cfg = CorpusConfig {
        scale: 0.001,
        per_platform_cap: 400,
        seed: 0xe45,
    };
    let rules = CorpusGenerator::generate_corpus(&cfg);
    let mut builder = GraphBuilder::new(&rules, 1);
    let graph = builder.sample_graph(10, 10, &node_features);
    c.bench_function("prepare_graph_10_nodes", |b| {
        b.iter(|| std::hint::black_box(PreparedGraph::from_graph(&graph)))
    });
}

fn bench_embedding(c: &mut Criterion) {
    let rules = glint_rules::scenarios::table1_rules();
    c.bench_function("rule_text_embedding", |b| {
        let mut k = 0;
        b.iter(|| {
            let r = &rules[k % rules.len()];
            k += 1;
            std::hint::black_box(node_features(r))
        })
    });
}

criterion_group!(benches, bench_inference, bench_graph_prep, bench_embedding);

/// Deterministic serving workload for `BENCH_inference.json`: 105
/// main-thread assessments (the step count `BENCH_trace.json`'s training
/// baseline measures) over a fixed mixed-size graph set, with the trace
/// registry counting only the serving loop itself. Emits the snapshot and
/// enforces two gates:
///
/// 1. **10× gate** — `tensor.alloc.matrices` must be at least 10× below
///    the committed `BENCH_trace.json` training baseline (the tape paid
///    ~29.8k matrix allocations per 105-step run; the pooled tape-free
///    path pays only cold-start misses);
/// 2. **ratchet** — no regression past the committed
///    `BENCH_inference.json`.
fn serving_snapshot() -> Result<(), String> {
    if !glint_trace::enabled() {
        println!("GLINT_TRACE not set: skipping BENCH_inference.json snapshot");
        return Ok(());
    }
    // Baselines must be read before the export overwrites the snapshot.
    let train_baseline =
        glint_bench::snapshot_counter(&glint_bench::bench_trace_path(), "tensor.alloc.matrices");
    let committed = glint_bench::snapshot_counter(
        &glint_bench::bench_inference_path(),
        "tensor.alloc.matrices",
    );

    let cfg = CorpusConfig {
        scale: 0.001,
        per_platform_cap: 400,
        seed: 0xe44,
    };
    let rules = CorpusGenerator::generate_corpus(&cfg);
    let mut graphs: Vec<PreparedGraph> = Vec::new();
    for &n in &[2usize, 8, 20, 50] {
        graphs.extend(build_graphs_of_size(&rules, n, 4));
    }
    let schema = schema_of(&graphs);
    let model = Itgnn::new(&schema.types, ItgnnConfig::default());

    // Count only the serving loop: graph/model construction is build-time
    // cost, not per-assessment cost.
    glint_trace::reset();
    {
        let _session = glint_trace::span("serve.session");
        for i in 0..105 {
            let g = &graphs[i % graphs.len()];
            let _assess = glint_trace::span("serve.assess");
            std::hint::black_box(ClassifierTrainer::predict(&model, g));
            std::hint::black_box(ClassifierTrainer::predict_proba(&model, g));
            glint_trace::counter("serve.steps", 1);
        }
    }
    let allocs = glint_trace::counter_value("tensor.alloc.matrices");
    let path = glint_bench::export_inference_trace("micro_inference.serving")
        .ok_or("BENCH_inference.json export failed")?;
    println!(
        "serving snapshot: {allocs} matrix allocations / 105 assessments -> {}",
        path.display()
    );
    if let Some(base) = train_baseline {
        if allocs * 10 > base {
            return Err(format!(
                "tape-free serving allocated {allocs} matrices over 105 assessments; \
                 the fast path must stay >=10x below the BENCH_trace.json \
                 training baseline of {base}"
            ));
        }
    }
    if let Some(prev) = committed {
        if allocs > prev {
            return Err(format!(
                "tensor.alloc.matrices regressed: {allocs} > committed {prev}"
            ));
        }
    }
    Ok(())
}

fn main() {
    // GLINT_BENCH_FAST skips the Criterion timing runs (CI runs only the
    // deterministic serving snapshot below — wall-clock measurements stay
    // a local/manual concern).
    if std::env::var_os("GLINT_BENCH_FAST").is_none() {
        benches();
        // with GLINT_TRACE=1 this snapshots kernel/inference counters to the
        // repo-root BENCH_trace.json (no-op otherwise)
        if let Some(path) = glint_bench::export_trace("micro_inference") {
            println!("trace exported to {}", path.display());
        }
    }
    if let Err(e) = serving_snapshot() {
        eprintln!("SERVING GATE FAILED: {e}");
        std::process::exit(1);
    }
}
