//! E-EFF (part 2) — §4.8.2: efficiency comparison against search-based
//! analysis.
//!
//! The paper argues qualitatively that HAWatcher's correlation traversal is
//! O(n^N) in chain length and iRuler's SMT checking is NP-hard, while
//! Glint's prediction is a fixed-cost forward pass. This harness makes the
//! claim measurable: explored-state counts and wall-clock of the bounded
//! model checker vs ITGNN inference latency, as the rule set grows.

use glint_bench::{print_table, record_json};
use glint_core::construction::node_features;
use glint_gnn::batch::{GraphSchema, PreparedGraph};
use glint_gnn::models::{GraphModel, Itgnn, ItgnnConfig};
use glint_gnn::trainer::ClassifierTrainer;
use glint_graph::builder::full_graph;
use glint_rules::{CorpusConfig, CorpusGenerator};
use glint_testbed::iruler::IRulerChecker;
use std::time::Instant;

fn main() {
    let corpus = CorpusGenerator::generate_corpus(&CorpusConfig {
        scale: 0.001,
        per_platform_cap: 300,
        seed: 0xeff,
    });

    // one ITGNN (untrained weights are fine for latency measurements)
    let probe: Vec<glint_graph::InteractionGraph> = vec![full_graph(&corpus[..6], &node_features)];
    let schema = GraphSchema::infer(probe.iter());
    let mut types = schema.types.clone();
    for p in glint_rules::Platform::all() {
        if !types.iter().any(|(q, _)| q == p) {
            types.push((*p, if p.is_voice() { 512 } else { 300 }));
        }
    }
    types.sort_by_key(|(p, _)| p.type_index());
    let model = Itgnn::new(&types, ItgnnConfig::default());
    println!(
        "ITGNN model: {} parameters ≈ {:.2} MB serialized (paper reports 6.13 MB)",
        model.params().num_scalars(),
        model.params().byte_size() as f64 / 1e6
    );

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &n_rules in &[3usize, 6, 10, 16, 24] {
        let subset = &corpus[..n_rules];
        // Glint: graph prep + one forward pass
        let t0 = Instant::now();
        let graph = full_graph(subset, &node_features);
        let prepared = PreparedGraph::from_graph(&graph);
        let _ = ClassifierTrainer::predict(&model, &prepared);
        let glint_ms = t0.elapsed().as_secs_f64() * 1e3;

        // iRuler-style bounded search
        let checker = IRulerChecker {
            max_depth: 5,
            max_states: 400_000,
        };
        let t1 = Instant::now();
        let outcome = checker.check(subset);
        let iruler_ms = t1.elapsed().as_secs_f64() * 1e3;

        rows.push(vec![
            n_rules.to_string(),
            format!("{glint_ms:.1} ms"),
            format!("{iruler_ms:.1} ms"),
            outcome.explored_states.to_string(),
            if outcome.truncated {
                "yes".into()
            } else {
                "no".into()
            },
            format!("{:.0}×", iruler_ms / glint_ms.max(1e-9)),
        ]);
        json.push(serde_json::json!({
            "rules": n_rules, "glint_ms": glint_ms, "iruler_ms": iruler_ms,
            "states": outcome.explored_states, "truncated": outcome.truncated,
        }));
    }
    print_table(
        "§4.8.2 — Glint inference vs search-based checking (depth 5)",
        &[
            "rules",
            "Glint",
            "model check",
            "states explored",
            "truncated",
            "slowdown",
        ],
        &rows,
    );
    println!("\npaper shape: learned prediction stays near-constant per graph while exhaustive");
    println!("exploration blows up combinatorially with the rule count (path explosion).");
    record_json("efficiency", &serde_json::json!({ "rows": json }));
}
