//! E-T2 — Table 2: rule counts per platform.
//!
//! The synthetic corpus is generated at `GLINT_SCALE` × the paper's crawl
//! sizes (with a per-platform floor/cap so every platform stays usable).
//! This harness reports the scaled counts next to the paper's and checks the
//! *proportions* — the property the downstream experiments rely on.

use glint_bench::{print_table, record_json, scale};
use glint_rules::{CorpusConfig, CorpusGenerator, Platform};

fn main() {
    let cfg = CorpusConfig {
        scale: scale(),
        per_platform_cap: 2_000,
        seed: 0x6117,
    };
    let rules = CorpusGenerator::generate_corpus(&cfg);
    let count = |p: Platform| rules.iter().filter(|r| r.platform == p).count();

    let rows: Vec<Vec<String>> = Platform::all()
        .iter()
        .map(|&p| {
            vec![
                p.name().to_string(),
                count(p).to_string(),
                p.paper_rule_count().to_string(),
                format!("{:.4}", count(p) as f64 / p.paper_rule_count() as f64),
            ]
        })
        .collect();
    print_table(
        "Table 2 — rules per platform (scaled corpus vs paper crawl)",
        &["platform", "generated", "paper", "ratio"],
        &rows,
    );

    // IFTTT must dominate, SmartThings/HA must be the scarce platforms
    let ifttt = count(Platform::Ifttt);
    assert!(ifttt >= count(Platform::Alexa));
    assert!(ifttt >= count(Platform::SmartThings));
    assert!(count(Platform::Alexa) >= count(Platform::SmartThings));
    println!("\nordering preserved: IFTTT ≥ Alexa ≈ Google ≥ HA ≥ SmartThings ✓");

    record_json(
        "table2",
        &serde_json::json!({
            "scale": scale(),
            "counts": Platform::all().iter().map(|&p| (p.name(), count(p))).collect::<Vec<_>>(),
        }),
    );
}
