//! E-F6 — Figure 6: rule-correlation discovery classifiers.
//!
//! Five models (SVC, MLP, Random Forest, kNN, Gradient Boosting) are trained
//! on Algorithm 1 features over labeled action→trigger pairs (5,600 positive
//! / 8,000 negative at paper scale) and evaluated by 10-fold stratified CV,
//! reporting accuracy / precision / recall / F1 — the box-plot panels of
//! Figure 6 reduced to their means and spreads.

use glint_bench::{corpus, pct, print_table, record_json, scale, timed};
use glint_core::correlation::PairDataset;
use glint_ml::cv::cross_validate;
use glint_ml::metrics::BinaryMetrics;
use glint_ml::{
    forest::RandomForest, gboost::GradientBoosting, knn::Knn, mlp::MlpClassifier, svm::LinearSvc,
    Classifier,
};

fn main() {
    let rules = corpus();
    let n_pos = ((5_600.0 * scale()) as usize).clamp(150, 2_000);
    let n_neg = ((8_000.0 * scale()) as usize).clamp(200, 2_800);
    let data = timed("pair dataset", || {
        PairDataset::build(&rules, n_pos, n_neg, 0x46)
    });
    println!(
        "pairs: {} positive / {} negative (paper: 5,600 / 8,000)",
        data.y.iter().filter(|&&l| l == 1).count(),
        data.y.iter().filter(|&&l| l == 0).count()
    );
    let folds = 10;

    // paper-reported headline numbers (accuracy / recall highlights, §4.1)
    let paper: &[(&str, f64)] = &[
        ("SVC", 0.97),
        ("MLP", 0.982),
        ("RForest", 0.984),
        ("KNN", 0.965),
        ("GBoost", 0.975),
    ];

    type ClassifierFactory = Box<dyn FnMut() -> Box<dyn Classifier>>;
    let mut factories: Vec<(&str, ClassifierFactory)> = vec![
        (
            "SVC",
            Box::new(|| Box::new(LinearSvc::new().with_epochs(30)) as Box<dyn Classifier>),
        ),
        (
            "MLP",
            Box::new(|| {
                Box::new(MlpClassifier::new(vec![64]).with_epochs(60)) as Box<dyn Classifier>
            }),
        ),
        (
            "RForest",
            Box::new(|| Box::new(RandomForest::new(40)) as Box<dyn Classifier>),
        ),
        (
            "KNN",
            Box::new(|| Box::new(Knn::new(5)) as Box<dyn Classifier>),
        ),
        (
            "GBoost",
            Box::new(|| Box::new(GradientBoosting::new(50)) as Box<dyn Classifier>),
        ),
    ];

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (name, factory) in &mut factories {
        let fold_metrics = timed(name, || {
            cross_validate(&mut **factory, &data.x, &data.y, folds, 7)
        });
        let mean = BinaryMetrics::mean(&fold_metrics);
        let spread = fold_metrics
            .iter()
            .map(|m| (m.accuracy - mean.accuracy).abs())
            .fold(0.0f64, f64::max);
        let paper_acc = paper
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, a)| *a)
            .unwrap_or(f64::NAN);
        rows.push(vec![
            name.to_string(),
            pct(mean.accuracy),
            pct(mean.precision),
            pct(mean.recall),
            pct(mean.f1),
            format!("±{:.1}", spread * 100.0),
            pct(paper_acc),
        ]);
        json_rows.push(serde_json::json!({
            "model": name, "accuracy": mean.accuracy, "precision": mean.precision,
            "recall": mean.recall, "f1": mean.f1,
        }));
    }
    print_table(
        "Figure 6 — correlation-discovery classifiers (10-fold CV)",
        &[
            "model",
            "accuracy",
            "precision",
            "recall",
            "F1",
            "spread",
            "paper acc",
        ],
        &rows,
    );
    println!("\npaper shape: all five ≥ ~96%; RForest/MLP lead; precision high across the board.");
    record_json(
        "fig6",
        &serde_json::json!({ "scale": scale(), "rows": json_rows }),
    );
}
