//! E-T5 — Table 5: homogeneous graph classification.
//!
//! Eight models (GCN, GXN, GIN, IFG, SVC, KNN, ITGNN-C, ITGNN-S) on the
//! IFTTT and SmartThings labeled datasets; 80/20 split × `GLINT_TRIALS`
//! trials, threat oversampling + inverse-frequency class weights, weighted
//! F1 (the §4.4 protocol). ITGNN-C classifies by nearest class centroid in
//! its contrastive latent space.

use glint_bench::{
    dataset_to_xy, epochs, make_model, offline, prepare_split, print_table, record_json, scale,
    timed, train_config, trials, vs_paper,
};
use glint_gnn::batch::{GraphSchema, PreparedGraph};
use glint_gnn::trainer::{ClassifierTrainer, ContrastiveTrainer};
use glint_graph::GraphDataset;
use glint_ml::metrics::BinaryMetrics;
use glint_ml::{knn::Knn, svm::LinearSvc, Classifier};

/// Paper Table 5 accuracies: (model, ifttt, smartthings).
const PAPER: &[(&str, f64, f64)] = &[
    ("GCN", 0.895, 0.909),
    ("GXN", 0.787, 0.882),
    ("GIN", 0.950, 0.897),
    ("IFG", 0.698, 0.861),
    ("SVC", 0.841, 0.844),
    ("KNN", 0.895, 0.848),
    ("ITGNN-C", 0.954, 0.765),
    ("ITGNN-S", 0.957, 0.882),
];

fn eval_contrastive(
    model: &dyn glint_gnn::models::GraphModel,
    train: &[PreparedGraph],
    test: &[PreparedGraph],
) -> BinaryMetrics {
    // classify by nearest class centroid in the latent space
    let emb = ContrastiveTrainer::embed_all(model, train);
    let labels: Vec<usize> = train.iter().map(|g| g.label.unwrap()).collect();
    let mut centroids = vec![vec![0.0f32; emb.cols()]; 2];
    let mut counts = [0usize; 2];
    for (i, &l) in labels.iter().enumerate() {
        counts[l] += 1;
        for (c, &v) in centroids[l].iter_mut().zip(emb.row(i)) {
            *c += v;
        }
    }
    for (c, n) in centroids.iter_mut().zip(counts) {
        let inv = 1.0 / n.max(1) as f32;
        c.iter_mut().for_each(|v| *v *= inv);
    }
    let y_true: Vec<usize> = test.iter().map(|g| g.label.unwrap()).collect();
    let y_pred: Vec<usize> = test
        .iter()
        .map(|g| {
            let e = ContrastiveTrainer::embed(model, g);
            let d =
                |c: &Vec<f32>| -> f32 { c.iter().zip(&e).map(|(a, b)| (a - b) * (a - b)).sum() };
            usize::from(d(&centroids[1]) < d(&centroids[0]))
        })
        .collect();
    BinaryMetrics::weighted_from_predictions(&y_true, &y_pred)
}

fn run_dataset(name: &str, ds: &GraphDataset, paper_col: usize) -> Vec<serde_json::Value> {
    println!(
        "\n--- {name}: {} graphs, {:?} ---",
        ds.len(),
        ds.class_stats()
    );
    let schema = GraphSchema::infer(ds.iter());
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &(model_name, p_ifttt, p_st) in PAPER {
        let paper_acc = if paper_col == 0 { p_ifttt } else { p_st };
        let mut per_trial = Vec::new();
        for t in 0..trials() {
            let split = ds.split(0.8, 100 + t as u64);
            let metrics = match model_name {
                "SVC" | "KNN" => {
                    let mut train_ds = split.train.clone();
                    train_ds.oversample_threats(t as u64);
                    let (x, y) = dataset_to_xy(&train_ds);
                    let (xt, yt) = dataset_to_xy(&split.test);
                    let pred = if model_name == "SVC" {
                        let mut m = LinearSvc::new().with_epochs(25).with_seed(t as u64);
                        m.fit(&x, &y);
                        m.predict(&xt)
                    } else {
                        let mut m = Knn::new(5);
                        m.fit(&x, &y);
                        m.predict(&xt)
                    };
                    BinaryMetrics::weighted_from_predictions(&yt, &pred)
                }
                "ITGNN-C" => {
                    let (train, test) = prepare_split(&split, t as u64);
                    let mut model = make_model("ITGNN", &schema, t as u64);
                    ContrastiveTrainer::new(train_config(t as u64)).train(&mut *model, &train);
                    eval_contrastive(&*model, &train, &test)
                }
                _ => {
                    let (train, test) = prepare_split(&split, t as u64);
                    let mut model = make_model(model_name, &schema, t as u64);
                    ClassifierTrainer::new(train_config(t as u64)).train(&mut *model, &train);
                    ClassifierTrainer::evaluate(&*model, &test)
                }
            };
            per_trial.push(metrics);
        }
        let mean = BinaryMetrics::mean(&per_trial);
        rows.push(vec![
            model_name.to_string(),
            vs_paper(mean.accuracy, paper_acc),
            glint_bench::pct(mean.precision),
            glint_bench::pct(mean.recall),
            glint_bench::pct(mean.f1),
        ]);
        json.push(serde_json::json!({
            "dataset": name, "model": model_name, "accuracy": mean.accuracy,
            "precision": mean.precision, "recall": mean.recall, "f1": mean.f1,
            "paper_accuracy": paper_acc,
        }));
        eprintln!("[glint-bench] {name}/{model_name}: {mean}");
    }
    print_table(
        &format!("Table 5 — {name} homogeneous graph classification"),
        &["model", "accuracy", "precision", "recall", "weighted F1"],
        &rows,
    );
    json
}

fn main() {
    let builder = offline(0x7ab1e5);
    let ifttt = timed("IFTTT dataset", || glint_bench::ifttt_dataset(&builder));
    let st = timed("SmartThings dataset", || {
        glint_bench::smartthings_dataset(&builder)
    });
    let mut json = run_dataset("IFTTT", &ifttt, 0);
    json.extend(run_dataset("SmartThings", &st, 1));
    println!("\npaper shape: GNNs beat SVC/KNN on IFTTT; ITGNN-S best-in-class on IFTTT;");
    println!("ITGNN-C collapses on the tiny SmartThings set (contrastive needs data).");
    record_json(
        "table5",
        &serde_json::json!({ "scale": scale(), "epochs": epochs(), "trials": trials(), "rows": json }),
    );
}
