//! E-F8 — Figure 8: heterogeneous graph classification.
//!
//! HGSL, MAGCN, MAGXN, and ITGNN on the five-platform heterogeneous dataset
//! (80/20 × `GLINT_TRIALS`, weighted F1). Paper: ITGNN 95.5% accuracy >
//! HGSL 92.9% > MAGCN 90.2% > MAGXN 81.7%.

use glint_bench::{
    epochs, make_model, offline, prepare_split, print_table, record_json, scale, timed,
    train_config, trials, vs_paper,
};
use glint_gnn::batch::GraphSchema;
use glint_gnn::trainer::ClassifierTrainer;
use glint_ml::metrics::BinaryMetrics;

const PAPER: &[(&str, f64)] = &[
    ("HGSL", 0.929),
    ("MAGCN", 0.902),
    ("MAGXN", 0.817),
    ("ITGNN", 0.955),
];

fn main() {
    let builder = offline(0xf18);
    let ds = timed("hetero dataset", || glint_bench::hetero_dataset(&builder));
    println!(
        "hetero dataset: {} graphs, {:?}",
        ds.len(),
        ds.class_stats()
    );
    let schema = GraphSchema::infer(ds.iter());

    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut measured = Vec::new();
    for &(name, paper_acc) in PAPER {
        let mut per_trial = Vec::new();
        for t in 0..trials() {
            let split = ds.split(0.8, 200 + t as u64);
            let (train, test) = prepare_split(&split, t as u64);
            let mut model = make_model(name, &schema, t as u64);
            ClassifierTrainer::new(train_config(t as u64)).train(&mut *model, &train);
            per_trial.push(ClassifierTrainer::evaluate(&*model, &test));
        }
        let mean = BinaryMetrics::mean(&per_trial);
        eprintln!("[glint-bench] {name}: {mean}");
        measured.push((name, mean.accuracy));
        rows.push(vec![
            name.to_string(),
            vs_paper(mean.accuracy, paper_acc),
            glint_bench::pct(mean.precision),
            glint_bench::pct(mean.recall),
            glint_bench::pct(mean.f1),
        ]);
        json.push(serde_json::json!({
            "model": name, "accuracy": mean.accuracy, "precision": mean.precision,
            "recall": mean.recall, "f1": mean.f1, "paper_accuracy": paper_acc,
        }));
    }
    print_table(
        "Figure 8 — heterogeneous graph classification",
        &["model", "accuracy", "precision", "recall", "weighted F1"],
        &rows,
    );
    let itgnn = measured.iter().find(|(n, _)| *n == "ITGNN").unwrap().1;
    let magxn = measured.iter().find(|(n, _)| *n == "MAGXN").unwrap().1;
    println!("\npaper shape: ITGNN leads; MAGXN trails (heavier parameterization).");
    println!(
        "measured: ITGNN {:.1}% vs MAGXN {:.1}%",
        itgnn * 100.0,
        magxn * 100.0
    );
    record_json(
        "fig8",
        &serde_json::json!({ "scale": scale(), "epochs": epochs(), "trials": trials(), "rows": json }),
    );
}
