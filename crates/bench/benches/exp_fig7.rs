//! E-F7 — Figure 7: ITGNN ablation on the heterogeneous dataset.
//!
//! Four panels: (i) number of scales 1–5 (paper best: 3), (ii) VIPool ratio
//! 0.3/0.6/1.0 (best: 0.6; 1.0 disables pooling), (iii) propagation layers
//! 1–6 (best: 2; over-smoothing at 6), (iv) node-transformation variants
//! none / intra-only / inter-only / all (paper: "None" ≈ 81.5%, full ≈ 95.1%).

use glint_bench::{
    epochs, offline, prepare_split, print_table, record_json, scale, timed, train_config,
};
use glint_gnn::batch::GraphSchema;
use glint_gnn::models::{Itgnn, ItgnnConfig};
use glint_gnn::trainer::ClassifierTrainer;
use glint_ml::metrics::BinaryMetrics;

fn main() {
    let builder = offline(0xab1a7e);
    let full = timed("hetero dataset", || glint_bench::hetero_dataset(&builder));
    // the ablation uses a subsample so 15 configurations stay tractable
    let ds = full.subsample(
        full.len()
            .min(((240.0 * (scale() / 0.03)) as usize).max(120)),
        9,
    );
    let schema = GraphSchema::infer(ds.iter());
    let split = ds.split(0.8, 77);
    let (train, test) = prepare_split(&split, 1);

    let run = |label: String, cfg: ItgnnConfig| -> BinaryMetrics {
        let mut model = Itgnn::new(&schema.types, cfg);
        ClassifierTrainer::new(train_config(3)).train(&mut model, &train);
        let m = ClassifierTrainer::evaluate(&model, &test);
        eprintln!("[glint-bench] {label}: {m}");
        m
    };

    let base = ItgnnConfig {
        seed: 11,
        ..Default::default()
    };

    // panel (i): number of scales
    let mut rows = Vec::new();
    let mut scale_accs = Vec::new();
    for d in [1usize, 2, 3, 5] {
        let m = run(
            format!("scales={d}"),
            ItgnnConfig {
                n_scales: d,
                ..base.clone()
            },
        );
        scale_accs.push((d, m));
        rows.push(vec![
            d.to_string(),
            glint_bench::pct(m.accuracy),
            glint_bench::pct(m.f1),
        ]);
    }
    print_table(
        "Figure 7(i) — number of multi-scales (paper best: 3)",
        &["scales", "accuracy", "F1"],
        &rows,
    );

    // panel (ii): pooling ratio
    let mut rows = Vec::new();
    let mut ratio_accs = Vec::new();
    for r in [0.3f32, 0.6, 1.0] {
        let m = run(
            format!("ratio={r}"),
            ItgnnConfig {
                pool_ratio: r,
                ..base.clone()
            },
        );
        ratio_accs.push((r, m));
        rows.push(vec![
            format!("{r}"),
            glint_bench::pct(m.accuracy),
            glint_bench::pct(m.f1),
        ]);
    }
    print_table(
        "Figure 7(ii) — pooling ratio (paper best: 0.6)",
        &["ratio", "accuracy", "F1"],
        &rows,
    );

    // panel (iii): propagation layers
    let mut rows = Vec::new();
    let mut layer_accs = Vec::new();
    for l in [1usize, 2, 4, 6] {
        let m = run(
            format!("layers={l}"),
            ItgnnConfig {
                prop_layers: l,
                ..base.clone()
            },
        );
        layer_accs.push((l, m));
        rows.push(vec![
            l.to_string(),
            glint_bench::pct(m.accuracy),
            glint_bench::pct(m.f1),
        ]);
    }
    print_table(
        "Figure 7(iii) — propagation layers (paper best: 2, over-smooths at 6)",
        &["layers", "accuracy", "F1"],
        &rows,
    );

    // panel (iv): node-transformation variants
    let mut rows = Vec::new();
    let mut variant_accs = Vec::new();
    for (name, intra_off, inter_off) in [
        ("None", true, true),
        ("Intra only", false, true),
        ("Inter only", true, false),
        ("ALL", false, false),
    ] {
        let m = run(
            format!("transform={name}"),
            ItgnnConfig {
                disable_intra: intra_off,
                disable_inter: inter_off,
                ..base.clone()
            },
        );
        variant_accs.push((name, m));
        rows.push(vec![
            name.to_string(),
            glint_bench::pct(m.accuracy),
            glint_bench::pct(m.f1),
        ]);
    }
    print_table(
        "Figure 7(iv) — node transformation (paper: None 81.5% → ALL 95.1%)",
        &["variant", "accuracy", "F1"],
        &rows,
    );

    // shape assertions (soft): full transform ≥ none; 6 layers ≤ 2 layers
    let acc =
        |v: &[(&str, BinaryMetrics)], k: &str| v.iter().find(|(n, _)| *n == k).unwrap().1.accuracy;
    let all_acc = acc(&variant_accs, "ALL");
    let none_acc = acc(&variant_accs, "None");
    println!(
        "\nshape check: ALL ({:.1}%) vs None ({:.1}%)",
        all_acc * 100.0,
        none_acc * 100.0
    );
    let l2 = layer_accs.iter().find(|(l, _)| *l == 2).unwrap().1.accuracy;
    let l6 = layer_accs.iter().find(|(l, _)| *l == 6).unwrap().1.accuracy;
    println!(
        "over-smoothing check: layers=2 {:.1}% vs layers=6 {:.1}%",
        l2 * 100.0,
        l6 * 100.0
    );

    record_json(
        "fig7",
        &serde_json::json!({
            "scale": scale(), "epochs": epochs(),
            "scales": scale_accs.iter().map(|(d, m)| (d, m.accuracy)).collect::<Vec<_>>(),
            "ratios": ratio_accs.iter().map(|(r, m)| (r.to_string(), m.accuracy)).collect::<Vec<_>>(),
            "layers": layer_accs.iter().map(|(l, m)| (l, m.accuracy)).collect::<Vec<_>>(),
            "variants": variant_accs.iter().map(|(n, m)| (n.to_string(), m.accuracy)).collect::<Vec<_>>(),
        }),
    );
}
