//! E-T6 — Table 6: cross-domain transfer learning.
//!
//! Eight rows: GIN / GCN / ITGNN across IFTTT ↔ SmartThings plus ITGNN
//! IFTTT ↔ heterogeneous. Protocol per §4.6: small-target rows freeze
//! everything but the classification head; large-target rows freeze only the
//! earliest layers. Paper shape: transfer never hurts; the biggest jump is
//! ITGNN SmartThings ← IFTTT (88.2% → 100%).

use glint_bench::{
    make_model, offline, prepare_split, print_table, record_json, scale, timed, train_config,
    trials,
};
use glint_core::transfer::run_transfer;
use glint_gnn::batch::GraphSchema;
use glint_gnn::trainer::ClassifierTrainer;
use glint_graph::GraphDataset;

struct Row {
    model: &'static str,
    target: &'static str,
    source: &'static str,
    paper_no: f64,
    paper_with: f64,
    /// freeze head-only (tiny target) vs early-layers (big target)
    freeze_all_enc: bool,
}

const ROWS: &[Row] = &[
    Row {
        model: "GIN",
        target: "SmartThings",
        source: "IFTTT",
        paper_no: 0.897,
        paper_with: 0.923,
        freeze_all_enc: true,
    },
    Row {
        model: "GIN",
        target: "IFTTT",
        source: "SmartThings",
        paper_no: 0.950,
        paper_with: 0.952,
        freeze_all_enc: false,
    },
    Row {
        model: "GCN",
        target: "SmartThings",
        source: "IFTTT",
        paper_no: 0.909,
        paper_with: 0.941,
        freeze_all_enc: true,
    },
    Row {
        model: "GCN",
        target: "IFTTT",
        source: "SmartThings",
        paper_no: 0.895,
        paper_with: 0.939,
        freeze_all_enc: false,
    },
    Row {
        model: "ITGNN",
        target: "SmartThings",
        source: "IFTTT",
        paper_no: 0.882,
        paper_with: 1.0,
        freeze_all_enc: true,
    },
    Row {
        model: "ITGNN",
        target: "IFTTT",
        source: "SmartThings",
        paper_no: 0.957,
        paper_with: 0.964,
        freeze_all_enc: false,
    },
    Row {
        model: "ITGNN",
        target: "IFTTT",
        source: "Heterogeneous",
        paper_no: 0.957,
        paper_with: 0.961,
        freeze_all_enc: false,
    },
    Row {
        model: "ITGNN",
        target: "Heterogeneous",
        source: "IFTTT",
        paper_no: 0.951,
        paper_with: 0.955,
        freeze_all_enc: false,
    },
];

fn main() {
    let builder = offline(0x7a6);
    let ifttt = timed("IFTTT dataset", || glint_bench::ifttt_dataset(&builder));
    let st = timed("SmartThings dataset", || {
        glint_bench::smartthings_dataset(&builder)
    });
    let het = timed("hetero dataset", || glint_bench::hetero_dataset(&builder));
    let pick = |name: &str| -> &GraphDataset {
        match name {
            "IFTTT" => &ifttt,
            "SmartThings" => &st,
            "Heterogeneous" => &het,
            _ => unreachable!(),
        }
    };

    let mut table = Vec::new();
    let mut json = Vec::new();
    for row in ROWS {
        let source_ds = pick(row.source);
        let target_ds = pick(row.target);
        // schema that covers both domains so parameter names/shapes align
        let schema = GraphSchema::infer(source_ds.iter().chain(target_ds.iter()));
        let mut no_acc = 0.0;
        let mut with_acc = 0.0;
        for t in 0..trials() {
            let seed = 300 + t as u64;
            // train the source model
            let source_split = source_ds.split(0.8, seed);
            let (source_train, _) = prepare_split(&source_split, seed);
            let mut source_model = make_model(row.model, &schema, seed);
            ClassifierTrainer::new(train_config(seed)).train(&mut *source_model, &source_train);

            let target_split = target_ds.split(0.8, seed ^ 0xff);
            let (target_train, target_test) = prepare_split(&target_split, seed ^ 0xff);
            let mut scratch = make_model(row.model, &schema, seed + 13);
            let mut transferred = make_model(row.model, &schema, seed + 13);
            let freeze: &[&str] = if row.freeze_all_enc {
                &["enc."]
            } else {
                &["enc.meta.", "enc.l0", "enc.scale0.conv0"]
            };
            let outcome = run_transfer(
                &mut *scratch,
                &mut *transferred,
                &*source_model,
                freeze,
                &target_train,
                &target_test,
                train_config(seed + 31),
                train_config(seed + 31),
            );
            no_acc += outcome.no_transfer.accuracy;
            with_acc += outcome.with_transfer.accuracy;
        }
        no_acc /= trials() as f64;
        with_acc /= trials() as f64;
        eprintln!(
            "[glint-bench] {} {}←{}: {:.1}% → {:.1}%",
            row.model,
            row.target,
            row.source,
            no_acc * 100.0,
            with_acc * 100.0
        );
        table.push(vec![
            row.model.to_string(),
            row.target.to_string(),
            row.source.to_string(),
            glint_bench::pct(no_acc),
            glint_bench::pct(with_acc),
            format!("{:+.1}", (with_acc - no_acc) * 100.0),
            format!(
                "{:.1}%→{:.1}% ({:+.1})",
                row.paper_no * 100.0,
                row.paper_with * 100.0,
                (row.paper_with - row.paper_no) * 100.0
            ),
        ]);
        json.push(serde_json::json!({
            "model": row.model, "target": row.target, "source": row.source,
            "no_transfer": no_acc, "with_transfer": with_acc,
            "paper_no": row.paper_no, "paper_with": row.paper_with,
        }));
    }
    print_table(
        "Table 6 — transfer learning (accuracy on the target domain)",
        &[
            "model",
            "target",
            "source",
            "no trans.",
            "trans.",
            "Δ",
            "paper",
        ],
        &table,
    );
    println!("\npaper shape: improvement is non-negative in every row; largest gain on the");
    println!("tiny SmartThings target with the IFTTT-pretrained ITGNN encoder.");
    record_json(
        "table6",
        &serde_json::json!({ "scale": scale(), "rows": json }),
    );
}
