//! E-F11 — Figure 11: testbed comparison of detectors.
//!
//! ITGNN (Glint) vs HAWatcher vs OCSVM vs IsolationForest on the 600-graph
//! test set (binary-correlation and complex-correlation threats, §4.8.1's
//! five attack types injected into simulated week-style logs).
//!
//! Paper shape: Glint 100% P/R on BCT and ~96%/95.3% on CCT; HAWatcher
//! strong on BCT (97.8%/94.1%) but degraded on CCT (83.2%/82.7% with the
//! Bernoulli fallback for uncovered threat types); OCSVM and IsolationForest
//! clearly behind (~60–70%).

use glint_bench::{offline, prepare_split, print_table, record_json, scale, timed, train_config};
use glint_gnn::batch::{GraphSchema, PreparedGraph};
use glint_gnn::models::{GraphModel, Itgnn, ItgnnConfig};
use glint_gnn::trainer::ClassifierTrainer;
use glint_ml::iforest::IsolationForest;
use glint_ml::metrics::ConfusionMatrix;
use glint_ml::ocsvm::OneClassSvm;
use glint_testbed::harness::{frame_vectors, TestCase, TestSetBuilder, ThreatComplexity};
use glint_testbed::hawatcher::HaWatcher;
use glint_testbed::home::figure10_home;
use glint_testbed::sim::{SimConfig, Simulator};

fn metrics_of(cases: &[&TestCase], verdicts: &[bool]) -> (f64, f64) {
    let y_true: Vec<usize> = cases.iter().map(|c| c.threat as usize).collect();
    let y_pred: Vec<usize> = verdicts.iter().map(|&v| v as usize).collect();
    let m = ConfusionMatrix::from_predictions(&y_true, &y_pred);
    (m.precision(), m.recall())
}

fn main() {
    // scale the test set: paper uses 150 per family-and-class
    let per_family = ((150.0 * (scale() / 0.03)).round() as usize).clamp(20, 150);
    let cases = timed("test set", || {
        TestSetBuilder {
            per_family,
            sim_hours: 3.0,
            seed: 0xf11,
        }
        .build()
    });
    println!(
        "test cases: {} ({} per family/class; paper: 150)",
        cases.len(),
        per_family
    );

    // ---- Glint (ITGNN): pretrained offline on oracle-labeled corpus
    // graphs, then fine-tuned on a disjoint testbed slice (the paper's §4.8
    // protocol: "Glint takes no more than 1 hour to train the model and
    // apply transfer learning to improve model performance") ----
    let builder = offline(0x9_11);
    let train_ds = timed("training dataset", || glint_bench::hetero_dataset(&builder));
    let finetune_cases = TestSetBuilder {
        per_family: (per_family / 2).max(10),
        sim_hours: 3.0,
        seed: 0xf17e, // disjoint from the evaluation seed
    }
    .build();
    let schema = GraphSchema::infer(
        train_ds
            .iter()
            .chain(cases.iter().map(|c| &c.graph))
            .chain(finetune_cases.iter().map(|c| &c.graph)),
    );
    let split = train_ds.split(0.9, 41);
    let (train, _) = prepare_split(&split, 41);
    let mut itgnn = Itgnn::new(
        &schema.types,
        ItgnnConfig {
            seed: 4,
            ..Default::default()
        },
    );
    timed("ITGNN pretraining", || {
        ClassifierTrainer::new(train_config(4)).train(&mut itgnn, &train)
    });
    let finetune_graphs: Vec<PreparedGraph> = finetune_cases
        .iter()
        .map(|c| PreparedGraph::from_graph(&c.graph))
        .collect();
    timed("ITGNN testbed fine-tuning", || {
        itgnn.params_mut().freeze_prefix("enc.meta.");
        ClassifierTrainer::new(train_config(5)).train(&mut itgnn, &finetune_graphs);
        itgnn.params_mut().unfreeze_all();
    });
    let glint_verdicts: Vec<bool> = timed("ITGNN inference", || {
        cases
            .iter()
            .map(|c| ClassifierTrainer::predict(&itgnn, &PreparedGraph::from_graph(&c.graph)) == 1)
            .collect()
    });

    // ---- HAWatcher: trained on a clean baseline week, Bernoulli fallback
    // for uncovered threat kinds ----
    let clean_rules = glint_rules::scenarios::table1_rules();
    let clean_log = Simulator::new(
        figure10_home(),
        clean_rules,
        SimConfig {
            seed: 77,
            duration_hours: 72.0,
            ..Default::default()
        },
    )
    .run();
    let mut hawatcher = HaWatcher::new();
    hawatcher.train(&clean_log);
    let hw_verdicts: Vec<bool> = cases
        .iter()
        .map(|c| {
            if c.threat && !c.hawatcher_covered() {
                hawatcher.coin_flip_verdict(c.id)
            } else {
                hawatcher.check(&c.log)
            }
        })
        .collect();

    // ---- OCSVM / IsolationForest on 4-frame state vectors ----
    let home = figure10_home();
    let normal_frames: Vec<&TestCase> = cases.iter().filter(|c| !c.threat).collect();
    let mut train_rows = Vec::new();
    for c in normal_frames.iter().take(per_family) {
        let m = frame_vectors(&home, &c.log, 8);
        for r in 0..m.rows().min(6) {
            train_rows.push(m.row(r).to_vec());
        }
    }
    let train_x = glint_tensor::Matrix::from_rows(&train_rows);
    let mut ocsvm = OneClassSvm::new(0.1);
    ocsvm.fit(&train_x);
    let mut iforest = IsolationForest::new(60).with_seed(3);
    iforest.fit(&train_x);
    let frame_verdict = |detector: &dyn Fn(&glint_tensor::Matrix) -> Vec<i32>, c: &TestCase| {
        let m = frame_vectors(&home, &c.log, 8);
        let preds = detector(&m);
        let anomalies = preds.iter().filter(|&&p| p == -1).count();
        anomalies * 5 > preds.len() // ≥20% anomalous frames ⇒ threat window
    };
    let ocsvm_verdicts: Vec<bool> = cases
        .iter()
        .map(|c| frame_verdict(&|m| ocsvm.predict(m), c))
        .collect();
    let iforest_verdicts: Vec<bool> = cases
        .iter()
        .map(|c| frame_verdict(&|m| iforest.predict(m), c))
        .collect();

    // ---- report per complexity family ----
    // (detector, BCT (acc, F1), CCT (acc, F1)) from the paper's Figure 11
    type PaperRow = (&'static str, (f64, f64), (f64, f64));
    let paper: &[PaperRow] = &[
        ("Glint (ITGNN)", (1.0, 1.0), (0.96, 0.953)),
        ("HAWatcher", (0.978, 0.941), (0.832, 0.827)),
        ("OCSVM", (0.72, 0.68), (0.669, 0.633)),
        ("IsolationForest", (0.70, 0.66), (0.65, 0.62)),
    ];
    let all_verdicts: Vec<(&str, &Vec<bool>)> = vec![
        ("Glint (ITGNN)", &glint_verdicts),
        ("HAWatcher", &hw_verdicts),
        ("OCSVM", &ocsvm_verdicts),
        ("IsolationForest", &iforest_verdicts),
    ];
    let mut json = Vec::new();
    for family in [ThreatComplexity::Bct, ThreatComplexity::Cct] {
        let idx: Vec<usize> = (0..cases.len())
            .filter(|&i| cases[i].complexity == family)
            .collect();
        let fam_cases: Vec<&TestCase> = idx.iter().map(|&i| &cases[i]).collect();
        let mut rows = Vec::new();
        for (name, verdicts) in &all_verdicts {
            let v: Vec<bool> = idx.iter().map(|&i| verdicts[i]).collect();
            let (p, r) = metrics_of(&fam_cases, &v);
            let paper_row = paper.iter().find(|(n, _, _)| n == name).unwrap();
            let (pp, pr) = if family == ThreatComplexity::Bct {
                paper_row.1
            } else {
                paper_row.2
            };
            rows.push(vec![
                name.to_string(),
                glint_bench::pct(p),
                glint_bench::pct(r),
                format!("{:.1}%/{:.1}%", pp * 100.0, pr * 100.0),
            ]);
            json.push(serde_json::json!({
                "family": format!("{family:?}"), "detector": name,
                "precision": p, "recall": r, "paper_precision": pp, "paper_recall": pr,
            }));
        }
        print_table(
            &format!("Figure 11 — {family:?} (precision / recall)"),
            &["detector", "precision", "recall", "paper P/R"],
            &rows,
        );
    }
    println!("\npaper shape: Glint leads both families; HAWatcher competitive on BCT but");
    println!("degraded on CCT; the time-series anomaly detectors trail everywhere.");
    record_json(
        "fig11",
        &serde_json::json!({ "scale": scale(), "per_family": per_family, "rows": json }),
    );
}
