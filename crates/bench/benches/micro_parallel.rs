//! MICRO-PAR — serial-vs-parallel speedup of the `glint_tensor::par` layer.
//!
//! Two workloads, each at 1/2/4/8 threads (forced via `par::with_threads`,
//! so one run covers every configuration regardless of `GLINT_THREADS`):
//! - a 512×512 dense matmul, the kernel-level headline number;
//! - batched ITGNN inference over a pile of interaction graphs, the
//!   pipeline-level number (per-graph matrices are tiny, so the win comes
//!   from `par::ordered_map` fanning whole graphs out to workers).
//!
//! The acceptance bar from the parallel-layer work: ≥2× at 4+ threads for
//! both. A summary line per workload prints the measured speedups.

use criterion::{criterion_group, BenchmarkId, Criterion};
use glint_core::construction::node_features;
use glint_gnn::batch::PreparedGraph;
use glint_gnn::models::{Itgnn, ItgnnConfig};
use glint_gnn::trainer::ClassifierTrainer;
use glint_graph::builder::GraphBuilder;
use glint_tensor::{par, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect(),
    )
}

fn bench_matmul(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("hardware threads available: {cores} (speedups above that count are core-bound)");
    let mut rng = StdRng::seed_from_u64(0xbe9c);
    let a = random_matrix(&mut rng, 512, 512);
    let b = random_matrix(&mut rng, 512, 512);
    // correctness sanity before timing anything
    let reference = a.matmul(&b);
    assert_eq!(par::with_threads(4, || par::matmul(&a, &b)), reference);

    let mut group = c.benchmark_group("matmul_512");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |bench, &t| {
                bench.iter(|| par::with_threads(t, || std::hint::black_box(par::matmul(&a, &b))));
            },
        );
    }
    group.finish();

    // readable speedup summary (criterion output reports absolute times)
    for &threads in &[2usize, 4, 8] {
        let serial = time_it(|| {
            par::with_threads(1, || std::hint::black_box(par::matmul(&a, &b)));
        });
        let parallel = time_it(|| {
            par::with_threads(threads, || std::hint::black_box(par::matmul(&a, &b)));
        });
        println!(
            "matmul 512x512: {threads} threads speedup {:.2}x",
            serial / parallel
        );
    }
}

fn bench_batched_inference(c: &mut Criterion) {
    let cfg = glint_rules::CorpusConfig {
        scale: 0.001,
        per_platform_cap: 400,
        seed: 0xe46,
    };
    let rules = glint_rules::CorpusGenerator::generate_corpus(&cfg);
    let mut builder = GraphBuilder::new(&rules, 11);
    let graphs: Vec<PreparedGraph> = (0..96)
        .map(|_| PreparedGraph::from_graph(&builder.sample_graph(20, 20, &node_features)))
        .collect();
    let types = {
        let mut t: Vec<(glint_rules::Platform, usize)> = Vec::new();
        for g in &graphs {
            for b in &g.by_type {
                if !t.iter().any(|(p, _)| *p == b.platform) {
                    t.push((b.platform, b.feats.cols()));
                }
            }
        }
        t.sort_by_key(|(p, _)| p.type_index());
        t
    };
    let model = Itgnn::new(&types, ItgnnConfig::default());

    let predict_all = || {
        par::ordered_map(graphs.len(), |i| {
            ClassifierTrainer::predict(&model, &graphs[i])
        })
    };
    let mut group = c.benchmark_group("itgnn_batch_inference_96");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |bench, &t| {
                bench.iter(|| par::with_threads(t, || std::hint::black_box(predict_all())));
            },
        );
    }
    group.finish();

    for &threads in &[2usize, 4, 8] {
        let serial = time_it(|| {
            par::with_threads(1, || std::hint::black_box(predict_all()));
        });
        let parallel = time_it(|| {
            par::with_threads(threads, || std::hint::black_box(predict_all()));
        });
        println!(
            "batched ITGNN inference (96 graphs): {threads} threads speedup {:.2}x",
            serial / parallel
        );
    }
}

/// Median-of-5 wall-clock seconds for one call.
fn time_it(f: impl Fn()) -> f64 {
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[2]
}

criterion_group!(benches, bench_matmul, bench_batched_inference);

fn main() {
    benches();
    // with GLINT_TRACE=1 this snapshots kernel flop/call counters to the
    // repo-root BENCH_trace.json (no-op otherwise)
    if let Some(path) = glint_bench::export_trace("micro_parallel") {
        println!("trace exported to {}", path.display());
    }
}
