//! E-D — §4.7: drifting-sample detection over the unlabeled pools and the
//! four new blueprint threat types.
//!
//! Paper: 63 drifting samples among 10,000 unlabeled IFTTT graphs and 104
//! among 19,440 heterogeneous graphs (≈0.6% tails), and the drift pool
//! surfaces "action block", "action ablation", "trigger intake", and
//! "condition duplicate" — blueprint patterns absent from training.

use glint_bench::{n_graphs, offline, print_table, record_json, scale, timed, train_config};
use glint_core::construction::node_features;
use glint_core::drift::DriftDetector;
use glint_gnn::batch::{GraphSchema, PreparedGraph};
use glint_gnn::models::{Itgnn, ItgnnConfig};
use glint_gnn::trainer::ContrastiveTrainer;
use glint_graph::builder::full_graph;
use glint_rules::Platform;

fn main() {
    let builder = offline(0xd217);
    let labeled = timed("hetero dataset", || glint_bench::hetero_dataset(&builder));
    let unlabeled_ifttt = timed("unlabeled IFTTT pool", || {
        builder.build_dataset(&[Platform::Ifttt], n_graphs(10_000), 12, false)
    });
    let unlabeled_hetero = timed("unlabeled 5-platform pool", || {
        builder.build_dataset(
            &[
                Platform::Ifttt,
                Platform::SmartThings,
                Platform::Alexa,
                Platform::GoogleAssistant,
                Platform::HomeAssistant,
            ],
            n_graphs(19_440),
            12,
            false,
        )
    });

    // ITGNN-C on the labeled hetero dataset (5 platforms appear in the
    // unlabeled pool, so infer the schema over everything)
    let schema = GraphSchema::infer(
        labeled
            .iter()
            .chain(unlabeled_hetero.iter())
            .chain(unlabeled_ifttt.iter()),
    );
    let prepared = PreparedGraph::prepare_all(labeled.graphs());
    let labels: Vec<usize> = prepared.iter().map(|g| g.label.unwrap()).collect();
    let mut model = Itgnn::new(
        &schema.types,
        ItgnnConfig {
            seed: 17,
            bounded_embedding: false,
            ..Default::default()
        },
    );
    timed("ITGNN-C training", || {
        ContrastiveTrainer::new(train_config(17)).train(&mut model, &prepared)
    });
    let emb = ContrastiveTrainer::embed_all(&model, &prepared);
    let detector = DriftDetector::fit(&emb, &labels);

    // scan the unlabeled pools
    let mut rows = Vec::new();
    let mut measured = Vec::new();
    for (name, pool, paper_hits, paper_total) in [
        ("IFTTT unlabeled", &unlabeled_ifttt, 63usize, 10_000usize),
        ("5-platform unlabeled", &unlabeled_hetero, 104, 19_440),
    ] {
        let prepared_pool = PreparedGraph::prepare_all(pool.graphs());
        let pool_emb = ContrastiveTrainer::embed_all(&model, &prepared_pool);
        let hits = detector.detect(&pool_emb).len();
        let rate = hits as f64 / pool.len().max(1) as f64;
        let paper_rate = paper_hits as f64 / paper_total as f64;
        measured.push((name, hits, pool.len(), rate));
        rows.push(vec![
            name.to_string(),
            format!("{hits}/{}", pool.len()),
            format!("{:.2}%", rate * 100.0),
            format!("{paper_hits}/{paper_total} ({:.2}%)", paper_rate * 100.0),
        ]);
    }
    print_table(
        "§4.7 — drifting samples in the unlabeled pools",
        &["pool", "drifting", "rate", "paper"],
        &rows,
    );

    // the four blueprint threats must drift harder than the typical
    // in-distribution graph
    let in_dist_mean: f64 = (0..emb.rows())
        .map(|i| detector.drift_degree(emb.row(i)))
        .sum::<f64>()
        / emb.rows() as f64;
    let mut rows = Vec::new();
    let mut bp_json = Vec::new();
    for (name, rules) in glint_rules::scenarios::drift_blueprints() {
        let g = full_graph(&rules, &node_features);
        let prepared = PreparedGraph::from_graph(&g);
        let e = ContrastiveTrainer::embed(&model, &prepared);
        let degree = detector.drift_degree(&e);
        rows.push(vec![
            name.to_string(),
            format!("{degree:.2}"),
            if detector.is_drifting(&e) {
                "DRIFTING".into()
            } else {
                "in-dist".into()
            },
        ]);
        bp_json.push(serde_json::json!({ "blueprint": name, "degree": degree }));
    }
    print_table(
        &format!(
            "§4.7 — the four blueprint threats (T_MAD = 3; in-dist mean degree {in_dist_mean:.2})"
        ),
        &["new threat type", "drift degree", "verdict"],
        &rows,
    );
    println!("\npaper shape: drift flags are a sub-percent tail of the unlabeled pools, and the");
    println!("four blueprint patterns surface in the drift pool for manual analysis.");

    record_json(
        "drift",
        &serde_json::json!({
            "scale": scale(),
            "pools": measured.iter().map(|(n, h, t, r)| serde_json::json!({
                "pool": n, "hits": h, "total": t, "rate": r })).collect::<Vec<_>>(),
            "blueprints": bp_json,
            "in_dist_mean_degree": in_dist_mean,
        }),
    );
}
