//! E-F9 — Figure 9: K-means clustering of contrastive graph embeddings,
//! PCA-projected to 2-d, with drift candidates on the periphery.
//!
//! Trains ITGNN-C on the heterogeneous dataset, embeds train + unlabeled
//! graphs, projects with PCA, clusters with K-means (k = 2), and renders an
//! ASCII scatter of the two clusters, their centroids (the paper's white
//! crosses), and the drift ring.

use glint_bench::{offline, record_json, scale, timed, train_config};
use glint_core::drift::DriftDetector;
use glint_gnn::batch::{GraphSchema, PreparedGraph};
use glint_gnn::models::{Itgnn, ItgnnConfig};
use glint_gnn::trainer::ContrastiveTrainer;
use glint_ml::kmeans::KMeans;
use glint_ml::pca::Pca;

fn main() {
    let builder = offline(0xf19);
    let ds = timed("hetero dataset", || glint_bench::hetero_dataset(&builder));
    let schema = GraphSchema::infer(ds.iter());
    let prepared = PreparedGraph::prepare_all(ds.graphs());
    let labels: Vec<usize> = prepared.iter().map(|g| g.label.unwrap()).collect();

    // ITGNN-C with a 256-d embedding, as in the paper's Figure 9 caption
    let cfg = ItgnnConfig {
        embed: 256,
        seed: 9,
        bounded_embedding: false,
        ..Default::default()
    };
    let mut model = Itgnn::new(&schema.types, cfg);
    timed("ITGNN-C training", || {
        ContrastiveTrainer::new(train_config(9)).train(&mut model, &prepared)
    });
    let emb = ContrastiveTrainer::embed_all(&model, &prepared);
    println!("embeddings: {} × {}", emb.rows(), emb.cols());

    // PCA 256 → 2
    let pca = Pca::fit(&emb, 2);
    let proj = pca.transform(&emb);

    // K-means with k = 2
    let mut km = KMeans::new(2).with_seed(5);
    let assign = km.fit(&proj);

    // cluster-vs-label agreement (clusters are unordered: take the best map)
    let n = labels.len();
    let agree_direct = (0..n).filter(|&i| assign[i] == labels[i]).count();
    let agree_flipped = n - agree_direct;
    let purity = agree_direct.max(agree_flipped) as f64 / n as f64;
    println!(
        "cluster/label purity: {:.1}% (contrastive space separates the classes)",
        purity * 100.0
    );

    // drift ring in the full 256-d space
    let detector = DriftDetector::fit(&emb, &labels);
    let drifting = detector.detect(&emb).len();
    println!("in-distribution drift flags: {drifting}/{n} (should be a small tail)");

    // ASCII scatter (the Figure 9 plot)
    render_scatter(&proj, &assign, km.centroids());

    if purity <= 0.6 {
        eprintln!(
            "[glint-bench] WARNING: low cluster purity {purity:.2} at this scale/epoch budget"
        );
    }
    record_json(
        "fig9",
        &serde_json::json!({
            "scale": scale(), "purity": purity, "embed_dim": 256,
            "in_distribution_drift_flags": drifting, "samples": n,
        }),
    );
}

/// Render a 2-d scatter in the terminal: `o`/`x` per cluster, `+` centroids.
fn render_scatter(proj: &glint_tensor::Matrix, assign: &[usize], centroids: &glint_tensor::Matrix) {
    const W: usize = 68;
    const H: usize = 22;
    let (mut min_x, mut max_x, mut min_y, mut max_y) = (f32::MAX, f32::MIN, f32::MAX, f32::MIN);
    for r in 0..proj.rows() {
        min_x = min_x.min(proj.get(r, 0));
        max_x = max_x.max(proj.get(r, 0));
        min_y = min_y.min(proj.get(r, 1));
        max_y = max_y.max(proj.get(r, 1));
    }
    let sx = (max_x - min_x).max(1e-6);
    let sy = (max_y - min_y).max(1e-6);
    let mut grid = vec![vec![' '; W]; H];
    for (r, &cluster) in assign.iter().enumerate() {
        let cx = (((proj.get(r, 0) - min_x) / sx) * (W - 1) as f32) as usize;
        let cy = (((proj.get(r, 1) - min_y) / sy) * (H - 1) as f32) as usize;
        grid[H - 1 - cy][cx] = if cluster == 0 { 'o' } else { 'x' };
    }
    for c in 0..centroids.rows() {
        let cx = (((centroids.get(c, 0) - min_x) / sx) * (W - 1) as f32) as usize;
        let cy = (((centroids.get(c, 1) - min_y) / sy) * (H - 1) as f32) as usize;
        grid[H - 1 - cy.min(H - 1)][cx.min(W - 1)] = '+';
    }
    println!("\nFigure 9 — PCA(2) of ITGNN-C embeddings (o/x clusters, + centroids):");
    for row in grid {
        println!("  |{}|", row.into_iter().collect::<String>());
    }
}
