//! Serving-layer microbenchmark: boots a real `glint-serve` instance on
//! loopback, drives it with a deterministic workload, and emits the
//! repo-root `BENCH_serve.json` snapshot CI gates against.
//!
//! Three phases:
//!
//! 1. **Latency/qps** — a comfortably-configured server answers a
//!    sequential `/score` workload; client-side latencies give
//!    p50/p95/p99 and qps, gated against the committed `p95_budget_ms`.
//! 2. **Deadline degradation** — a server whose full-verdict cost floor
//!    exceeds every request budget must answer each request on the
//!    drift-only rung (graceful degradation, never silence).
//! 3. **Overload shedding** — a single-worker, capacity-2 server with
//!    its worker pinned by a batch must shed the burst with `429`s while
//!    `accepted + shed == sent` stays exact (no request unaccounted).

use std::sync::Arc;
use std::time::Instant;

use glint_core::construction::OfflineBuilder;
use glint_core::drift::DriftDetector;
use glint_core::GlintDetector;
use glint_gnn::batch::{GraphSchema, PreparedGraph};
use glint_gnn::models::{Itgnn, ItgnnConfig};
use glint_gnn::trainer::{ClassifierTrainer, ContrastiveTrainer, TrainConfig};
use glint_graph::InteractionGraph;
use glint_rules::scenarios::table1_rules;
use glint_rules::Platform;
use glint_serve::{client, ServeConfig, Server};
use serde_json::{json, Value};

/// Small trained detector over the Table 1 scenario corpus — the same
/// shape the fault matrix uses, sized so the harness boots in seconds.
fn trained_detector() -> (GlintDetector<Itgnn, Itgnn>, Vec<InteractionGraph>) {
    let rules = table1_rules();
    let builder = OfflineBuilder::new(rules, 7);
    let mut ds = builder.build_dataset(Platform::all(), 32, 5, true);
    ds.oversample_threats(7);
    let prepared = PreparedGraph::prepare_all(ds.graphs());
    let schema = GraphSchema::infer(ds.iter());
    let cfg = ItgnnConfig {
        hidden: 12,
        embed: 8,
        n_scales: 2,
        ..Default::default()
    };
    let mut classifier = Itgnn::new(&schema.types, cfg.clone());
    ClassifierTrainer::new(TrainConfig {
        epochs: 3,
        ..Default::default()
    })
    .train(&mut classifier, &prepared);
    let mut embedder = Itgnn::new(&schema.types, cfg);
    ContrastiveTrainer::new(TrainConfig {
        epochs: 2,
        ..Default::default()
    })
    .train(&mut embedder, &prepared);
    let emb = ContrastiveTrainer::embed_all(&embedder, &prepared);
    let labels: Vec<usize> = prepared.iter().map(|g| g.label.unwrap_or(0)).collect();
    let detector = GlintDetector::new(
        table1_rules(),
        classifier,
        embedder,
        DriftDetector::fit(&emb, &labels),
    );
    (detector, ds.graphs().to_vec())
}

fn score_body(graph: &InteractionGraph, deadline_ms: Option<u64>) -> Value {
    match deadline_ms {
        Some(ms) => json!({ "graph": serde_json::to_value(graph), "deadline_ms": ms }),
        None => json!({ "graph": serde_json::to_value(graph) }),
    }
}

fn metric_u64(metrics: &Value, name: &str) -> u64 {
    metrics
        .as_map()
        .and_then(|m| m.iter().find(|(k, _)| k == name))
        .and_then(|(_, v)| v.as_u64())
        .unwrap_or(0)
}

fn percentile(sorted_ms: &[f64], pct: usize) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = (sorted_ms.len() - 1) * pct.min(100) / 100;
    sorted_ms[idx]
}

struct Snapshot {
    qps: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    sent: u64,
    accepted: u64,
    shed: u64,
    answered: u64,
    drift_only: u64,
    quarantined: u64,
    respawns: u64,
}

/// Phase 1: sequential `/score` workload against a comfortable server.
fn measure_latency(
    detector: Arc<GlintDetector<Itgnn, Itgnn>>,
    graphs: &[InteractionGraph],
) -> (f64, f64, f64, f64) {
    let cfg = ServeConfig {
        // generous budget: this phase measures the happy path, not shedding
        deadline_ms: 250,
        ..Default::default()
    };
    let server = Server::start(detector, cfg).expect("bind loopback");
    let addr = server.addr();
    for graph in graphs.iter().cycle().take(8) {
        let (status, _) = client::post(&addr, "/score", &score_body(graph, None)).expect("warmup");
        assert_eq!(status, 200, "warmup request must succeed");
    }
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(120);
    let begin = Instant::now();
    for (i, graph) in graphs.iter().cycle().take(120).enumerate() {
        let start = Instant::now();
        let (status, body) =
            client::post(&addr, "/score", &score_body(graph, None)).expect("scored");
        latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(status, 200, "request {i} must succeed, got body {body:?}");
    }
    let elapsed = begin.elapsed().as_secs_f64();
    server.shutdown();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    (
        120.0 / elapsed.max(1e-9),
        percentile(&latencies_ms, 50),
        percentile(&latencies_ms, 95),
        percentile(&latencies_ms, 99),
    )
}

/// Phases 2+3: deterministic degradation and shedding on a constrained
/// server, returning its final `/metrics` accounting.
fn measure_overload(
    detector: Arc<GlintDetector<Itgnn, Itgnn>>,
    graphs: &[InteractionGraph],
) -> (u64, Value) {
    let cfg = ServeConfig {
        workers: 1,
        queue_capacity: 2,
        deadline_ms: 500,
        // the cost floor dwarfs every request budget, so each request is
        // deadline-pressured into the drift-only rung deterministically
        full_cost_floor_ms: 1_000,
        ..Default::default()
    };
    let server = Server::start(detector, cfg).expect("bind loopback");
    let addr = server.addr();
    let mut sent = 0u64;

    // Phase 2: every request must degrade to drift-only, never hang.
    for graph in graphs.iter().cycle().take(12) {
        let (status, body) =
            client::post(&addr, "/score", &score_body(graph, Some(500))).expect("scored");
        sent += 1;
        assert_eq!(status, 200);
        let rung = body
            .as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == "degradation"))
            .and_then(|(_, v)| v.as_str())
            .unwrap_or("")
            .to_string();
        assert_eq!(
            rung, "drift_only",
            "deadline-pressured request must ride the drift-only rung"
        );
    }

    // Phase 3: pin the single worker with a batch, then burst. With the
    // worker busy and capacity 2, most of the burst must shed with 429.
    let batch: Vec<Value> = graphs
        .iter()
        .cycle()
        .take(64)
        .map(serde_json::to_value)
        .collect();
    let mut occupier = std::net::TcpStream::connect(addr).expect("connect occupier");
    occupier
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .expect("timeout");
    client::write_request(
        &mut occupier,
        "POST",
        "/score_batch",
        Some(&json!({ "graphs": batch, "deadline_ms": 500 })),
    )
    .expect("occupier written");
    sent += 1;
    std::thread::sleep(std::time::Duration::from_millis(100));
    let mut burst = Vec::new();
    for graph in graphs.iter().cycle().take(12) {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect burst");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .expect("timeout");
        let body = score_body(graph, Some(500));
        client::write_request(&mut stream, "POST", "/score", Some(&body)).expect("burst written");
        sent += 1;
        burst.push(stream);
    }
    let mut n200 = 0u64;
    let mut n429 = 0u64;
    for mut stream in burst {
        let (status, _) = client::read_response(&mut stream).expect("burst answered");
        match status {
            200 => n200 += 1,
            429 => n429 += 1,
            other => panic!("burst request answered with unexpected status {other}"),
        }
    }
    let (status, _) = client::read_response(&mut occupier).expect("occupier answered");
    assert_eq!(status, 200, "the occupying batch must still be answered");
    assert!(
        n429 > 0,
        "a saturated capacity-2 queue must shed some of a 12-request burst"
    );
    assert_eq!(n200 + n429, 12, "every burst request must be answered");

    let (status, metrics) = client::get(&addr, "/metrics").expect("metrics");
    sent += 1;
    assert_eq!(status, 200);
    let accepted = metric_u64(&metrics, "accepted");
    let shed = metric_u64(&metrics, "shed");
    assert_eq!(
        accepted + shed,
        sent,
        "admission accounting must be exact: accepted + shed == sent"
    );
    server.shutdown();
    (sent, metrics)
}

fn run() -> Snapshot {
    let (detector, graphs) = trained_detector();
    let detector = Arc::new(detector);
    let (qps, p50, p95, p99) = measure_latency(Arc::clone(&detector), &graphs);
    let (overload_sent, metrics) = measure_overload(detector, &graphs);
    let verdicts = metrics
        .as_map()
        .and_then(|m| m.iter().find(|(k, _)| k == "verdicts"))
        .map(|(_, v)| v.clone())
        .unwrap_or(Value::Null);
    Snapshot {
        qps,
        p50,
        p95,
        p99,
        sent: overload_sent + 8 + 120,
        accepted: metric_u64(&metrics, "accepted") + 8 + 120,
        shed: metric_u64(&metrics, "shed"),
        answered: metric_u64(&metrics, "answered") + 8 + 120,
        drift_only: metric_u64(&verdicts, "drift_only"),
        quarantined: metric_u64(&verdicts, "quarantined"),
        respawns: metric_u64(&metrics, "worker_respawns"),
    }
}

fn main() {
    // Budget must be read before the export overwrites the snapshot.
    let budget_ms = glint_bench::snapshot_f64(&glint_bench::bench_serve_path(), "p95_budget_ms")
        .unwrap_or(25.0);
    let snap = run();
    let body = json!({
        "run": "micro_serve",
        "schema": 1u64,
        "qps": snap.qps,
        "latency_ms": { "p50": snap.p50, "p95": snap.p95, "p99": snap.p99 },
        "p95_budget_ms": budget_ms,
        "requests": {
            "sent": snap.sent,
            "accepted": snap.accepted,
            "shed": snap.shed,
            "answered": snap.answered,
        },
        "degraded": { "drift_only": snap.drift_only, "quarantined": snap.quarantined },
        "worker_respawns": snap.respawns,
    });
    let path = glint_bench::bench_serve_path();
    let text = serde_json::to_string_pretty(&body).unwrap_or_default();
    if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
        eprintln!("SERVE GATE FAILED: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!(
        "serve snapshot: qps {:.0}, p50 {:.2} ms, p95 {:.2} ms (budget {budget_ms} ms), \
         shed {}, drift_only {} -> {}",
        snap.qps,
        snap.p50,
        snap.p95,
        snap.shed,
        snap.drift_only,
        path.display()
    );
    if snap.p95 > budget_ms {
        eprintln!(
            "SERVE GATE FAILED: p95 latency {:.2} ms exceeds the committed budget {budget_ms} ms",
            snap.p95
        );
        std::process::exit(1);
    }
}
