//! Million-home churn microbenchmark: drives the sharded incremental
//! pipeline (`glint_testbed::ChurnHarness`) over `GLINT_SCALE_HOMES`
//! simulated homes of Table-2-proportioned rule churn, timing every
//! ingest→verdict delta and reading peak RSS, and emits the repo-root
//! `BENCH_scale.json` snapshot CI gates against.
//!
//! Two gates, enforced here with a non-zero exit:
//!
//! 1. **Re-mine ratchet** — pairs re-mined incrementally must stay
//!    strictly below what from-scratch batch mining would have done
//!    (`remined_pairs < full_mine_pairs`).
//! 2. **Re-embed ratchet** — dirty-subgraph re-embeds must stay strictly
//!    below full-corpus re-embeds (`reembedded < full_reembed`).
//!
//! Everything except the wall-clock/RSS section of the snapshot is a pure
//! function of the seed: the `counters` object is byte-identical across
//! runs and thread configurations (pinned by `glint-testbed`'s own tests
//! and the `observability` snapshot test).
//!
//! Env knobs: `GLINT_SCALE_HOMES` (default 100_000), `GLINT_SCALE_OUT`
//! (default repo-root `BENCH_scale.json`).

use std::time::Instant;

use glint_testbed::{ChurnConfig, ChurnHarness, ScaleCounters};
use serde_json::{json, Value};

/// Deltas scale with the fleet: one churn event per five homes keeps the
/// default run at the committed 100k-home / 20k-delta shape while the CI
/// smoke (1k homes) finishes in seconds.
fn config(homes: u64) -> ChurnConfig {
    ChurnConfig {
        homes,
        deltas: (homes / 5).max(50),
        persist_every: 64,
        shard_dir: Some(std::env::temp_dir().join(format!("glint-scale-shards-{homes}"))),
        ..ChurnConfig::default()
    }
}

/// Peak resident set (VmHWM, kB) from `/proc/self/status`; 0 when the
/// platform does not expose it.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse().ok())
        .unwrap_or(0)
}

fn percentile(sorted_ms: &[f64], pct: usize) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = (sorted_ms.len() - 1) * pct.min(100) / 100;
    sorted_ms[idx]
}

struct Snapshot {
    homes: u64,
    counters: ScaleCounters,
    bootstrap_s: f64,
    churn_s: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    max_ms: f64,
    ingest_qps: f64,
    peak_rss_kb: u64,
}

fn run(homes: u64) -> Snapshot {
    let cfg = config(homes);
    if let Some(dir) = &cfg.shard_dir {
        // scratch shards from a previous run must not leak into compaction
        let _ = std::fs::remove_dir_all(dir);
    }
    let mut harness = ChurnHarness::new(cfg).expect("churn harness boots");

    let begin = Instant::now();
    harness.bootstrap().expect("bootstrap ingests cleanly");
    let bootstrap_s = begin.elapsed().as_secs_f64();

    let mut latencies_ms: Vec<f64> = Vec::with_capacity(harness.churn_len() as usize);
    let begin = Instant::now();
    loop {
        let start = Instant::now();
        match harness.tick() {
            Ok(true) => latencies_ms.push(start.elapsed().as_secs_f64() * 1e3),
            Ok(false) => break,
            Err(e) => panic!("churn delta rejected mid-stream: {e}"),
        }
    }
    let churn_s = begin.elapsed().as_secs_f64();
    let counters = harness.finish();

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Snapshot {
        homes,
        p50: percentile(&latencies_ms, 50),
        p95: percentile(&latencies_ms, 95),
        p99: percentile(&latencies_ms, 99),
        max_ms: latencies_ms.last().copied().unwrap_or(0.0),
        ingest_qps: latencies_ms.len() as f64 / churn_s.max(1e-9),
        bootstrap_s,
        churn_s,
        counters,
        peak_rss_kb: peak_rss_kb(),
    }
}

fn main() {
    let homes: u64 = std::env::var("GLINT_SCALE_HOMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let snap = run(homes);
    let c = &snap.counters;

    let counters_json: Value = serde_json::to_value(c);
    let remined_over_full = c.remined_pairs as f64 / (c.full_mine_pairs as f64).max(1.0);
    let reembed_over_full = c.reembedded as f64 / (c.full_reembed as f64).max(1.0);
    let ratchet_pass = c.remined_pairs < c.full_mine_pairs && c.reembedded < c.full_reembed;
    let body = json!({
        "run": "micro_scale",
        "schema": 1u64,
        "homes": snap.homes,
        "counters": counters_json,
        "latency_ms": {
            "p50": snap.p50,
            "p95": snap.p95,
            "p99": snap.p99,
            "max": snap.max_ms,
        },
        "ingest_qps": snap.ingest_qps,
        "wall_s": { "bootstrap": snap.bootstrap_s, "churn": snap.churn_s },
        "peak_rss_kb": snap.peak_rss_kb,
        "ratchet": {
            "remined_over_full": remined_over_full,
            "reembed_over_full": reembed_over_full,
            "pass": ratchet_pass,
        },
    });
    let path = glint_bench::bench_scale_path();
    let text = serde_json::to_string_pretty(&body).unwrap_or_default();
    if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
        eprintln!("SCALE GATE FAILED: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!(
        "scale snapshot: {} homes, {} churn deltas, ingest p50 {:.3} ms / p95 {:.3} ms, \
         {:.0} ingests/s, remine ratio {:.4}, re-embed ratio {:.4}, peak RSS {} kB -> {}",
        snap.homes,
        c.churn_deltas,
        snap.p50,
        snap.p95,
        snap.ingest_qps,
        remined_over_full,
        reembed_over_full,
        snap.peak_rss_kb,
        path.display()
    );
    if c.remined_pairs >= c.full_mine_pairs {
        eprintln!(
            "SCALE GATE FAILED: incremental mining did no better than batch \
             ({} re-mined pairs >= {} full-mine pairs)",
            c.remined_pairs, c.full_mine_pairs
        );
        std::process::exit(1);
    }
    if c.reembedded >= c.full_reembed {
        eprintln!(
            "SCALE GATE FAILED: dirty-set re-embedding did no better than a full re-embed \
             ({} re-embedded >= {} full)",
            c.reembedded, c.full_reembed
        );
        std::process::exit(1);
    }
}
