//! E-T3 — Table 3: interaction-graph dataset construction.
//!
//! Reproduces the three dataset families at `GLINT_SCALE`: labeled IFTTT
//! (paper 6,000 / 1,473 unsafe), labeled SmartThings (165 / 36), labeled
//! heterogeneous (12,758 / 3,828), plus the unlabeled pools (10,000 IFTTT /
//! 19,440 five-platform). The *unsafe fractions* are the shape to match.

use glint_bench::{offline, print_table, record_json, scale, timed};

fn main() {
    let builder = offline(0x733);
    let t3 = timed("table3 bundles", || builder.table3_bundles(scale()));

    let row = |name: &str,
               labeled: usize,
               unsafe_n: usize,
               unlabeled: usize,
               paper: (usize, usize, usize)| {
        vec![
            name.to_string(),
            labeled.to_string(),
            unsafe_n.to_string(),
            format!("{:.1}%", 100.0 * unsafe_n as f64 / labeled.max(1) as f64),
            unlabeled.to_string(),
            format!("{}/{}/{}", paper.0, paper.1, paper.2),
        ]
    };

    let ifttt = t3.ifttt.labeled.class_stats();
    let st = t3.smartthings.labeled.class_stats();
    let het = t3.hetero.labeled.class_stats();
    let rows = vec![
        row(
            "IFTTT (homo)",
            ifttt.total(),
            ifttt.threat,
            t3.ifttt.unlabeled.len(),
            (6_000, 1_473, 10_000),
        ),
        row("SmartThings (homo)", st.total(), st.threat, 0, (165, 36, 0)),
        row(
            "5-platform (hetero)",
            het.total(),
            het.threat,
            t3.hetero.unlabeled.len(),
            (12_758, 3_828, 19_440),
        ),
    ];
    print_table(
        "Table 3 — interaction graph datasets",
        &[
            "dataset",
            "labeled",
            "unsafe",
            "unsafe frac",
            "unlabeled",
            "paper (lbl/unsafe/unlbl)",
        ],
        &rows,
    );
    println!(
        "\npaper unsafe fractions: IFTTT 24.6%, SmartThings 21.8%, hetero 30.0% — the oracle-labeled"
    );
    println!("synthetic corpus should land in the same 15–40% band for every family.");

    for (name, stats) in [("IFTTT", ifttt), ("SmartThings", st), ("hetero", het)] {
        let frac = stats.threat as f64 / stats.total().max(1) as f64;
        assert!(
            (0.02..=0.60).contains(&frac),
            "{name} unsafe fraction {frac:.2} out of the plausible band"
        );
    }
    // graph size bounds (paper: 2..50 nodes; scaled runs use 2..12)
    for g in t3.hetero.labeled.iter().take(200) {
        assert!(g.n_nodes() >= 2 && g.n_nodes() <= 50);
    }
    println!("unsafe fractions within band, graph sizes within 2..50 ✓");

    record_json(
        "table3",
        &serde_json::json!({
            "scale": scale(),
            "ifttt": { "labeled": ifttt.total(), "unsafe": ifttt.threat, "unlabeled": t3.ifttt.unlabeled.len() },
            "smartthings": { "labeled": st.total(), "unsafe": st.threat },
            "hetero": { "labeled": het.total(), "unsafe": het.threat, "unlabeled": t3.hetero.unlabeled.len() },
        }),
    );
}
