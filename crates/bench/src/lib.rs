//! # glint-bench
//!
//! Shared machinery for the experiment harnesses under `benches/` — one
//! harness per table and figure of the paper's evaluation (see DESIGN.md's
//! experiment index and EXPERIMENTS.md for the paper-vs-measured record).
//!
//! Every harness honours:
//! - `GLINT_SCALE`  — dataset-size multiplier vs paper scale (default 0.03);
//! - `GLINT_TRIALS` — repeated trials per configuration (default 1; paper uses 5);
//! - `GLINT_EPOCHS` — GNN training epochs (default 16).
//!
//! Results are printed as aligned tables with the paper's number next to the
//! measured one, and appended as JSON to `target/glint-results/` under the harness working directory (`crates/bench/target/glint-results/` from the repo root).

use glint_core::construction::OfflineBuilder;
use glint_gnn::batch::{GraphSchema, PreparedGraph};
use glint_gnn::models::{
    GcnModel, GinModel, GraphModel, GxnModel, HgslModel, InfoGraphModel, Itgnn, ItgnnConfig,
    MagcnModel, MagxnModel, ModelConfig,
};
use glint_gnn::trainer::TrainConfig;
use glint_graph::{GraphDataset, Split};
use glint_rules::{CorpusConfig, CorpusGenerator, Platform, Rule};
use std::io::Write as _;

/// Dataset-scale multiplier (vs Table 2 / Table 3 paper counts).
pub fn scale() -> f64 {
    std::env::var("GLINT_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.03)
}

/// Number of repeated trials per configuration (paper: 5).
pub fn trials() -> usize {
    std::env::var("GLINT_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// GNN training epochs.
pub fn epochs() -> usize {
    std::env::var("GLINT_EPOCHS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
}

/// The shared synthetic corpus for all experiments.
pub fn corpus() -> Vec<Rule> {
    let cfg = CorpusConfig {
        scale: scale(),
        per_platform_cap: 2_000,
        seed: 0x6117,
    };
    CorpusGenerator::generate_corpus(&cfg)
}

/// Offline builder over the shared corpus.
pub fn offline(seed: u64) -> OfflineBuilder {
    OfflineBuilder::new(corpus(), seed)
}

/// Scaled Table 3 graph counts.
pub fn n_graphs(paper_count: usize) -> usize {
    ((paper_count as f64 * scale()).round() as usize).clamp(40, 4_000)
}

/// Standard training config for the experiment harnesses (lr from the
/// Figure 7-style sweep: 1e-3 converges, 1e-2 diverges on this substrate).
pub fn train_config(seed: u64) -> TrainConfig {
    TrainConfig {
        epochs: epochs(),
        lr: 1e-3,
        seed,
        ..Default::default()
    }
}

/// Prepare a split: oversample threats in train (the §4.4 protocol), then
/// materialize `PreparedGraph`s.
pub fn prepare_split(split: &Split, seed: u64) -> (Vec<PreparedGraph>, Vec<PreparedGraph>) {
    let mut train = split.train.clone();
    train.oversample_threats(seed);
    (
        PreparedGraph::prepare_all(train.graphs()),
        PreparedGraph::prepare_all(split.test.graphs()),
    )
}

/// Instantiate a model by its paper name for a dataset schema.
pub fn make_model(name: &str, schema: &GraphSchema, seed: u64) -> Box<dyn GraphModel> {
    let homo_dim = schema.types.first().map(|(_, d)| *d).unwrap_or(0);
    let cfg = ModelConfig {
        hidden: 64,
        embed: 64,
        seed,
    };
    match name {
        "GCN" => Box::new(GcnModel::new(homo_dim, cfg)),
        "GIN" => Box::new(GinModel::new(homo_dim, cfg)),
        "GXN" => Box::new(GxnModel::new(homo_dim, cfg)),
        "IFG" => Box::new(InfoGraphModel::new(homo_dim, cfg)),
        "ITGNN" | "ITGNN-S" | "ITGNN-C" => Box::new(Itgnn::new(
            &schema.types,
            ItgnnConfig {
                seed,
                ..Default::default()
            },
        )),
        "HGSL" => Box::new(HgslModel::new(&schema.types, 64, 64, seed)),
        "MAGCN" => Box::new(MagcnModel::new(&schema.types, 64, 64, seed)),
        "MAGXN" => Box::new(MagxnModel::new(&schema.types, 64, 64, seed)),
        other => panic!("unknown model {other}"),
    }
}

/// Mean node features of a graph (the SVC/KNN graph representation of §4.4).
pub fn mean_feature(graph: &glint_graph::InteractionGraph) -> Vec<f32> {
    let dim = graph.max_feature_dim();
    let mut acc = vec![0.0f32; dim];
    for n in graph.nodes() {
        for (i, &v) in n.features.iter().enumerate() {
            acc[i] += v;
        }
    }
    let inv = 1.0 / graph.n_nodes().max(1) as f32;
    acc.iter_mut().for_each(|v| *v *= inv);
    acc
}

/// Dataset → (features, labels) for classical models.
pub fn dataset_to_xy(ds: &GraphDataset) -> (glint_tensor::Matrix, Vec<usize>) {
    let dim = ds.iter().map(|g| g.max_feature_dim()).max().unwrap_or(0);
    let rows: Vec<Vec<f32>> = ds
        .iter()
        .map(|g| {
            let mut f = mean_feature(g);
            f.resize(dim, 0.0);
            f
        })
        .collect();
    (glint_tensor::Matrix::from_rows(&rows), ds.labels())
}

/// Build the Table 3 homogeneous IFTTT labeled dataset.
pub fn ifttt_dataset(builder: &OfflineBuilder) -> GraphDataset {
    builder.build_dataset(&[Platform::Ifttt], n_graphs(6_000), 12, true)
}

/// Build the Table 3 SmartThings labeled dataset (tiny, like the paper's).
pub fn smartthings_dataset(builder: &OfflineBuilder) -> GraphDataset {
    builder.build_dataset(&[Platform::SmartThings], n_graphs(165).min(165), 12, true)
}

/// Build the Table 3 heterogeneous labeled dataset.
pub fn hetero_dataset(builder: &OfflineBuilder) -> GraphDataset {
    builder.build_dataset(
        &[Platform::Ifttt, Platform::SmartThings, Platform::Alexa],
        n_graphs(12_758),
        12,
        true,
    )
}

// ---- output helpers ----

/// Print an aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (w, c) in widths.iter().zip(cells) {
            s.push_str(&format!("{c:<width$}  ", width = w));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Format "measured (paper X)" cells.
pub fn vs_paper(measured: f64, paper: f64) -> String {
    format!("{:5.1}% (paper {:.1}%)", measured * 100.0, paper * 100.0)
}

/// Percent formatting.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

/// Append a JSON record of the experiment outcome.
pub fn record_json(experiment: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("target/glint-results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{experiment}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(
            f,
            "{}",
            serde_json::to_string_pretty(value).unwrap_or_default()
        );
    }
}

/// Repo-root `BENCH_trace.json` — the machine-readable observability
/// snapshot CI checks for (resolved from this crate's manifest dir so it
/// lands at the root regardless of the harness working directory).
pub fn bench_trace_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_trace.json")
}

/// Export everything glint-trace collected so far to the repo-root
/// `BENCH_trace.json` plus a per-run copy under `target/glint-trace/`.
/// No-op (returns `None`) when tracing is disabled, so harnesses can call
/// it unconditionally at the end of a run.
pub fn export_trace(run: &str) -> Option<std::path::PathBuf> {
    if !glint_trace::enabled() {
        return None;
    }
    let path = bench_trace_path();
    glint_trace::export::write_json_to(&path, run).ok()?;
    let _ = glint_trace::export::export_run(run);
    Some(path)
}

/// Repo-root `BENCH_inference.json` — the serving fast-path counter
/// snapshot (alloc counters, matmul/spmm flops, span timings) the
/// `micro_inference` harness emits and CI gates against regressions.
pub fn bench_inference_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_inference.json")
}

/// Export the current trace registry to the repo-root
/// `BENCH_inference.json`. No-op (returns `None`) when tracing is
/// disabled. Unlike [`export_trace`] this does not touch
/// `BENCH_trace.json` — the two snapshots gate different paths (training
/// observability vs the tape-free serving loop).
pub fn export_inference_trace(run: &str) -> Option<std::path::PathBuf> {
    if !glint_trace::enabled() {
        return None;
    }
    let path = bench_inference_path();
    glint_trace::export::write_json_to(&path, run).ok()?;
    Some(path)
}

/// Repo-root `BENCH_serve.json` — the serving-layer snapshot (qps,
/// latency percentiles, shed/degraded counts, p95 budget) the
/// `micro_serve` harness emits and CI gates against the committed
/// budget.
pub fn bench_serve_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
}

/// Repo-root `BENCH_scale.json` — the multi-tenant churn snapshot (ingest
/// latency percentiles, peak RSS, and the incremental-vs-batch work
/// ratchet) the `micro_scale` harness emits. Overridable with
/// `GLINT_SCALE_OUT` so the CI smoke stage can write to a scratch path
/// without disturbing the committed snapshot.
pub fn bench_scale_path() -> std::path::PathBuf {
    match std::env::var("GLINT_SCALE_OUT") {
        Ok(p) if !p.is_empty() => std::path::PathBuf::from(p),
        _ => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scale.json"),
    }
}

/// Read one top-level `f64` field out of a JSON snapshot. `None` when
/// the file or the field is absent or malformed.
pub fn snapshot_f64(path: &std::path::Path, name: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let value: serde_json::Value = serde_json::from_str(&text).ok()?;
    let top = value.as_map()?;
    top.iter()
        .find(|(k, _)| k == name)
        .and_then(|(_, v)| v.as_f64())
}

/// Read one counter out of an exported trace snapshot (`BENCH_trace.json`
/// / `BENCH_inference.json`). `None` when the file, the `counters`
/// section, or the counter itself is absent or malformed.
pub fn snapshot_counter(path: &std::path::Path, name: &str) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    let value: serde_json::Value = serde_json::from_str(&text).ok()?;
    let top = value.as_map()?;
    let counters = top
        .iter()
        .find(|(k, _)| k == "counters")
        .and_then(|(_, v)| v.as_map())?;
    counters
        .iter()
        .find(|(k, _)| k == name)
        .and_then(|(_, v)| v.as_u64())
}

/// Wall-clock helper.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let out = f();
    eprintln!(
        "[glint-bench] {label}: {:.1}s",
        start.elapsed().as_secs_f64()
    );
    out
}
