//! Determinism regression tests for graph construction. The builder's
//! correlation index used to be HashMap-backed, which made edge discovery
//! order depend on hasher state; after the BTreeMap migration two builds
//! over the same corpus and seed must agree edge-for-edge.

use glint_graph::builder::{full_graph, GraphBuilder};
use glint_rules::{CorpusConfig, CorpusGenerator, Rule};

fn corpus() -> Vec<Rule> {
    CorpusGenerator::generate_corpus(&CorpusConfig {
        scale: 0.002,
        per_platform_cap: 120,
        seed: 0x5eed,
    })
}

fn features(r: &Rule) -> Vec<f32> {
    vec![r.actions.len() as f32, 1.0]
}

#[test]
fn sampled_graphs_are_identical_across_builds() {
    let rules = corpus();
    let mut a = GraphBuilder::new(&rules, 42);
    let mut b = GraphBuilder::new(&rules, 42);
    assert_eq!(a.n_correlations(), b.n_correlations());
    for _ in 0..16 {
        let ga = a.sample_graph(2, 12, &features);
        let gb = b.sample_graph(2, 12, &features);
        assert_eq!(ga.edges(), gb.edges());
        assert_eq!(ga.n_nodes(), gb.n_nodes());
        let ids_a: Vec<_> = (0..ga.n_nodes()).map(|i| ga.node(i).rule_id).collect();
        let ids_b: Vec<_> = (0..gb.n_nodes()).map(|i| gb.node(i).rule_id).collect();
        assert_eq!(ids_a, ids_b);
    }
}

#[test]
fn full_graph_edge_list_is_identical_across_builds() {
    let rules = corpus();
    let ga = full_graph(&rules, &features);
    let gb = full_graph(&rules, &features);
    assert!(!ga.edges().is_empty(), "corpus should correlate");
    assert_eq!(ga.edges(), gb.edges());
}
