//! Property-based tests for graph structures and dataset mechanics.

use glint_graph::graph::{EdgeKind, GraphLabel, Node};
use glint_graph::{GraphDataset, InteractionGraph};
use glint_rules::{Platform, RuleId};
use proptest::prelude::*;

fn graph_strategy() -> impl Strategy<Value = InteractionGraph> {
    (
        1usize..8,
        proptest::collection::vec((0usize..8, 0usize..8), 0..14),
        proptest::bool::ANY,
    )
        .prop_map(|(n, raw, threat)| {
            let nodes: Vec<Node> = (0..n)
                .map(|i| Node {
                    rule_id: RuleId(i as u32),
                    platform: Platform::Ifttt,
                    features: vec![i as f32, 1.0],
                })
                .collect();
            let mut g = InteractionGraph::new(nodes);
            for (u, v) in raw {
                if u % n != v % n {
                    g.add_edge(u % n, v % n, EdgeKind::ActionTrigger);
                }
            }
            g.with_label(if threat {
                GraphLabel::Threat
            } else {
                GraphLabel::Normal
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Neighbour queries agree with the raw edge list.
    #[test]
    fn neighbour_queries_consistent(g in graph_strategy()) {
        for u in 0..g.n_nodes() {
            for v in g.successors(u) {
                prop_assert!(g.edges().iter().any(|&(a, b, _)| a == u && b == v));
                prop_assert!(g.predecessors(v).contains(&u));
                prop_assert!(g.neighbors(u).contains(&v));
            }
        }
    }

    /// Acyclic check agrees with a brute-force path search.
    #[test]
    fn cycle_detection_matches_reachability(g in graph_strategy()) {
        // brute force: a cycle exists iff some node reaches itself
        let n = g.n_nodes();
        let mut reach = vec![vec![false; n]; n];
        for &(u, v, _) in g.edges() {
            reach[u][v] = true;
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    if reach[i][k] && reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
        let brute = (0..n).any(|i| reach[i][i]);
        prop_assert_eq!(g.has_cycle(), brute);
    }

    /// Splits partition the dataset and preserve per-class counts.
    #[test]
    fn split_partitions_and_stratifies(
        graphs in proptest::collection::vec(graph_strategy(), 10..40),
        seed in 0u64..100,
    ) {
        let ds = GraphDataset::from_graphs(graphs);
        let stats = ds.class_stats();
        prop_assume!(stats.normal >= 2 && stats.threat >= 2);
        let split = ds.split(0.75, seed);
        prop_assert_eq!(split.train.len() + split.test.len(), ds.len());
        let train_stats = split.train.class_stats();
        let test_stats = split.test.class_stats();
        prop_assert_eq!(train_stats.normal + test_stats.normal, stats.normal);
        prop_assert_eq!(train_stats.threat + test_stats.threat, stats.threat);
        // both classes appear in training when the ratio allows it
        prop_assert!(train_stats.normal > 0 && train_stats.threat > 0);
    }

    /// Oversampling never removes graphs and never creates new content.
    #[test]
    fn oversampling_is_additive(
        graphs in proptest::collection::vec(graph_strategy(), 6..30),
        seed in 0u64..100,
    ) {
        let mut ds = GraphDataset::from_graphs(graphs.clone());
        let before = ds.class_stats();
        ds.oversample_threats(seed);
        let after = ds.class_stats();
        prop_assert_eq!(after.normal, before.normal);
        prop_assert!(after.threat >= before.threat);
        for g in ds.iter() {
            prop_assert!(graphs.contains(g), "oversampling fabricated a graph");
        }
    }
}
