//! Shard durability: damage to one per-home shard file must stay confined
//! to that shard. Byte flips and truncations of `shard-<home>.glint` turn
//! into typed [`ShardError`]s on that home while every other home still
//! loads byte-for-byte — the blast radius of a bad disk sector is one
//! tenant, never the fleet.

use glint_graph::builder::full_graph;
use glint_graph::shard::{ShardError, ShardedStore};
use glint_graph::GraphDataset;
use glint_rules::{CorpusConfig, CorpusGenerator, Rule};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn corpus() -> Vec<Rule> {
    CorpusGenerator::generate_corpus(&CorpusConfig {
        scale: 0.002,
        per_platform_cap: 120,
        seed: 0x5ca1e,
    })
}

fn features(r: &Rule) -> Vec<f32> {
    vec![r.actions.len() as f32, r.conditions.len() as f32]
}

/// Per-home dataset: a slice of the corpus, so every home's payload is
/// distinct (distinct CRCs, distinct lengths).
fn dataset(home: u64) -> GraphDataset {
    let rules = corpus();
    let lo = (home as usize * 5) % (rules.len() - 6);
    let graph = full_graph(&rules[lo..lo + 6], &features);
    GraphDataset::from_graphs(vec![graph])
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("glint-shard-test-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn populated_store(dir: &Path, homes: &[u64]) -> ShardedStore {
    let mut store = ShardedStore::create(dir).expect("create store");
    for &h in homes {
        store.save_shard(h, &dataset(h)).expect("save shard");
    }
    store
}

fn shard_file(dir: &Path, home: u64) -> PathBuf {
    dir.join(format!("shard-{home}.glint"))
}

#[test]
fn byte_flip_is_confined_to_the_damaged_shard() {
    let dir = scratch("flip");
    let store = populated_store(&dir, &[1, 2, 3]);

    let path = shard_file(&dir, 2);
    let mut bytes = std::fs::read(&path).expect("read shard 2");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&path, &bytes).expect("write damaged shard");

    let err = store
        .load_shard(2)
        .expect_err("damaged shard must not load");
    assert!(
        matches!(
            err,
            ShardError::Envelope(_) | ShardError::StaleShard { .. } | ShardError::Decode(_)
        ),
        "unexpected error kind: {err}"
    );

    let sweep = store.load_all();
    assert_eq!(
        sweep.loaded.keys().copied().collect::<Vec<_>>(),
        vec![1, 3],
        "healthy shards must survive a neighbor's corruption"
    );
    assert_eq!(sweep.damaged.len(), 1);
    assert_eq!(sweep.damaged[0].0, 2);
    // the healthy loads are byte-faithful, not just non-empty
    assert_eq!(sweep.loaded[&1], dataset(1));
    assert_eq!(sweep.loaded[&3], dataset(3));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_is_confined_to_the_damaged_shard() {
    let dir = scratch("trunc");
    let store = populated_store(&dir, &[4, 5, 6]);

    let path = shard_file(&dir, 6);
    let bytes = std::fs::read(&path).expect("read shard 6");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate shard");

    store
        .load_shard(6)
        .expect_err("truncated shard must not load");
    let sweep = store.load_all();
    assert_eq!(sweep.loaded.keys().copied().collect::<Vec<_>>(), vec![4, 5]);
    assert_eq!(sweep.damaged.len(), 1);
    assert_eq!(sweep.damaged[0].0, 6);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopened_store_sees_the_same_confinement() {
    // damage + a process restart (fresh `open` from the manifest): the
    // damage report must be identical to the in-process sweep.
    let dir = scratch("reopen");
    populated_store(&dir, &[7, 8]);
    let path = shard_file(&dir, 7);
    let mut bytes = std::fs::read(&path).expect("read shard 7");
    bytes[0] ^= 0x55; // header damage: not even an envelope anymore
    std::fs::write(&path, &bytes).expect("write damaged shard");

    let store = ShardedStore::open(&dir).expect("manifest itself is intact");
    let sweep = store.load_all();
    assert_eq!(sweep.loaded.keys().copied().collect::<Vec<_>>(), vec![8]);
    assert_eq!(sweep.damaged.len(), 1);
    assert_eq!(sweep.damaged[0].0, 7);
    // recovery: re-saving the damaged home heals the store
    let mut store = store;
    store.save_shard(7, &dataset(7)).expect("re-save heals");
    let sweep = store.load_all();
    assert!(sweep.damaged.is_empty());
    assert_eq!(sweep.loaded.len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary byte damage to one shard: loading it must return a typed
    /// error or (if the damage cancels out) the original payload — never a
    /// panic, never a wrong payload — and the undamaged neighbor must load
    /// byte-faithfully every time.
    #[test]
    fn random_damage_never_panics_and_never_leaks(
        offsets in proptest::collection::vec((0usize..8192, 1u8..=255u8), 1..6),
        cut in 0usize..8192,
    ) {
        let dir = scratch("prop");
        let store = populated_store(&dir, &[10, 11]);
        let path = shard_file(&dir, 10);
        let mut bytes = std::fs::read(&path).expect("read shard 10");
        for (off, xor) in offsets {
            let off = off % bytes.len();
            bytes[off] ^= xor;
        }
        // `cut % (len + 1) == len` leaves the file untruncated, so both the
        // flip-only and flip-plus-truncate shapes are exercised
        bytes.truncate(cut % (bytes.len() + 1));
        std::fs::write(&path, &bytes).expect("write damaged shard");

        // a typed rejection is the expected outcome; a clean load (damage
        // canceled out) must be byte-faithful
        if let Ok(ds) = store.load_shard(10) {
            prop_assert_eq!(ds, dataset(10), "a clean load must be byte-faithful");
        }
        let loaded = store.load_shard(11).expect("neighbor shard must stay loadable");
        prop_assert_eq!(loaded, dataset(11));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
