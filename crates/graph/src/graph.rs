//! The interaction-graph type.

use glint_rules::{Platform, RuleId};
use serde::{Deserialize, Serialize};

/// Edge semantics. Causal edges are directed cause → effect; device-sharing
/// edges are stored in both directions.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// The source rule's action invokes the target rule's trigger.
    ActionTrigger,
    /// The source rule's action satisfies / fakes a *condition* of the
    /// target rule (the §4.7 "condition duplicate" coupling).
    ActionCondition,
    /// Both rules actuate the same device (Figure 1's "connected via
    /// interacting devices" coupling, undirected).
    SharedDevice,
}

/// Graph-level ground-truth label.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphLabel {
    Normal,
    Threat,
}

impl GraphLabel {
    /// Class index used by classifiers (Normal = 0, Threat = 1).
    pub fn class(self) -> usize {
        match self {
            GraphLabel::Normal => 0,
            GraphLabel::Threat => 1,
        }
    }

    pub fn from_class(c: usize) -> Self {
        if c == 0 {
            GraphLabel::Normal
        } else {
            GraphLabel::Threat
        }
    }
}

/// A node: one automation rule with its embedded features.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    pub rule_id: RuleId,
    pub platform: Platform,
    /// Node feature vector (dimension varies by platform in hetero graphs).
    pub features: Vec<f32>,
}

/// An interaction graph.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InteractionGraph {
    nodes: Vec<Node>,
    /// Directed edges (src, dst, kind); src's action reaches dst's trigger.
    edges: Vec<(usize, usize, EdgeKind)>,
    pub label: Option<GraphLabel>,
}

impl InteractionGraph {
    pub fn new(nodes: Vec<Node>) -> Self {
        Self {
            nodes,
            edges: Vec::new(),
            label: None,
        }
    }

    pub fn with_label(mut self, label: GraphLabel) -> Self {
        self.label = Some(label);
        self
    }

    /// Add a directed edge; panics on out-of-range endpoints.
    pub fn add_edge(&mut self, src: usize, dst: usize, kind: EdgeKind) {
        assert!(
            src < self.nodes.len() && dst < self.nodes.len(),
            "edge out of range"
        );
        if !self.edges.contains(&(src, dst, kind)) {
            self.edges.push((src, dst, kind));
        }
    }

    /// Structural soundness check for graphs that bypassed [`add_edge`]'s
    /// assertions — deserialized datasets, external producers. Returns the
    /// first problem found: an empty node list, an out-of-range edge
    /// endpoint, or a non-finite node feature. Downstream batch preparation
    /// panics on exactly these conditions, so serving paths call this first
    /// and quarantine offenders instead.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("graph has no nodes".into());
        }
        for &(src, dst, kind) in &self.edges {
            if src >= self.nodes.len() || dst >= self.nodes.len() {
                return Err(format!(
                    "edge ({src}, {dst}, {kind:?}) out of range for {} nodes",
                    self.nodes.len()
                ));
            }
        }
        let mut dims: Vec<(Platform, usize)> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(bad) = node.features.iter().position(|f| !f.is_finite()) {
                return Err(format!("node {i} feature {bad} is not finite"));
            }
            match dims.iter().find(|(p, _)| *p == node.platform) {
                None => dims.push((node.platform, node.features.len())),
                Some((_, d)) if *d != node.features.len() => {
                    return Err(format!(
                        "node {i} has {} features but {:?} nodes carry {d}",
                        node.features.len(),
                        node.platform
                    ));
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    pub fn edges(&self) -> &[(usize, usize, EdgeKind)] {
        &self.edges
    }

    /// Undirected edge list (for GCN-style symmetric propagation).
    pub fn undirected_edges(&self) -> Vec<(usize, usize)> {
        self.edges.iter().map(|&(u, v, _)| (u, v)).collect()
    }

    /// Out-neighbours of a node.
    pub fn successors(&self, u: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|(s, _, _)| *s == u)
            .map(|(_, d, _)| *d)
            .collect()
    }

    /// In-neighbours of a node.
    pub fn predecessors(&self, v: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|(_, d, _)| *d == v)
            .map(|(s, _, _)| *s)
            .collect()
    }

    /// Undirected neighbours (deduplicated).
    pub fn neighbors(&self, u: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .edges
            .iter()
            .filter_map(|&(s, d, _)| {
                if s == u {
                    Some(d)
                } else if d == u {
                    Some(s)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Distinct platforms present.
    pub fn platforms(&self) -> Vec<Platform> {
        let mut p: Vec<Platform> = self.nodes.iter().map(|n| n.platform).collect();
        p.sort_unstable();
        p.dedup();
        p
    }

    /// Is this a heterogeneous graph (multiple node types or mixed feature
    /// dimensions)?
    pub fn is_heterogeneous(&self) -> bool {
        self.platforms().len() > 1
            || self
                .nodes
                .windows(2)
                .any(|w| w[0].features.len() != w[1].features.len())
    }

    /// Does the directed graph contain a cycle? (action-loop detection aid)
    pub fn has_cycle(&self) -> bool {
        // iterative DFS three-colour
        #[derive(Clone, Copy, PartialEq)]
        enum C {
            White,
            Grey,
            Black,
        }
        let n = self.nodes.len();
        let mut color = vec![C::White; n];
        for start in 0..n {
            if color[start] != C::White {
                continue;
            }
            // stack of (node, next-successor-index)
            let mut stack = vec![(start, 0usize)];
            color[start] = C::Grey;
            while let Some(&mut (u, ref mut i)) = stack.last_mut() {
                let succ = self.successors(u);
                if *i < succ.len() {
                    let v = succ[*i];
                    *i += 1;
                    match color[v] {
                        C::Grey => return true,
                        C::White => {
                            color[v] = C::Grey;
                            stack.push((v, 0));
                        }
                        C::Black => {}
                    }
                } else {
                    color[u] = C::Black;
                    stack.pop();
                }
            }
        }
        false
    }

    /// Maximum feature dimension across nodes.
    pub fn max_feature_dim(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.features.len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u32, platform: Platform, dim: usize) -> Node {
        Node {
            rule_id: RuleId(id),
            platform,
            features: vec![0.0; dim],
        }
    }

    fn simple_graph() -> InteractionGraph {
        let mut g = InteractionGraph::new(vec![
            node(1, Platform::Ifttt, 4),
            node(2, Platform::Ifttt, 4),
            node(3, Platform::Ifttt, 4),
        ]);
        g.add_edge(0, 1, EdgeKind::ActionTrigger);
        g.add_edge(1, 2, EdgeKind::ActionTrigger);
        g
    }

    #[test]
    fn neighbours_and_degrees() {
        let g = simple_graph();
        assert_eq!(g.successors(0), vec![1]);
        assert_eq!(g.predecessors(2), vec![1]);
        assert_eq!(g.neighbors(1), vec![0, 2]);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = simple_graph();
        let before = g.n_edges();
        g.add_edge(0, 1, EdgeKind::ActionTrigger);
        assert_eq!(g.n_edges(), before);
    }

    #[test]
    fn cycle_detection() {
        let mut g = simple_graph();
        assert!(!g.has_cycle());
        g.add_edge(2, 0, EdgeKind::ActionTrigger);
        assert!(g.has_cycle());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = simple_graph();
        g.add_edge(1, 1, EdgeKind::ActionTrigger);
        assert!(g.has_cycle());
    }

    #[test]
    fn heterogeneity() {
        let homo = simple_graph();
        assert!(!homo.is_heterogeneous());
        let hetero = InteractionGraph::new(vec![
            node(1, Platform::Ifttt, 4),
            node(2, Platform::Alexa, 8),
        ]);
        assert!(hetero.is_heterogeneous());
    }

    #[test]
    fn label_classes_round_trip() {
        assert_eq!(
            GraphLabel::from_class(GraphLabel::Threat.class()),
            GraphLabel::Threat
        );
        assert_eq!(
            GraphLabel::from_class(GraphLabel::Normal.class()),
            GraphLabel::Normal
        );
    }
}
