//! Durable persistence for graph datasets (DGL's stored-dataset stand-in).
//!
//! Datasets are written through the [`glint_failpoint::durable`] envelope:
//! checksummed, versioned, and renamed into place atomically so a crash
//! mid-save leaves the previous generation intact instead of a torn file.
//! Loading a truncated, corrupt, or future-version file is a typed
//! [`StoreError`] — never a panic. Plain pre-envelope JSON files (the old
//! format) still load, so existing datasets keep working.

use crate::dataset::GraphDataset;
use glint_failpoint::durable::{self, DurableError};
use std::fmt;
use std::path::Path;

/// Envelope kind tag for stored datasets.
pub const DATASET_KIND: &str = "glint-dataset";
/// Current dataset format version.
pub const DATASET_VERSION: u32 = 1;
/// Fail-point site hit by [`save`].
pub const SITE_STORE_SAVE: &str = "graph.store.save";

/// Why a dataset could not be saved or loaded.
#[derive(Debug)]
pub enum StoreError {
    /// Envelope-level failure: IO, truncation, checksum, version, kind.
    Envelope(DurableError),
    /// The bytes verified (or were legacy JSON) but don't decode to a
    /// dataset.
    Decode(String),
    /// The dataset decoded but contains a structurally invalid graph.
    InvalidGraph { index: usize, reason: String },
    /// The file is a [`crate::shard`] manifest, not a dataset. Manifests are
    /// bare JSON like legacy datasets, so without this guard the fallback
    /// would misparse one; open the *directory* with
    /// [`crate::shard::ShardedStore::open`] instead.
    ShardManifest {
        manifest_version: u64,
        shards: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Envelope(e) => write!(f, "dataset envelope error: {e}"),
            StoreError::Decode(why) => write!(f, "dataset decode error: {why}"),
            StoreError::InvalidGraph { index, reason } => {
                write!(f, "dataset graph {index} is invalid: {reason}")
            }
            StoreError::ShardManifest {
                manifest_version,
                shards,
            } => write!(
                f,
                "file is a shard manifest (v{manifest_version}, {shards} shards), not a dataset; \
                 open its directory with graph::shard::ShardedStore::open"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<DurableError> for StoreError {
    fn from(e: DurableError) -> Self {
        StoreError::Envelope(e)
    }
}

/// Save a dataset durably: JSON payload inside a checksummed envelope,
/// written to a temp file and renamed into place. Hits [`SITE_STORE_SAVE`].
pub fn save(dataset: &GraphDataset, path: impl AsRef<Path>) -> Result<(), StoreError> {
    let json = serde_json::to_string(dataset)
        .map_err(|e| StoreError::Decode(format!("serialize: {e}")))?;
    durable::write_durable(
        SITE_STORE_SAVE,
        path,
        DATASET_KIND,
        DATASET_VERSION,
        json.as_bytes(),
    )?;
    Ok(())
}

/// Load a dataset, verifying checksum and structure. Falls back to the
/// legacy bare-JSON format when the file predates the envelope. Every
/// malformed input — torn write, flipped bits, wrong kind, future version,
/// out-of-range edges — surfaces as a typed [`StoreError`].
pub fn load(path: impl AsRef<Path>) -> Result<GraphDataset, StoreError> {
    let bytes = std::fs::read(path.as_ref()).map_err(DurableError::Io)?;
    let text = match durable::parse_envelope(&bytes, DATASET_KIND, DATASET_VERSION) {
        Ok((_version, payload)) => String::from_utf8(payload)
            .map_err(|_| StoreError::Decode("payload is not UTF-8".into()))?,
        // legacy pre-envelope datasets were bare JSON; only the envelope
        // header's absence routes there, so torn/corrupt envelopes still
        // surface their typed error
        Err(DurableError::NotAnEnvelope(_)) => String::from_utf8(bytes)
            .map_err(|_| StoreError::Decode("file is neither envelope nor UTF-8 JSON".into()))?,
        Err(e) => return Err(e.into()),
    };
    // Shard manifests are also bare JSON; reject them with a pointer to the
    // right loader instead of misparsing `entries` as an empty dataset.
    if let Ok(value) = serde_json::parse(&text) {
        if let Some(map) = value.as_map() {
            if let Some((_, marker)) = map.iter().find(|(k, _)| k == crate::shard::MANIFEST_MARKER)
            {
                let shards = map
                    .iter()
                    .find(|(k, _)| k == "entries")
                    .and_then(|(_, v)| v.as_seq())
                    .map(|s| s.len())
                    .unwrap_or(0);
                return Err(StoreError::ShardManifest {
                    manifest_version: marker.as_u64().unwrap_or(0),
                    shards,
                });
            }
        }
    }
    let dataset: GraphDataset =
        serde_json::from_str(&text).map_err(|e| StoreError::Decode(format!("parse: {e}")))?;
    for (index, graph) in dataset.graphs().iter().enumerate() {
        graph
            .validate()
            .map_err(|reason| StoreError::InvalidGraph { index, reason })?;
    }
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeKind, GraphLabel, InteractionGraph, Node};
    use glint_rules::{Platform, RuleId};

    fn sample_dataset() -> GraphDataset {
        let mut g = InteractionGraph::new(vec![
            Node {
                rule_id: RuleId(1),
                platform: Platform::Ifttt,
                features: vec![1.0, 2.0],
            },
            Node {
                rule_id: RuleId(2),
                platform: Platform::Alexa,
                features: vec![3.0],
            },
        ]);
        g.add_edge(0, 1, EdgeKind::ActionTrigger);
        let mut ds = GraphDataset::new();
        ds.push(g.with_label(GraphLabel::Threat));
        ds
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("glint_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip() {
        let ds = sample_dataset();
        let path = tmp("ds.bin");
        save(&ds, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.graphs()[0], ds.graphs()[0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load("/nonexistent/glint/ds.json").is_err());
    }

    #[test]
    fn legacy_bare_json_still_loads() {
        let ds = sample_dataset();
        let path = tmp("legacy.json");
        std::fs::write(&path, serde_json::to_string(&ds).unwrap()).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.graphs()[0], ds.graphs()[0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_and_garbage_files_are_typed_errors() {
        let ds = sample_dataset();
        let path = tmp("mangle.bin");
        save(&ds, &path).unwrap();
        let good = std::fs::read(&path).unwrap();

        let torn = tmp("mangle_torn.bin");
        std::fs::write(&torn, &good[..good.len() - 10]).unwrap();
        assert!(matches!(
            load(&torn),
            Err(StoreError::Envelope(DurableError::Truncated { .. }))
        ));

        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x20;
        let corrupt = tmp("mangle_corrupt.bin");
        std::fs::write(&corrupt, &flipped).unwrap();
        assert!(matches!(
            load(&corrupt),
            Err(StoreError::Envelope(DurableError::ChecksumMismatch))
        ));

        let garbage = tmp("mangle_garbage.bin");
        std::fs::write(&garbage, b"]]] not json, not envelope").unwrap();
        assert!(matches!(load(&garbage), Err(StoreError::Decode(_))));
    }

    #[test]
    fn shard_manifest_is_rejected_with_a_typed_error() {
        // a real manifest, produced by the sharded store itself
        let dir = std::env::temp_dir().join("glint_store_test_manifest");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = crate::shard::ShardedStore::create(&dir).unwrap();
        store.save_shard(7, &sample_dataset()).unwrap();
        let err = load(dir.join(crate::shard::MANIFEST_FILE)).unwrap_err();
        assert!(matches!(
            err,
            StoreError::ShardManifest {
                manifest_version: crate::shard::MANIFEST_VERSION,
                shards: 1,
            }
        ));
        let msg = err.to_string();
        assert!(
            msg.contains("ShardedStore::open"),
            "error must redirect: {msg}"
        );
    }

    #[test]
    fn out_of_range_edges_from_disk_are_rejected() {
        // hand-craft a legacy JSON dataset whose edge indexes a missing node
        // (serde bypasses add_edge's assertion)
        let ds = sample_dataset();
        let json = serde_json::to_string(&ds)
            .unwrap()
            .replace("[0,1,", "[0,9,");
        let path = tmp("bad_edge.json");
        std::fs::write(&path, json).unwrap();
        assert!(matches!(
            load(&path),
            Err(StoreError::InvalidGraph { index: 0, .. })
        ));
    }

    #[test]
    fn failed_save_leaves_previous_generation_readable() {
        let ds = sample_dataset();
        let path = tmp("atomic.bin");
        save(&ds, &path).unwrap();
        let _guard = glint_failpoint::ScopedFail::new(
            SITE_STORE_SAVE,
            glint_failpoint::Action::ShortWrite(12),
            1,
        );
        assert!(save(&ds, &path).is_err());
        assert_eq!(load(&path).unwrap().graphs()[0], ds.graphs()[0]);
        std::fs::remove_file(&path).ok();
    }
}
