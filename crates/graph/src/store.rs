//! JSON persistence for graph datasets (DGL's stored-dataset stand-in).

use crate::dataset::GraphDataset;
use std::fs::File;
use std::io::{self, BufReader, BufWriter};
use std::path::Path;

/// Save a dataset as JSON.
pub fn save(dataset: &GraphDataset, path: impl AsRef<Path>) -> io::Result<()> {
    let file = File::create(path)?;
    let writer = BufWriter::new(file);
    serde_json::to_writer(writer, dataset).map_err(io::Error::other)
}

/// Load a dataset from JSON.
pub fn load(path: impl AsRef<Path>) -> io::Result<GraphDataset> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    serde_json::from_reader(reader).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeKind, GraphLabel, InteractionGraph, Node};
    use glint_rules::{Platform, RuleId};

    #[test]
    fn round_trip() {
        let mut g = InteractionGraph::new(vec![
            Node {
                rule_id: RuleId(1),
                platform: Platform::Ifttt,
                features: vec![1.0, 2.0],
            },
            Node {
                rule_id: RuleId(2),
                platform: Platform::Alexa,
                features: vec![3.0],
            },
        ]);
        g.add_edge(0, 1, EdgeKind::ActionTrigger);
        let mut ds = GraphDataset::new();
        ds.push(g.with_label(GraphLabel::Threat));

        let dir = std::env::temp_dir().join("glint_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        save(&ds, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.graphs()[0], ds.graphs()[0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load("/nonexistent/glint/ds.json").is_err());
    }
}
