//! Heterogeneous-graph utilities: node types and metapath instances.
//!
//! A *metapath* is a sequence of node types (platforms); an *instance* is a
//! walk in the graph whose node types follow the schema (MAGNN; paper §3.3.1).
//! ITGNN aggregates, per target node, the features of all instances of each
//! metapath starting at that node.

use crate::graph::InteractionGraph;
use glint_rules::Platform;
use serde::{Deserialize, Serialize};

/// A metapath: a schema of platform types, length ≥ 1.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Metapath(pub Vec<Platform>);

impl Metapath {
    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn starts_at(&self, p: Platform) -> bool {
        self.0.first() == Some(&p)
    }
}

/// Default metapath schemas for a graph: every observed type pair `A→B` and
/// triple `A→B→A`, capturing cross-platform coupling patterns.
pub fn default_metapaths(g: &InteractionGraph) -> Vec<Metapath> {
    let platforms = g.platforms();
    let mut out = Vec::new();
    for &a in &platforms {
        // self-path (plain neighbourhood within a platform)
        out.push(Metapath(vec![a, a]));
        for &b in &platforms {
            if a != b {
                out.push(Metapath(vec![a, b]));
                out.push(Metapath(vec![a, b, a]));
            }
        }
    }
    out
}

/// Enumerate the metapath instances *starting at* `start`. Each instance is
/// a node-id walk of length `path.len()`; neighbours are undirected (an
/// interaction couples both ways for pattern purposes). Walks may not
/// immediately backtrack unless the graph is a single dyad.
pub fn metapath_instances(g: &InteractionGraph, start: usize, path: &Metapath) -> Vec<Vec<usize>> {
    if path.is_empty() || g.node(start).platform != path.0[0] {
        return Vec::new();
    }
    let mut walks = vec![vec![start]];
    for &wanted in &path.0[1..] {
        let mut next = Vec::new();
        for walk in &walks {
            let Some(&last) = walk.last() else { continue };
            for nb in g.neighbors(last) {
                if g.node(nb).platform != wanted {
                    continue;
                }
                // no immediate backtracking (avoids degenerate A-B-A echoes
                // along the same edge) unless there is no other option
                if walk.len() >= 2 && walk[walk.len() - 2] == nb {
                    continue;
                }
                let mut w = walk.clone();
                w.push(nb);
                next.push(w);
            }
        }
        walks = next;
        if walks.is_empty() {
            break;
        }
    }
    walks
}

/// Group node indices by platform type.
pub fn nodes_by_type(g: &InteractionGraph) -> Vec<(Platform, Vec<usize>)> {
    let mut out: Vec<(Platform, Vec<usize>)> = Vec::new();
    for (i, n) in g.nodes().iter().enumerate() {
        match out.iter_mut().find(|(p, _)| *p == n.platform) {
            Some((_, v)) => v.push(i),
            None => out.push((n.platform, vec![i])),
        }
    }
    out.sort_by_key(|(p, _)| p.type_index());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeKind, Node};
    use glint_rules::RuleId;

    fn node(id: u32, platform: Platform) -> Node {
        Node {
            rule_id: RuleId(id),
            platform,
            features: vec![0.0; 2],
        }
    }

    /// I0 — S1 — I2 — A3 (path), platforms Ifttt/SmartThings/Ifttt/Alexa
    fn hetero_path() -> InteractionGraph {
        let mut g = InteractionGraph::new(vec![
            node(0, Platform::Ifttt),
            node(1, Platform::SmartThings),
            node(2, Platform::Ifttt),
            node(3, Platform::Alexa),
        ]);
        g.add_edge(0, 1, EdgeKind::ActionTrigger);
        g.add_edge(1, 2, EdgeKind::ActionTrigger);
        g.add_edge(2, 3, EdgeKind::ActionTrigger);
        g
    }

    #[test]
    fn two_hop_instances() {
        let g = hetero_path();
        let mp = Metapath(vec![Platform::Ifttt, Platform::SmartThings]);
        let inst = metapath_instances(&g, 0, &mp);
        assert_eq!(inst, vec![vec![0, 1]]);
        // node 2 also has a SmartThings neighbour
        let inst2 = metapath_instances(&g, 2, &mp);
        assert_eq!(inst2, vec![vec![2, 1]]);
    }

    #[test]
    fn three_hop_no_backtrack() {
        let g = hetero_path();
        let mp = Metapath(vec![
            Platform::Ifttt,
            Platform::SmartThings,
            Platform::Ifttt,
        ]);
        // 0 → 1 → 2 is valid; 0 → 1 → 0 is a backtrack and must be excluded
        let inst = metapath_instances(&g, 0, &mp);
        assert_eq!(inst, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn wrong_start_type_yields_nothing() {
        let g = hetero_path();
        let mp = Metapath(vec![Platform::Alexa, Platform::Ifttt]);
        assert!(metapath_instances(&g, 0, &mp).is_empty());
        // starting at the Alexa node works
        assert_eq!(metapath_instances(&g, 3, &mp), vec![vec![3, 2]]);
    }

    #[test]
    fn default_metapaths_cover_observed_types() {
        let g = hetero_path();
        let mps = default_metapaths(&g);
        // 3 platforms → 3 self-paths + 3·2 pairs + 3·2 triples = 15
        assert_eq!(mps.len(), 15);
        for p in g.platforms() {
            assert!(mps.iter().any(|m| m.starts_at(p)));
        }
    }

    #[test]
    fn nodes_by_type_partition() {
        let g = hetero_path();
        let by_type = nodes_by_type(&g);
        let total: usize = by_type.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, g.n_nodes());
        let ifttt = by_type.iter().find(|(p, _)| *p == Platform::Ifttt).unwrap();
        assert_eq!(ifttt.1, vec![0, 2]);
    }
}
