//! # glint-graph
//!
//! Interaction-graph substrate — the reproduction's stand-in for DGL.
//!
//! An *interaction graph* (paper §2.1) has one node per automation rule and a
//! directed edge `u → v` when rule u's action invokes rule v's trigger
//! ("action-trigger" correlation). Node features are NLP embeddings of the
//! rule text; platforms contribute nodes of different *types* with different
//! feature dimensions, which makes cross-platform graphs heterogeneous.
//!
//! Modules:
//! - [`graph`] — the graph type, node/edge payloads, labels;
//! - [`hetero`] — node-type utilities and metapath instance enumeration
//!   (MAGNN-style, consumed by ITGNN's node transformation);
//! - [`builder`] — offline chaining of correlated rules into graphs and
//!   online construction from deployed rules + event logs with temporal
//!   pruning (§3.2.2);
//! - [`dataset`] — labeled collections, stratified splits, random
//!   oversampling, class statistics (§4.4's training protocol);
//! - [`store`] — JSON persistence (whole-corpus envelope);
//! - [`shard`] — per-home sharded persistence with a manifest and confined
//!   corruption recovery, for the incremental million-home pipeline.

pub mod builder;
pub mod dataset;
pub mod graph;
pub mod hetero;
pub mod shard;
pub mod store;

pub use builder::{GraphBuilder, OnlineBuilder};
pub use dataset::{ClassStats, GraphDataset, Split};
pub use graph::{EdgeKind, GraphLabel, InteractionGraph, Node};
pub use hetero::{metapath_instances, Metapath};
pub use shard::{CompactReport, Manifest, ShardEntry, ShardError, ShardSweep, ShardedStore};
