//! Graph construction: offline chaining of correlated rules, and online
//! real-time construction from deployed rules + event logs (§3.2.2).

use crate::graph::{EdgeKind, GraphLabel, InteractionGraph, Node};
use glint_rules::correlation::{action_invokes_trigger, action_triggers};
use glint_rules::event::{EventKind, EventLog};
use glint_rules::{Action, Rule, StateValue, Trigger};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Offline builder: samples interaction graphs of 2–50 nodes by chaining
/// rules along ground-truth "action-trigger" correlations, then densifies
/// edges among the selected rules. Node features come from the supplied
/// feature function (rendered-text embeddings in the full pipeline).
pub struct GraphBuilder<'a> {
    rules: &'a [Rule],
    rng: StdRng,
    /// rule array index → indices of rules whose trigger it can invoke.
    successors: Vec<Vec<usize>>,
    /// rule array index → indices of rules that can invoke it.
    predecessors: Vec<Vec<usize>>,
    /// rule array index → rules actuating a shared device (symmetric).
    shared_device: Vec<Vec<usize>>,
}

impl<'a> GraphBuilder<'a> {
    /// Precompute the correlation index over the corpus. Complexity is kept
    /// near-linear by bucketing candidate triggers by channel/device first.
    pub fn new(rules: &'a [Rule], seed: u64) -> Self {
        let mut by_channel: BTreeMap<glint_rules::Channel, Vec<usize>> = BTreeMap::new();
        let mut by_device: BTreeMap<glint_rules::DeviceKind, Vec<usize>> = BTreeMap::new();
        for (i, r) in rules.iter().enumerate() {
            if let Some(c) = r.trigger.channel() {
                by_channel.entry(c).or_default().push(i);
            }
            if let Trigger::DeviceState { device, .. } = &r.trigger {
                by_device.entry(*device).or_default().push(i);
            }
        }
        let mut successors = vec![Vec::new(); rules.len()];
        let mut predecessors = vec![Vec::new(); rules.len()];
        for (i, a) in rules.iter().enumerate() {
            let mut candidates: BTreeSet<usize> = BTreeSet::new();
            for act in &a.actions {
                if let Some((dev, _)) = act.device() {
                    if let Some(v) = by_device.get(&dev) {
                        candidates.extend(v.iter().copied());
                    }
                    let state = match act {
                        Action::SetState { state, .. } => *state,
                        Action::SetLevel { value, .. } => StateValue::Level(*value),
                        _ => continue,
                    };
                    for (c, _) in glint_rules::correlation::effective_affects(dev, state) {
                        if let Some(v) = by_channel.get(&c) {
                            candidates.extend(v.iter().copied());
                        }
                    }
                }
            }
            for j in candidates {
                if i != j && action_triggers(a, &rules[j]).is_some() {
                    successors[i].push(j);
                    predecessors[j].push(i);
                }
            }
        }
        // device-sharing coupling: rules actuating the same device kind in
        // coupled locations (Figure 1's device-mediated connections)
        let mut actuated: BTreeMap<glint_rules::DeviceKind, Vec<usize>> = BTreeMap::new();
        for (i, r) in rules.iter().enumerate() {
            for (dev, _) in r.actuated_devices() {
                actuated.entry(dev).or_default().push(i);
            }
        }
        let mut shared_device = vec![Vec::new(); rules.len()];
        for members in actuated.values() {
            for &i in members {
                for &j in members {
                    if i == j {
                        continue;
                    }
                    let couple = rules[i].actuated_devices().iter().any(|(d1, l1)| {
                        rules[j]
                            .actuated_devices()
                            .iter()
                            .any(|(d2, l2)| d1 == d2 && l1.couples_with(*l2))
                    });
                    if couple {
                        shared_device[i].push(j);
                    }
                }
            }
        }
        for v in successors
            .iter_mut()
            .chain(predecessors.iter_mut())
            .chain(shared_device.iter_mut())
        {
            v.sort_unstable();
            v.dedup();
        }
        Self {
            rules,
            rng: StdRng::seed_from_u64(seed),
            successors,
            predecessors,
            shared_device,
        }
    }

    /// Total correlated pairs in the index.
    pub fn n_correlations(&self) -> usize {
        self.successors.iter().map(Vec::len).sum()
    }

    /// Sample one interaction graph with `n_nodes ∈ [min_nodes, max_nodes]`.
    /// Features are produced by `feature_fn` (text embedding upstream).
    pub fn sample_graph(
        &mut self,
        min_nodes: usize,
        max_nodes: usize,
        feature_fn: &dyn Fn(&Rule) -> Vec<f32>,
    ) -> InteractionGraph {
        assert!(min_nodes >= 2 && max_nodes >= min_nodes);
        // skew sizes small (min of two uniforms): most deployed interaction
        // graphs involve a handful of rules, large ones are the tail
        let a = self.rng.gen_range(min_nodes..=max_nodes);
        let b = self.rng.gen_range(min_nodes..=max_nodes);
        let target = a.min(b);
        let mut selected: Vec<usize> = Vec::with_capacity(target);
        let mut in_graph: BTreeSet<usize> = BTreeSet::new();
        let start = self.rng.gen_range(0..self.rules.len());
        selected.push(start);
        in_graph.insert(start);
        let mut stall = 0;
        while selected.len() < target && stall < 20 {
            // the paper concatenates independently sampled chains; mixing in
            // fresh random rules keeps graph density realistic
            if self.rng.gen_bool(0.35) {
                let fresh = self.rng.gen_range(0..self.rules.len());
                if in_graph.insert(fresh) {
                    selected.push(fresh);
                } else {
                    stall += 1;
                }
                continue;
            }
            let &anchor = selected.choose(&mut self.rng).expect("selected nonempty");
            let mut pool: Vec<usize> = self.successors[anchor]
                .iter()
                .chain(self.predecessors[anchor].iter())
                .copied()
                .filter(|j| !in_graph.contains(j))
                .collect();
            if pool.is_empty() {
                // chain exhausted: concatenate a fresh random rule (the
                // paper concatenates independently-sampled chains)
                let fresh = self.rng.gen_range(0..self.rules.len());
                if in_graph.insert(fresh) {
                    selected.push(fresh);
                } else {
                    stall += 1;
                }
                continue;
            }
            pool.sort_unstable();
            let &next = pool.choose(&mut self.rng).expect("pool nonempty");
            in_graph.insert(next);
            selected.push(next);
            stall = 0;
        }
        self.graph_from_indices(&selected, feature_fn)
    }

    /// Build the complete interaction graph over an explicit set of rules
    /// (online stage step 1, and test fixtures like Table 1).
    pub fn graph_from_indices(
        &self,
        indices: &[usize],
        feature_fn: &dyn Fn(&Rule) -> Vec<f32>,
    ) -> InteractionGraph {
        let nodes: Vec<Node> = indices
            .iter()
            .map(|&i| {
                let r = &self.rules[i];
                Node {
                    rule_id: r.id,
                    platform: r.platform,
                    features: feature_fn(r),
                }
            })
            .collect();
        let mut g = InteractionGraph::new(nodes);
        for (gi, &i) in indices.iter().enumerate() {
            for (gj, &j) in indices.iter().enumerate() {
                if i == j {
                    continue;
                }
                if self.successors[i].binary_search(&j).is_ok() {
                    g.add_edge(gi, gj, EdgeKind::ActionTrigger);
                }
                if self.shared_device[i].binary_search(&j).is_ok() {
                    g.add_edge(gi, gj, EdgeKind::SharedDevice);
                }
            }
        }
        g
    }

    pub fn rules(&self) -> &[Rule] {
        self.rules
    }
}

/// Build the complete correlation graph over a deployed rule set without the
/// sampling machinery (convenience for small rule sets).
pub fn full_graph(rules: &[Rule], feature_fn: &dyn Fn(&Rule) -> Vec<f32>) -> InteractionGraph {
    let nodes: Vec<Node> = rules
        .iter()
        .map(|r| Node {
            rule_id: r.id,
            platform: r.platform,
            features: feature_fn(r),
        })
        .collect();
    let mut g = InteractionGraph::new(nodes);
    for (i, a) in rules.iter().enumerate() {
        for (j, b) in rules.iter().enumerate() {
            if i != j && action_triggers(a, b).is_some() {
                g.add_edge(i, j, EdgeKind::ActionTrigger);
            }
        }
    }
    // device-sharing coupling (Figure 1): rules actuating the same device
    // kind at coupled locations are connected via that device
    for (i, a) in rules.iter().enumerate() {
        for (j, b) in rules.iter().enumerate() {
            if i == j {
                continue;
            }
            let shared = a.actuated_devices().iter().any(|(d1, l1)| {
                b.actuated_devices()
                    .iter()
                    .any(|(d2, l2)| d1 == d2 && l1.couples_with(*l2))
            });
            if shared {
                g.add_edge(i, j, EdgeKind::SharedDevice);
            }
        }
    }
    // condition-duplicate coupling: an action that can fake another rule's
    // *condition* also couples them (the §4.7 fourth threat type)
    for (i, a) in rules.iter().enumerate() {
        for (j, b) in rules.iter().enumerate() {
            if i == j {
                continue;
            }
            for cond in &b.conditions {
                let as_trigger = condition_as_trigger(cond);
                if let Some(t) = as_trigger {
                    if a.actions
                        .iter()
                        .any(|act| action_invokes_trigger(act, &t).is_some())
                    {
                        g.add_edge(i, j, EdgeKind::ActionCondition);
                    }
                }
            }
        }
    }
    g
}

fn condition_as_trigger(cond: &glint_rules::Condition) -> Option<Trigger> {
    match cond {
        glint_rules::Condition::DeviceState {
            device,
            location,
            attribute,
            state,
        } => Some(Trigger::DeviceState {
            device: *device,
            location: *location,
            attribute: *attribute,
            state: *state,
        }),
        glint_rules::Condition::ChannelThreshold {
            channel,
            location,
            cmp,
            value,
        } => Some(Trigger::ChannelThreshold {
            channel: *channel,
            location: *location,
            cmp: *cmp,
            value: *value,
        }),
        _ => None,
    }
}

/// Online builder: fuse the deployed-rule graph with runtime event logs to
/// produce the unique real-time interaction graph (§3.2.2). Rules that did
/// not execute inside the window are dropped; edges violating chronology or
/// exceeding the pruning interval are removed.
pub struct OnlineBuilder {
    /// Maximum seconds between cause and effect (paper example: 3 h).
    pub max_gap: f64,
}

impl Default for OnlineBuilder {
    fn default() -> Self {
        Self {
            max_gap: 3.0 * 3600.0,
        }
    }
}

impl OnlineBuilder {
    /// Execution timestamps of each rule inferred from the log: explicit
    /// `RuleFired` records, or device-state records matching a rule's action.
    pub fn execution_times(rules: &[Rule], log: &EventLog) -> Vec<Vec<f64>> {
        let mut times = vec![Vec::new(); rules.len()];
        for rec in log.records() {
            match &rec.kind {
                EventKind::RuleFired { rule_id } => {
                    if let Some(i) = rules.iter().position(|r| r.id.0 == *rule_id) {
                        times[i].push(rec.timestamp);
                    }
                }
                EventKind::DeviceState {
                    device,
                    location,
                    state,
                } => {
                    for (i, r) in rules.iter().enumerate() {
                        let hit = r.actions.iter().any(|a| match a {
                            Action::SetState {
                                device: d,
                                location: l,
                                state: s,
                                ..
                            } => d == device && l.couples_with(*location) && s == state,
                            _ => false,
                        });
                        if hit {
                            times[i].push(rec.timestamp);
                        }
                    }
                }
                _ => {}
            }
        }
        times
    }

    /// Construct the real-time graph for the window `[from, to]`.
    pub fn build(
        &self,
        rules: &[Rule],
        log: &EventLog,
        from: f64,
        to: f64,
        feature_fn: &dyn Fn(&Rule) -> Vec<f32>,
    ) -> InteractionGraph {
        let times = Self::execution_times(rules, log);
        // executed rules inside the window
        let active: Vec<usize> = (0..rules.len())
            .filter(|&i| times[i].iter().any(|&t| t >= from && t <= to))
            .collect();
        let active_rules: Vec<Rule> = active.iter().map(|&i| rules[i].clone()).collect();
        let complete = full_graph(&active_rules, feature_fn);
        // temporal pruning: cause must precede effect within max_gap
        let mut g = InteractionGraph::new(complete.nodes().to_vec());
        for &(u, v, kind) in complete.edges() {
            let tu = &times[active[u]];
            let tv = &times[active[v]];
            let plausible = tu.iter().any(|&a| {
                tv.iter()
                    .any(|&b| b > a && b - a <= self.max_gap && a >= from && b <= to)
            });
            if plausible {
                g.add_edge(u, v, kind);
            }
        }
        g
    }
}

/// Convenience label helper used by dataset fixtures.
pub fn labeled(mut g: InteractionGraph, label: GraphLabel) -> InteractionGraph {
    g.label = Some(label);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use glint_rules::event::EventRecord;
    use glint_rules::scenarios::table1_rules;
    use glint_rules::{Attribute, DeviceKind, Location};

    fn feat(_r: &Rule) -> Vec<f32> {
        vec![1.0, 2.0]
    }

    #[test]
    fn index_matches_bruteforce_on_table1() {
        let rules = table1_rules();
        let builder = GraphBuilder::new(&rules, 7);
        for (i, a) in rules.iter().enumerate() {
            for (j, b) in rules.iter().enumerate() {
                if i == j {
                    continue;
                }
                let indexed = builder.successors[i].binary_search(&j).is_ok();
                let brute = action_triggers(a, b).is_some();
                assert_eq!(indexed, brute, "mismatch for {}→{}", a.id.0, b.id.0);
            }
        }
    }

    #[test]
    fn sampled_graph_sizes_in_range() {
        let rules = table1_rules();
        let mut builder = GraphBuilder::new(&rules, 3);
        for _ in 0..20 {
            let g = builder.sample_graph(2, 6, &feat);
            assert!(g.n_nodes() >= 2 && g.n_nodes() <= 6, "size {}", g.n_nodes());
        }
    }

    #[test]
    fn full_graph_reproduces_figure1_core_edges() {
        let rules = table1_rules();
        let g = full_graph(&rules, &feat);
        let idx = |id: u32| rules.iter().position(|r| r.id.0 == id).unwrap();
        let has = |a: u32, b: u32| {
            g.edges()
                .iter()
                .any(|&(u, v, _)| u == idx(a) && v == idx(b))
        };
        assert!(has(1, 9), "lights-off → lock-door edge");
        assert!(has(4, 5), "AC-on → close-windows edge");
        assert!(!has(9, 1), "no reverse edge");
    }

    #[test]
    fn online_builder_prunes_by_chronology() {
        let rules = table1_rules();
        let mut log = EventLog::new();
        // rule 1 fires at t=100 (lights off), rule 9 fires at t=160 (locked)
        log.push(EventRecord::new(100.0, EventKind::RuleFired { rule_id: 1 }));
        log.push(EventRecord::new(160.0, EventKind::RuleFired { rule_id: 9 }));
        let ob = OnlineBuilder::default();
        let g = ob.build(&rules, &log, 0.0, 1000.0, &feat);
        assert_eq!(g.n_nodes(), 2, "only executed rules stay");
        assert_eq!(g.n_edges(), 1, "1→9 survives chronology check");

        // reversed order → edge pruned
        let mut log2 = EventLog::new();
        log2.push(EventRecord::new(100.0, EventKind::RuleFired { rule_id: 9 }));
        log2.push(EventRecord::new(160.0, EventKind::RuleFired { rule_id: 1 }));
        let g2 = ob.build(&rules, &log2, 0.0, 1000.0, &feat);
        assert_eq!(g2.n_edges(), 0);
    }

    #[test]
    fn online_builder_prunes_by_gap() {
        let rules = table1_rules();
        let mut log = EventLog::new();
        log.push(EventRecord::new(0.0, EventKind::RuleFired { rule_id: 1 }));
        // 5 hours later — beyond the 3 h pruning interval
        log.push(EventRecord::new(
            5.0 * 3600.0,
            EventKind::RuleFired { rule_id: 9 },
        ));
        let g = OnlineBuilder::default().build(&rules, &log, 0.0, 1e9, &feat);
        assert_eq!(
            g.n_edges(),
            0,
            "disjoined occurrence time must prune the edge"
        );
    }

    #[test]
    fn device_state_records_attribute_rule_execution() {
        let rules = table1_rules();
        let mut log = EventLog::new();
        log.push(EventRecord::new(
            10.0,
            EventKind::DeviceState {
                device: DeviceKind::Window,
                location: Location::House,
                state: glint_rules::StateValue::Open,
            },
        ));
        let times = OnlineBuilder::execution_times(&rules, &log);
        // rules 2 and 6 both open windows
        let idx = |id: u32| rules.iter().position(|r| r.id.0 == id).unwrap();
        assert!(!times[idx(2)].is_empty());
        assert!(!times[idx(6)].is_empty());
        assert!(times[idx(3)].is_empty(), "close-windows rule did not run");
        let _ = Attribute::OpenClose; // silence unused import in cfg(test)
    }
}
