//! Labeled graph datasets: splits, oversampling, class statistics (§4.4).

use crate::graph::{GraphLabel, InteractionGraph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Per-class counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassStats {
    pub normal: usize,
    pub threat: usize,
}

impl ClassStats {
    pub fn total(&self) -> usize {
        self.normal + self.threat
    }

    /// Inverse-frequency class weights (normal, threat), normalized so the
    /// mean weight is 1 — the paper's imbalance counter-measure.
    pub fn class_weights(&self) -> [f32; 2] {
        let n = self.normal.max(1) as f32;
        let t = self.threat.max(1) as f32;
        let total = n + t;

        [total / (2.0 * n), total / (2.0 * t)]
    }
}

/// A train/test split.
#[derive(Clone, Debug)]
pub struct Split {
    pub train: GraphDataset,
    pub test: GraphDataset,
}

/// A collection of labeled (or unlabeled) interaction graphs.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GraphDataset {
    graphs: Vec<InteractionGraph>,
}

impl GraphDataset {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_graphs(graphs: Vec<InteractionGraph>) -> Self {
        Self { graphs }
    }

    pub fn push(&mut self, g: InteractionGraph) {
        self.graphs.push(g);
    }

    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    pub fn graphs(&self) -> &[InteractionGraph] {
        &self.graphs
    }

    pub fn iter(&self) -> impl Iterator<Item = &InteractionGraph> {
        self.graphs.iter()
    }

    /// Labels as class indices; panics if any graph is unlabeled.
    pub fn labels(&self) -> Vec<usize> {
        self.graphs
            .iter()
            .map(|g| g.label.expect("dataset graph must be labeled").class())
            .collect()
    }

    pub fn class_stats(&self) -> ClassStats {
        let mut s = ClassStats::default();
        for g in &self.graphs {
            match g.label {
                Some(GraphLabel::Normal) => s.normal += 1,
                Some(GraphLabel::Threat) => s.threat += 1,
                None => {}
            }
        }
        s
    }

    /// Stratified shuffle split by `train_ratio` (the paper's 8:2 protocol).
    pub fn split(&self, train_ratio: f64, seed: u64) -> Split {
        assert!((0.0..=1.0).contains(&train_ratio));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut by_class: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
        for (i, g) in self.graphs.iter().enumerate() {
            let c = g.label.expect("split requires labels").class();
            by_class[c].push(i);
        }
        let mut train = GraphDataset::new();
        let mut test = GraphDataset::new();
        for class in &mut by_class {
            class.shuffle(&mut rng);
            let n_train = ((class.len() as f64) * train_ratio).round() as usize;
            for (k, &i) in class.iter().enumerate() {
                if k < n_train {
                    train.push(self.graphs[i].clone());
                } else {
                    test.push(self.graphs[i].clone());
                }
            }
        }
        // shuffle training order so batches mix classes
        train.graphs.shuffle(&mut rng);
        Split { train, test }
    }

    /// Random oversampling of the threat class "until the number of
    /// vulnerable graphs is doubled" (§4.4). No-op when already balanced.
    pub fn oversample_threats(&mut self, seed: u64) {
        let stats = self.class_stats();
        if stats.threat == 0 || stats.threat * 2 > stats.normal {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let threats: Vec<InteractionGraph> = self
            .graphs
            .iter()
            .filter(|g| g.label == Some(GraphLabel::Threat))
            .cloned()
            .collect();
        for _ in 0..stats.threat {
            let pick = threats.choose(&mut rng).expect("threats nonempty").clone();
            self.graphs.push(pick);
        }
        self.graphs.shuffle(&mut rng);
    }

    /// Merge another dataset into this one.
    pub fn extend(&mut self, other: GraphDataset) {
        self.graphs.extend(other.graphs);
    }

    /// Subsample to at most `n` graphs (stratified, seeded) — used by the
    /// scaled experiment harnesses.
    pub fn subsample(&self, n: usize, seed: u64) -> GraphDataset {
        if self.len() <= n {
            return self.clone();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(n);
        GraphDataset::from_graphs(idx.into_iter().map(|i| self.graphs[i].clone()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Node;
    use glint_rules::{Platform, RuleId};

    fn graph(label: GraphLabel) -> InteractionGraph {
        InteractionGraph::new(vec![Node {
            rule_id: RuleId(0),
            platform: Platform::Ifttt,
            features: vec![0.0],
        }])
        .with_label(label)
    }

    fn dataset(normal: usize, threat: usize) -> GraphDataset {
        let mut d = GraphDataset::new();
        for _ in 0..normal {
            d.push(graph(GraphLabel::Normal));
        }
        for _ in 0..threat {
            d.push(graph(GraphLabel::Threat));
        }
        d
    }

    #[test]
    fn class_stats_and_weights() {
        let d = dataset(90, 10);
        let s = d.class_stats();
        assert_eq!(
            s,
            ClassStats {
                normal: 90,
                threat: 10
            }
        );
        let w = s.class_weights();
        assert!(w[1] > w[0], "minority class must be upweighted");
        assert!((w[0] * 90.0 + w[1] * 10.0 - 100.0).abs() < 1.0);
    }

    #[test]
    fn split_is_stratified() {
        let d = dataset(80, 20);
        let split = d.split(0.8, 42);
        assert_eq!(split.train.len() + split.test.len(), 100);
        let train_stats = split.train.class_stats();
        assert_eq!(train_stats.normal, 64);
        assert_eq!(train_stats.threat, 16);
    }

    #[test]
    fn split_deterministic() {
        let d = dataset(50, 10);
        let a = d.split(0.8, 7);
        let b = d.split(0.8, 7);
        assert_eq!(a.train.labels(), b.train.labels());
    }

    #[test]
    fn oversampling_doubles_threats() {
        let mut d = dataset(100, 20);
        d.oversample_threats(1);
        let s = d.class_stats();
        assert_eq!(s.threat, 40);
        assert_eq!(s.normal, 100);
    }

    #[test]
    fn oversampling_noop_when_balanced() {
        let mut d = dataset(30, 25);
        d.oversample_threats(1);
        assert_eq!(d.class_stats().threat, 25);
    }

    #[test]
    fn subsample_bounds() {
        let d = dataset(30, 30);
        assert_eq!(d.subsample(10, 1).len(), 10);
        assert_eq!(d.subsample(100, 1).len(), 60);
    }
}
