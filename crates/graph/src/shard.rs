//! Sharded graph store: one durable shard per home, plus a manifest.
//!
//! The batch store ([`crate::store`]) serializes a whole corpus into one
//! envelope — fine for experiments, useless for millions of homes where a
//! single rule change would rewrite gigabytes. [`ShardedStore`] splits the
//! corpus by home: each home's graphs live in their own compact GLINTDUR
//! envelope (`shard-<home>.glint`), and a bare-JSON `MANIFEST.json` records
//! the live shard set with a per-shard payload CRC.
//!
//! Failure containment is per shard: a flipped bit or torn write in one
//! shard file surfaces as a typed [`ShardError`] for that home only —
//! [`ShardedStore::load_all`] still returns every other home's data. The
//! manifest CRC additionally catches *stale* shards (an old generation
//! renamed into place), which the envelope's internal checksum cannot see.
//!
//! Three fail-point sites cover the mutation surface: [`SITE_SHARD_SAVE`]
//! (shard envelope + manifest writes), [`SITE_SHARD_LOAD`] (shard reads),
//! and [`SITE_SHARD_COMPACT`] (orphan sweep + manifest rewrite).

use crate::dataset::GraphDataset;
use glint_failpoint::durable::{self, DurableError};
use glint_failpoint::{check, injected_error, Action};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Envelope kind tag for shard payloads.
pub const SHARD_KIND: &str = "glint-shard";
/// Current shard payload format version.
pub const SHARD_VERSION: u32 = 1;
/// Manifest file name inside the store directory.
pub const MANIFEST_FILE: &str = "MANIFEST.json";
/// Marker key identifying a shard manifest. `graph::store::load` checks for
/// this key so a manifest fed to the legacy bare-JSON dataset loader is a
/// typed rejection, never a misparse.
pub const MANIFEST_MARKER: &str = "glint_shard_manifest";
/// Current manifest format version (the value stored under the marker key).
pub const MANIFEST_VERSION: u64 = 1;
/// Fail-point site hit by shard and manifest writes in [`ShardedStore::save_shard`]
/// and [`ShardedStore::remove_shard`].
pub const SITE_SHARD_SAVE: &str = "shard.save";
/// Fail-point site hit by [`ShardedStore::load_shard`] / [`ShardedStore::load_all`].
pub const SITE_SHARD_LOAD: &str = "shard.load";
/// Fail-point site hit by [`ShardedStore::compact`].
pub const SITE_SHARD_COMPACT: &str = "shard.compact";

/// Why a shard operation failed. Every variant names the damage precisely;
/// none of them poisons the rest of the store.
#[derive(Debug)]
pub enum ShardError {
    /// Filesystem failure (including injected faults).
    Io(std::io::Error),
    /// Shard envelope failure: truncation, checksum, kind, version.
    Envelope(DurableError),
    /// The shard payload verified but does not decode to a dataset.
    Decode(String),
    /// The shard decoded but holds a structurally invalid graph.
    InvalidGraph {
        home: u64,
        index: usize,
        reason: String,
    },
    /// The store directory has no readable manifest.
    ManifestMissing(PathBuf),
    /// The manifest file exists but is not a valid shard manifest.
    ManifestCorrupt(String),
    /// No shard is registered for this home.
    UnknownShard(u64),
    /// The shard file verified internally but is a different generation
    /// than the manifest records (e.g. an old file restored into place).
    StaleShard {
        home: u64,
        expected_crc: u32,
        actual_crc: u32,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard io error: {e}"),
            ShardError::Envelope(e) => write!(f, "shard envelope error: {e}"),
            ShardError::Decode(why) => write!(f, "shard decode error: {why}"),
            ShardError::InvalidGraph {
                home,
                index,
                reason,
            } => write!(f, "shard for home {home}: graph {index} is invalid: {reason}"),
            ShardError::ManifestMissing(dir) => {
                write!(f, "no shard manifest in {}", dir.display())
            }
            ShardError::ManifestCorrupt(why) => write!(f, "shard manifest is corrupt: {why}"),
            ShardError::UnknownShard(home) => write!(f, "no shard registered for home {home}"),
            ShardError::StaleShard {
                home,
                expected_crc,
                actual_crc,
            } => write!(
                f,
                "shard for home {home} is stale: manifest records payload crc {expected_crc:08x}, file holds {actual_crc:08x}"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

impl From<DurableError> for ShardError {
    fn from(e: DurableError) -> Self {
        match e {
            DurableError::Io(io) => ShardError::Io(io),
            other => ShardError::Envelope(other),
        }
    }
}

/// One live shard as recorded by the manifest.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardEntry {
    /// Shard key: the simulated home (tenant) this shard belongs to.
    pub home: u64,
    /// File name inside the store directory.
    pub file: String,
    /// CRC-32 of the shard's JSON payload — the generation fingerprint.
    pub crc32: u32,
    /// Number of graphs in the shard.
    pub graphs: usize,
    /// Platforms present in the shard (the home/platform shard axis).
    pub platforms: Vec<String>,
}

/// The manifest: marker + version + the live shard set, sorted by home.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Always [`MANIFEST_VERSION`]; doubles as the file-type marker that
    /// `graph::store::load` uses to reject a misfed manifest.
    pub glint_shard_manifest: u64,
    pub entries: Vec<ShardEntry>,
}

impl Default for Manifest {
    fn default() -> Self {
        Self {
            glint_shard_manifest: MANIFEST_VERSION,
            entries: Vec::new(),
        }
    }
}

/// Result of a whole-store sweep: per-home datasets that loaded cleanly,
/// plus the confined damage report for the rest.
#[derive(Debug, Default)]
pub struct ShardSweep {
    pub loaded: BTreeMap<u64, GraphDataset>,
    pub damaged: Vec<(u64, ShardError)>,
}

/// What [`ShardedStore::compact`] did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Manifest entries whose files verified.
    pub live: usize,
    /// Shard files present on disk but absent from the manifest, removed.
    pub removed_orphans: usize,
    /// Leftover temp files from interrupted writes, removed.
    pub removed_temps: usize,
    /// Entries whose files are damaged or missing (kept in the manifest so
    /// the owner can repair or re-save them; compaction never drops data).
    pub damaged: Vec<u64>,
}

fn shard_file_name(home: u64) -> String {
    format!("shard-{home}.glint")
}

/// Atomic bare-file write (temp + fsync + rename) with fail-point support —
/// the manifest's equivalent of the envelope writer. `Action::Err` aborts
/// before touching the filesystem; `Action::ShortWrite(n)` tears the temp
/// file and aborts before the rename, so the destination survives.
fn atomic_write_bare(site: &str, path: &Path, bytes: &[u8]) -> Result<(), ShardError> {
    let fault = check(site);
    if fault == Some(Action::Err) {
        return Err(injected_error(site).into());
    }
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".glint-tmp");
    let tmp = path.with_file_name(name);
    let result = (|| -> Result<(), ShardError> {
        let mut file = std::fs::File::create(&tmp)?;
        if let Some(Action::ShortWrite(n)) = fault {
            file.write_all(&bytes[..n.min(bytes.len())])?;
            file.sync_all()?;
            return Err(injected_error(site).into());
        }
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() && fault.is_none() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// A directory of per-home graph shards with a manifest.
#[derive(Debug)]
pub struct ShardedStore {
    dir: PathBuf,
    manifest: Manifest,
}

impl ShardedStore {
    /// Create an empty store (fresh manifest) at `dir`, creating the
    /// directory if needed. Refuses to clobber an existing manifest.
    pub fn create(dir: impl AsRef<Path>) -> Result<Self, ShardError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        if dir.join(MANIFEST_FILE).exists() {
            return Err(ShardError::ManifestCorrupt(format!(
                "{} already holds a manifest; open it instead",
                dir.display()
            )));
        }
        let store = Self {
            dir,
            manifest: Manifest::default(),
        };
        store.write_manifest(SITE_SHARD_SAVE)?;
        Ok(store)
    }

    /// Open an existing store by reading its manifest.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, ShardError> {
        let dir = dir.as_ref().to_path_buf();
        let manifest_path = dir.join(MANIFEST_FILE);
        let text = match std::fs::read_to_string(&manifest_path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(ShardError::ManifestMissing(dir));
            }
            Err(e) => return Err(e.into()),
        };
        let manifest: Manifest = serde_json::from_str(&text)
            .map_err(|e| ShardError::ManifestCorrupt(format!("parse: {e}")))?;
        if manifest.glint_shard_manifest != MANIFEST_VERSION {
            return Err(ShardError::ManifestCorrupt(format!(
                "manifest version {} is not the supported {MANIFEST_VERSION}",
                manifest.glint_shard_manifest
            )));
        }
        Ok(Self { dir, manifest })
    }

    /// Open if a manifest exists, otherwise create a fresh store.
    pub fn open_or_create(dir: impl AsRef<Path>) -> Result<Self, ShardError> {
        let dir = dir.as_ref();
        if dir.join(MANIFEST_FILE).exists() {
            Self::open(dir)
        } else {
            Self::create(dir)
        }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Homes with a live shard, ascending.
    pub fn homes(&self) -> Vec<u64> {
        self.manifest.entries.iter().map(|e| e.home).collect()
    }

    pub fn len(&self) -> usize {
        self.manifest.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.manifest.entries.is_empty()
    }

    /// Manifest entry for a home, if registered.
    pub fn entry(&self, home: u64) -> Option<&ShardEntry> {
        self.manifest.entries.iter().find(|e| e.home == home)
    }

    fn write_manifest(&self, site: &str) -> Result<(), ShardError> {
        let json = serde_json::to_string(&self.manifest)
            .map_err(|e| ShardError::Decode(format!("serialize manifest: {e}")))?;
        atomic_write_bare(site, &self.dir.join(MANIFEST_FILE), json.as_bytes())
    }

    /// Write (or replace) one home's shard, then update the manifest. Both
    /// writes are atomic and hit [`SITE_SHARD_SAVE`]; a fault between them
    /// leaves the shard newer than the manifest, which the next
    /// [`Self::load_shard`] reports as [`ShardError::StaleShard`] — the
    /// recovery is simply to re-save the shard.
    pub fn save_shard(&mut self, home: u64, dataset: &GraphDataset) -> Result<(), ShardError> {
        let json = serde_json::to_string(dataset)
            .map_err(|e| ShardError::Decode(format!("serialize: {e}")))?;
        let payload = json.as_bytes();
        let file = shard_file_name(home);
        durable::write_durable(
            SITE_SHARD_SAVE,
            self.dir.join(&file),
            SHARD_KIND,
            SHARD_VERSION,
            payload,
        )?;
        let mut platforms: Vec<String> = dataset
            .iter()
            .flat_map(|g| g.platforms())
            .map(|p| format!("{p:?}"))
            .collect();
        platforms.sort_unstable();
        platforms.dedup();
        let entry = ShardEntry {
            home,
            file,
            crc32: durable::crc32(payload),
            graphs: dataset.len(),
            platforms,
        };
        match self
            .manifest
            .entries
            .binary_search_by_key(&home, |e| e.home)
        {
            Ok(i) => self.manifest.entries[i] = entry,
            Err(i) => self.manifest.entries.insert(i, entry),
        }
        self.write_manifest(SITE_SHARD_SAVE)
    }

    /// Load and verify one home's shard. Hits [`SITE_SHARD_LOAD`].
    pub fn load_shard(&self, home: u64) -> Result<GraphDataset, ShardError> {
        glint_failpoint::trigger(SITE_SHARD_LOAD)?;
        let Some(entry) = self.entry(home) else {
            return Err(ShardError::UnknownShard(home));
        };
        let bytes = std::fs::read(self.dir.join(&entry.file))?;
        let (_version, payload) = durable::parse_envelope(&bytes, SHARD_KIND, SHARD_VERSION)?;
        let actual_crc = durable::crc32(&payload);
        if actual_crc != entry.crc32 {
            return Err(ShardError::StaleShard {
                home,
                expected_crc: entry.crc32,
                actual_crc,
            });
        }
        let text = String::from_utf8(payload)
            .map_err(|_| ShardError::Decode("shard payload is not UTF-8".into()))?;
        let dataset: GraphDataset =
            serde_json::from_str(&text).map_err(|e| ShardError::Decode(format!("parse: {e}")))?;
        for (index, graph) in dataset.graphs().iter().enumerate() {
            if let Err(reason) = graph.validate() {
                return Err(ShardError::InvalidGraph {
                    home,
                    index,
                    reason,
                });
            }
        }
        Ok(dataset)
    }

    /// Load every registered shard. Damage stays confined: a corrupt,
    /// truncated, stale, or missing shard contributes a typed error for its
    /// home while every healthy shard still loads.
    pub fn load_all(&self) -> ShardSweep {
        let mut sweep = ShardSweep::default();
        for entry in &self.manifest.entries {
            match self.load_shard(entry.home) {
                Ok(ds) => {
                    sweep.loaded.insert(entry.home, ds);
                }
                Err(e) => sweep.damaged.push((entry.home, e)),
            }
        }
        sweep
    }

    /// Drop a home's shard: delete the file and update the manifest.
    /// Returns whether the home had a shard. Hits [`SITE_SHARD_SAVE`] (the
    /// manifest rewrite is the durable step; file deletion is best-effort
    /// and re-run by [`Self::compact`] as an orphan sweep).
    pub fn remove_shard(&mut self, home: u64) -> Result<bool, ShardError> {
        let Ok(i) = self
            .manifest
            .entries
            .binary_search_by_key(&home, |e| e.home)
        else {
            return Ok(false);
        };
        let entry = self.manifest.entries.remove(i);
        let result = self.write_manifest(SITE_SHARD_SAVE);
        if let Err(e) = result {
            // roll the in-memory view back so state matches the disk manifest
            self.manifest.entries.insert(i, entry);
            return Err(e);
        }
        let _ = std::fs::remove_file(self.dir.join(&entry.file));
        Ok(true)
    }

    /// Compact the store: sweep orphan shard files and interrupted-write
    /// temp files, re-verify every live entry, and rewrite the manifest.
    /// Damaged entries are reported, never silently dropped. Hits
    /// [`SITE_SHARD_COMPACT`].
    pub fn compact(&mut self) -> Result<CompactReport, ShardError> {
        glint_failpoint::trigger(SITE_SHARD_COMPACT)?;
        let mut report = CompactReport::default();
        let live: BTreeMap<String, u64> = self
            .manifest
            .entries
            .iter()
            .map(|e| (e.file.clone(), e.home))
            .collect();
        for dir_entry in std::fs::read_dir(&self.dir)? {
            let dir_entry = dir_entry?;
            let name = dir_entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".glint-tmp") {
                std::fs::remove_file(dir_entry.path())?;
                report.removed_temps += 1;
            } else if name.starts_with("shard-")
                && name.ends_with(".glint")
                && !live.contains_key(&name)
            {
                std::fs::remove_file(dir_entry.path())?;
                report.removed_orphans += 1;
            }
        }
        for entry in &self.manifest.entries {
            match self.load_shard(entry.home) {
                Ok(_) => report.live += 1,
                Err(_) => report.damaged.push(entry.home),
            }
        }
        self.write_manifest(SITE_SHARD_COMPACT)?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeKind, GraphLabel, InteractionGraph, Node};
    use glint_rules::{Platform, RuleId};

    fn sample_dataset(rule_id: u32) -> GraphDataset {
        let mut g = InteractionGraph::new(vec![
            Node {
                rule_id: RuleId(rule_id),
                platform: Platform::Ifttt,
                features: vec![1.0, 2.0],
            },
            Node {
                rule_id: RuleId(rule_id + 1),
                platform: Platform::Alexa,
                features: vec![3.0],
            },
        ]);
        g.add_edge(0, 1, EdgeKind::ActionTrigger);
        let mut ds = GraphDataset::new();
        ds.push(g.with_label(GraphLabel::Normal));
        ds
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("glint_shard_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_and_manifest_bookkeeping() {
        let dir = tmp_dir("round_trip");
        let mut store = ShardedStore::create(&dir).unwrap();
        store.save_shard(3, &sample_dataset(30)).unwrap();
        store.save_shard(1, &sample_dataset(10)).unwrap();
        assert_eq!(store.homes(), vec![1, 3], "manifest sorted by home");
        let reopened = ShardedStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        let ds = reopened.load_shard(3).unwrap();
        assert_eq!(ds.graphs()[0], sample_dataset(30).graphs()[0]);
        assert!(matches!(
            reopened.load_shard(99),
            Err(ShardError::UnknownShard(99))
        ));
    }

    #[test]
    fn resave_replaces_generation() {
        let dir = tmp_dir("resave");
        let mut store = ShardedStore::create(&dir).unwrap();
        store.save_shard(7, &sample_dataset(1)).unwrap();
        let first_crc = store.entry(7).unwrap().crc32;
        store.save_shard(7, &sample_dataset(5)).unwrap();
        assert_ne!(store.entry(7).unwrap().crc32, first_crc);
        assert_eq!(store.len(), 1, "resave must not duplicate the entry");
        let ds = store.load_shard(7).unwrap();
        assert_eq!(ds.graphs()[0].node(0).rule_id, RuleId(5));
    }

    #[test]
    fn remove_then_compact_sweeps_the_file() {
        let dir = tmp_dir("remove");
        let mut store = ShardedStore::create(&dir).unwrap();
        store.save_shard(1, &sample_dataset(1)).unwrap();
        store.save_shard(2, &sample_dataset(3)).unwrap();
        assert!(store.remove_shard(1).unwrap());
        assert!(!store.remove_shard(1).unwrap(), "idempotent remove");
        assert_eq!(store.homes(), vec![2]);
        // leave an orphan behind by writing a file the manifest never saw
        std::fs::write(dir.join("shard-42.glint"), b"junk").unwrap();
        let report = store.compact().unwrap();
        assert_eq!(report.live, 1);
        assert_eq!(report.removed_orphans, 1);
        assert!(report.damaged.is_empty());
        assert!(!dir.join("shard-42.glint").exists());
    }

    #[test]
    fn stale_shard_detected_by_manifest_crc() {
        let dir = tmp_dir("stale");
        let mut store = ShardedStore::create(&dir).unwrap();
        store.save_shard(4, &sample_dataset(1)).unwrap();
        let old_bytes = std::fs::read(dir.join(shard_file_name(4))).unwrap();
        store.save_shard(4, &sample_dataset(9)).unwrap();
        // restore the previous generation behind the manifest's back
        std::fs::write(dir.join(shard_file_name(4)), old_bytes).unwrap();
        assert!(matches!(
            store.load_shard(4),
            Err(ShardError::StaleShard { home: 4, .. })
        ));
    }

    #[test]
    fn open_missing_and_corrupt_manifests_are_typed() {
        let dir = tmp_dir("manifests");
        assert!(matches!(
            ShardedStore::open(&dir),
            Err(ShardError::ManifestMissing(_))
        ));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), b"]] not json").unwrap();
        assert!(matches!(
            ShardedStore::open(&dir),
            Err(ShardError::ManifestCorrupt(_))
        ));
        std::fs::write(
            dir.join(MANIFEST_FILE),
            b"{\"glint_shard_manifest\":99,\"entries\":[]}",
        )
        .unwrap();
        assert!(matches!(
            ShardedStore::open(&dir),
            Err(ShardError::ManifestCorrupt(_))
        ));
    }
}
