//! CART decision trees: weighted-Gini classification and variance-reduction
//! regression (the latter backs gradient boosting).

use glint_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// A binary tree node stored in an arena.
#[derive(Clone, Debug)]
enum NodeKind {
    Leaf {
        value: f32,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// Tree growth hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    pub max_depth: usize,
    pub min_samples_split: usize,
    /// Number of candidate features per split (None = all).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 2,
            max_features: None,
        }
    }
}

/// A fitted CART tree. For classification leaves hold the positive-class
/// probability; for regression the mean target.
#[derive(Clone, Debug)]
pub struct Tree {
    nodes: Vec<NodeKind>,
}

/// Split criterion.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Criterion {
    /// Weighted Gini impurity on binary targets (0/1 in `y`).
    Gini,
    /// Variance reduction on real-valued targets.
    Variance,
}

struct Grower<'a> {
    x: &'a Matrix,
    y: &'a [f32],
    w: &'a [f32],
    config: TreeConfig,
    criterion: Criterion,
    nodes: Vec<NodeKind>,
}

impl Tree {
    /// Fit a tree on rows `idx` of `(x, y)` with sample weights `w`.
    /// `rng` drives the per-split feature subsampling (random forests).
    pub fn fit(
        x: &Matrix,
        y: &[f32],
        w: &[f32],
        idx: &[usize],
        config: TreeConfig,
        criterion: Criterion,
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(x.rows(), y.len());
        assert_eq!(y.len(), w.len());
        let mut grower = Grower {
            x,
            y,
            w,
            config,
            criterion,
            nodes: Vec::new(),
        };
        let indices = idx.to_vec();
        grower.grow(&indices, 0, rng);
        Tree {
            nodes: grower.nodes,
        }
    }

    /// Predict the leaf value for one row.
    pub fn predict_row(&self, row: &[f32]) -> f32 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                NodeKind::Leaf { value } => return *value,
                NodeKind::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    pub fn predict(&self, x: &Matrix) -> Vec<f32> {
        (0..x.rows()).map(|i| self.predict_row(x.row(i))).collect()
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree (1 for a single leaf).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[NodeKind], i: usize) -> usize {
            match &nodes[i] {
                NodeKind::Leaf { .. } => 1,
                NodeKind::Split { left, right, .. } => {
                    1 + rec(nodes, *left).max(rec(nodes, *right))
                }
            }
        }
        rec(&self.nodes, 0)
    }
}

impl Grower<'_> {
    fn leaf_value(&self, idx: &[usize]) -> f32 {
        let mut wsum = 0.0;
        let mut vsum = 0.0;
        for &i in idx {
            wsum += self.w[i];
            vsum += self.w[i] * self.y[i];
        }
        if wsum > 0.0 {
            vsum / wsum
        } else {
            0.0
        }
    }

    /// Weighted impurity of a (wsum, ysum, y2sum) accumulator.
    fn impurity(&self, wsum: f32, ysum: f32, y2sum: f32) -> f32 {
        if wsum <= 0.0 {
            return 0.0;
        }
        match self.criterion {
            Criterion::Gini => {
                let p = ysum / wsum;
                2.0 * p * (1.0 - p) * wsum
            }
            Criterion::Variance => y2sum - ysum * ysum / wsum,
        }
    }

    fn grow(&mut self, idx: &[usize], depth: usize, rng: &mut StdRng) -> usize {
        let node_id = self.nodes.len();
        self.nodes.push(NodeKind::Leaf {
            value: self.leaf_value(idx),
        });
        if depth >= self.config.max_depth || idx.len() < self.config.min_samples_split {
            return node_id;
        }
        // candidate features
        let n_features = self.x.cols();
        let mut features: Vec<usize> = (0..n_features).collect();
        if let Some(m) = self.config.max_features {
            features.shuffle(rng);
            features.truncate(m.min(n_features));
        }
        // total accumulators
        let (mut wt, mut yt, mut y2t) = (0.0f32, 0.0f32, 0.0f32);
        for &i in idx.iter() {
            wt += self.w[i];
            yt += self.w[i] * self.y[i];
            y2t += self.w[i] * self.y[i] * self.y[i];
        }
        let parent_imp = self.impurity(wt, yt, y2t);
        if parent_imp <= 1e-9 {
            return node_id; // pure node
        }
        let mut best: Option<(f32, usize, f32)> = None; // (gain, feature, threshold)
        let mut order = idx.to_vec();
        for &f in &features {
            order.sort_unstable_by(|&a, &b| self.x.get(a, f).total_cmp(&self.x.get(b, f)));
            let (mut wl, mut yl, mut y2l) = (0.0f32, 0.0f32, 0.0f32);
            for k in 0..order.len().saturating_sub(1) {
                let i = order[k];
                wl += self.w[i];
                yl += self.w[i] * self.y[i];
                y2l += self.w[i] * self.y[i] * self.y[i];
                let xv = self.x.get(i, f);
                let xn = self.x.get(order[k + 1], f);
                if xn <= xv {
                    continue; // no split point between equal values
                }
                let imp = self.impurity(wl, yl, y2l) + self.impurity(wt - wl, yt - yl, y2t - y2l);
                let gain = parent_imp - imp;
                // like sklearn: any valid split of an impure node is allowed
                // (zero-gain splits let depth-2 structures such as XOR
                // resolve); the best gain still wins
                if gain > best.map_or(-1e-6, |(g, _, _)| g) {
                    best = Some((gain, f, 0.5 * (xv + xn)));
                }
            }
        }
        let Some((_, feature, threshold)) = best else {
            return node_id;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
            .iter()
            .partition(|&&i| self.x.get(i, feature) <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return node_id;
        }
        let left = self.grow(&left_idx, depth + 1, rng);
        let right = self.grow(&right_idx, depth + 1, rng);
        self.nodes[node_id] = NodeKind::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn xor_data() -> (Matrix, Vec<f32>) {
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let y = vec![0.0, 1.0, 1.0, 0.0];
        (x, y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let w = vec![1.0; 4];
        let idx: Vec<usize> = (0..4).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let tree = Tree::fit(
            &x,
            &y,
            &w,
            &idx,
            TreeConfig::default(),
            Criterion::Gini,
            &mut rng,
        );
        for (i, &label) in y.iter().enumerate() {
            let p = tree.predict_row(x.row(i));
            assert_eq!((p > 0.5) as i32 as f32, label, "row {i}: {p}");
        }
    }

    #[test]
    fn depth_limit_respected() {
        let (x, y) = xor_data();
        let w = vec![1.0; 4];
        let idx: Vec<usize> = (0..4).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TreeConfig {
            max_depth: 1,
            ..Default::default()
        };
        let tree = Tree::fit(&x, &y, &w, &idx, cfg, Criterion::Gini, &mut rng);
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn regression_fits_step_function() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![10.0], vec![11.0]]);
        let y = vec![1.0, 1.0, 1.0, 5.0, 5.0];
        let w = vec![1.0; 5];
        let idx: Vec<usize> = (0..5).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let tree = Tree::fit(
            &x,
            &y,
            &w,
            &idx,
            TreeConfig::default(),
            Criterion::Variance,
            &mut rng,
        );
        assert!((tree.predict_row(&[1.5]) - 1.0).abs() < 1e-5);
        assert!((tree.predict_row(&[10.5]) - 5.0).abs() < 1e-5);
    }

    #[test]
    fn pure_node_stays_leaf() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let y = vec![1.0, 1.0, 1.0];
        let w = vec![1.0; 3];
        let idx: Vec<usize> = (0..3).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let tree = Tree::fit(
            &x,
            &y,
            &w,
            &idx,
            TreeConfig::default(),
            Criterion::Gini,
            &mut rng,
        );
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn sample_weights_bias_the_leaf() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0]]);
        let y = vec![0.0, 1.0];
        let w = vec![1.0, 9.0];
        let idx: Vec<usize> = vec![0, 1];
        let mut rng = StdRng::seed_from_u64(0);
        let tree = Tree::fit(
            &x,
            &y,
            &w,
            &idx,
            TreeConfig::default(),
            Criterion::Gini,
            &mut rng,
        );
        assert!((tree.predict_row(&[0.0]) - 0.9).abs() < 1e-5);
    }
}
