//! Classification metrics: accuracy, precision, recall, F1, weighted F1.

use serde::{Deserialize, Serialize};

/// Binary confusion matrix with class 1 as the positive ("threat") class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    pub tp: usize,
    pub fp: usize,
    pub tn: usize,
    pub fn_: usize,
}

impl ConfusionMatrix {
    pub fn from_predictions(y_true: &[usize], y_pred: &[usize]) -> Self {
        assert_eq!(y_true.len(), y_pred.len());
        let mut m = Self::default();
        for (&t, &p) in y_true.iter().zip(y_pred) {
            match (t, p) {
                (1, 1) => m.tp += 1,
                (0, 1) => m.fp += 1,
                (0, 0) => m.tn += 1,
                (1, 0) => m.fn_ += 1,
                _ => panic!("binary metrics expect labels in {{0,1}}"),
            }
        }
        m
    }

    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// Precision of the positive class (0 when nothing was predicted positive).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r > 0.0 {
            2.0 * p * r / (p + r)
        } else {
            0.0
        }
    }

    /// Precision/recall/F1 of the *negative* class.
    pub fn negative_f1(&self) -> f64 {
        let p = {
            let d = self.tn + self.fn_;
            if d == 0 {
                0.0
            } else {
                self.tn as f64 / d as f64
            }
        };
        let r = {
            let d = self.tn + self.fp;
            if d == 0 {
                0.0
            } else {
                self.tn as f64 / d as f64
            }
        };
        if p + r > 0.0 {
            2.0 * p * r / (p + r)
        } else {
            0.0
        }
    }

    /// Support-weighted mean of per-class F1 (the paper's "weighted F1",
    /// which can fall outside the [min(P,R), max(P,R)] band).
    pub fn weighted_f1(&self) -> f64 {
        let pos = (self.tp + self.fn_) as f64;
        let neg = (self.tn + self.fp) as f64;
        let total = pos + neg;
        if total <= 0.0 {
            return 0.0;
        }
        (self.f1() * pos + self.negative_f1() * neg) / total
    }
}

/// The four headline numbers reported throughout §4, as fractions in [0, 1].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BinaryMetrics {
    pub accuracy: f64,
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

impl BinaryMetrics {
    pub fn from_predictions(y_true: &[usize], y_pred: &[usize]) -> Self {
        let m = ConfusionMatrix::from_predictions(y_true, y_pred);
        Self {
            accuracy: m.accuracy(),
            precision: m.precision(),
            recall: m.recall(),
            f1: m.f1(),
        }
    }

    /// Same, but with the paper's support-weighted F1.
    pub fn weighted_from_predictions(y_true: &[usize], y_pred: &[usize]) -> Self {
        let m = ConfusionMatrix::from_predictions(y_true, y_pred);
        Self {
            accuracy: m.accuracy(),
            precision: m.precision(),
            recall: m.recall(),
            f1: m.weighted_f1(),
        }
    }

    /// Mean of a set of metric observations.
    pub fn mean(all: &[BinaryMetrics]) -> BinaryMetrics {
        if all.is_empty() {
            return BinaryMetrics::default();
        }
        let n = all.len() as f64;
        BinaryMetrics {
            accuracy: all.iter().map(|m| m.accuracy).sum::<f64>() / n,
            precision: all.iter().map(|m| m.precision).sum::<f64>() / n,
            recall: all.iter().map(|m| m.recall).sum::<f64>() / n,
            f1: all.iter().map(|m| m.f1).sum::<f64>() / n,
        }
    }
}

impl std::fmt::Display for BinaryMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "acc={:.1}% prec={:.1}% rec={:.1}% f1={:.1}%",
            self.accuracy * 100.0,
            self.precision * 100.0,
            self.recall * 100.0,
            self.f1 * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = [0, 1, 0, 1, 1];
        let m = BinaryMetrics::from_predictions(&y, &y);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn hand_computed_case() {
        // tp=2 fp=1 tn=1 fn=1
        let y_true = [1, 1, 1, 0, 0];
        let y_pred = [1, 1, 0, 1, 0];
        let m = ConfusionMatrix::from_predictions(&y_true, &y_pred);
        assert_eq!(
            m,
            ConfusionMatrix {
                tp: 2,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert!((m.accuracy() - 0.6).abs() < 1e-9);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-9);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_all_negative_predictions() {
        let y_true = [1, 1, 0];
        let y_pred = [0, 0, 0];
        let m = ConfusionMatrix::from_predictions(&y_true, &y_pred);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn weighted_f1_accounts_for_both_classes() {
        let y_true = [0, 0, 0, 0, 1];
        let y_pred = [0, 0, 0, 0, 0];
        let m = ConfusionMatrix::from_predictions(&y_true, &y_pred);
        // positive F1 = 0, negative F1 high → weighted F1 dominated by majority
        assert!(m.weighted_f1() > 0.7);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn mean_aggregation() {
        let a = BinaryMetrics {
            accuracy: 1.0,
            precision: 0.5,
            recall: 1.0,
            f1: 0.5,
        };
        let b = BinaryMetrics {
            accuracy: 0.0,
            precision: 0.5,
            recall: 0.0,
            f1: 0.5,
        };
        let m = BinaryMetrics::mean(&[a, b]);
        assert_eq!(m.accuracy, 0.5);
        assert_eq!(m.precision, 0.5);
    }
}
