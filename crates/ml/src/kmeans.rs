//! K-means clustering with k-means++ seeding (Figure 9's embedding analysis).

use glint_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fitted k-means model.
#[derive(Clone, Debug)]
pub struct KMeans {
    pub k: usize,
    pub max_iter: usize,
    pub seed: u64,
    centroids: Matrix,
}

impl KMeans {
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        Self {
            k,
            max_iter: 100,
            seed: 0,
            centroids: Matrix::zeros(0, 0),
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// Fit and return per-row cluster assignments.
    pub fn fit(&mut self, x: &Matrix) -> Vec<usize> {
        assert!(x.rows() >= self.k, "need at least k points");
        let mut rng = StdRng::seed_from_u64(self.seed);
        // k-means++ seeding
        let mut centers: Vec<usize> = vec![rng.gen_range(0..x.rows())];
        while centers.len() < self.k {
            let d2: Vec<f32> = (0..x.rows())
                .map(|r| {
                    centers
                        .iter()
                        .map(|&c| Self::sq_dist(x.row(r), x.row(c)))
                        .fold(f32::INFINITY, f32::min)
                })
                .collect();
            let total: f32 = d2.iter().sum();
            if total <= 0.0 {
                // all points coincide with chosen centers; pick arbitrary
                centers.push(rng.gen_range(0..x.rows()));
                continue;
            }
            let mut pick = rng.gen_range(0.0..total);
            let mut chosen = 0;
            for (r, &d) in d2.iter().enumerate() {
                pick -= d;
                if pick <= 0.0 {
                    chosen = r;
                    break;
                }
            }
            centers.push(chosen);
        }
        self.centroids = x.gather_rows(&centers);

        let mut assign = vec![0usize; x.rows()];
        for _ in 0..self.max_iter {
            let mut changed = false;
            for (r, slot) in assign.iter_mut().enumerate() {
                let best = (0..self.k)
                    .min_by(|&a, &b| {
                        Self::sq_dist(x.row(r), self.centroids.row(a))
                            .total_cmp(&Self::sq_dist(x.row(r), self.centroids.row(b)))
                    })
                    .unwrap_or(0);
                if *slot != best {
                    *slot = best;
                    changed = true;
                }
            }
            // recompute centroids
            let mut sums = Matrix::zeros(self.k, x.cols());
            let mut counts = vec![0usize; self.k];
            for r in 0..x.rows() {
                counts[assign[r]] += 1;
                for (s, &v) in sums.row_mut(assign[r]).iter_mut().zip(x.row(r)) {
                    *s += v;
                }
            }
            for (c, &count) in counts.iter().enumerate() {
                if count > 0 {
                    let inv = 1.0 / count as f32;
                    for v in sums.row_mut(c) {
                        *v *= inv;
                    }
                } else {
                    sums.row_mut(c).copy_from_slice(self.centroids.row(c));
                }
            }
            self.centroids = sums;
            if !changed {
                break;
            }
        }
        assign
    }

    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Assign new points to the nearest fitted centroid.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows())
            .map(|r| {
                (0..self.k)
                    .min_by(|&a, &b| {
                        Self::sq_dist(x.row(r), self.centroids.row(a))
                            .total_cmp(&Self::sq_dist(x.row(r), self.centroids.row(b)))
                    })
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_blobs() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut rows = Vec::new();
        for _ in 0..50 {
            rows.push(vec![
                rng.gen_range(-0.5f32..0.5),
                rng.gen_range(-0.5f32..0.5),
            ]);
        }
        for _ in 0..50 {
            rows.push(vec![
                10.0 + rng.gen_range(-0.5f32..0.5),
                rng.gen_range(-0.5f32..0.5),
            ]);
        }
        let x = Matrix::from_rows(&rows);
        let mut km = KMeans::new(2).with_seed(3);
        let assign = km.fit(&x);
        // all first-50 share a label, all last-50 share the other
        let a = assign[0];
        assert!(assign[..50].iter().all(|&c| c == a));
        assert!(assign[50..].iter().all(|&c| c != a));
    }

    #[test]
    fn centroids_land_on_blob_centers() {
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.2, 0.0],
            vec![10.0, 10.0],
            vec![10.2, 10.0],
        ]);
        let mut km = KMeans::new(2).with_seed(5);
        km.fit(&x);
        let mut cs: Vec<f32> = (0..2).map(|i| km.centroids().row(i)[0]).collect();
        cs.sort_by(f32::total_cmp);
        assert!((cs[0] - 0.1).abs() < 0.2);
        assert!((cs[1] - 10.1).abs() < 0.2);
    }

    #[test]
    fn predict_assigns_nearest() {
        let x = Matrix::from_rows(&[vec![0.0], vec![10.0]]);
        let mut km = KMeans::new(2).with_seed(7);
        km.fit(&x);
        let labels = km.predict(&Matrix::from_rows(&[vec![1.0], vec![9.0]]));
        assert_ne!(labels[0], labels[1]);
    }
}
