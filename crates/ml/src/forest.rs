//! Random forest: bagged Gini trees with per-split random feature subspaces.

use crate::tree::{Criterion, Tree, TreeConfig};
use crate::Classifier;
use glint_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-forest classifier.
#[derive(Clone, Debug)]
pub struct RandomForest {
    pub n_trees: usize,
    pub max_depth: usize,
    pub seed: u64,
    /// Optional class weights (inverse-frequency when None).
    pub class_weights: Option<[f32; 2]>,
    trees: Vec<Tree>,
}

impl RandomForest {
    pub fn new(n_trees: usize) -> Self {
        Self {
            n_trees,
            max_depth: 12,
            seed: 0,
            class_weights: None,
            trees: Vec::new(),
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_max_depth(mut self, d: usize) -> Self {
        self.max_depth = d;
        self
    }

    fn score_row(&self, row: &[f32]) -> f32 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.predict_row(row)).sum::<f32>() / self.trees.len() as f32
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[usize]) {
        assert_eq!(x.rows(), y.len());
        let cw = self.class_weights.unwrap_or_else(|| {
            let w = crate::sampling::class_weights(y, 2);
            [w[0], w[1]]
        });
        let yf: Vec<f32> = y.iter().map(|&c| c as f32).collect();
        let w: Vec<f32> = y.iter().map(|&c| cw[c]).collect();
        let n = x.rows();
        let m_features = (x.cols() as f32).sqrt().ceil() as usize;
        let config = TreeConfig {
            max_depth: self.max_depth,
            min_samples_split: 2,
            max_features: Some(m_features.max(1)),
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.trees = (0..self.n_trees)
            .map(|_| {
                // bootstrap sample
                let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                Tree::fit(x, &yf, &w, &idx, config, Criterion::Gini, &mut rng)
            })
            .collect();
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows())
            .map(|i| usize::from(self.score_row(x.row(i)) > 0.5))
            .collect()
    }

    fn decision_scores(&self, x: &Matrix) -> Vec<f32> {
        (0..x.rows()).map(|i| self.score_row(x.row(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_moons_ish(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let t: f32 = rng.gen_range(0.0..std::f32::consts::PI);
            let (cx, cy) = if c == 0 {
                (t.cos(), t.sin())
            } else {
                (1.0 - t.cos(), 0.5 - t.sin())
            };
            rows.push(vec![
                cx + rng.gen_range(-0.1..0.1),
                cy + rng.gen_range(-0.1f32..0.1),
            ]);
            y.push(c);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn fits_nonlinear_boundary() {
        let (x, y) = two_moons_ish(300, 5);
        let mut rf = RandomForest::new(25).with_seed(1);
        rf.fit(&x, &y);
        let acc = crate::metrics::BinaryMetrics::from_predictions(&y, &rf.predict(&x)).accuracy;
        assert!(acc > 0.95, "train accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = two_moons_ish(100, 6);
        let mut a = RandomForest::new(10).with_seed(3);
        let mut b = RandomForest::new(10).with_seed(3);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn scores_are_probabilities() {
        let (x, y) = two_moons_ish(80, 7);
        let mut rf = RandomForest::new(10);
        rf.fit(&x, &y);
        for s in rf.decision_scores(&x) {
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
