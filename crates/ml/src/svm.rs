//! Class-weighted linear support-vector classifier (the paper's "SVC").
//!
//! Primal hinge-loss minimization by averaged SGD with L2 regularization —
//! the Pegasos scheme — with per-class misclassification costs.

use crate::Classifier;
use glint_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Linear SVC configuration + fitted weights.
#[derive(Clone, Debug)]
pub struct LinearSvc {
    /// Regularization strength λ.
    pub lambda: f32,
    pub epochs: usize,
    pub seed: u64,
    /// Optional explicit class weights [w0, w1]; inverse-frequency if None.
    pub class_weights: Option<[f32; 2]>,
    w: Vec<f32>,
    b: f32,
}

impl LinearSvc {
    pub fn new() -> Self {
        Self {
            lambda: 1e-4,
            epochs: 40,
            seed: 0,
            class_weights: None,
            w: Vec::new(),
            b: 0.0,
        }
    }

    pub fn with_lambda(mut self, lambda: f32) -> Self {
        self.lambda = lambda;
        self
    }

    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn margin(&self, row: &[f32]) -> f32 {
        self.w.iter().zip(row).map(|(w, x)| w * x).sum::<f32>() + self.b
    }
}

impl Default for LinearSvc {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for LinearSvc {
    fn fit(&mut self, x: &Matrix, y: &[usize]) {
        assert_eq!(x.rows(), y.len());
        let cw = self.class_weights.unwrap_or_else(|| {
            let w = crate::sampling::class_weights(y, 2);
            [w[0], w[1]]
        });
        self.w = vec![0.0; x.cols()];
        self.b = 0.0;
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut t: f32 = 1.0;
        // tail averaging: the single final SGD iterate oscillates around the
        // optimum, so the returned model averages the second half of training
        let total_steps = self.epochs * x.rows();
        let mut w_sum = vec![0.0f32; x.cols()];
        let mut b_sum = 0.0f32;
        let mut n_avg = 0usize;
        let mut step_idx = 0usize;
        let radius = 1.0 / self.lambda.sqrt();
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let eta = 1.0 / (self.lambda * t);
                t += 1.0;
                let yi = if y[i] == 1 { 1.0 } else { -1.0 };
                let weight = cw[y[i]];
                let m = yi * self.margin(x.row(i));
                // L2 shrink
                let shrink = 1.0 - eta * self.lambda;
                for w in &mut self.w {
                    *w *= shrink;
                }
                if m < 1.0 {
                    let step = eta * weight * yi;
                    for (w, &xi) in self.w.iter_mut().zip(x.row(i)) {
                        *w += step * xi;
                    }
                    self.b += step * 0.1; // slow bias learning
                }
                // Pegasos projection onto the ball ‖w‖ ≤ 1/√λ keeps the huge
                // early steps (η = 1/λt) from dominating the trajectory
                let norm = self.w.iter().map(|w| w * w).sum::<f32>().sqrt();
                if norm > radius {
                    let scale = radius / norm;
                    for w in &mut self.w {
                        *w *= scale;
                    }
                }
                step_idx += 1;
                if step_idx * 2 >= total_steps {
                    for (s, w) in w_sum.iter_mut().zip(&self.w) {
                        *s += w;
                    }
                    b_sum += self.b;
                    n_avg += 1;
                }
            }
        }
        if n_avg > 0 {
            let inv = 1.0 / n_avg as f32;
            self.w = w_sum.iter().map(|s| s * inv).collect();
            self.b = b_sum * inv;
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows())
            .map(|i| usize::from(self.margin(x.row(i)) > 0.0))
            .collect()
    }

    fn decision_scores(&self, x: &Matrix) -> Vec<f32> {
        (0..x.rows()).map(|i| self.margin(x.row(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Two Gaussian-ish blobs separated along the first axis.
    fn blobs(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let cx = if c == 0 { -2.0 } else { 2.0 };
            rows.push(vec![
                cx + rng.gen_range(-1.0f32..1.0),
                rng.gen_range(-1.0f32..1.0),
            ]);
            y.push(c);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn separable_blobs_learned() {
        let (x, y) = blobs(200, 1);
        let mut svc = LinearSvc::new();
        svc.fit(&x, &y);
        let pred = svc.predict(&x);
        let acc = crate::metrics::BinaryMetrics::from_predictions(&y, &pred).accuracy;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn class_weighting_shifts_boundary_toward_recall() {
        // heavily imbalanced: few positives near the boundary
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..190 {
            rows.push(vec![
                rng.gen_range(-3.0f32..0.5),
                rng.gen_range(-1.0f32..1.0),
            ]);
            y.push(0);
        }
        for _ in 0..10 {
            rows.push(vec![
                rng.gen_range(-0.5f32..3.0),
                rng.gen_range(-1.0f32..1.0),
            ]);
            y.push(1);
        }
        let x = Matrix::from_rows(&rows);
        let mut weighted = LinearSvc::new();
        weighted.fit(&x, &y);
        let rec_w =
            crate::metrics::BinaryMetrics::from_predictions(&y, &weighted.predict(&x)).recall;
        let mut unweighted = LinearSvc::new();
        unweighted.class_weights = Some([1.0, 1.0]);
        unweighted.fit(&x, &y);
        let rec_u =
            crate::metrics::BinaryMetrics::from_predictions(&y, &unweighted.predict(&x)).recall;
        assert!(
            rec_w >= rec_u,
            "weighted recall {rec_w} < unweighted {rec_u}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(100, 3);
        let mut a = LinearSvc::new().with_seed(9);
        let mut b = LinearSvc::new().with_seed(9);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }
}
