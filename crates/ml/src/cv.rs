//! Cross-validation and grid search (the §4.1 evaluation protocol:
//! "grid search … and 10-fold cross-validation").

use crate::metrics::BinaryMetrics;
use crate::Classifier;
use glint_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Stratified k-fold index sets.
pub fn stratified_folds(y: &[usize], k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let n_classes = y.iter().copied().max().map_or(1, |m| m + 1);
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &c) in y.iter().enumerate() {
        by_class[c].push(i);
    }
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for class in &mut by_class {
        class.shuffle(&mut rng);
        for (j, &i) in class.iter().enumerate() {
            folds[j % k].push(i);
        }
    }
    folds
}

/// Run k-fold CV for a classifier factory; returns per-fold metrics.
pub fn cross_validate(
    make: &mut dyn FnMut() -> Box<dyn Classifier>,
    x: &Matrix,
    y: &[usize],
    k: usize,
    seed: u64,
) -> Vec<BinaryMetrics> {
    let folds = stratified_folds(y, k, seed);
    let mut results = Vec::with_capacity(k);
    for test_fold in 0..k {
        let test_idx = &folds[test_fold];
        let train_idx: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != test_fold)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        if test_idx.is_empty() || train_idx.is_empty() {
            continue;
        }
        let x_train = x.gather_rows(&train_idx);
        let y_train: Vec<usize> = train_idx.iter().map(|&i| y[i]).collect();
        let x_test = x.gather_rows(test_idx);
        let y_test: Vec<usize> = test_idx.iter().map(|&i| y[i]).collect();
        let mut model = make();
        model.fit(&x_train, &y_train);
        let pred = model.predict(&x_test);
        results.push(BinaryMetrics::from_predictions(&y_test, &pred));
    }
    results
}

/// Exhaustive grid search over parameter candidates, selecting by mean CV F1.
/// Returns (best_index, best_mean_metrics).
pub fn grid_search(
    candidates: &mut [Box<dyn FnMut() -> Box<dyn Classifier>>],
    x: &Matrix,
    y: &[usize],
    k: usize,
    seed: u64,
) -> (usize, BinaryMetrics) {
    assert!(!candidates.is_empty());
    let mut best = (0usize, BinaryMetrics::default());
    for (i, make) in candidates.iter_mut().enumerate() {
        let folds = cross_validate(&mut **make, x, y, k, seed);
        let mean = BinaryMetrics::mean(&folds);
        if mean.f1 > best.1.f1 {
            best = (i, mean);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::Knn;
    use rand::Rng;

    fn blobs(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let cx = if c == 0 { -2.0 } else { 2.0 };
            rows.push(vec![cx + rng.gen_range(-0.5f32..0.5)]);
            y.push(c);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn folds_partition_everything() {
        let y = vec![0, 0, 0, 0, 1, 1, 1, 1, 1, 1];
        let folds = stratified_folds(&y, 3, 1);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        // each fold has both classes
        for f in &folds {
            assert!(f.iter().any(|&i| y[i] == 0));
            assert!(f.iter().any(|&i| y[i] == 1));
        }
    }

    #[test]
    fn cv_on_separable_data_is_high() {
        let (x, y) = blobs(100, 2);
        let mut factory = || Box::new(Knn::new(3)) as Box<dyn Classifier>;
        let metrics = cross_validate(&mut factory, &x, &y, 5, 3);
        assert_eq!(metrics.len(), 5);
        let mean = BinaryMetrics::mean(&metrics);
        assert!(mean.accuracy > 0.9, "{mean}");
    }

    #[test]
    fn grid_search_picks_the_better_candidate() {
        let (x, y) = blobs(100, 4);
        // k=1 vs absurd k=99 (ties into majority class noise)
        let mut candidates: Vec<Box<dyn FnMut() -> Box<dyn Classifier>>> = vec![
            Box::new(|| Box::new(Knn::new(3)) as Box<dyn Classifier>),
            Box::new(|| Box::new(Knn::new(99)) as Box<dyn Classifier>),
        ];
        let (best, metrics) = grid_search(&mut candidates, &x, &y, 5, 5);
        assert_eq!(best, 0);
        assert!(metrics.f1 > 0.9);
    }
}
