//! One-class SVM stand-in via support vector data description (SVDD):
//! a hypersphere in a random-Fourier-feature space whose radius is set by the
//! `nu` contamination quantile. Interface mirrors scikit-learn's OneClassSVM
//! (`predict` returns +1 for inliers, −1 for anomalies).

use glint_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One-class anomaly detector.
#[derive(Clone, Debug)]
pub struct OneClassSvm {
    /// Expected anomaly fraction in training data (quantile for the radius).
    pub nu: f64,
    /// RBF bandwidth for the random Fourier features.
    pub gamma: f32,
    /// Number of random Fourier features.
    pub n_features: usize,
    pub seed: u64,
    proj: Option<Rff>,
    center: Vec<f32>,
    radius: f32,
}

#[derive(Clone, Debug)]
struct Rff {
    w: Matrix,
    b: Vec<f32>,
}

impl OneClassSvm {
    pub fn new(nu: f64) -> Self {
        assert!((0.0..1.0).contains(&nu));
        Self {
            nu,
            gamma: 0.5,
            n_features: 64,
            seed: 0,
            proj: None,
            center: Vec::new(),
            radius: 0.0,
        }
    }

    fn featurize(&self, x: &Matrix) -> Matrix {
        let proj = self.proj.as_ref().expect("fit first");
        let z = x.matmul(&proj.w); // n × m
        let scale = (2.0 / self.n_features as f32).sqrt();
        let mut out = Matrix::zeros(x.rows(), self.n_features);
        for r in 0..x.rows() {
            for c in 0..self.n_features {
                out.set(r, c, scale * (z.get(r, c) + proj.b[c]).cos());
            }
        }
        out
    }

    /// Fit on (assumed mostly-normal) data.
    pub fn fit(&mut self, x: &Matrix) {
        assert!(x.rows() > 0);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let scale = (2.0 * self.gamma).sqrt();
        let w = Matrix::from_vec(
            x.cols(),
            self.n_features,
            (0..x.cols() * self.n_features)
                .map(|_| {
                    let s: f32 = (0..12).map(|_| rng.gen_range(0.0f32..1.0)).sum();
                    (s - 6.0) * scale
                })
                .collect(),
        );
        let b: Vec<f32> = (0..self.n_features)
            .map(|_| rng.gen_range(0.0..std::f32::consts::TAU))
            .collect();
        self.proj = Some(Rff { w, b });
        let phi = self.featurize(x);
        self.center = phi.mean_rows().into_vec();
        let mut dists: Vec<f32> = (0..phi.rows())
            .map(|r| {
                phi.row(r)
                    .iter()
                    .zip(&self.center)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f32>()
                    .sqrt()
            })
            .collect();
        dists.sort_unstable_by(f32::total_cmp);
        let q =
            (((1.0 - self.nu) * (dists.len() - 1) as f64).round() as usize).min(dists.len() - 1);
        self.radius = dists[q];
    }

    /// Distance beyond the radius (positive = anomalous).
    pub fn anomaly_score(&self, x: &Matrix) -> Vec<f32> {
        let phi = self.featurize(x);
        (0..phi.rows())
            .map(|r| {
                let d = phi
                    .row(r)
                    .iter()
                    .zip(&self.center)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f32>()
                    .sqrt();
                d - self.radius
            })
            .collect()
    }

    /// scikit-learn convention: +1 inlier, −1 anomaly.
    pub fn predict(&self, x: &Matrix) -> Vec<i32> {
        self.anomaly_score(x)
            .iter()
            .map(|&s| if s > 0.0 { -1 } else { 1 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize, center: f32, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_rows(
            &(0..n)
                .map(|_| {
                    vec![
                        center + rng.gen_range(-0.5f32..0.5),
                        center + rng.gen_range(-0.5f32..0.5),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn detects_far_outliers() {
        let train = cluster(200, 0.0, 1);
        let mut oc = OneClassSvm::new(0.05);
        oc.fit(&train);
        let inliers = cluster(50, 0.0, 2);
        let outliers = cluster(50, 5.0, 3);
        let in_pred = oc.predict(&inliers);
        let out_pred = oc.predict(&outliers);
        let in_rate = in_pred.iter().filter(|&&p| p == 1).count() as f64 / 50.0;
        let out_rate = out_pred.iter().filter(|&&p| p == -1).count() as f64 / 50.0;
        assert!(in_rate > 0.8, "inlier acceptance {in_rate}");
        assert!(out_rate > 0.8, "outlier detection {out_rate}");
    }

    #[test]
    fn nu_controls_training_rejection() {
        let train = cluster(200, 0.0, 4);
        let mut strict = OneClassSvm::new(0.3);
        strict.fit(&train);
        let rejected = strict.predict(&train).iter().filter(|&&p| p == -1).count() as f64 / 200.0;
        assert!((rejected - 0.3).abs() < 0.1, "rejection rate {rejected}");
    }
}
