//! Class-imbalance utilities: inverse-frequency weights, random
//! oversampling, and feature standardization.

use glint_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Inverse-frequency class weights for `n_classes`, normalized to mean 1
/// ("class weights inversely proportional to class frequencies", §4.1).
pub fn class_weights(y: &[usize], n_classes: usize) -> Vec<f32> {
    let mut counts = vec![0usize; n_classes];
    for &c in y {
        counts[c] += 1;
    }
    let total = y.len().max(1) as f32;
    counts
        .iter()
        .map(|&c| {
            if c == 0 {
                1.0
            } else {
                total / (n_classes as f32 * c as f32)
            }
        })
        .collect()
}

/// Per-sample weights from class weights.
pub fn sample_weights(y: &[usize], class_w: &[f32]) -> Vec<f32> {
    y.iter().map(|&c| class_w[c]).collect()
}

/// Randomly oversample minority-class rows until each class has at least
/// `target_ratio` × majority count. Returns the new (x, y).
pub fn oversample(x: &Matrix, y: &[usize], target_ratio: f64, seed: u64) -> (Matrix, Vec<usize>) {
    assert_eq!(x.rows(), y.len());
    let n_classes = y.iter().copied().max().map_or(0, |m| m + 1);
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &c) in y.iter().enumerate() {
        by_class[c].push(i);
    }
    let majority = by_class.iter().map(Vec::len).max().unwrap_or(0);
    let target = ((majority as f64) * target_ratio).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows: Vec<usize> = (0..y.len()).collect();
    for class_rows in &by_class {
        if class_rows.is_empty() || class_rows.len() >= target {
            continue;
        }
        for _ in 0..(target - class_rows.len()) {
            rows.push(*class_rows.choose(&mut rng).expect("class nonempty"));
        }
    }
    rows.shuffle(&mut rng);
    let new_y: Vec<usize> = rows.iter().map(|&i| y[i]).collect();
    (x.gather_rows(&rows), new_y)
}

/// Column-wise standardizer fitted on training data.
#[derive(Clone, Debug)]
pub struct Scaler {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Scaler {
    pub fn fit(x: &Matrix) -> Self {
        let n = x.rows().max(1) as f32;
        let mut mean = vec![0.0f32; x.cols()];
        for r in 0..x.rows() {
            for (m, &v) in mean.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = vec![0.0f32; x.cols()];
        for r in 0..x.rows() {
            for ((s, &v), &m) in std.iter_mut().zip(x.row(r)).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt().max(1e-6);
        }
        Self { mean, std }
    }

    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.mean.len());
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((v, &m), &s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
                *v = (*v - m) / s;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_frequency_weights() {
        let y = [0, 0, 0, 1];
        let w = class_weights(&y, 2);
        assert!(w[1] > w[0]);
        // mean sample weight ≈ 1
        let sw = sample_weights(&y, &w);
        let mean: f32 = sw.iter().sum::<f32>() / sw.len() as f32;
        assert!((mean - 1.0).abs() < 0.2, "mean sample weight {mean}");
    }

    #[test]
    fn oversample_balances() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![10.0]]);
        let y = [0, 0, 0, 0, 1];
        let (x2, y2) = oversample(&x, &y, 1.0, 1);
        let pos = y2.iter().filter(|&&c| c == 1).count();
        assert_eq!(pos, 4);
        assert_eq!(x2.rows(), y2.len());
        // oversampled rows are copies of the single positive row
        for (i, &c) in y2.iter().enumerate() {
            if c == 1 {
                assert_eq!(x2.row(i), &[10.0]);
            }
        }
    }

    #[test]
    fn scaler_standardizes() {
        let x = Matrix::from_rows(&[vec![1.0, 100.0], vec![3.0, 300.0]]);
        let s = Scaler::fit(&x);
        let t = s.transform(&x);
        // each column: mean 0, unit variance
        for c in 0..2 {
            let m = (t.get(0, c) + t.get(1, c)) / 2.0;
            assert!(m.abs() < 1e-5);
            assert!((t.get(0, c).abs() - 1.0).abs() < 1e-4);
        }
    }
}
