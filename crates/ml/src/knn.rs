//! k-nearest-neighbours classifier (brute force, class-weighted votes).

use crate::Classifier;
use glint_tensor::Matrix;

/// k-NN over Euclidean distance.
#[derive(Clone, Debug)]
pub struct Knn {
    pub k: usize,
    /// Optional class weights applied to votes.
    pub class_weights: Option<Vec<f32>>,
    train_x: Matrix,
    train_y: Vec<usize>,
}

impl Knn {
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        Self {
            k,
            class_weights: None,
            train_x: Matrix::zeros(0, 0),
            train_y: Vec::new(),
        }
    }

    fn vote(&self, row: &[f32]) -> (usize, f32) {
        let mut dists: Vec<(f32, usize)> = (0..self.train_x.rows())
            .map(|i| {
                let d: f32 = self
                    .train_x
                    .row(i)
                    .iter()
                    .zip(row)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (d, self.train_y[i])
            })
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k.saturating_sub(1), |a, b| a.0.total_cmp(&b.0));
        let n_classes = self.train_y.iter().copied().max().map_or(1, |m| m + 1);
        let mut votes = vec![0.0f32; n_classes];
        for &(_, c) in dists.iter().take(k) {
            let w = self.class_weights.as_ref().map_or(1.0, |cw| cw[c]);
            votes[c] += w;
        }
        let best = votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let total: f32 = votes.iter().sum();
        let score1 = if votes.len() > 1 && total > 0.0 {
            votes[1] / total
        } else {
            0.0
        };
        (best, score1)
    }
}

impl Classifier for Knn {
    fn fit(&mut self, x: &Matrix, y: &[usize]) {
        assert_eq!(x.rows(), y.len());
        assert!(!y.is_empty(), "kNN needs at least one training point");
        self.train_x = x.clone();
        self.train_y = y.to_vec();
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows()).map(|i| self.vote(x.row(i)).0).collect()
    }

    fn decision_scores(&self, x: &Matrix) -> Vec<f32> {
        (0..x.rows()).map(|i| self.vote(x.row(i)).1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_neighbour_classifies_exactly() {
        let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![10.0, 10.0]]);
        let y = [0, 1];
        let mut knn = Knn::new(1);
        knn.fit(&x, &y);
        let q = Matrix::from_rows(&[vec![1.0, 1.0], vec![9.0, 9.0]]);
        assert_eq!(knn.predict(&q), vec![0, 1]);
    }

    #[test]
    fn k_majority_wins() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.2], vec![0.4], vec![0.3]]);
        let y = [0, 0, 0, 1];
        let mut knn = Knn::new(3);
        knn.fit(&x, &y);
        assert_eq!(knn.predict(&Matrix::from_rows(&[vec![0.25]])), vec![0]);
    }

    #[test]
    fn class_weights_can_flip_minority_votes() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.2], vec![0.3]]);
        let y = [0, 0, 1];
        let mut knn = Knn::new(3);
        knn.class_weights = Some(vec![1.0, 10.0]);
        knn.fit(&x, &y);
        assert_eq!(knn.predict(&Matrix::from_rows(&[vec![0.1]])), vec![1]);
    }

    #[test]
    fn k_larger_than_train_set_is_safe() {
        let x = Matrix::from_rows(&[vec![0.0]]);
        let y = [1];
        let mut knn = Knn::new(5);
        knn.fit(&x, &y);
        assert_eq!(knn.predict(&Matrix::from_rows(&[vec![100.0]])), vec![1]);
    }
}
