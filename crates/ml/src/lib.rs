//! # glint-ml
//!
//! Classical machine-learning substrate (the scikit-learn stand-in).
//!
//! Everything the paper's evaluation borrows from scikit-learn is
//! implemented here from scratch:
//!
//! - the five correlation-discovery classifiers of Figure 6: [`svm::LinearSvc`],
//!   [`mlp::MlpClassifier`], [`forest::RandomForest`], [`knn::Knn`],
//!   [`gboost::GradientBoosting`];
//! - the two anomaly-detection baselines of Figure 11: [`ocsvm::OneClassSvm`],
//!   [`iforest::IsolationForest`];
//! - the embedding-analysis tools of Figure 9: [`kmeans::KMeans`], [`pca::Pca`];
//! - the evaluation protocol pieces: [`metrics`], [`cv`] (k-fold +
//!   grid search), [`sampling`] (class weights, oversampling, scaling).
//!
//! All models consume a row-major [`glint_tensor::Matrix`] of features and
//! integer class labels, and are deterministic given their seed.

pub mod cv;
pub mod forest;
pub mod gboost;
pub mod iforest;
pub mod kmeans;
pub mod knn;
pub mod metrics;
pub mod mlp;
pub mod ocsvm;
pub mod pca;
pub mod sampling;
pub mod svm;
pub mod tree;

pub use metrics::{BinaryMetrics, ConfusionMatrix};

use glint_tensor::Matrix;

/// A trainable classifier over dense features and integer labels.
pub trait Classifier {
    /// Fit on `x` (n×d) with labels `y` (len n).
    fn fit(&mut self, x: &Matrix, y: &[usize]);
    /// Predict a class per row.
    fn predict(&self, x: &Matrix) -> Vec<usize>;
    /// Probability-like score for class 1 per row (default: hard labels).
    fn decision_scores(&self, x: &Matrix) -> Vec<f32> {
        self.predict(x).iter().map(|&c| c as f32).collect()
    }
}
