//! Gradient boosting: shallow variance-reduction trees on the logistic loss.

use crate::tree::{Criterion, Tree, TreeConfig};
use crate::Classifier;
use glint_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Gradient-boosted trees for binary classification.
#[derive(Clone, Debug)]
pub struct GradientBoosting {
    pub n_rounds: usize,
    pub learning_rate: f32,
    pub max_depth: usize,
    pub seed: u64,
    pub class_weights: Option<[f32; 2]>,
    base: f32,
    trees: Vec<Tree>,
}

impl GradientBoosting {
    pub fn new(n_rounds: usize) -> Self {
        Self {
            n_rounds,
            learning_rate: 0.2,
            max_depth: 3,
            seed: 0,
            class_weights: None,
            base: 0.0,
            trees: Vec::new(),
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn raw_score(&self, row: &[f32]) -> f32 {
        self.base + self.learning_rate * self.trees.iter().map(|t| t.predict_row(row)).sum::<f32>()
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Classifier for GradientBoosting {
    fn fit(&mut self, x: &Matrix, y: &[usize]) {
        assert_eq!(x.rows(), y.len());
        let cw = self.class_weights.unwrap_or_else(|| {
            let w = crate::sampling::class_weights(y, 2);
            [w[0], w[1]]
        });
        let w: Vec<f32> = y.iter().map(|&c| cw[c]).collect();
        let n = x.rows();
        // prior log-odds
        let pos: f32 = y.iter().map(|&c| c as f32).sum::<f32>() / n.max(1) as f32;
        let p0 = pos.clamp(1e-4, 1.0 - 1e-4);
        self.base = (p0 / (1.0 - p0)).ln();
        self.trees.clear();
        let mut raw: Vec<f32> = vec![self.base; n];
        let idx: Vec<usize> = (0..n).collect();
        let config = TreeConfig {
            max_depth: self.max_depth,
            min_samples_split: 4,
            max_features: None,
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.n_rounds {
            // negative gradient of weighted logistic loss: w (y − σ(raw))
            let residual: Vec<f32> = (0..n)
                .map(|i| w[i] * (y[i] as f32 - sigmoid(raw[i])))
                .collect();
            let tree = Tree::fit(
                x,
                &residual,
                &vec![1.0; n],
                &idx,
                config,
                Criterion::Variance,
                &mut rng,
            );
            for (i, rv) in raw.iter_mut().enumerate() {
                *rv += self.learning_rate * tree.predict_row(x.row(i));
            }
            self.trees.push(tree);
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows())
            .map(|i| usize::from(self.raw_score(x.row(i)) > 0.0))
            .collect()
    }

    fn decision_scores(&self, x: &Matrix) -> Vec<f32> {
        (0..x.rows())
            .map(|i| sigmoid(self.raw_score(x.row(i))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn ring_data(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        // class 1 inside a disc, class 0 in the surrounding ring
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
            let inside = rng.gen_bool(0.5);
            let r: f32 = if inside {
                rng.gen_range(0.0..0.8)
            } else {
                rng.gen_range(1.2..2.0)
            };
            rows.push(vec![r * a.cos(), r * a.sin()]);
            y.push(usize::from(inside));
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn fits_radial_boundary() {
        let (x, y) = ring_data(400, 11);
        let mut gb = GradientBoosting::new(60);
        gb.fit(&x, &y);
        let acc = crate::metrics::BinaryMetrics::from_predictions(&y, &gb.predict(&x)).accuracy;
        assert!(acc > 0.93, "train accuracy {acc}");
    }

    #[test]
    fn scores_in_unit_interval() {
        let (x, y) = ring_data(100, 12);
        let mut gb = GradientBoosting::new(10);
        gb.fit(&x, &y);
        for s in gb.decision_scores(&x) {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let (x, y) = ring_data(300, 13);
        let mut small = GradientBoosting::new(5);
        small.fit(&x, &y);
        let acc_small =
            crate::metrics::BinaryMetrics::from_predictions(&y, &small.predict(&x)).accuracy;
        let mut big = GradientBoosting::new(80);
        big.fit(&x, &y);
        let acc_big =
            crate::metrics::BinaryMetrics::from_predictions(&y, &big.predict(&x)).accuracy;
        assert!(acc_big >= acc_small, "{acc_big} < {acc_small}");
    }
}
