//! Principal component analysis via power iteration with deflation
//! (Figure 9 projects 256-d graph embeddings to 2-d with PCA).

use glint_tensor::Matrix;

/// Fitted PCA transform.
#[derive(Clone, Debug)]
pub struct Pca {
    pub n_components: usize,
    mean: Vec<f32>,
    /// `n_components × d` row-major component matrix.
    components: Matrix,
}

impl Pca {
    /// Fit on `x` (n × d). Uses power iteration on the covariance with
    /// deflation; adequate for the low component counts used here.
    pub fn fit(x: &Matrix, n_components: usize) -> Self {
        assert!(n_components >= 1 && n_components <= x.cols());
        assert!(x.rows() >= 2, "need at least two samples");
        let mean = x.mean_rows().into_vec();
        let mut centered = x.clone();
        for r in 0..centered.rows() {
            for (v, m) in centered.row_mut(r).iter_mut().zip(&mean) {
                *v -= m;
            }
        }
        // covariance (d × d), scaled
        let mut cov = centered.t_matmul(&centered);
        let inv = 1.0 / (x.rows() - 1) as f32;
        cov.map_inplace(|v| v * inv);

        let d = x.cols();
        let mut components = Matrix::zeros(n_components, d);
        let mut work = cov;
        for comp in 0..n_components {
            // deterministic start vector
            let mut v: Vec<f32> = (0..d).map(|i| ((i + comp + 1) as f32).sin()).collect();
            normalize(&mut v);
            for _ in 0..200 {
                let mut next = vec![0.0f32; d];
                for (r, nv) in next.iter_mut().enumerate() {
                    *nv = work.row(r).iter().zip(&v).map(|(a, b)| a * b).sum();
                }
                let n = normalize(&mut next);
                if n < 1e-12 {
                    break;
                }
                let delta: f32 = next.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
                v = next;
                if delta < 1e-7 {
                    break;
                }
            }
            // eigenvalue for deflation
            let mut av = vec![0.0f32; d];
            for (r, slot) in av.iter_mut().enumerate() {
                *slot = work.row(r).iter().zip(&v).map(|(a, b)| a * b).sum();
            }
            let lambda: f32 = av.iter().zip(&v).map(|(a, b)| a * b).sum();
            components.row_mut(comp).copy_from_slice(&v);
            // deflate: work -= λ v vᵀ
            for r in 0..d {
                for c in 0..d {
                    let val = work.get(r, c) - lambda * v[r] * v[c];
                    work.set(r, c, val);
                }
            }
        }
        Self {
            n_components,
            mean,
            components,
        }
    }

    /// Project points into the component space (n × n_components).
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.mean.len());
        let mut centered = x.clone();
        for r in 0..centered.rows() {
            for (v, m) in centered.row_mut(r).iter_mut().zip(&self.mean) {
                *v -= m;
            }
        }
        centered.matmul_t(&self.components)
    }

    pub fn components(&self) -> &Matrix {
        &self.components
    }
}

fn normalize(v: &mut [f32]) -> f32 {
    let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if n > 1e-12 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn first_component_is_max_variance_direction() {
        // data stretched along (1, 1)/√2
        let mut rng = StdRng::seed_from_u64(1);
        let rows: Vec<Vec<f32>> = (0..200)
            .map(|_| {
                let t = rng.gen_range(-5.0f32..5.0);
                let noise = rng.gen_range(-0.1f32..0.1);
                vec![t + noise, t - noise]
            })
            .collect();
        let x = Matrix::from_rows(&rows);
        let pca = Pca::fit(&x, 1);
        let c = pca.components().row(0);
        let expected = 1.0 / 2.0f32.sqrt();
        assert!(
            (c[0].abs() - expected).abs() < 0.05 && (c[1].abs() - expected).abs() < 0.05,
            "component {c:?}"
        );
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rng = StdRng::seed_from_u64(2);
        let rows: Vec<Vec<f32>> = (0..100)
            .map(|_| (0..5).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let x = Matrix::from_rows(&rows);
        let pca = Pca::fit(&x, 3);
        for i in 0..3 {
            let ni: f32 = pca
                .components()
                .row(i)
                .iter()
                .map(|v| v * v)
                .sum::<f32>()
                .sqrt();
            assert!((ni - 1.0).abs() < 1e-3, "component {i} norm {ni}");
            for j in 0..i {
                let dot: f32 = pca
                    .components()
                    .row(i)
                    .iter()
                    .zip(pca.components().row(j))
                    .map(|(a, b)| a * b)
                    .sum();
                assert!(dot.abs() < 0.05, "components {i},{j} not orthogonal: {dot}");
            }
        }
    }

    #[test]
    fn transform_centers_data() {
        let x = Matrix::from_rows(&[vec![10.0, 0.0], vec![12.0, 0.0], vec![14.0, 0.0]]);
        let pca = Pca::fit(&x, 1);
        let t = pca.transform(&x);
        let mean: f32 = (0..3).map(|r| t.get(r, 0)).sum::<f32>() / 3.0;
        assert!(mean.abs() < 1e-4);
    }
}
