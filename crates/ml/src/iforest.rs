//! Isolation forest (Liu et al. 2008) — the second Figure 11 anomaly
//! baseline. `predict` follows the scikit-learn convention (+1 / −1).

use glint_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Clone, Debug)]
enum ITree {
    Leaf {
        size: usize,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: Box<ITree>,
        right: Box<ITree>,
    },
}

/// Isolation-forest anomaly detector.
#[derive(Clone, Debug)]
pub struct IsolationForest {
    pub n_trees: usize,
    pub subsample: usize,
    /// Anomaly score threshold (standard 0.5–0.6 band; sklearn default ≈ 0.5
    /// after offset calibration).
    pub threshold: f64,
    pub seed: u64,
    trees: Vec<ITree>,
    sample_size: usize,
}

/// Average unsuccessful-search path length in a BST of n nodes.
fn c_factor(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let n = n as f64;
    2.0 * ((n - 1.0).ln() + 0.577_215_7) - 2.0 * (n - 1.0) / n
}

fn grow(x: &Matrix, idx: &[usize], depth: usize, max_depth: usize, rng: &mut StdRng) -> ITree {
    if idx.len() <= 1 || depth >= max_depth {
        return ITree::Leaf { size: idx.len() };
    }
    // pick a feature with spread
    for _ in 0..8 {
        let f = rng.gen_range(0..x.cols());
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &i in idx {
            lo = lo.min(x.get(i, f));
            hi = hi.max(x.get(i, f));
        }
        if hi <= lo {
            continue;
        }
        let t = rng.gen_range(lo..hi);
        let (l, r): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| x.get(i, f) < t);
        if l.is_empty() || r.is_empty() {
            continue;
        }
        return ITree::Split {
            feature: f,
            threshold: t,
            left: Box::new(grow(x, &l, depth + 1, max_depth, rng)),
            right: Box::new(grow(x, &r, depth + 1, max_depth, rng)),
        };
    }
    ITree::Leaf { size: idx.len() }
}

fn path_length(tree: &ITree, row: &[f32], depth: f64) -> f64 {
    match tree {
        ITree::Leaf { size } => depth + c_factor(*size),
        ITree::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            if row[*feature] < *threshold {
                path_length(left, row, depth + 1.0)
            } else {
                path_length(right, row, depth + 1.0)
            }
        }
    }
}

impl IsolationForest {
    pub fn new(n_trees: usize) -> Self {
        Self {
            n_trees,
            subsample: 128,
            threshold: 0.55,
            seed: 0,
            trees: Vec::new(),
            sample_size: 0,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn fit(&mut self, x: &Matrix) {
        assert!(x.rows() > 0);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let m = self.subsample.min(x.rows());
        self.sample_size = m;
        let max_depth = (m as f64).log2().ceil() as usize + 1;
        self.trees = (0..self.n_trees)
            .map(|_| {
                let idx: Vec<usize> = (0..m).map(|_| rng.gen_range(0..x.rows())).collect();
                grow(x, &idx, 0, max_depth, &mut rng)
            })
            .collect();
    }

    /// Standard isolation-forest anomaly score in (0, 1); higher = more
    /// anomalous, 0.5 ≈ average point.
    pub fn anomaly_score(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "fit first");
        let c = c_factor(self.sample_size).max(1e-9);
        (0..x.rows())
            .map(|r| {
                let avg: f64 = self
                    .trees
                    .iter()
                    .map(|t| path_length(t, x.row(r), 0.0))
                    .sum::<f64>()
                    / self.trees.len() as f64;
                2.0f64.powf(-avg / c)
            })
            .collect()
    }

    /// +1 inlier, −1 anomaly.
    pub fn predict(&self, x: &Matrix) -> Vec<i32> {
        self.anomaly_score(x)
            .iter()
            .map(|&s| if s > self.threshold { -1 } else { 1 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize, center: f32, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_rows(
            &(0..n)
                .map(|_| {
                    vec![
                        center + rng.gen_range(-0.5f32..0.5),
                        center + rng.gen_range(-0.5f32..0.5),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn isolates_outliers() {
        let train = cluster(256, 0.0, 1);
        let mut forest = IsolationForest::new(100).with_seed(2);
        forest.fit(&train);
        let scores_in = forest.anomaly_score(&cluster(30, 0.0, 3));
        let scores_out = forest.anomaly_score(&cluster(30, 6.0, 4));
        let mean_in: f64 = scores_in.iter().sum::<f64>() / 30.0;
        let mean_out: f64 = scores_out.iter().sum::<f64>() / 30.0;
        assert!(mean_out > mean_in + 0.1, "in={mean_in} out={mean_out}");
        let preds = forest.predict(&cluster(30, 6.0, 5));
        let caught = preds.iter().filter(|&&p| p == -1).count();
        assert!(caught > 20, "caught only {caught}/30 outliers");
    }

    #[test]
    fn c_factor_monotone() {
        assert_eq!(c_factor(1), 0.0);
        assert!(c_factor(100) > c_factor(10));
    }

    #[test]
    fn scores_bounded() {
        let train = cluster(100, 0.0, 6);
        let mut forest = IsolationForest::new(20);
        forest.fit(&train);
        for s in forest.anomaly_score(&train) {
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
