//! Multi-layer perceptron classifier on the autograd substrate, with
//! class-weighted cross-entropy (the Figure 6 "MLP").

use crate::Classifier;
use glint_tensor::{init, Adam, Matrix, Optimizer, ParamSet, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;

use glint_tensor::optim::ParamId;

/// MLP with one or more hidden ReLU layers and a softmax head.
pub struct MlpClassifier {
    pub hidden: Vec<usize>,
    pub epochs: usize,
    pub lr: f32,
    pub seed: u64,
    pub class_weights: Option<[f32; 2]>,
    params: ParamSet,
    layer_ids: Vec<(ParamId, ParamId)>,
    in_dim: usize,
}

impl MlpClassifier {
    pub fn new(hidden: Vec<usize>) -> Self {
        Self {
            hidden,
            epochs: 120,
            lr: 5e-3,
            seed: 0,
            class_weights: None,
            params: ParamSet::new(),
            layer_ids: Vec::new(),
            in_dim: 0,
        }
    }

    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn init_params(&mut self, in_dim: usize) {
        self.in_dim = in_dim;
        self.params = ParamSet::new();
        self.layer_ids.clear();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut dims = vec![in_dim];
        dims.extend(&self.hidden);
        dims.push(2);
        for (l, w) in dims.windows(2).enumerate() {
            let wid = self.params.add(
                format!("mlp.l{l}.w"),
                init::xavier_uniform(&mut rng, w[0], w[1]),
            );
            let bid = self
                .params
                .add(format!("mlp.l{l}.b"), Matrix::zeros(1, w[1]));
            self.layer_ids.push((wid, bid));
        }
    }

    /// Forward pass, returning the logits var.
    fn forward(
        &self,
        tape: &mut Tape,
        vars: &[glint_tensor::Var],
        x: &Matrix,
    ) -> glint_tensor::Var {
        let mut h = tape.constant(x.clone());
        let n_layers = self.layer_ids.len();
        for (l, (wid, bid)) in self.layer_ids.iter().enumerate() {
            let w = vars[wid.0];
            let b = vars[bid.0];
            h = tape.linear(h, w, b);
            if l + 1 < n_layers {
                h = tape.relu(h);
            }
        }
        h
    }

    fn logits(&self, x: &Matrix) -> Matrix {
        let mut tape = Tape::new();
        let vars = self.params.bind(&mut tape);
        let out = self.forward(&mut tape, &vars, x);
        tape.value(out).clone()
    }
}

impl Classifier for MlpClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize]) {
        assert_eq!(x.rows(), y.len());
        self.init_params(x.cols());
        let cw = self.class_weights.unwrap_or_else(|| {
            let w = crate::sampling::class_weights(y, 2);
            [w[0], w[1]]
        });
        let mut opt = Adam::new(self.lr);
        for _ in 0..self.epochs {
            let mut tape = Tape::new();
            let vars = self.params.bind(&mut tape);
            let logits = self.forward(&mut tape, &vars, x);
            let loss = tape.softmax_cross_entropy(logits, y, &cw);
            let grads = tape.backward(loss);
            opt.step(&mut self.params, &vars, &grads);
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.logits(x).argmax_rows()
    }

    fn decision_scores(&self, x: &Matrix) -> Vec<f32> {
        let p = self.logits(x).softmax_rows();
        (0..p.rows()).map(|r| p.get(r, 1)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn xor_cloud(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.gen_bool(0.5);
            let b = rng.gen_bool(0.5);
            let fx = if a { 1.0 } else { -1.0 } + rng.gen_range(-0.3f32..0.3);
            let fy = if b { 1.0 } else { -1.0 } + rng.gen_range(-0.3f32..0.3);
            rows.push(vec![fx, fy]);
            y.push(usize::from(a != b));
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_xor_cloud() {
        let (x, y) = xor_cloud(200, 21);
        let mut mlp = MlpClassifier::new(vec![16]).with_epochs(250).with_seed(1);
        mlp.fit(&x, &y);
        let acc = crate::metrics::BinaryMetrics::from_predictions(&y, &mlp.predict(&x)).accuracy;
        assert!(acc > 0.95, "train accuracy {acc}");
    }

    #[test]
    fn scores_are_probabilities() {
        let (x, y) = xor_cloud(50, 22);
        let mut mlp = MlpClassifier::new(vec![8]).with_epochs(50);
        mlp.fit(&x, &y);
        for s in mlp.decision_scores(&x) {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = xor_cloud(80, 23);
        let mut a = MlpClassifier::new(vec![8]).with_epochs(30).with_seed(4);
        let mut b = MlpClassifier::new(vec![8]).with_epochs(30).with_seed(4);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }
}
