//! NaN-input regression tests. Every model here used to reach a
//! `partial_cmp(..).unwrap()` (or an unwrap-based comparator) somewhere in
//! its fit/predict path, which panicked the first time a NaN feature slipped
//! in. After the `total_cmp` migration a NaN input degrades into a
//! deterministic (if meaningless) answer instead of aborting the pipeline.

use glint_ml::kmeans::KMeans;
use glint_ml::knn::Knn;
use glint_ml::ocsvm::OneClassSvm;
use glint_ml::tree::{Criterion, Tree, TreeConfig};
use glint_ml::Classifier;
use glint_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn with_nan() -> Matrix {
    Matrix::from_rows(&[
        vec![0.0, 0.1],
        vec![0.9, 1.0],
        vec![f32::NAN, 0.5],
        vec![1.0, 0.9],
    ])
}

#[test]
fn knn_survives_nan_features() {
    let mut knn = Knn::new(3);
    knn.fit(&with_nan(), &[0, 1, 0, 1]);
    let preds = knn.predict(&with_nan());
    assert_eq!(preds.len(), 4);
}

#[test]
fn kmeans_survives_nan_features() {
    let mut km = KMeans::new(2).with_seed(7);
    let assign = km.fit(&with_nan());
    assert_eq!(assign.len(), 4);
    let preds = km.predict(&with_nan());
    assert_eq!(preds.len(), 4);
}

#[test]
fn ocsvm_survives_nan_features() {
    let mut svm = OneClassSvm::new(0.2);
    svm.fit(&with_nan());
    let scores = svm.anomaly_score(&with_nan());
    assert_eq!(scores.len(), 4);
}

#[test]
fn tree_survives_nan_features() {
    let x = with_nan();
    let y = [0.0, 1.0, 0.0, 1.0];
    let w = [1.0; 4];
    let mut rng = StdRng::seed_from_u64(3);
    let tree = Tree::fit(
        &x,
        &y,
        &w,
        &[0, 1, 2, 3],
        TreeConfig::default(),
        Criterion::Gini,
        &mut rng,
    );
    let preds = tree.predict(&x);
    assert_eq!(preds.len(), 4);
}
