//! Property-based tests for the classical-ML substrate.

use glint_ml::metrics::{BinaryMetrics, ConfusionMatrix};
use glint_ml::sampling::{class_weights, oversample, Scaler};
use glint_ml::{kmeans::KMeans, knn::Knn, pca::Pca, Classifier};
use glint_tensor::Matrix;
use proptest::prelude::*;

fn labels(n: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..2, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn confusion_matrix_totals_and_bounds(y_true in labels(20), y_pred in labels(20)) {
        let m = ConfusionMatrix::from_predictions(&y_true, &y_pred);
        prop_assert_eq!(m.total(), 20);
        for v in [m.accuracy(), m.precision(), m.recall(), m.f1(), m.weighted_f1()] {
            prop_assert!((0.0..=1.0).contains(&v), "metric out of range: {v}");
        }
    }

    #[test]
    fn perfect_predictions_score_one(y in labels(15)) {
        prop_assume!(y.contains(&1) && y.contains(&0));
        let m = BinaryMetrics::from_predictions(&y, &y);
        prop_assert_eq!(m.accuracy, 1.0);
        prop_assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn class_weights_are_inverse_frequency(y in labels(30)) {
        prop_assume!(y.contains(&1) && y.contains(&0));
        let w = class_weights(&y, 2);
        let n0 = y.iter().filter(|&&c| c == 0).count() as f32;
        let n1 = y.len() as f32 - n0;
        // rarer class gets the larger weight
        if n0 < n1 {
            prop_assert!(w[0] >= w[1]);
        } else if n1 < n0 {
            prop_assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn oversampling_only_duplicates_existing_rows(
        rows in proptest::collection::vec(proptest::collection::vec(-1.0f32..1.0, 2), 6..20),
        seed in 0u64..100,
    ) {
        let n = rows.len();
        let y: Vec<usize> = (0..n).map(|i| usize::from(i < 2)).collect(); // 2 positives
        let x = Matrix::from_rows(&rows);
        let (x2, y2) = oversample(&x, &y, 1.0, seed);
        prop_assert!(x2.rows() >= x.rows());
        prop_assert_eq!(x2.rows(), y2.len());
        for r in 0..x2.rows() {
            let found = (0..n).any(|i| x.row(i) == x2.row(r));
            prop_assert!(found, "oversampling fabricated a row");
        }
    }

    #[test]
    fn scaler_transform_is_affine_invertible_in_spirit(
        rows in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 3), 4..12),
    ) {
        let x = Matrix::from_rows(&rows);
        let scaler = Scaler::fit(&x);
        let t = scaler.transform(&x);
        prop_assert_eq!(t.shape(), x.shape());
        // column means ≈ 0 after standardization
        for c in 0..3 {
            let mean: f32 = (0..t.rows()).map(|r| t.get(r, c)).sum::<f32>() / t.rows() as f32;
            prop_assert!(mean.abs() < 1e-3, "column {c} mean {mean}");
        }
    }

    #[test]
    fn knn_train_accuracy_is_perfect_with_k1(
        rows in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 2), 4..16),
        y in labels(16),
    ) {
        let n = rows.len();
        // require unique rows so nearest neighbour of each point is itself
        let mut uniq = rows.clone();
        uniq.sort_by(|a, b| a.partial_cmp(b).unwrap());
        uniq.dedup();
        prop_assume!(uniq.len() == n);
        let y = &y[..n];
        let x = Matrix::from_rows(&rows);
        let mut knn = Knn::new(1);
        knn.fit(&x, y);
        prop_assert_eq!(knn.predict(&x), y.to_vec());
    }

    #[test]
    fn kmeans_assignments_are_nearest_centroid(seed in 0u64..50) {
        let mut rows = Vec::new();
        for i in 0..20 {
            let c = if i % 2 == 0 { 0.0 } else { 8.0 };
            rows.push(vec![c + (i as f32 * 0.07).sin(), (i as f32 * 0.13).cos()]);
        }
        let x = Matrix::from_rows(&rows);
        let mut km = KMeans::new(2).with_seed(seed);
        let assign = km.fit(&x);
        for (r, &cluster) in assign.iter().enumerate() {
            let d = |c: usize| -> f32 {
                x.row(r).iter().zip(km.centroids().row(c)).map(|(a, b)| (a - b) * (a - b)).sum()
            };
            prop_assert!(d(cluster) <= d(1 - cluster) + 1e-5);
        }
    }

    #[test]
    fn pca_projection_preserves_point_count(
        rows in proptest::collection::vec(proptest::collection::vec(-2.0f32..2.0, 4), 5..15),
    ) {
        let x = Matrix::from_rows(&rows);
        let pca = Pca::fit(&x, 2);
        let t = pca.transform(&x);
        prop_assert_eq!(t.shape(), (x.rows(), 2));
        prop_assert!(t.all_finite());
    }
}
