//! # glint-trace
//!
//! Dependency-free structured observability for the Glint workspace:
//! hierarchical spans with monotonic timing, named counters, gauges, and
//! fixed-bucket histograms behind one process-global registry.
//!
//! ## Cost model
//!
//! The same discipline as `glint-failpoint`: when tracing is disabled (the
//! default) every instrumentation site is a single relaxed atomic load and
//! an early return — no lock, no allocation, no clock read. Tracing is
//! enabled by `GLINT_TRACE=1` in the environment (read once, on the first
//! hit of any site) or programmatically via [`set_enabled`].
//!
//! ## Determinism contract
//!
//! Span *structure* and all recorded *counts* are deterministic by
//! construction: which spans open, how often a counter is bumped, and which
//! histogram bucket a sample lands in never depend on thread interleaving —
//! only measured durations (and float `sum` accumulation order) do. The
//! test suite therefore asserts on exported counter and bucket values as an
//! oracle for pipeline behaviour, while treating `*_ns` fields as opaque.
//!
//! ## Naming scheme
//!
//! * Spans nest per thread: a span opened while another is live on the same
//!   thread is recorded under the joined path `outer/inner`. Top-level span
//!   names are `snake_case` site names (`classifier_train`, `assess`).
//! * Counters, gauges, and histograms use dot-separated `subsystem.metric`
//!   names (`tensor.matmul.flops`, `detector.verdict.full`).
//!
//! See DESIGN.md "Observability" for the full name registry and the
//! overhead budget.

pub mod export;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Enable gate
// ---------------------------------------------------------------------------

/// Gate states. Starts [`UNINIT`] so the very first hit of any site pays one
/// environment read; after that a hit costs one relaxed atomic load.
const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);

fn init_from_env() -> bool {
    let on = std::env::var("GLINT_TRACE")
        .map(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false")
        })
        .unwrap_or(false);
    // `set_enabled` may have raced us; keep whatever is there on conflict.
    let _ = STATE.compare_exchange(
        UNINIT,
        if on { ON } else { OFF },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    STATE.load(Ordering::Relaxed) == ON
}

/// Is tracing currently collecting? The disabled path of every
/// instrumentation site reduces to this one relaxed load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_from_env(),
    }
}

/// Programmatically enable or disable collection, overriding `GLINT_TRACE`.
/// Already-collected data is kept; use [`reset`] to drop it.
pub fn set_enabled(on: bool) {
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Aggregated timing of one span path.
#[derive(Clone, Debug)]
pub struct SpanStat {
    /// Times this path was entered (deterministic).
    pub count: u64,
    /// Total / min / max wall time in nanoseconds (not deterministic).
    pub total_ns: u128,
    pub min_ns: u128,
    pub max_ns: u128,
}

impl Default for SpanStat {
    fn default() -> Self {
        Self {
            count: 0,
            total_ns: 0,
            min_ns: u128::MAX,
            max_ns: 0,
        }
    }
}

/// Last-value gauge with an update count.
#[derive(Clone, Debug, Default)]
pub struct GaugeStat {
    pub last: f64,
    pub updates: u64,
}

/// Upper bucket edges shared by every histogram: a sample `v` lands in the
/// first bucket with `v <= edge`, or in the overflow bucket past the last
/// edge. Fixed edges keep bucket counts deterministic and comparable across
/// runs; the range is tuned for drift degrees and probabilities (the MAD
/// threshold 3.0 is itself an edge).
pub const HISTOGRAM_EDGES: [f64; 10] = [0.1, 0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 25.0, 100.0];

/// Fixed-bucket histogram. `count`/`nonfinite`/`buckets` are deterministic;
/// `sum` is accumulated in arrival order and is not.
#[derive(Clone, Debug)]
pub struct HistogramStat {
    /// Finite samples recorded.
    pub count: u64,
    /// NaN / infinite samples (counted, never bucketed).
    pub nonfinite: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    /// One count per [`HISTOGRAM_EDGES`] entry plus a final overflow bucket.
    pub buckets: [u64; HISTOGRAM_EDGES.len() + 1],
}

impl Default for HistogramStat {
    fn default() -> Self {
        Self {
            count: 0,
            nonfinite: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; HISTOGRAM_EDGES.len() + 1],
        }
    }
}

/// A point-in-time copy of everything collected so far.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, GaugeStat>,
    pub histograms: BTreeMap<String, HistogramStat>,
    pub spans: BTreeMap<String, SpanStat>,
}

fn registry() -> &'static Mutex<Snapshot> {
    static REGISTRY: OnceLock<Mutex<Snapshot>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Snapshot::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Snapshot> {
    // A panic while holding this lock can only come from OOM; propagating
    // the poison as a fresh panic in an observability layer would turn a
    // survived fault into a crash, so take the data as-is.
    // glint-lint: allow(hot-lock) — reached only when tracing is armed; the
    // steady-state gate in `enabled()` is one relaxed atomic load, and
    // tracing explicitly trades latency for observability when switched on
    match registry().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

thread_local! {
    /// Per-thread stack of open span names; the joined stack is the path a
    /// closing span records under. Worker threads start their own roots.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII span: records on drop. Constructed disabled, it is inert.
pub struct SpanGuard {
    start: Option<Instant>,
}

/// Open a hierarchical span. When tracing is disabled this is one relaxed
/// atomic load and the guard is a no-op. Durations come from the monotonic
/// clock ([`Instant`]), so they never go backwards under wall-clock steps.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { start: None };
    }
    SPAN_STACK.with(|s| s.borrow_mut().push(name));
    // glint-lint: allow(wall-clock, taint-flow) — span durations are
    // observability output only; recorded counts and structure never
    // depend on them
    let start = Instant::now();
    SpanGuard { start: Some(start) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed().as_nanos();
        let path = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        let mut reg = lock();
        let stat = reg.spans.entry(path).or_default();
        stat.count += 1;
        stat.total_ns += elapsed;
        stat.min_ns = stat.min_ns.min(elapsed);
        stat.max_ns = stat.max_ns.max(elapsed);
    }
}

// ---------------------------------------------------------------------------
// Counters / gauges / histograms
// ---------------------------------------------------------------------------

/// Add `delta` to the named counter (creating it at zero first).
pub fn counter(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut reg = lock();
    match reg.counters.get_mut(name) {
        Some(c) => *c += delta,
        None => {
            reg.counters.insert(name.to_string(), delta);
        }
    }
}

/// Set the named gauge to `value` (last-value-wins, update count kept).
pub fn gauge(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut reg = lock();
    let g = reg.gauges.entry(name.to_string()).or_default();
    g.last = value;
    g.updates += 1;
}

/// Record `value` into the named histogram. Non-finite samples are counted
/// separately and never bucketed.
pub fn histogram(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut reg = lock();
    let h = reg.histograms.entry(name.to_string()).or_default();
    if !value.is_finite() {
        h.nonfinite += 1;
        return;
    }
    h.count += 1;
    h.sum += value;
    h.min = h.min.min(value);
    h.max = h.max.max(value);
    let idx = HISTOGRAM_EDGES
        .iter()
        .position(|&edge| value <= edge)
        .unwrap_or(HISTOGRAM_EDGES.len());
    h.buckets[idx] += 1;
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

/// Current value of a counter (0 when never bumped). Reads work whether or
/// not collection is currently enabled.
pub fn counter_value(name: &str) -> u64 {
    lock().counters.get(name).copied().unwrap_or(0)
}

/// Last value of a gauge, if it was ever set.
pub fn gauge_value(name: &str) -> Option<f64> {
    lock().gauges.get(name).map(|g| g.last)
}

/// How many times a span path was entered.
pub fn span_count(path: &str) -> u64 {
    lock().spans.get(path).map_or(0, |s| s.count)
}

/// Total samples (finite + non-finite) recorded into a histogram.
pub fn histogram_total(name: &str) -> u64 {
    lock()
        .histograms
        .get(name)
        .map_or(0, |h| h.count + h.nonfinite)
}

/// Copy out everything collected so far.
pub fn snapshot() -> Snapshot {
    lock().clone()
}

/// Drop all collected data (test isolation between scenarios). Does not
/// change the enabled state.
pub fn reset() {
    let mut reg = lock();
    *reg = Snapshot::default();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The registry and the enable gate are process-global; tests that
    /// toggle them must not interleave.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let was = enabled();
        set_enabled(true);
        reset();
        let out = f();
        reset();
        set_enabled(was);
        out
    }

    #[test]
    fn disabled_sites_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let was = enabled();
        set_enabled(false);
        reset();
        counter("tests.off", 3);
        gauge("tests.off_gauge", 1.0);
        histogram("tests.off_hist", 2.0);
        {
            let _s = span("tests_off_span");
        }
        assert_eq!(counter_value("tests.off"), 0);
        assert_eq!(gauge_value("tests.off_gauge"), None);
        assert_eq!(histogram_total("tests.off_hist"), 0);
        assert_eq!(span_count("tests_off_span"), 0);
        set_enabled(was);
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        with_tracing(|| {
            counter("tests.hits", 2);
            counter("tests.hits", 3);
            assert_eq!(counter_value("tests.hits"), 5);
            let snap = snapshot();
            assert_eq!(snap.counters.get("tests.hits"), Some(&5));
        });
    }

    #[test]
    fn gauge_is_last_value_wins() {
        with_tracing(|| {
            gauge("tests.loss", 0.9);
            gauge("tests.loss", 0.4);
            assert_eq!(gauge_value("tests.loss"), Some(0.4));
            assert_eq!(snapshot().gauges["tests.loss"].updates, 2);
        });
    }

    #[test]
    fn histogram_buckets_are_deterministic() {
        with_tracing(|| {
            // edges: ..., 2.0, 3.0, 5.0, ... — 3.0 lands in the `<= 3.0`
            // bucket, 3.5 in `<= 5.0`, 1e9 in overflow, NaN separately
            for v in [3.0, 3.5, 1e9, f64::NAN, f64::INFINITY] {
                histogram("tests.drift", v);
            }
            let snap = snapshot();
            let h = &snap.histograms["tests.drift"];
            assert_eq!(h.count, 3);
            assert_eq!(h.nonfinite, 2);
            let le3 = HISTOGRAM_EDGES.iter().position(|&e| e == 3.0).unwrap();
            assert_eq!(h.buckets[le3], 1);
            assert_eq!(h.buckets[le3 + 1], 1);
            assert_eq!(h.buckets[HISTOGRAM_EDGES.len()], 1, "overflow bucket");
            assert_eq!(h.min, 3.0);
            assert_eq!(h.max, 1e9);
        });
    }

    #[test]
    fn spans_nest_into_paths() {
        with_tracing(|| {
            {
                let _outer = span("outer");
                {
                    let _inner = span("inner");
                }
                {
                    let _inner = span("inner");
                }
            }
            {
                let _lone = span("inner");
            }
            assert_eq!(span_count("outer"), 1);
            assert_eq!(span_count("outer/inner"), 2);
            assert_eq!(span_count("inner"), 1);
            let snap = snapshot();
            let outer = &snap.spans["outer"];
            assert!(outer.min_ns <= outer.max_ns);
            assert!(outer.total_ns >= outer.max_ns);
        });
    }

    #[test]
    fn span_path_survives_panic_unwind() {
        with_tracing(|| {
            let result = std::panic::catch_unwind(|| {
                let _outer = span("unwound");
                panic!("boom");
            });
            assert!(result.is_err());
            // the guard dropped during unwind: recorded, stack popped
            assert_eq!(span_count("unwound"), 1);
            {
                let _clean = span("after");
            }
            assert_eq!(span_count("after"), 1, "stack must not stay polluted");
        });
    }

    #[test]
    fn reset_clears_everything() {
        with_tracing(|| {
            counter("tests.gone", 1);
            {
                let _s = span("gone");
            }
            reset();
            assert_eq!(counter_value("tests.gone"), 0);
            assert_eq!(span_count("gone"), 0);
            assert!(snapshot().counters.is_empty());
        });
    }
}
