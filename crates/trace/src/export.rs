//! JSON export of the trace registry.
//!
//! Hand-rolled writer (the crate is dependency-free): `BTreeMap` iteration
//! order makes the output deterministic up to the `*_ns` / `sum` values,
//! non-finite floats serialize as `null` (matching the workspace's
//! serde_json conventions), and strings are escaped per RFC 8259.
//!
//! Layout of an exported document:
//!
//! ```json
//! {
//!   "run": "<label>",
//!   "schema": 1,
//!   "counters": { "<name>": <u64>, ... },
//!   "gauges": { "<name>": { "last": <f64>, "updates": <u64> }, ... },
//!   "histograms": { "<name>": { "count": .., "nonfinite": ..,
//!       "sum": .., "min": .., "max": .., "edges": [..], "buckets": [..] } },
//!   "spans": { "<path>": { "count": .., "total_ns": .., "min_ns": ..,
//!       "max_ns": .. }, ... }
//! }
//! ```

use crate::{Snapshot, HISTOGRAM_EDGES};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Schema version stamped into every export; bump on layout changes so CI
/// can reject stale readers.
pub const SCHEMA_VERSION: u64 = 1;

fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{:?}` always keeps a decimal point or exponent, so the value
        // round-trips as a JSON number (never bare `inf`/`NaN`).
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Render a snapshot as a pretty-printed JSON document.
pub fn to_json(snap: &Snapshot, run: &str) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"run\": ");
    escape_json(run, &mut out);
    let _ = write!(out, ",\n  \"schema\": {SCHEMA_VERSION},\n");

    out.push_str("  \"counters\": {");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    ");
        escape_json(name, &mut out);
        let _ = write!(out, ": {v}");
    }
    out.push_str(if snap.counters.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    out.push_str("  \"gauges\": {");
    for (i, (name, g)) in snap.gauges.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    ");
        escape_json(name, &mut out);
        out.push_str(": {\"last\": ");
        push_f64(g.last, &mut out);
        let _ = write!(out, ", \"updates\": {}}}", g.updates);
    }
    out.push_str(if snap.gauges.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    out.push_str("  \"histograms\": {");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    ");
        escape_json(name, &mut out);
        let _ = write!(
            out,
            ": {{\"count\": {}, \"nonfinite\": {}, \"sum\": ",
            h.count, h.nonfinite
        );
        push_f64(h.sum, &mut out);
        out.push_str(", \"min\": ");
        push_f64(h.min, &mut out);
        out.push_str(", \"max\": ");
        push_f64(h.max, &mut out);
        out.push_str(", \"edges\": [");
        for (j, e) in HISTOGRAM_EDGES.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            push_f64(*e, &mut out);
        }
        out.push_str("], \"buckets\": [");
        for (j, b) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("]}");
    }
    out.push_str(if snap.histograms.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    out.push_str("  \"spans\": {");
    for (i, (path, s)) in snap.spans.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    ");
        escape_json(path, &mut out);
        let min_ns = if s.count == 0 { 0 } else { s.min_ns };
        let _ = write!(
            out,
            ": {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
            s.count, s.total_ns, min_ns, s.max_ns
        );
    }
    out.push_str(if snap.spans.is_empty() {
        "}\n"
    } else {
        "\n  }\n"
    });

    out.push_str("}\n");
    out
}

/// Directory run exports land in: `$GLINT_TRACE_DIR` when set, else
/// `target/glint-trace/` under the current directory.
pub fn trace_dir() -> PathBuf {
    match std::env::var_os("GLINT_TRACE_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from("target").join("glint-trace"),
    }
}

/// Write the current registry snapshot to `path` (parent directories are
/// created). Returns the rendered document length in bytes.
pub fn write_json_to(path: &Path, run: &str) -> std::io::Result<usize> {
    let doc = to_json(&crate::snapshot(), run);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, doc.as_bytes())?;
    Ok(doc.len())
}

/// Export the current registry snapshot as `<trace_dir>/<run>.json` and
/// return the path written. `run` must be a bare file stem (it is
/// sanitized: path separators become `_`).
pub fn export_run(run: &str) -> std::io::Result<PathBuf> {
    let stem: String = run
        .chars()
        .map(|c| if c == '/' || c == '\\' { '_' } else { c })
        .collect();
    let path = trace_dir().join(format!("{stem}.json"));
    write_json_to(&path, run)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GaugeStat, HistogramStat, SpanStat};

    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("b.second".into(), 7);
        snap.counters.insert("a.first".into(), 1);
        snap.gauges.insert(
            "train.loss".into(),
            GaugeStat {
                last: 0.5,
                updates: 3,
            },
        );
        let mut h = HistogramStat {
            count: 2,
            nonfinite: 1,
            sum: 4.0,
            min: 1.0,
            max: 3.0,
            ..Default::default()
        };
        h.buckets[3] = 2;
        snap.histograms.insert("detector.drift".into(), h);
        snap.spans.insert(
            "epoch/forward".into(),
            SpanStat {
                count: 4,
                total_ns: 100,
                min_ns: 10,
                max_ns: 40,
            },
        );
        snap
    }

    #[test]
    fn renders_all_sections_in_sorted_order() {
        let doc = to_json(&sample_snapshot(), "unit");
        assert!(doc.contains("\"run\": \"unit\""));
        assert!(doc.contains("\"schema\": 1"));
        let a = doc.find("a.first").unwrap();
        let b = doc.find("b.second").unwrap();
        assert!(a < b, "counters must be name-sorted");
        assert!(doc.contains("\"epoch/forward\": {\"count\": 4"));
        assert!(doc.contains("\"buckets\": [0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0]"));
    }

    #[test]
    fn empty_snapshot_is_valid_structure() {
        let doc = to_json(&Snapshot::default(), "empty");
        assert!(doc.contains("\"counters\": {}"));
        assert!(doc.contains("\"spans\": {}"));
        assert!(doc.trim_end().ends_with('}'));
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let mut snap = Snapshot::default();
        // a never-hit histogram keeps min=+inf / max=-inf
        snap.histograms
            .insert("empty".into(), HistogramStat::default());
        snap.gauges.insert(
            "bad".into(),
            GaugeStat {
                last: f64::NAN,
                updates: 1,
            },
        );
        let doc = to_json(&snap, "nf");
        assert!(doc.contains("\"min\": null"));
        assert!(doc.contains("\"max\": null"));
        assert!(doc.contains("{\"last\": null, \"updates\": 1}"));
        assert!(!doc.contains("inf") && !doc.contains("NaN"));
    }

    #[test]
    fn string_escaping() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn export_run_sanitizes_and_writes() {
        let dir = std::env::temp_dir().join("glint-trace-test-export");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("GLINT_TRACE_DIR", &dir);
        let path = export_run("ci/unit").unwrap();
        std::env::remove_var("GLINT_TRACE_DIR");
        assert!(path.ends_with("ci_unit.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"run\": \"ci/unit\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
