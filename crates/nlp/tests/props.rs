//! Property-based tests for the NLP pipeline.

use glint_nlp::embed::cosine;
use glint_nlp::{dtw, tokenize, EmbeddingSpace};
use proptest::prelude::*;

fn word() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("light".to_string()),
        Just("window".to_string()),
        Just("door".to_string()),
        Just("temperature".to_string()),
        Just("open".to_string()),
        Just("close".to_string()),
        Just("detect".to_string()),
        Just("kitchen".to_string()),
        Just("sunset".to_string()),
        "[a-z]{3,8}".prop_map(|s| s),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tokenizer_output_is_lowercase_nonempty_words(s in "[A-Za-z0-9 ,.!°%]{0,60}") {
        for t in tokenize(&s) {
            prop_assert!(!t.word.is_empty());
            prop_assert_eq!(t.word.to_lowercase(), t.word.clone());
        }
    }

    #[test]
    fn tokenizer_is_idempotent_on_its_own_output(s in "[A-Za-z ]{0,40}") {
        let once: Vec<String> = tokenize(&s).into_iter().map(|t| t.word).collect();
        let again: Vec<String> = tokenize(&once.join(" ")).into_iter().map(|t| t.word).collect();
        prop_assert_eq!(once, again);
    }

    #[test]
    fn word_vectors_are_unit_norm_and_deterministic(w in word()) {
        let space = EmbeddingSpace::word_space();
        let v = space.word_vec(&w);
        prop_assert_eq!(v.len(), 300);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!((norm - 1.0).abs() < 1e-4, "norm {norm}");
        prop_assert_eq!(v, space.word_vec(&w));
    }

    #[test]
    fn cosine_is_symmetric_and_bounded(a in word(), b in word()) {
        let space = EmbeddingSpace::word_space();
        let va = space.word_vec(&a);
        let vb = space.word_vec(&b);
        let c1 = cosine(&va, &vb);
        let c2 = cosine(&vb, &va);
        prop_assert!((c1 - c2).abs() < 1e-6);
        prop_assert!((-1.0001..=1.0001).contains(&c1));
    }

    #[test]
    fn dtw_similarity_is_symmetric_and_maximal_on_self(
        a in proptest::collection::vec(word(), 1..5),
        b in proptest::collection::vec(word(), 1..5),
    ) {
        let space = EmbeddingSpace::word_space();
        let ab = dtw::word_sequence_similarity(&space, &a, &b);
        let ba = dtw::word_sequence_similarity(&space, &b, &a);
        prop_assert!((ab - ba).abs() < 1e-5, "asymmetric: {ab} vs {ba}");
        let aa = dtw::word_sequence_similarity(&space, &a, &a);
        prop_assert!(aa >= ab - 1e-5, "self-similarity not maximal: {aa} < {ab}");
        prop_assert!((0.0..=1.0 + 1e-6).contains(&ab));
    }

    #[test]
    fn parsing_never_panics_and_splits_cleanly(s in "[A-Za-z0-9 ,.']{0,80}") {
        let parsed = glint_nlp::parse_rule(&s);
        // no token should appear as both a trigger noun and vanish entirely
        let _ = parsed.trigger.nouns.len() + parsed.action.nouns.len();
    }

    #[test]
    fn wordnet_relations_are_symmetric(a in word(), b in word()) {
        use glint_nlp::wordnet::*;
        prop_assert_eq!(are_synonyms(&a, &b), are_synonyms(&b, &a));
        prop_assert_eq!(are_antonyms(&a, &b), are_antonyms(&b, &a));
        prop_assert_eq!(hypernym_related(&a, &b), hypernym_related(&b, &a));
        prop_assert_eq!(meronym_related(&a, &b), meronym_related(&b, &a));
    }

    #[test]
    fn synonyms_and_antonyms_are_disjoint(a in word(), b in word()) {
        use glint_nlp::wordnet::*;
        if are_synonyms(&a, &b) {
            prop_assert!(!are_antonyms(&a, &b), "{a}/{b} both synonym and antonym");
        }
    }
}
