//! # glint-nlp
//!
//! NLP substrate for the Glint reproduction — the stand-in for spaCy
//! (`en_core_web_lg`), the Universal Sentence Encoder, and WordNet that the
//! paper's Algorithm 1 relies on.
//!
//! The pipeline is lexicon-driven and fully deterministic:
//!
//! 1. [`token`] — tokenizer with multi-word-expression merging ("air
//!    conditioner" → one token) and unit-aware number handling (85°F);
//! 2. [`pos`] — part-of-speech tagging from the domain [`lexicon`] with
//!    suffix-rule fallback;
//! 3. [`parse`] — shallow dependency extraction: root verb, direct objects,
//!    trigger/action split on discourse markers (if/when/then);
//! 4. [`embed`] — 300-d word vectors and 512-d sentence vectors built from
//!    concept/category prototypes so semantically related rule texts are
//!    close in embedding space (the property the downstream GNN needs);
//! 5. [`wordnet`] — synonym/hypernym/meronym/holonym queries over the
//!    smart-home vocabulary (Algorithm 1 lines 5–6);
//! 6. [`dtw`] — dynamic time warping similarity over token-embedding
//!    sequences (Algorithm 1 line 4).

pub mod affinity;
pub mod dtw;
pub mod embed;
pub mod lexicon;
pub mod parse;
pub mod pos;
pub mod stopwords;
pub mod token;
pub mod wordnet;

pub use embed::EmbeddingSpace;
pub use lexicon::{Category, Lexicon, Pos};
pub use parse::{parse_rule, ParsedRule, PhraseElements};
pub use token::tokenize;

/// Dimension of word-level embeddings (spaCy `en_core_web_lg` stand-in).
pub const WORD_DIM: usize = 300;
/// Dimension of sentence-level embeddings (Universal Sentence Encoder stand-in).
pub const SENTENCE_DIM: usize = 512;
