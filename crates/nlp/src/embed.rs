//! Deterministic semantic embeddings.
//!
//! Stand-in for spaCy's `en_core_web_lg` word vectors (300-d) and the
//! Universal Sentence Encoder (512-d). Each word vector is a convex blend of
//! three unit-norm prototype vectors, each drawn from an RNG seeded by a
//! stable FNV-1a hash:
//!
//! `v(word) = 0.62·concept ⊕ 0.28·category ⊕ 0.10·word-noise` (renormalized)
//!
//! so synonyms are nearly identical, same-category words are close, and
//! unrelated words are near-orthogonal — exactly the geometry the paper's
//! similarity features and GNN node features rely on. The 512-d sentence
//! space uses an independent hash salt, so the two platforms' feature spaces
//! are genuinely heterogeneous (a requirement of the metapath projection
//! stage of ITGNN).

use crate::lexicon::{Category, Lexicon};
use crate::token::Token;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An embedding space of a fixed dimension and hash salt.
#[derive(Clone, Copy, Debug)]
pub struct EmbeddingSpace {
    dim: usize,
    salt: u64,
}

impl EmbeddingSpace {
    /// The 300-d word space (spaCy stand-in).
    pub fn word_space() -> Self {
        Self {
            dim: crate::WORD_DIM,
            salt: 0x5ac1_77e5,
        }
    }

    /// The 512-d sentence space (Universal Sentence Encoder stand-in).
    pub fn sentence_space() -> Self {
        Self {
            dim: crate::SENTENCE_DIM,
            salt: 0x05e4_7e4c_0de5_u64,
        }
    }

    /// A custom space (tests / ablations).
    pub fn custom(dim: usize, salt: u64) -> Self {
        Self { dim, salt }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    fn unit_vec(&self, key: &str, kind: u64) -> Vec<f32> {
        let seed = fnv1a(key)
            ^ self.salt.rotate_left(kind as u32 * 7 + 1)
            ^ kind.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v: Vec<f32> = (0..self.dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        normalize(&mut v);
        v
    }

    /// Word vector (unit norm). Blends concept, concept *family* (so the
    /// verb "open", the state "open", and the event "opens" share geometry),
    /// category prototype, and word-specific noise.
    pub fn word_vec(&self, word: &str) -> Vec<f32> {
        let lex = Lexicon::global();
        let concept = lex.concept_of(word);
        let category = lex.category(word);
        let family = concept_family(&concept);
        let c_vec = self.unit_vec(&concept, 1);
        let f_vec = self.unit_vec(family, 6);
        let cat_vec = self.unit_vec(category_key(category), 2);
        let w_vec = self.unit_vec(word, 3);
        let mut v: Vec<f32> = (0..self.dim)
            .map(|i| 0.42 * c_vec[i] + 0.28 * f_vec[i] + 0.20 * cat_vec[i] + 0.10 * w_vec[i])
            .collect();
        normalize(&mut v);
        v
    }

    /// Averaged word embedding of a token sequence (the paper's rule-level
    /// node feature). Numeric tokens contribute a magnitude-modulated
    /// "number" prototype so thresholds are reflected in the embedding.
    pub fn avg_embedding(&self, tokens: &[Token]) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        let mut n = 0usize;
        for t in tokens {
            let v = match t.value {
                Some(x) => {
                    let mut v = self.unit_vec("number", 4);
                    let scale = (x.abs() + 1.0).ln() / 5.0;
                    for e in &mut v {
                        *e *= scale;
                    }
                    v
                }
                None => {
                    if crate::stopwords::is_stopword(&t.word) {
                        continue;
                    }
                    self.word_vec(&t.word)
                }
            };
            for (a, b) in acc.iter_mut().zip(&v) {
                *a += b;
            }
            n += 1;
        }
        if n > 0 {
            let inv = 1.0 / n as f32;
            for a in &mut acc {
                *a *= inv;
            }
        }
        acc
    }

    /// Rule-level embedding: category-weighted average of word vectors.
    /// Devices, channels, and state words carry the discriminative signal
    /// for interaction analysis, so they are up-weighted relative to glue —
    /// the standard tf-idf-flavoured weighting a real embedding pipeline
    /// applies to domain text.
    pub fn rule_embedding(&self, tokens: &[Token]) -> Vec<f32> {
        let lex = Lexicon::global();
        let mut acc = vec![0.0f32; self.dim];
        let mut total_w = 0.0f32;
        for t in tokens {
            let (v, w) = match t.value {
                Some(x) => {
                    let mut v = self.unit_vec("number", 4);
                    let scale = (x.abs() + 1.0).ln() / 5.0;
                    for e in &mut v {
                        *e *= scale;
                    }
                    (v, 1.0)
                }
                None => {
                    if crate::stopwords::is_stopword(&t.word) {
                        continue;
                    }
                    let w = match lex.category(&t.word) {
                        Category::Device | Category::Channel => 2.5,
                        Category::State => 2.0,
                        Category::Action | Category::Event => 1.5,
                        Category::Location => 1.5,
                        Category::Time | Category::Value => 1.0,
                        Category::Agent => 0.5,
                        Category::Misc => 0.3,
                    };
                    (self.word_vec(&t.word), w)
                }
            };
            for (a, b) in acc.iter_mut().zip(&v) {
                *a += b * w;
            }
            total_w += w;
        }
        if total_w > 0.0 {
            let inv = 1.0 / total_w;
            for a in &mut acc {
                *a *= inv;
            }
        }
        acc
    }

    /// Sentence embedding: averaged word vectors plus a bigram component
    /// (order sensitivity, as USE has).
    pub fn sentence_embedding(&self, tokens: &[Token]) -> Vec<f32> {
        let mut acc = self.avg_embedding(tokens);
        let content: Vec<&str> = tokens
            .iter()
            .filter(|t| t.value.is_none() && !crate::stopwords::is_stopword(&t.word))
            .map(|t| t.word.as_str())
            .collect();
        let mut n = 0;
        let mut bigram = vec![0.0f32; self.dim];
        for w in content.windows(2) {
            let key = format!("{}+{}", w[0], w[1]);
            let v = self.unit_vec(&key, 5);
            for (a, b) in bigram.iter_mut().zip(&v) {
                *a += b;
            }
            n += 1;
        }
        if n > 0 {
            let inv = 0.3 / n as f32;
            for (a, b) in acc.iter_mut().zip(&bigram) {
                *a += b * inv;
            }
        }
        acc
    }

    /// Embed raw text (tokenize + average).
    pub fn embed_text(&self, text: &str) -> Vec<f32> {
        self.avg_embedding(&crate::token::tokenize(text))
    }
}

/// Map a concept to its semantic *family* — verb/state/event senses of one
/// real-world notion collapse onto one family vector. Defaults to the
/// concept itself.
fn concept_family(concept: &str) -> &str {
    match concept {
        "v_open" | "v_open_ev" | "st_open" | "window" | "garage_door" => "fam_open",
        "v_close" | "v_close_ev" | "st_closed" | "blinds" => "fam_close",
        "v_lock" | "st_locked" | "lock_dev" => "fam_lock",
        "v_unlock" | "st_unlocked" => "fam_unlock",
        "v_turn" | "st_on" | "switch" | "plug" => "fam_on",
        "v_turn_off" | "st_off" => "fam_off",
        "v_detect" | "st_detected" | "motion" | "motion_sensor" => "fam_detect",
        "v_beep" | "st_beeping" | "alarm" | "smoke_alarm" | "doorbell" => "fam_alarm",
        "v_heat" | "heater" | "temperature" | "thermostat" | "st_high" | "v_rise" => "fam_heat",
        "v_cool" | "ac" | "st_low" | "v_drop" => "fam_cool",
        "humidity" | "humidifier" | "dehumidifier" => "fam_humidity",
        "v_play" | "sound" | "speaker" | "tv" => "fam_media",
        "v_dim" | "v_brighten" | "light" | "illuminance" => "fam_light",
        "v_arm" | "st_armed" | "v_disarm" | "st_disarmed" | "home_mode" | "st_home" | "st_away" => {
            "fam_mode"
        }
        "presence" | "presence_sensor" | "st_occupied" | "v_arrive" | "v_leave" => "fam_presence",
        "smoke" => "fam_alarm",
        "contact" | "contact_sensor" | "door" => "fam_door",
        "leak" | "leak_sensor" | "valve" | "sprinkler" | "v_water" => "fam_water",
        other => other,
    }
}

fn category_key(c: Category) -> &'static str {
    match c {
        Category::Device => "cat_device",
        Category::Channel => "cat_channel",
        Category::State => "cat_state",
        Category::Action => "cat_action",
        Category::Event => "cat_event",
        Category::Location => "cat_location",
        Category::Time => "cat_time",
        Category::Value => "cat_value",
        Category::Agent => "cat_agent",
        Category::Misc => "cat_misc",
    }
}

fn normalize(v: &mut [f32]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in v {
            *x /= norm;
        }
    }
}

/// FNV-1a 64-bit hash (stable across runs and platforms).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cosine similarity between two equal-length vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na < 1e-12 || nb < 1e-12 {
        0.0
    } else {
        // rounding can push |dot| a few ulps past ‖a‖‖b‖ (e.g. a == b)
        (dot / (na * nb)).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    #[test]
    fn deterministic() {
        let s = EmbeddingSpace::word_space();
        assert_eq!(s.word_vec("light"), s.word_vec("light"));
    }

    #[test]
    fn synonyms_are_very_close() {
        let s = EmbeddingSpace::word_space();
        let sim = cosine(&s.word_vec("lamp"), &s.word_vec("bulb"));
        assert!(sim > 0.9, "lamp~bulb cosine {sim}");
    }

    #[test]
    fn same_category_closer_than_cross_category() {
        let s = EmbeddingSpace::word_space();
        let dev_dev = cosine(&s.word_vec("window"), &s.word_vec("door"));
        let dev_time = cosine(&s.word_vec("window"), &s.word_vec("sunset"));
        assert!(dev_dev > dev_time, "dev_dev={dev_dev} dev_time={dev_time}");
        assert!(dev_time < 0.35, "cross-category too similar: {dev_time}");
    }

    #[test]
    fn word_and_sentence_spaces_differ() {
        let w = EmbeddingSpace::word_space();
        let s = EmbeddingSpace::sentence_space();
        assert_eq!(w.dim(), 300);
        assert_eq!(s.dim(), 512);
        // same word maps to unrelated directions in the two spaces
        let vw = w.word_vec("light");
        let vs = s.word_vec("light");
        assert_ne!(vw.len(), vs.len());
    }

    #[test]
    fn related_rules_embed_close() {
        let s = EmbeddingSpace::word_space();
        let a = s.embed_text("If smoke is detected, open the window");
        let b = s.embed_text("Open the windows when the smoke alarm beeps");
        let c = s.embed_text("Play music in the living room at 3 pm");
        assert!(
            cosine(&a, &b) > cosine(&a, &c),
            "related rule texts must be closer"
        );
    }

    #[test]
    fn numeric_tokens_modulate_embedding() {
        let s = EmbeddingSpace::word_space();
        let lo = s.avg_embedding(&tokenize("temperature above 30 degrees"));
        let hi = s.avg_embedding(&tokenize("temperature above 100 degrees"));
        assert!(lo != hi, "different thresholds must embed differently");
        let unrelated = s.avg_embedding(&tokenize("play music loudly"));
        assert!(cosine(&lo, &hi) > cosine(&lo, &unrelated));
    }

    #[test]
    fn cosine_bounds() {
        let s = EmbeddingSpace::word_space();
        for (a, b) in [("light", "light"), ("light", "door"), ("light", "sunset")] {
            let c = cosine(&s.word_vec(a), &s.word_vec(b));
            assert!((-1.0..=1.0).contains(&c));
        }
        assert!((cosine(&s.word_vec("light"), &s.word_vec("light")) - 1.0).abs() < 1e-5);
    }
}
