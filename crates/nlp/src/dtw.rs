//! Dynamic time warping over token-embedding sequences (Algorithm 1, line 4).
//!
//! The number of verbs/objects differs between trigger and action phrases, so
//! the paper aligns them with DTW before computing a similarity. Cost between
//! two tokens is `1 − cosine(v_a, v_b)`.

use crate::embed::{cosine, EmbeddingSpace};

/// DTW distance between two sequences given a pairwise cost function.
pub fn dtw_distance<T>(a: &[T], b: &[T], cost: impl Fn(&T, &T) -> f32) -> f32 {
    if a.is_empty() || b.is_empty() {
        // maximal cost per unmatched element
        return (a.len() + b.len()) as f32;
    }
    let (n, m) = (a.len(), b.len());
    let mut prev = vec![f32::INFINITY; m + 1];
    let mut cur = vec![f32::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        cur[0] = f32::INFINITY;
        for j in 1..=m {
            let c = cost(&a[i - 1], &b[j - 1]);
            cur[j] = c + prev[j - 1].min(prev[j]).min(cur[j - 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Normalized DTW similarity between two word lists in an embedding space:
/// `1 / (1 + DTW/len)`, in `(0, 1]`, where cost is cosine distance.
pub fn word_sequence_similarity(space: &EmbeddingSpace, a: &[String], b: &[String]) -> f32 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let va: Vec<Vec<f32>> = a.iter().map(|w| space.word_vec(w)).collect();
    let vb: Vec<Vec<f32>> = b.iter().map(|w| space.word_vec(w)).collect();
    let d = dtw_distance(&va, &vb, |x, y| 1.0 - cosine(x, y));
    let norm = d / a.len().max(b.len()) as f32;
    1.0 / (1.0 + norm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_cost(a: &f32, b: &f32) -> f32 {
        (a - b).abs()
    }

    #[test]
    fn identical_sequences_zero_distance() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(dtw_distance(&a, &a, scalar_cost), 0.0);
    }

    #[test]
    fn warping_aligns_stretched_sequences() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 2.0, 3.0]; // stretched copy
        assert_eq!(dtw_distance(&a, &b, scalar_cost), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = [1.0, 5.0, 2.0];
        let b = [2.0, 4.0];
        let d1 = dtw_distance(&a, &b, scalar_cost);
        let d2 = dtw_distance(&b, &a, scalar_cost);
        assert!((d1 - d2).abs() < 1e-6);
    }

    #[test]
    fn empty_sequences() {
        let a: [f32; 0] = [];
        let b = [1.0];
        assert_eq!(dtw_distance(&a, &b, scalar_cost), 1.0);
        assert_eq!(dtw_distance(&a, &a, scalar_cost), 0.0);
    }

    #[test]
    fn word_similarity_reflects_semantics() {
        let space = EmbeddingSpace::word_space();
        let open_win = vec!["open".to_string(), "window".to_string()];
        let win_opens = vec!["window".to_string(), "opens".to_string()];
        let play_music = vec!["play".to_string(), "music".to_string()];
        let rel = word_sequence_similarity(&space, &open_win, &win_opens);
        let unrel = word_sequence_similarity(&space, &open_win, &play_music);
        assert!(rel > unrel, "rel={rel} unrel={unrel}");
    }

    #[test]
    fn similarity_bounds() {
        let space = EmbeddingSpace::word_space();
        let a = vec!["light".to_string()];
        let sim = word_sequence_similarity(&space, &a, &a);
        assert!((sim - 1.0).abs() < 1e-5);
        assert_eq!(word_sequence_similarity(&space, &a, &[]), 0.0);
        assert_eq!(word_sequence_similarity(&space, &[], &[]), 1.0);
    }
}
