//! Shallow dependency extraction for trigger-action rule sentences.
//!
//! Mirrors what the paper extracts from spaCy's parser (Figure 4): the root
//! verb, direct objects, modifiers, and the split of a rule sentence into its
//! *trigger* and *action* clauses on discourse markers (if / when / while /
//! then / comma position).

use crate::lexicon::{Category, Lexicon, Pos};
use crate::pos::{nouns_and_verbs, tag, Tagged};
use crate::token::{tokenize, Token};

/// Syntactic elements of one clause (Algorithm 1's `[nouns, verbs]`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhraseElements {
    /// Content nouns (devices, channels, locations), named entities dropped.
    pub nouns: Vec<String>,
    /// Verbs (action/event).
    pub verbs: Vec<String>,
    /// State adjectives ("open", "locked", "armed").
    pub states: Vec<String>,
    /// Time expressions ("sunset", "pm").
    pub times: Vec<String>,
    /// Numeric values mentioned.
    pub values: Vec<f32>,
}

impl PhraseElements {
    fn from_tagged(tagged: &[Tagged]) -> Self {
        let lex = Lexicon::global();
        let (mut nouns, verbs) = nouns_and_verbs(tagged);
        // drop named entities / unknown brand-like tokens that would bias
        // similarity (the paper discards named entities for this reason)
        nouns.retain(|n| lex.contains(n));
        let mut states = Vec::new();
        let mut times = Vec::new();
        let mut values = Vec::new();
        for t in tagged {
            match t.pos {
                Pos::Adj | Pos::Adp if lex.category(&t.word) == Category::State => {
                    states.push(t.word.clone());
                }
                Pos::Num => {
                    if let Some(v) = t.value {
                        values.push(v);
                    }
                }
                _ => {}
            }
            if lex.category(&t.word) == Category::Time {
                times.push(t.word.clone());
            }
        }
        // time nouns shouldn't double as content nouns
        nouns.retain(|n| lex.category(n) != Category::Time);
        Self {
            nouns,
            verbs,
            states,
            times,
            values,
        }
    }

    /// Is the clause empty of content?
    pub fn is_empty(&self) -> bool {
        self.nouns.is_empty() && self.verbs.is_empty() && self.states.is_empty()
    }
}

/// A parsed rule sentence: trigger clause + action clause.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedRule {
    pub trigger: PhraseElements,
    pub action: PhraseElements,
    /// The root verb of the action clause (the "main task" of Figure 4).
    pub root_verb: Option<String>,
}

/// Does any sense of this word denote an action verb?
fn is_action_verb(word: &str) -> bool {
    Lexicon::global()
        .senses(word)
        .iter()
        .any(|e| e.pos == Pos::Verb && e.category == Category::Action)
}

/// Split a tagged rule sentence into (trigger, action) clause token ranges.
///
/// Handles the corpus's dominant patterns:
/// - "If/When <trigger>, [then] <action>"
/// - "<action> if/when <trigger>"
/// - "<action>" (no trigger — voice commands like "Alexa, play movies")
fn split_clauses(tagged: &[Tagged]) -> (Vec<Tagged>, Vec<Tagged>) {
    let marker_at = tagged
        .iter()
        .position(|t| matches!(t.word.as_str(), "if" | "when" | "while"));
    match marker_at {
        Some(0) => {
            // leading marker: trigger runs until "then" or the clause border
            let then_at = tagged.iter().position(|t| t.word == "then");
            if let Some(then) = then_at {
                (tagged[1..then].to_vec(), tagged[then + 1..].to_vec())
            } else {
                // fall back: split at the first action verb after position 1
                let split = tagged
                    .iter()
                    .skip(2)
                    .position(|t| t.pos == Pos::Verb && is_action_verb(&t.word))
                    .map(|p| p + 2)
                    .unwrap_or(tagged.len());
                (tagged[1..split].to_vec(), tagged[split..].to_vec())
            }
        }
        Some(m) => (tagged[m + 1..].to_vec(), tagged[..m].to_vec()),
        None => (Vec::new(), tagged.to_vec()),
    }
}

/// Parse a rule sentence into trigger/action elements.
pub fn parse_rule(text: &str) -> ParsedRule {
    let tokens: Vec<Token> = tokenize(text);
    let tagged = tag(&tokens);
    let (trig, act) = split_clauses(&tagged);
    let lex = Lexicon::global();
    let action = PhraseElements::from_tagged(&act);
    let trigger = PhraseElements::from_tagged(&trig);
    let root_verb = act
        .iter()
        .find(|t| t.pos == Pos::Verb && lex.category(&t.word) == Category::Action)
        .or_else(|| act.iter().find(|t| t.pos == Pos::Verb))
        .map(|t| t.word.clone());
    ParsedRule {
        trigger,
        action,
        root_verb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leading_if_then() {
        let p = parse_rule("If smoke is detected, then open the window");
        assert!(
            p.trigger.nouns.contains(&"smoke".to_string()),
            "{:?}",
            p.trigger
        );
        assert!(
            p.action.nouns.contains(&"window".to_string()),
            "{:?}",
            p.action
        );
        assert_eq!(p.root_verb.as_deref(), Some("open"));
    }

    #[test]
    fn leading_if_without_then() {
        let p = parse_rule("If the smoke alarm is beeping, open the window and unlock the door");
        assert!(
            p.trigger.nouns.contains(&"smoke_alarm".to_string()),
            "{:?}",
            p.trigger
        );
        assert!(
            p.action.nouns.contains(&"window".to_string()),
            "{:?}",
            p.action
        );
        assert!(p.action.nouns.contains(&"door".to_string()));
        assert!(p.action.verbs.contains(&"unlock".to_string()));
    }

    #[test]
    fn trailing_condition() {
        let p = parse_rule("Turn off lights if playing movies");
        assert!(
            p.action.nouns.contains(&"light".to_string())
                || p.action.nouns.contains(&"lights".to_string())
        );
        assert_eq!(p.root_verb.as_deref(), Some("turn"));
        assert!(!p.trigger.is_empty());
    }

    #[test]
    fn no_trigger_voice_command() {
        let p = parse_rule("Alexa, play movies");
        assert!(p.trigger.is_empty());
        assert_eq!(p.root_verb.as_deref(), Some("play"));
    }

    #[test]
    fn when_marker_mid_sentence() {
        let p = parse_rule("Turn on the air conditioner when temperature is above 85°F");
        assert!(
            p.action.nouns.contains(&"air_conditioner".to_string()),
            "{:?}",
            p.action
        );
        assert!(
            p.trigger.nouns.contains(&"temperature".to_string()),
            "{:?}",
            p.trigger
        );
        assert_eq!(p.trigger.values, vec![85.0]);
        assert!(p.trigger.states.contains(&"above".to_string()));
    }

    #[test]
    fn time_expressions_captured() {
        let p = parse_rule(
            "If the outdoor temperature is between 65 °F and 80 °F, open windows after sun rise",
        );
        assert!(!p.trigger.values.is_empty());
        assert!(
            p.action.times.contains(&"sun".to_string())
                || p.trigger.times.contains(&"sun".to_string())
        );
    }

    #[test]
    fn named_entities_dropped() {
        let p = parse_rule("If the Wyze camera detects motion, turn on the light");
        // "wyze" is unknown to the lexicon → must not appear among nouns
        assert!(!p.trigger.nouns.iter().any(|n| n == "wyze"));
        assert!(p.trigger.nouns.contains(&"camera".to_string()));
    }
}
