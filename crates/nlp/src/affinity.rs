//! Lexical channel affinities: which environment channels a device word is
//! commonly associated with, and in which direction its activation pushes
//! them. This is dictionary-style world knowledge (the kind distributional
//! embeddings and ConceptNet carry), used by Algorithm 1's semantic features
//! — it is *not* the ground-truth physical oracle, which lives in
//! `glint-rules` and also covers locations, thresholds, and state logic.

use crate::lexicon::{Category, Lexicon};

/// Channels a device concept is associated with: `(channel concept, sign)`.
/// Sign +1 = activation pushes the channel up, −1 = down, 0 = discrete event.
pub fn signed_channels(word: &str) -> Vec<(&'static str, i8)> {
    let concept = Lexicon::global().concept_of(word);
    match concept.as_str() {
        "heater" | "oven" | "water_heater" | "thermostat" => vec![("temperature", 1)],
        "ac" => vec![("temperature", -1), ("humidity", -1)],
        "fan" => vec![("temperature", -1), ("sound", 1)],
        "window" => vec![("temperature", -1), ("contact", 0), ("air_quality", 1)],
        "humidifier" => vec![("humidity", 1)],
        "dehumidifier" => vec![("humidity", -1)],
        "light" => vec![("illuminance", 1)],
        "blinds" => vec![("illuminance", -1)],
        "tv" => vec![("sound", 1), ("illuminance", 1)],
        "speaker" => vec![("sound", 1)],
        "vacuum" => vec![("motion", 0), ("sound", 1)],
        "washer" | "dryer" | "dishwasher" => vec![("sound", 1), ("power", 1), ("humidity", 1)],
        "door" | "garage_door" => vec![("contact", 0), ("motion", 0)],
        "lock_dev" => vec![("contact", 0)],
        "sprinkler" => vec![("leak", 1), ("humidity", 1)],
        "valve" => vec![("leak", 1)],
        "alarm" | "smoke_alarm" | "doorbell" => vec![("sound", 1)],
        "switch" | "plug" | "coffee_maker" => vec![("power", 1)],
        "purifier" => vec![("air_quality", -1), ("power", 1)],
        _ => Vec::new(),
    }
}

/// Channels a device concept *senses or reports* — the text-side analogue of
/// watching a device state: a trigger about a door's state is (also) a
/// trigger about the contact channel, a motion-sensor trigger is a motion
/// trigger, and so on.
pub fn sensed_channels(word: &str) -> Vec<&'static str> {
    let concept = Lexicon::global().concept_of(word);
    match concept.as_str() {
        "motion_sensor" | "camera" => vec!["motion"],
        "contact_sensor" | "door" | "window" | "garage_door" | "blinds" | "valve" | "lock_dev" => {
            vec!["contact"]
        }
        "light" => vec!["illuminance"],
        "tv" | "speaker" | "doorbell" => vec!["sound"],
        "thermostat" | "temperature_sensor" => vec!["temperature"],
        "humidity_sensor" => vec!["humidity"],
        "smoke_alarm" => vec!["smoke", "sound"],
        "alarm" => vec!["sound"],
        "leak_sensor" => vec!["leak"],
        "presence_sensor" => vec!["presence"],
        "switch" | "plug" => vec!["power"],
        _ => Vec::new(),
    }
}

/// If the word *names* a channel ("temperature", "humidity", "motion"…),
/// its channel concept.
pub fn channel_concept(word: &str) -> Option<String> {
    let lex = Lexicon::global();
    (lex.category(word) == Category::Channel).then(|| lex.concept_of(word))
}

/// Polarity of an action phrase from its state/verb words:
/// +1 activating (on/open/start/play), −1 deactivating (off/close/stop), 0
/// unknown.
pub fn action_polarity(words: &[String]) -> i8 {
    let lex = Lexicon::global();
    for w in words {
        match lex.concept_of(w).as_str() {
            "st_on" | "v_start" | "v_play" | "st_open" | "v_open" | "v_heat" | "v_brighten"
            | "v_arm" | "st_armed" => return 1,
            "st_off" | "v_turn_off" | "v_stop" | "st_closed" | "v_close" | "v_cool" | "v_dim"
            | "v_disarm" | "st_disarmed" => return -1,
            _ => {}
        }
    }
    0
}

/// Direction a trigger phrase watches: +1 for "above/high/rises/on",
/// −1 for "below/low/drops/off", 0 for events/ranges.
pub fn trigger_direction(words: &[String]) -> i8 {
    let lex = Lexicon::global();
    for w in words {
        match lex.concept_of(w).as_str() {
            "st_above" | "st_high" | "v_rise" | "st_on" | "st_open" => return 1,
            "st_below" | "st_low" | "v_drop" | "st_off" | "st_closed" => return -1,
            _ => {}
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_channel_knowledge() {
        assert!(signed_channels("oven")
            .iter()
            .any(|&(c, s)| c == "temperature" && s == 1));
        assert!(signed_channels("air_conditioner")
            .iter()
            .any(|&(c, s)| c == "temperature" && s == -1));
        assert!(signed_channels("roomba")
            .iter()
            .any(|&(c, _)| c == "motion"));
        assert!(signed_channels("sunset").is_empty());
    }

    #[test]
    fn channel_nouns_resolve() {
        assert_eq!(
            channel_concept("temperature").as_deref(),
            Some("temperature")
        );
        assert_eq!(channel_concept("moisture").as_deref(), Some("humidity"));
        assert_eq!(channel_concept("light"), None, "devices are not channels");
    }

    #[test]
    fn polarity_and_direction() {
        let on = vec!["turn".to_string(), "on".to_string()];
        let off = vec!["turn".to_string(), "off".to_string()];
        assert_eq!(action_polarity(&on), 1);
        assert_eq!(action_polarity(&off), -1);
        let above = vec!["above".to_string()];
        let below = vec!["below".to_string()];
        assert_eq!(trigger_direction(&above), 1);
        assert_eq!(trigger_direction(&below), -1);
        assert_eq!(trigger_direction(&["detected".to_string()]), 0);
    }
}
