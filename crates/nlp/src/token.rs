//! Tokenizer with multi-word-expression merging and unit-aware numbers.

use crate::lexicon::Lexicon;

/// A token: normalized word plus an optional numeric payload
/// (for "85°F" → word `"85"` with `value = Some(85.0)`).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub word: String,
    pub value: Option<f32>,
}

impl Token {
    pub fn word(w: impl Into<String>) -> Self {
        Self {
            word: w.into(),
            value: None,
        }
    }

    pub fn number(w: impl Into<String>, v: f32) -> Self {
        Self {
            word: w.into(),
            value: Some(v),
        }
    }
}

/// Tokenize a rule sentence: lowercase, strip punctuation, split numbers from
/// unit suffixes (°F, %, am/pm), and merge known multi-word expressions.
pub fn tokenize(text: &str) -> Vec<Token> {
    let lex = Lexicon::global();
    let mut raw: Vec<Token> = Vec::new();
    let lowered = text.to_lowercase();
    let mut cur = String::new();
    let flush = |cur: &mut String, out: &mut Vec<Token>| {
        if cur.is_empty() {
            return;
        }
        out.extend(split_number_unit(cur));
        cur.clear();
    };
    for ch in lowered.chars() {
        match ch {
            'a'..='z' | '0'..='9' | '°' | '%' | '.' | ':' => cur.push(ch),
            '\'' => {} // drop apostrophes ("o'clock" → "oclock")
            _ => flush(&mut cur, &mut raw),
        }
    }
    flush(&mut cur, &mut raw);

    // merge multi-word expressions (longest-first list from the lexicon)
    let mut merged: Vec<Token> = Vec::with_capacity(raw.len());
    let mut i = 0;
    'outer: while i < raw.len() {
        for (key, parts) in lex.mwes() {
            if i + parts.len() <= raw.len()
                && parts.iter().enumerate().all(|(k, p)| raw[i + k].word == *p)
            {
                merged.push(Token::word(*key));
                i += parts.len();
                continue 'outer;
            }
        }
        merged.push(raw[i].clone());
        i += 1;
    }
    merged
}

/// Split "85°f" → ["85"(85.0), "degrees"], "30%" → ["30"(30.0), "percent"],
/// "7pm" → ["7"(7.0), "pm"], "20:08" → ["20.13"(≈20.13), "oclock"].
fn split_number_unit(s: &str) -> Vec<Token> {
    let trimmed = s.trim_matches('.');
    if trimmed.is_empty() {
        return Vec::new();
    }
    // clock time hh:mm
    if let Some((h, m)) = trimmed.split_once(':') {
        if let (Ok(h), Ok(m)) = (h.parse::<f32>(), m.parse::<f32>()) {
            let v = h + m / 60.0;
            return vec![Token::number(format!("{v:.2}"), v), Token::word("oclock")];
        }
    }
    let digits_end = trimmed
        .char_indices()
        .take_while(|(_, c)| c.is_ascii_digit() || *c == '.')
        .map(|(i, c)| i + c.len_utf8())
        .last()
        .unwrap_or(0);
    if digits_end == 0 {
        return vec![Token::word(trimmed)];
    }
    let (num, rest) = trimmed.split_at(digits_end);
    let Ok(value) = num.parse::<f32>() else {
        return vec![Token::word(trimmed)];
    };
    let mut out = vec![Token::number(num, value)];
    match rest {
        "" => {}
        "°f" | "°c" | "f" | "c" | "°" | "degrees" => out.push(Token::word("degrees")),
        "%" | "percent" => out.push(Token::word("percent")),
        "am" => out.push(Token::word("am")),
        "pm" => out.push(Token::word("pm")),
        other => out.push(Token::word(other)),
    }
    out
}

/// Just the words (common test/feature-extraction convenience).
pub fn words(tokens: &[Token]) -> Vec<&str> {
    tokens.iter().map(|t| t.word.as_str()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_sentence() {
        let toks = tokenize("Turn on the light if the door opens.");
        assert_eq!(
            words(&toks),
            vec!["turn", "on", "the", "light", "if", "the", "door", "opens"]
        );
    }

    #[test]
    fn merges_mwes() {
        let toks = tokenize("Turn on the air conditioner when temperature is above 85°F");
        let w = words(&toks);
        assert!(w.contains(&"air_conditioner"));
        assert!(w.contains(&"degrees"));
        assert!(toks.iter().any(|t| t.value == Some(85.0)));
    }

    #[test]
    fn percent_and_time_units() {
        let toks = tokenize("When humidity is below 30%, at 7pm");
        let w = words(&toks);
        assert!(w.contains(&"percent"));
        assert!(w.contains(&"pm"));
        assert!(toks.iter().any(|t| t.value == Some(30.0)));
        assert!(toks.iter().any(|t| t.value == Some(7.0)));
    }

    #[test]
    fn clock_times() {
        let toks = tokenize("Lock the door at 22:30");
        assert!(toks
            .iter()
            .any(|t| t.value.is_some_and(|v| (v - 22.5).abs() < 1e-3)));
        assert!(words(&toks).contains(&"oclock"));
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! --- ???").is_empty());
    }
}
