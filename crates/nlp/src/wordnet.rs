//! WordNet stand-in: synonym / hypernym / meronym / holonym queries over the
//! smart-home vocabulary (consumed by Algorithm 1's binary relation features).

use crate::lexicon::Lexicon;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Hypernym edges between *concepts*: (child, parent).
const HYPERNYMS: &[(&str, &str)] = &[
    // device taxonomy
    ("light", "device"),
    ("window", "opening"),
    ("door", "opening"),
    ("garage_door", "opening"),
    ("opening", "device"),
    ("lock_dev", "security_device"),
    ("alarm", "security_device"),
    ("smoke_alarm", "security_device"),
    ("camera", "security_device"),
    ("doorbell", "security_device"),
    ("security_device", "device"),
    ("thermostat", "climate_device"),
    ("heater", "climate_device"),
    ("ac", "climate_device"),
    ("humidifier", "climate_device"),
    ("dehumidifier", "climate_device"),
    ("fan", "climate_device"),
    ("purifier", "climate_device"),
    ("water_heater", "climate_device"),
    ("climate_device", "device"),
    ("motion_sensor", "sensor"),
    ("contact_sensor", "sensor"),
    ("presence_sensor", "sensor"),
    ("temperature_sensor", "sensor"),
    ("humidity_sensor", "sensor"),
    ("leak_sensor", "sensor"),
    ("button", "sensor"),
    ("sensor", "device"),
    ("tv", "media_device"),
    ("speaker", "media_device"),
    ("media_device", "device"),
    ("oven", "appliance"),
    ("coffee_maker", "appliance"),
    ("washer", "appliance"),
    ("dryer", "appliance"),
    ("dishwasher", "appliance"),
    ("fridge", "appliance"),
    ("vacuum", "appliance"),
    ("appliance", "device"),
    ("switch", "actuator"),
    ("plug", "actuator"),
    ("valve", "actuator"),
    ("sprinkler", "actuator"),
    ("blinds", "actuator"),
    ("actuator", "device"),
    // channel taxonomy
    ("temperature", "environment"),
    ("humidity", "environment"),
    ("smoke", "environment"),
    ("illuminance", "environment"),
    ("sound", "environment"),
    ("weather", "environment"),
    ("air_quality", "environment"),
    ("leak", "environment"),
    ("motion", "activity"),
    ("presence", "activity"),
    ("contact", "activity"),
    ("activity", "environment"),
    // verb taxonomy
    ("v_open", "v_actuate"),
    ("v_close", "v_actuate"),
    ("v_lock", "v_actuate"),
    ("v_unlock", "v_actuate"),
    ("v_turn", "v_actuate"),
    ("v_turn_off", "v_actuate"),
    ("v_dim", "v_set"),
    ("v_brighten", "v_set"),
    ("v_set", "v_actuate"),
    ("v_start", "v_actuate"),
    ("v_stop", "v_actuate"),
    ("v_heat", "v_actuate"),
    ("v_cool", "v_actuate"),
    ("v_detect", "v_sense"),
    ("v_beep", "v_sense"),
    ("v_rise", "v_change"),
    ("v_drop", "v_change"),
    ("v_open_ev", "v_change"),
    ("v_close_ev", "v_change"),
];

/// Antonym pairs between concepts (used by Algorithm 1's semantic features —
/// opposed verbs/states are strong evidence *against* a correlation and
/// strong evidence for revert/conflict patterns).
const ANTONYMS: &[(&str, &str)] = &[
    ("st_on", "st_off"),
    ("v_turn", "v_turn_off"),
    ("st_open", "st_closed"),
    ("v_open", "v_close"),
    ("v_open_ev", "v_close_ev"),
    ("st_locked", "st_unlocked"),
    ("v_lock", "v_unlock"),
    ("st_armed", "st_disarmed"),
    ("v_arm", "v_disarm"),
    ("st_high", "st_low"),
    ("st_above", "st_below"),
    ("v_rise", "v_drop"),
    ("st_home", "st_away"),
    ("v_brighten", "v_dim"),
    ("v_heat", "v_cool"),
    ("v_start", "v_stop"),
    ("st_occupied", "st_vacant"),
    ("v_arrive", "v_leave"),
];

/// Meronym edges between concepts: (part, whole).
const MERONYMS: &[(&str, &str)] = &[
    ("window", "room"),
    ("door", "room"),
    ("blinds", "window"),
    ("lock_dev", "door"),
    ("doorbell", "door"),
    ("room", "house"),
    ("kitchen", "house"),
    ("bedroom", "house"),
    ("bathroom", "house"),
    ("living_room", "house"),
    ("hallway", "house"),
    ("garage", "house"),
    ("basement", "house"),
    ("office", "house"),
    ("garden", "house"),
    ("garage_door", "garage"),
    ("oven", "kitchen"),
    ("fridge", "kitchen"),
    ("coffee_maker", "kitchen"),
    ("sprinkler", "garden"),
];

struct Net {
    hyper: BTreeMap<&'static str, Vec<&'static str>>,
    mero: BTreeMap<&'static str, Vec<&'static str>>,
}

fn net() -> &'static Net {
    static NET: OnceLock<Net> = OnceLock::new();
    NET.get_or_init(|| {
        let mut hyper: BTreeMap<&'static str, Vec<&'static str>> = BTreeMap::new();
        for &(c, p) in HYPERNYMS {
            hyper.entry(c).or_default().push(p);
        }
        let mut mero: BTreeMap<&'static str, Vec<&'static str>> = BTreeMap::new();
        for &(part, whole) in MERONYMS {
            mero.entry(part).or_default().push(whole);
        }
        Net { hyper, mero }
    })
}

/// All concepts a word can denote (homographs like "open" / "lock" have
/// several senses).
fn concepts(word: &str) -> Vec<String> {
    let lex = Lexicon::global();
    let senses = lex.senses(word);
    if senses.is_empty() {
        vec![word.to_string()]
    } else {
        let mut out: Vec<String> = senses.iter().map(|e| e.concept.to_string()).collect();
        out.dedup();
        out
    }
}

/// All hypernym ancestors of a concept (transitive closure).
fn ancestors(c: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![c.to_string()];
    while let Some(cur) = stack.pop() {
        if let Some(parents) = net().hyper.get(cur.as_str()) {
            for &p in parents {
                if !out.iter().any(|o| o == p) {
                    out.push(p.to_string());
                    stack.push(p.to_string());
                }
            }
        }
    }
    out
}

/// Are the two words antonyms (any sense pair is an opposed concept)?
pub fn are_antonyms(a: &str, b: &str) -> bool {
    for ca in concepts(a) {
        for cb in concepts(b) {
            if ANTONYMS
                .iter()
                .any(|&(x, y)| (x == ca && y == cb) || (x == cb && y == ca))
            {
                return true;
            }
        }
    }
    false
}

/// Are the two words synonyms (share any lexicon concept)?
pub fn are_synonyms(a: &str, b: &str) -> bool {
    a == b || concepts(a).iter().any(|ca| concepts(b).contains(ca))
}

/// Does one word's concept appear among the other's hypernym ancestors, or do
/// they share a *direct* common parent (sibling co-hyponyms)? Checked across
/// every sense pair of the two words.
pub fn hypernym_related(a: &str, b: &str) -> bool {
    for ca in concepts(a) {
        for cb in concepts(b) {
            if ca == cb {
                return true;
            }
            let anc_a = ancestors(&ca);
            let anc_b = ancestors(&cb);
            if anc_a.contains(&cb)
                || anc_b.contains(&ca)
                || direct_parents(&ca)
                    .iter()
                    .any(|p| direct_parents(&cb).contains(p))
            {
                return true;
            }
        }
    }
    false
}

fn direct_parents(c: &str) -> Vec<&'static str> {
    net().hyper.get(c).cloned().unwrap_or_default()
}

/// Meronym/holonym relation: is one a constituent part of the other
/// (transitively)? Checked across every sense pair.
pub fn meronym_related(a: &str, b: &str) -> bool {
    for ca in concepts(a) {
        for cb in concepts(b) {
            if part_of(&ca, &cb) || part_of(&cb, &ca) {
                return true;
            }
        }
    }
    false
}

fn part_of(part: &str, whole: &str) -> bool {
    let mut stack = vec![part.to_string()];
    let mut seen = std::collections::BTreeSet::new();
    while let Some(cur) = stack.pop() {
        if !seen.insert(cur.clone()) {
            continue;
        }
        if let Some(wholes) = net().mero.get(cur.as_str()) {
            for &w in wholes {
                if w == whole {
                    return true;
                }
                stack.push(w.to_string());
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synonym_queries() {
        assert!(are_synonyms("lamp", "bulb"));
        assert!(are_synonyms("roomba", "vacuum"));
        assert!(!are_synonyms("lamp", "door"));
    }

    #[test]
    fn hypernym_transitive() {
        // heater → climate_device → device; lamp → light → device
        assert!(hypernym_related("heater", "thermostat")); // siblings under climate_device
        assert!(hypernym_related("window", "door")); // siblings under opening
        assert!(!hypernym_related("window", "tv"));
    }

    #[test]
    fn verb_hierarchy() {
        assert!(hypernym_related("open", "close")); // both v_actuate children
        assert!(hypernym_related("rises", "drops")); // both v_change children
        assert!(!hypernym_related("open", "detect"));
    }

    #[test]
    fn meronym_transitive() {
        assert!(meronym_related("blinds", "window"));
        assert!(meronym_related("lock", "door"));
        assert!(meronym_related("blinds", "room")); // blinds → window → room
        assert!(meronym_related("room", "door")); // symmetric query
        assert!(!meronym_related("tv", "door"));
    }
}
