//! The smart-home domain lexicon.
//!
//! Every content word the rule corpus can produce is catalogued here with its
//! part of speech, semantic category, and *concept* — synonyms share one
//! concept id, which is what makes the embedding space (and the WordNet
//! stand-in) semantically coherent.

use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Part-of-speech tags (spaCy coarse tag set subset).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Pos {
    Noun,
    Verb,
    Adj,
    Adv,
    Adp,
    Det,
    Num,
    Sconj,
    Cconj,
    Pron,
    Part,
    X,
}

/// Semantic category of a lexicon entry.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Controllable or sensing device ("light", "air_conditioner").
    Device,
    /// Physical/environment channel ("temperature", "smoke").
    Channel,
    /// Device-state word ("on", "locked", "open").
    State,
    /// Action verb ("turn", "open", "lock").
    Action,
    /// Sensing/event verb ("detect", "beep").
    Event,
    /// Location noun ("kitchen", "bedroom").
    Location,
    /// Time expression ("sunset", "midnight", "pm").
    Time,
    /// Numeric value or unit.
    Value,
    /// Person/agent ("user", "alexa").
    Agent,
    /// Anything else (function words, glue).
    Misc,
}

/// A lexicon entry.
#[derive(Clone, Debug)]
pub struct Entry {
    pub word: &'static str,
    pub pos: Pos,
    pub category: Category,
    /// Concept id; synonyms share it.
    pub concept: &'static str,
}

/// The global, immutable domain lexicon.
pub struct Lexicon {
    entries: BTreeMap<&'static str, Entry>,
    /// Multi-word expressions, longest-first, as (joined_key, words).
    mwes: Vec<(&'static str, Vec<&'static str>)>,
}

macro_rules! entries {
    ($($word:literal, $pos:ident, $cat:ident, $concept:literal;)*) => {
        &[$(Entry { word: $word, pos: Pos::$pos, category: Category::$cat, concept: $concept }),*]
    };
}

fn raw_entries() -> &'static [Entry] {
    entries![
        // ---- devices ----
        "light", Noun, Device, "light";
        "lights", Noun, Device, "light";
        "lamp", Noun, Device, "light";
        "bulb", Noun, Device, "light";
        "window", Noun, Device, "window";
        "windows", Noun, Device, "window";
        "door", Noun, Device, "door";
        "doors", Noun, Device, "door";
        "lock", Noun, Device, "lock_dev";
        "deadbolt", Noun, Device, "lock_dev";
        "thermostat", Noun, Device, "thermostat";
        "heater", Noun, Device, "heater";
        "furnace", Noun, Device, "heater";
        "air_conditioner", Noun, Device, "ac";
        "ac", Noun, Device, "ac";
        "humidifier", Noun, Device, "humidifier";
        "dehumidifier", Noun, Device, "dehumidifier";
        "fan", Noun, Device, "fan";
        "camera", Noun, Device, "camera";
        "vacuum", Noun, Device, "vacuum";
        "roomba", Noun, Device, "vacuum";
        "tv", Noun, Device, "tv";
        "television", Noun, Device, "tv";
        "oven", Noun, Device, "oven";
        "stove", Noun, Device, "oven";
        "alarm", Noun, Device, "alarm";
        "siren", Noun, Device, "alarm";
        "smoke_alarm", Noun, Device, "smoke_alarm";
        "smoke_detector", Noun, Device, "smoke_alarm";
        "sensor", Noun, Device, "sensor";
        "motion_sensor", Noun, Device, "motion_sensor";
        "contact_sensor", Noun, Device, "contact_sensor";
        "presence_sensor", Noun, Device, "presence_sensor";
        "temperature_sensor", Noun, Device, "temperature_sensor";
        "humidity_sensor", Noun, Device, "humidity_sensor";
        "switch", Noun, Device, "switch";
        "plug", Noun, Device, "plug";
        "outlet", Noun, Device, "plug";
        "speaker", Noun, Device, "speaker";
        "doorbell", Noun, Device, "doorbell";
        "sprinkler", Noun, Device, "sprinkler";
        "valve", Noun, Device, "valve";
        "blinds", Noun, Device, "blinds";
        "shades", Noun, Device, "blinds";
        "curtain", Noun, Device, "blinds";
        "garage_door", Noun, Device, "garage_door";
        "coffee_maker", Noun, Device, "coffee_maker";
        "kettle", Noun, Device, "coffee_maker";
        "washer", Noun, Device, "washer";
        "dryer", Noun, Device, "dryer";
        "dishwasher", Noun, Device, "dishwasher";
        "fridge", Noun, Device, "fridge";
        "refrigerator", Noun, Device, "fridge";
        "button", Noun, Device, "button";
        "hub", Noun, Device, "hub";
        "phone", Noun, Device, "phone";
        "water_heater", Noun, Device, "water_heater";
        "leak_sensor", Noun, Device, "leak_sensor";
        "purifier", Noun, Device, "purifier";
        // ---- physical channels ----
        "temperature", Noun, Channel, "temperature";
        "heat", Noun, Channel, "temperature";
        "humidity", Noun, Channel, "humidity";
        "moisture", Noun, Channel, "humidity";
        "smoke", Noun, Channel, "smoke";
        "motion", Noun, Channel, "motion";
        "movement", Noun, Channel, "motion";
        "presence", Noun, Channel, "presence";
        "occupancy", Noun, Channel, "presence";
        "brightness", Noun, Channel, "illuminance";
        "illuminance", Noun, Channel, "illuminance";
        "luminosity", Noun, Channel, "illuminance";
        "sound", Noun, Channel, "sound";
        "noise", Noun, Channel, "sound";
        "music", Noun, Channel, "sound";
        "power", Noun, Channel, "power";
        "energy", Noun, Channel, "power";
        "contact", Noun, Channel, "contact";
        "weather", Noun, Channel, "weather";
        "rain", Noun, Channel, "weather";
        "co2", Noun, Channel, "air_quality";
        "air_quality", Noun, Channel, "air_quality";
        "water", Noun, Channel, "leak";
        "leak", Noun, Channel, "leak";
        "home_state", Noun, Channel, "home_mode";
        "homestate", Noun, Channel, "home_mode";
        "mode", Noun, Channel, "home_mode";
        // ---- states ----
        "on", Adj, State, "st_on";
        "off", Adj, State, "st_off";
        "open", Adj, State, "st_open";
        "opened", Adj, State, "st_open";
        "closed", Adj, State, "st_closed";
        "shut", Adj, State, "st_closed";
        "locked", Adj, State, "st_locked";
        "unlocked", Adj, State, "st_unlocked";
        "armed", Adj, State, "st_armed";
        "disarmed", Adj, State, "st_disarmed";
        "home", Adj, State, "st_home";
        "away", Adj, State, "st_away";
        "high", Adj, State, "st_high";
        "low", Adj, State, "st_low";
        "above", Adp, State, "st_above";
        "below", Adp, State, "st_below";
        "between", Adp, State, "st_between";
        "detected", Adj, State, "st_detected";
        "beeping", Adj, State, "st_beeping";
        "occupied", Adj, State, "st_occupied";
        "vacant", Adj, State, "st_vacant";
        "manual", Adj, State, "st_manual";
        "bright", Adj, State, "st_high";
        "dark", Adj, State, "st_low";
        "hot", Adj, State, "st_high";
        "cold", Adj, State, "st_low";
        "wet", Adj, State, "st_detected";
        "dry", Adj, State, "st_vacant";
        // ---- action verbs ----
        "turn", Verb, Action, "v_turn";
        "switch_on", Verb, Action, "v_turn";
        "toggle", Verb, Action, "v_turn";
        "activate", Verb, Action, "v_turn";
        "deactivate", Verb, Action, "v_turn_off";
        "enable", Verb, Action, "v_turn";
        "disable", Verb, Action, "v_turn_off";
        "open", Verb, Action, "v_open";
        "close", Verb, Action, "v_close";
        "lock", Verb, Action, "v_lock";
        "unlock", Verb, Action, "v_unlock";
        "dim", Verb, Action, "v_dim";
        "brighten", Verb, Action, "v_brighten";
        "set", Verb, Action, "v_set";
        "adjust", Verb, Action, "v_set";
        "start", Verb, Action, "v_start";
        "run", Verb, Action, "v_start";
        "stop", Verb, Action, "v_stop";
        "pause", Verb, Action, "v_stop";
        "play", Verb, Action, "v_play";
        "send", Verb, Action, "v_notify";
        "notify", Verb, Action, "v_notify";
        "alert", Verb, Action, "v_notify";
        "text", Verb, Action, "v_notify";
        "arm", Verb, Action, "v_arm";
        "disarm", Verb, Action, "v_disarm";
        "keep", Verb, Action, "v_keep";
        "snapshot", Verb, Action, "v_snapshot";
        "record", Verb, Action, "v_snapshot";
        "water", Verb, Action, "v_water";
        "heat", Verb, Action, "v_heat";
        "cool", Verb, Action, "v_cool";
        "preheat", Verb, Action, "v_heat";
        "mute", Verb, Action, "v_stop";
        "announce", Verb, Action, "v_notify";
        // ---- event/sensing verbs ----
        "detect", Verb, Event, "v_detect";
        "detects", Verb, Event, "v_detect";
        "sense", Verb, Event, "v_detect";
        "beep", Verb, Event, "v_beep";
        "beeps", Verb, Event, "v_beep";
        "ring", Verb, Event, "v_beep";
        "rise", Verb, Event, "v_rise";
        "rises", Verb, Event, "v_rise";
        "drop", Verb, Event, "v_drop";
        "drops", Verb, Event, "v_drop";
        "fall", Verb, Event, "v_drop";
        "exceed", Verb, Event, "v_rise";
        "exceeds", Verb, Event, "v_rise";
        "opens", Verb, Event, "v_open_ev";
        "closes", Verb, Event, "v_close_ev";
        "arrive", Verb, Event, "v_arrive";
        "arrives", Verb, Event, "v_arrive";
        "leave", Verb, Event, "v_leave";
        "leaves", Verb, Event, "v_leave";
        "report", Verb, Event, "v_report";
        "reports", Verb, Event, "v_report";
        "is", Verb, Misc, "v_be";
        "are", Verb, Misc, "v_be";
        "becomes", Verb, Event, "v_be";
        // ---- locations ----
        "kitchen", Noun, Location, "kitchen";
        "bedroom", Noun, Location, "bedroom";
        "bathroom", Noun, Location, "bathroom";
        "living_room", Noun, Location, "living_room";
        "livingroom", Noun, Location, "living_room";
        "hallway", Noun, Location, "hallway";
        "garage", Noun, Location, "garage";
        "garden", Noun, Location, "garden";
        "lawn", Noun, Location, "garden";
        "yard", Noun, Location, "garden";
        "office", Noun, Location, "office";
        "basement", Noun, Location, "basement";
        "outside", Noun, Location, "outdoor";
        "outdoor", Adj, Location, "outdoor";
        "indoor", Adj, Location, "indoor";
        "inside", Noun, Location, "indoor";
        "room", Noun, Location, "room";
        "house", Noun, Location, "house";
        // ---- time ----
        "sunset", Noun, Time, "sunset";
        "sunrise", Noun, Time, "sunrise";
        "sun", Noun, Time, "sunrise";
        "midnight", Noun, Time, "midnight";
        "noon", Noun, Time, "noon";
        "morning", Noun, Time, "morning";
        "evening", Noun, Time, "evening";
        "night", Noun, Time, "night";
        "am", Noun, Time, "t_am";
        "pm", Noun, Time, "t_pm";
        "oclock", Noun, Time, "t_oclock";
        "daily", Adv, Time, "t_daily";
        "everyday", Adv, Time, "t_daily";
        "weekday", Noun, Time, "t_daily";
        "time", Noun, Time, "t_time";
        "hour", Noun, Time, "t_time";
        "minutes", Noun, Time, "t_time";
        // ---- values / units ----
        "degrees", Noun, Value, "u_degree";
        "fahrenheit", Noun, Value, "u_degree";
        "celsius", Noun, Value, "u_degree";
        "percent", Noun, Value, "u_percent";
        // ---- agents ----
        "alexa", Noun, Agent, "alexa";
        "user", Noun, Agent, "user";
        "everyone", Pron, Agent, "user";
        "somebody", Pron, Agent, "user";
        "nobody", Pron, Agent, "user";
        "me", Pron, Agent, "user";
        "i", Pron, Agent, "user";
        // ---- glue ----
        "if", Sconj, Misc, "g_if";
        "when", Sconj, Misc, "g_when";
        "then", Adv, Misc, "g_then";
        "while", Sconj, Misc, "g_while";
        "after", Adp, Misc, "g_after";
        "before", Adp, Misc, "g_before";
        "and", Cconj, Misc, "g_and";
        "or", Cconj, Misc, "g_or";
        "the", Det, Misc, "g_the";
        "a", Det, Misc, "g_a";
        "an", Det, Misc, "g_a";
        "all", Det, Misc, "g_all";
        "any", Det, Misc, "g_any";
        "every", Det, Misc, "g_all";
        "in", Adp, Misc, "g_in";
        "at", Adp, Misc, "g_at";
        "to", Part, Misc, "g_to";
        "of", Adp, Misc, "g_of";
        "for", Adp, Misc, "g_for";
        "with", Adp, Misc, "g_with";
        "it", Pron, Misc, "g_it";
        "its", Pron, Misc, "g_it";
        "not", Part, Misc, "g_not";
        "no", Det, Misc, "g_not";
    ]
}

/// Multi-word expressions merged at tokenization time. Longest first.
fn raw_mwes() -> &'static [&'static [&'static str]] {
    &[
        &["air", "conditioner"],
        &["smoke", "alarm"],
        &["smoke", "detector"],
        &["motion", "sensor"],
        &["contact", "sensor"],
        &["presence", "sensor"],
        &["temperature", "sensor"],
        &["humidity", "sensor"],
        &["leak", "sensor"],
        &["living", "room"],
        &["garage", "door"],
        &["coffee", "maker"],
        &["water", "heater"],
        &["home", "state"],
        &["air", "quality"],
        &["o", "clock"],
    ]
}

impl Lexicon {
    /// The process-wide lexicon instance.
    pub fn global() -> &'static Lexicon {
        static LEX: OnceLock<Lexicon> = OnceLock::new();
        LEX.get_or_init(|| {
            let mut entries = BTreeMap::new();
            for e in raw_entries() {
                // first entry for a word wins for POS priority (verb senses
                // of "open"/"lock"/"water" are disambiguated in `pos`)
                entries.entry(e.word).or_insert_with(|| e.clone());
            }
            let mwes = raw_mwes()
                .iter()
                .map(|words| {
                    let joined: String = words.join("_");
                    let key: &'static str = Box::leak(joined.into_boxed_str());
                    (key, words.to_vec())
                })
                .collect();
            Lexicon { entries, mwes }
        })
    }

    /// Primary entry for a word, if known.
    pub fn lookup(&self, word: &str) -> Option<&Entry> {
        self.entries.get(word)
    }

    /// All senses of a word (noun+verb homographs like "open", "lock").
    pub fn senses(&self, word: &str) -> Vec<&Entry> {
        raw_entries().iter().filter(|e| e.word == word).collect()
    }

    /// Concept id for a word, falling back to the word itself.
    pub fn concept_of(&self, word: &str) -> String {
        self.lookup(word)
            .map(|e| e.concept.to_string())
            .unwrap_or_else(|| word.to_string())
    }

    /// Category of a word (Misc when unknown).
    pub fn category(&self, word: &str) -> Category {
        self.lookup(word)
            .map(|e| e.category)
            .unwrap_or(Category::Misc)
    }

    /// Known multi-word expressions, longest first: (merged_token, parts).
    pub fn mwes(&self) -> &[(&'static str, Vec<&'static str>)] {
        &self.mwes
    }

    /// Does the lexicon know this word at all?
    pub fn contains(&self, word: &str) -> bool {
        self.entries.contains_key(word)
    }

    /// Number of distinct head words.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All words of a given category (used by corpus generation checks).
    pub fn words_in_category(&self, cat: Category) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self
            .entries
            .values()
            .filter(|e| e.category == cat)
            .map(|e| e.word)
            .collect();
        v.sort_unstable();
        v
    }
}

/// All lexicon entries, including homograph senses (for wordnet construction).
pub fn all_entries() -> &'static [Entry] {
    raw_entries()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synonyms_share_concepts() {
        let lex = Lexicon::global();
        assert_eq!(lex.concept_of("lamp"), lex.concept_of("bulb"));
        assert_eq!(lex.concept_of("tv"), lex.concept_of("television"));
        assert_eq!(lex.concept_of("shut"), lex.concept_of("closed"));
    }

    #[test]
    fn categories_are_correct() {
        let lex = Lexicon::global();
        assert_eq!(lex.category("thermostat"), Category::Device);
        assert_eq!(lex.category("temperature"), Category::Channel);
        assert_eq!(lex.category("kitchen"), Category::Location);
        assert_eq!(lex.category("sunset"), Category::Time);
        assert_eq!(lex.category("zzz-unknown"), Category::Misc);
    }

    #[test]
    fn homographs_have_multiple_senses() {
        let lex = Lexicon::global();
        let senses = lex.senses("open");
        assert!(senses.iter().any(|e| e.pos == Pos::Verb));
        assert!(senses.iter().any(|e| e.pos == Pos::Adj));
    }

    #[test]
    fn mwes_longest_forms_exist() {
        let lex = Lexicon::global();
        assert!(lex.contains("air_conditioner"));
        assert!(lex.contains("living_room"));
        assert!(lex.mwes().iter().any(|(k, _)| *k == "air_conditioner"));
    }

    #[test]
    fn vocabulary_is_substantial() {
        assert!(
            Lexicon::global().len() > 200,
            "lexicon too small: {}",
            Lexicon::global().len()
        );
    }
}
