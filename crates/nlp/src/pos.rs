//! Part-of-speech tagging.
//!
//! Lexicon lookup with light contextual disambiguation for noun/verb
//! homographs ("open the window" vs "the window is open"), plus suffix-rule
//! fallback for out-of-lexicon words — mirroring what the paper gets from
//! spaCy's tagger on this domain.

use crate::lexicon::{Lexicon, Pos};
use crate::token::Token;

/// A tagged token.
#[derive(Clone, Debug, PartialEq)]
pub struct Tagged {
    pub word: String,
    pub pos: Pos,
    pub value: Option<f32>,
}

/// Tag a token stream.
pub fn tag(tokens: &[Token]) -> Vec<Tagged> {
    let lex = Lexicon::global();
    let mut out = Vec::with_capacity(tokens.len());
    for (i, t) in tokens.iter().enumerate() {
        if t.value.is_some() {
            out.push(Tagged {
                word: t.word.clone(),
                pos: Pos::Num,
                value: t.value,
            });
            continue;
        }
        let senses = lex.senses(&t.word);
        let pos = if senses.is_empty() {
            fallback_pos(&t.word)
        } else if senses.len() == 1 {
            senses[0].pos
        } else {
            disambiguate(&senses.iter().map(|e| e.pos).collect::<Vec<_>>(), tokens, i)
        };
        out.push(Tagged {
            word: t.word.clone(),
            pos,
            value: None,
        });
    }
    out
}

/// Choose among homograph POS options using local context.
fn disambiguate(options: &[Pos], tokens: &[Token], i: usize) -> Pos {
    let prev = i.checked_sub(1).map(|p| tokens[p].word.as_str());
    let next = tokens.get(i + 1).map(|t| t.word.as_str());
    let has = |p: Pos| options.contains(&p);
    // after a determiner or preposition → noun reading ("the lock", "of water")
    if matches!(
        prev,
        Some("the" | "a" | "an" | "this" | "that" | "of" | "my" | "your")
    ) && has(Pos::Noun)
    {
        return Pos::Noun;
    }
    // after a copula → adjective/state reading ("door is open")
    if matches!(
        prev,
        Some("is" | "are" | "was" | "were" | "becomes" | "stays")
    ) && has(Pos::Adj)
    {
        return Pos::Adj;
    }
    // sentence-initial or after then/and/to/comma-break → imperative verb
    if (i == 0 || matches!(prev, Some("then" | "and" | "to" | "please"))) && has(Pos::Verb) {
        return Pos::Verb;
    }
    // directly before a determiner or possessive → verb reading
    // ("…, open the window"; the comma itself is lost at tokenization)
    if matches!(
        next,
        Some("the" | "a" | "an" | "my" | "your" | "all" | "every")
    ) && has(Pos::Verb)
    {
        return Pos::Verb;
    }
    // default: first listed sense
    options[0]
}

/// Suffix-rule fallback for unknown words.
fn fallback_pos(word: &str) -> Pos {
    if word.chars().all(|c| c.is_ascii_digit() || c == '.') {
        Pos::Num
    } else if word.ends_with("ing") || word.ends_with("ed") {
        Pos::Verb
    } else if word.ends_with("ly") {
        Pos::Adv
    } else {
        Pos::Noun
    }
}

/// Extract `[nouns, verbs]` from a tagged sequence (Algorithm 1, lines 2–3).
/// Noun-reading includes channels/devices/locations; verb-reading includes
/// action and event verbs.
pub fn nouns_and_verbs(tagged: &[Tagged]) -> (Vec<String>, Vec<String>) {
    let mut nouns = Vec::new();
    let mut verbs = Vec::new();
    for t in tagged {
        match t.pos {
            Pos::Noun => nouns.push(t.word.clone()),
            Pos::Verb => verbs.push(t.word.clone()),
            _ => {}
        }
    }
    (nouns, verbs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    #[test]
    fn imperative_verb_at_start() {
        let tagged = tag(&tokenize("Open the window"));
        assert_eq!(tagged[0].pos, Pos::Verb, "{tagged:?}");
        assert_eq!(tagged[2].pos, Pos::Noun);
    }

    #[test]
    fn copula_state_reading() {
        let tagged = tag(&tokenize("the door is open"));
        let open = tagged.iter().find(|t| t.word == "open").unwrap();
        assert_eq!(open.pos, Pos::Adj);
    }

    #[test]
    fn determiner_forces_noun() {
        let tagged = tag(&tokenize("check the lock"));
        let lock = tagged.iter().find(|t| t.word == "lock").unwrap();
        assert_eq!(lock.pos, Pos::Noun);
    }

    #[test]
    fn numbers_are_num() {
        let tagged = tag(&tokenize("set temperature to 72 degrees"));
        assert!(tagged
            .iter()
            .any(|t| t.pos == Pos::Num && t.value == Some(72.0)));
    }

    #[test]
    fn unknown_word_suffix_rules() {
        assert_eq!(fallback_pos("blinking"), Pos::Verb);
        assert_eq!(fallback_pos("suddenly"), Pos::Adv);
        assert_eq!(fallback_pos("gizmo"), Pos::Noun);
    }

    #[test]
    fn nouns_and_verbs_extraction() {
        let tagged = tag(&tokenize("Turn on the light if the door opens"));
        let (nouns, verbs) = nouns_and_verbs(&tagged);
        assert!(nouns.contains(&"light".to_string()));
        assert!(nouns.contains(&"door".to_string()));
        assert!(verbs.contains(&"turn".to_string()));
        assert!(verbs.contains(&"opens".to_string()));
    }
}
