//! Stop-word filtering for feature extraction.

use std::collections::BTreeSet;
use std::sync::OnceLock;

const STOPWORDS: &[&str] = &[
    "the", "a", "an", "if", "when", "then", "while", "and", "or", "in", "at", "to", "of", "for",
    "with", "it", "its", "is", "are", "be", "been", "was", "were", "this", "that", "these",
    "those", "my", "your", "his", "her", "their", "our", "will", "would", "should", "can", "could",
    "may", "might", "do", "does", "did", "have", "has", "had", "please",
];

fn set() -> &'static BTreeSet<&'static str> {
    static SET: OnceLock<BTreeSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// Is this word a stop word?
pub fn is_stopword(word: &str) -> bool {
    set().contains(word)
}

/// Filter stop words out of a word sequence.
pub fn remove_stopwords<'a>(words: impl IntoIterator<Item = &'a str>) -> Vec<&'a str> {
    words.into_iter().filter(|w| !is_stopword(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_function_words() {
        let out = remove_stopwords(vec!["turn", "on", "the", "light", "if", "door", "opens"]);
        assert_eq!(out, vec!["turn", "on", "light", "door", "opens"]);
    }

    #[test]
    fn content_words_survive() {
        assert!(!is_stopword("temperature"));
        assert!(is_stopword("the"));
    }
}
