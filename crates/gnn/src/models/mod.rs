//! The model zoo: every architecture the paper evaluates.

pub mod gcn;
pub mod gin;
pub mod gxn;
pub mod hetero;
pub mod infograph;
pub mod itgnn;

use crate::batch::PreparedGraph;
use glint_tensor::{ParamSet, Tape, Var};

pub use gcn::GcnModel;
pub use gin::GinModel;
pub use gxn::GxnModel;
pub use hetero::{HgslModel, MagcnModel, MagxnModel};
pub use infograph::InfoGraphModel;
pub use itgnn::{Itgnn, ItgnnConfig};

/// Result of one forward pass over a single graph.
pub struct ModelOutput {
    /// Graph-level embedding (`1 × embed_dim`).
    pub embedding: Var,
    /// Class logits (`1 × 2`).
    pub logits: Var,
    /// Auxiliary (pooling / infomax) loss to add with weight β, if any.
    pub aux_loss: Option<Var>,
}

/// A trainable graph-classification model.
///
/// `Send + Sync` is a supertrait so trainers can run forward/backward passes
/// for the graphs of a mini-batch on worker threads (every implementor is a
/// plain data struct around a [`ParamSet`], so the bound is free).
pub trait GraphModel: Send + Sync {
    fn name(&self) -> &'static str;
    fn params(&self) -> &ParamSet;
    fn params_mut(&mut self) -> &mut ParamSet;
    /// Dimension of [`ModelOutput::embedding`].
    fn embed_dim(&self) -> usize;
    /// Forward pass. `vars` must come from `self.params().bind(tape)`.
    fn forward(&self, tape: &mut Tape, vars: &[Var], g: &PreparedGraph) -> ModelOutput;
}

/// Shared hyper-parameters for the baseline models.
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    pub hidden: usize,
    pub embed: usize,
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            embed: 64,
            seed: 0,
        }
    }
}
