//! The model zoo: every architecture the paper evaluates.

pub mod gcn;
pub mod gin;
pub mod gxn;
pub mod hetero;
pub mod infograph;
pub mod itgnn;

use crate::batch::PreparedGraph;
use glint_tensor::{InferCtx, Matrix, ParamSet, Tape, Var};

pub use gcn::GcnModel;
pub use gin::GinModel;
pub use gxn::GxnModel;
pub use hetero::{HgslModel, MagcnModel, MagxnModel};
pub use infograph::InfoGraphModel;
pub use itgnn::{Itgnn, ItgnnConfig};

/// Result of one forward pass over a single graph.
pub struct ModelOutput {
    /// Graph-level embedding (`1 × embed_dim`).
    pub embedding: Var,
    /// Class logits (`1 × 2`).
    pub logits: Var,
    /// Auxiliary (pooling / infomax) loss to add with weight β, if any.
    pub aux_loss: Option<Var>,
}

/// Result of a tape-free forward pass: plain values, no autograd graph.
///
/// The matrices may come from the [`InferCtx`] buffer pool — callers that
/// run in a serving loop should hand them back with `ctx.release(..)` once
/// the scalars they need have been copied out.
pub struct InferOutput {
    /// Graph-level embedding (`1 × embed_dim`).
    pub embedding: Matrix,
    /// Class logits (`1 × 2`).
    pub logits: Matrix,
}

/// A trainable graph-classification model.
///
/// `Send + Sync` is a supertrait so trainers can run forward/backward passes
/// for the graphs of a mini-batch on worker threads (every implementor is a
/// plain data struct around a [`ParamSet`], so the bound is free).
pub trait GraphModel: Send + Sync {
    fn name(&self) -> &'static str;
    fn params(&self) -> &ParamSet;
    fn params_mut(&mut self) -> &mut ParamSet;
    /// Dimension of [`ModelOutput::embedding`].
    fn embed_dim(&self) -> usize;
    /// Forward pass. `vars` must come from `self.params().bind(tape)`.
    fn forward(&self, tape: &mut Tape, vars: &[Var], g: &PreparedGraph) -> ModelOutput;

    /// Tape-free forward pass for serving: values only, computed with the
    /// pooled [`InferCtx`] kernels, bitwise-identical to [`forward`]
    /// (property-tested in `tests/infer_equiv.rs`).
    ///
    /// The default body falls back to a throwaway tape, which is correct
    /// for every model; the architectures on the detector's serving path
    /// (ITGNN, GCN, GIN) override it with allocation-free kernels.
    // glint-lint: allow(tape-purity) — the default body is the documented
    // tape-backed fallback; every model on the serving path overrides it
    fn forward_infer(&self, ctx: &mut InferCtx, g: &PreparedGraph) -> InferOutput {
        let _ = &ctx;
        let mut tape = Tape::new();
        let vars = self.params().bind(&mut tape);
        let out = self.forward(&mut tape, &vars, g);
        InferOutput {
            embedding: tape.value(out.embedding).clone(),
            logits: tape.value(out.logits).clone(),
        }
    }
}

/// Shared hyper-parameters for the baseline models.
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    pub hidden: usize,
    pub embed: usize,
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            embed: 64,
            seed: 0,
        }
    }
}
