//! InfoGraph (IFG) baseline: a GIN encoder trained to maximize mutual
//! information between node-level ("local") and graph-level ("global")
//! embeddings, DGI-style. The MI term appears as the auxiliary loss — a
//! bilinear discriminator scores true (node, graph) pairs against pairs with
//! corrupted (row-shuffled) node features.

use crate::batch::PreparedGraph;
use crate::layers::{readout_sum, Dense, GinLayer};
use crate::models::{GraphModel, ModelConfig, ModelOutput};
use glint_tensor::{init, ParamSet, Tape, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

pub struct InfoGraphModel {
    params: ParamSet,
    l0: GinLayer,
    l1: GinLayer,
    /// Bilinear discriminator matrix (hidden × embed).
    disc: glint_tensor::ParamId,
    fuse: Dense,
    head: Dense,
    embed: usize,
}

impl InfoGraphModel {
    pub fn new(in_dim: usize, config: ModelConfig) -> Self {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let l0 = GinLayer::new(&mut params, "enc.l0", in_dim, config.hidden, &mut rng);
        let l1 = GinLayer::new(
            &mut params,
            "enc.l1",
            config.hidden,
            config.hidden,
            &mut rng,
        );
        let disc = params.add(
            "enc.disc",
            init::xavier_uniform(&mut rng, config.hidden, config.embed),
        );
        let fuse = Dense::new(&mut params, "fuse", config.hidden, config.embed, &mut rng);
        let head = Dense::new(&mut params, "head", config.embed, 2, &mut rng);
        Self {
            params,
            l0,
            l1,
            disc,
            fuse,
            head,
            embed: config.embed,
        }
    }
}

impl GraphModel for InfoGraphModel {
    fn name(&self) -> &'static str {
        "InfoGraph"
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn embed_dim(&self) -> usize {
        self.embed
    }

    fn forward(&self, tape: &mut Tape, vars: &[Var], g: &PreparedGraph) -> ModelOutput {
        let x = tape.constant(g.homo_features());
        let h0 = self.l0.forward(tape, vars, &g.adj_sum, x);
        let a0 = tape.relu(h0);
        let h1 = self.l1.forward(tape, vars, &g.adj_sum, a0);
        let local = tape.relu(h1); // n × hidden
        let red = readout_sum(tape, local); // 1 × hidden
        let fused = self.fuse.forward(tape, vars, red);
        let embedding = tape.tanh(fused); // 1 × embed

        // MI discriminator: score_i = h_i · D · gᵀ
        let g_t = tape.transpose(embedding); // embed × 1
        let dg = tape.matmul(vars[self.disc.0], g_t); // hidden × 1
        let pos_logits = tape.matmul(local, dg); // n × 1

        // corrupted pairing: shuffle node rows
        let mut perm: Vec<usize> = (0..g.n).collect();
        let mut rng = StdRng::seed_from_u64(g.n as u64 * 31 + 7);
        perm.shuffle(&mut rng);
        if g.n >= 2 && perm.iter().enumerate().all(|(i, &p)| i == p) {
            perm.swap(0, 1);
        }
        let corrupted = tape.gather_rows(local, &perm);
        let neg_logits = tape.matmul(corrupted, dg);

        let aux = if g.n >= 2 {
            let pos = tape.bce_with_logits(pos_logits, &vec![1.0; g.n]);
            let neg = tape.bce_with_logits(neg_logits, &vec![0.0; g.n]);
            let sum = tape.add(pos, neg);
            Some(tape.scale(sum, 0.5))
        } else {
            None
        };

        let logits = self.head.forward(tape, vars, embedding);
        ModelOutput {
            embedding,
            logits,
            aux_loss: aux,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::tests_support::homo_line_graph;

    #[test]
    fn forward_with_mi_aux() {
        let g = PreparedGraph::from_graph(&homo_line_graph(6, 4));
        let model = InfoGraphModel::new(4, ModelConfig::default());
        let mut tape = Tape::new();
        let vars = model.params().bind(&mut tape);
        let out = model.forward(&mut tape, &vars, &g);
        assert_eq!(tape.value(out.logits).shape(), (1, 2));
        let aux = out.aux_loss.expect("MI loss present");
        assert!(tape.value(aux).get(0, 0) > 0.0);
    }

    #[test]
    fn single_node_graph_skips_mi() {
        let g = PreparedGraph::from_graph(&homo_line_graph(1, 4));
        let model = InfoGraphModel::new(4, ModelConfig::default());
        let mut tape = Tape::new();
        let vars = model.params().bind(&mut tape);
        let out = model.forward(&mut tape, &vars, &g);
        assert!(out.aux_loss.is_none());
    }
}
