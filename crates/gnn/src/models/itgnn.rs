//! ITGNN — the paper's contribution (Algorithm 2): a unified model for
//! homogeneous *and* heterogeneous interaction graphs.
//!
//! Pipeline per graph:
//! 1. **Metapath-based node transformation** (heterogeneous → homogeneous-
//!    type): per-platform feature projection, intra-metapath instance
//!    averaging, inter-metapath attention fusion ([`MetapathEncoder`]).
//! 2. **Multi-scale graph generation**: a [`VIPool`] pyramid produces `D`
//!    scales; each scale is propagated with [`TagConv`] layers (exact
//!    polynomial propagation, no convolution approximation).
//! 3. **Multi-scale fusion**: per-scale mean‖max readouts are concatenated
//!    and fused by fully-connected layers into the graph embedding `z_G`.
//!
//! The classification head gives ITGNN-S (Eq. 2, with β-weighted pooling
//! loss as `aux_loss`); the embedding feeds the contrastive objective of
//! ITGNN-C (Eq. 1) and Algorithm 3's drift detector.

use crate::batch::PreparedGraph;
use crate::layers::{readout_mean_max, readout_mean_max_infer, Dense, TagConv};
use crate::metapath::MetapathEncoder;
use crate::models::{GraphModel, InferOutput, ModelOutput};
use crate::vipool::VIPool;
use glint_rules::Platform;
use glint_tensor::{infer, InferCtx, Matrix, ParamSet, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// ITGNN hyper-parameters (the Figure 7 ablation axes).
#[derive(Clone, Debug)]
pub struct ItgnnConfig {
    pub hidden: usize,
    pub embed: usize,
    /// Number of scales D in the multi-scale generator (Fig. 7: best at 3).
    pub n_scales: usize,
    /// VIPool keep ratio (Fig. 7: best at 0.6; 1.0 disables pooling).
    pub pool_ratio: f32,
    /// TAG propagation layers per scale (Fig. 7: best at 2, over-smooths at 6).
    pub prop_layers: usize,
    /// TAG polynomial order (hops per propagation layer).
    pub tag_hops: usize,
    /// Ablation: drop intra-metapath aggregation.
    pub disable_intra: bool,
    /// Ablation: drop inter-metapath attention (uniform fusion).
    pub disable_inter: bool,
    /// Bound the graph embedding with tanh (good for classification
    /// stability). Contrastive / drift usage wants the unbounded latent —
    /// saturated tanh coordinates collapse out-of-distribution graphs onto
    /// the same hypercube corners as the training clusters.
    pub bounded_embedding: bool,
    pub seed: u64,
}

impl Default for ItgnnConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            embed: 64,
            n_scales: 3,
            pool_ratio: 0.6,
            prop_layers: 2,
            tag_hops: 2,
            disable_intra: false,
            disable_inter: false,
            bounded_embedding: true,
            seed: 0,
        }
    }
}

pub struct Itgnn {
    params: ParamSet,
    encoder: MetapathEncoder,
    /// `scales[d][l]`: TAG conv l at scale d.
    scales: Vec<Vec<TagConv>>,
    pools: Vec<VIPool>,
    fuse: Dense,
    head: Dense,
    config: ItgnnConfig,
}

impl Itgnn {
    /// Build for a set of node types (platform, feature dim). A single type
    /// makes the same architecture run homogeneous data — the unified-model
    /// property of the paper.
    pub fn new(types: &[(Platform, usize)], config: ItgnnConfig) -> Self {
        assert!(config.n_scales >= 1 && config.prop_layers >= 1);
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut encoder =
            MetapathEncoder::new(&mut params, "enc.meta", types, config.hidden, &mut rng);
        encoder.disable_intra = config.disable_intra;
        encoder.disable_inter = config.disable_inter;
        let mut scales = Vec::new();
        let mut pools = Vec::new();
        for d in 0..config.n_scales {
            let convs: Vec<TagConv> = (0..config.prop_layers)
                .map(|l| {
                    TagConv::new(
                        &mut params,
                        &format!("enc.scale{d}.conv{l}"),
                        config.hidden,
                        config.hidden,
                        config.tag_hops,
                        &mut rng,
                    )
                })
                .collect();
            scales.push(convs);
            if d + 1 < config.n_scales {
                pools.push(VIPool::new(
                    &mut params,
                    &format!("enc.scale{d}.pool"),
                    config.hidden,
                    config.pool_ratio,
                    &mut rng,
                ));
            }
        }
        let fuse = Dense::new(
            &mut params,
            "fuse",
            config.n_scales * 2 * config.hidden,
            config.embed,
            &mut rng,
        );
        let head = Dense::new(&mut params, "head", config.embed, 2, &mut rng);
        Self {
            params,
            encoder,
            scales,
            pools,
            fuse,
            head,
            config,
        }
    }

    /// Convenience constructor for a homogeneous platform.
    pub fn homogeneous(platform: Platform, in_dim: usize, config: ItgnnConfig) -> Self {
        Self::new(&[(platform, in_dim)], config)
    }

    pub fn config(&self) -> &ItgnnConfig {
        &self.config
    }
}

impl GraphModel for Itgnn {
    fn name(&self) -> &'static str {
        "ITGNN"
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn embed_dim(&self) -> usize {
        self.config.embed
    }

    fn forward(&self, tape: &mut Tape, vars: &[Var], g: &PreparedGraph) -> ModelOutput {
        // 1. metapath-based node transformation → homogeneous-type graph
        let mut h = self.encoder.forward(tape, vars, g);
        let mut adj_norm = g.adj_norm.clone();
        let mut adj_row = g.adj_row.clone();

        // 2. multi-scale generation + propagation
        let mut readouts: Option<Var> = None;
        let mut pool_losses: Vec<Var> = Vec::new();
        for (d, convs) in self.scales.iter().enumerate() {
            for conv in convs {
                h = conv.forward(tape, vars, &adj_norm, h);
                h = tape.relu(h);
            }
            let r = readout_mean_max(tape, h);
            readouts = Some(match readouts {
                Some(prev) => tape.concat_cols(prev, r),
                None => r,
            });
            if d + 1 < self.scales.len() {
                let pooled =
                    self.pools[d].forward(tape, vars, &adj_norm, &adj_row, h, (g.n + d) as u64);
                h = pooled.h;
                adj_norm = pooled.adj_norm;
                adj_row = pooled.adj_row;
                pool_losses.push(pooled.pool_loss);
            }
        }

        // 3. multi-scale fusion
        // scale count is a construction-time constant >= 1, so the readout
        // accumulator is always seeded
        let red = readouts.expect("at least one scale");
        let fused = self.fuse.forward(tape, vars, red);
        let embedding = if self.config.bounded_embedding {
            tape.tanh(fused)
        } else {
            fused
        };
        let logits = self.head.forward(tape, vars, embedding);
        let aux_loss = pool_losses.into_iter().reduce(|a, b| {
            let s = tape.add(a, b);
            tape.scale(s, 0.5)
        });
        ModelOutput {
            embedding,
            logits,
            aux_loss,
        }
    }

    /// Tape-free serving pass: same pipeline as [`forward`](Self::forward)
    /// minus every training-only artefact (no tape nodes, no pool losses,
    /// no negative sampling), all activations drawn from the [`InferCtx`]
    /// buffer pool.
    fn forward_infer(&self, ctx: &mut InferCtx, g: &PreparedGraph) -> InferOutput {
        let params = &self.params;
        // 1. metapath-based node transformation → homogeneous-type graph
        let mut h = self.encoder.forward_infer(ctx, params, g);
        let mut adj_norm = g.adj_norm.clone();
        let mut adj_row = g.adj_row.clone();

        // 2. multi-scale generation + propagation
        let mut readouts: Option<Matrix> = None;
        for (d, convs) in self.scales.iter().enumerate() {
            for conv in convs {
                let next = conv.forward_infer(ctx, params, &adj_norm, &h);
                ctx.release(std::mem::replace(&mut h, next));
                infer::relu_inplace(&mut h);
            }
            let r = readout_mean_max_infer(ctx, &h);
            readouts = Some(match readouts {
                Some(prev) => {
                    let cc = ctx.concat_cols(&prev, &r);
                    ctx.release(prev);
                    ctx.release(r);
                    cc
                }
                None => r,
            });
            if d + 1 < self.scales.len() {
                let pooled = self.pools[d].forward_infer(ctx, params, &adj_row, &h);
                ctx.release(std::mem::replace(&mut h, pooled.h));
                adj_norm = pooled.adj_norm;
                adj_row = pooled.adj_row;
            }
        }
        ctx.release(h);

        // 3. multi-scale fusion
        // glint-lint: allow(hot-unwrap) — scale count is a construction-time
        // constant >= 1, so the readout accumulator is always seeded
        let red = readouts.expect("at least one scale");
        let mut embedding = self.fuse.forward_infer(ctx, params, &red);
        ctx.release(red);
        if self.config.bounded_embedding {
            infer::tanh_inplace(&mut embedding);
        }
        let logits = self.head.forward_infer(ctx, params, &embedding);
        InferOutput { embedding, logits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::tests_support::{hetero_small, homo_line_graph, labeled_pair};

    #[test]
    fn unified_model_handles_homo_and_hetero() {
        let homo = PreparedGraph::from_graph(&homo_line_graph(5, 4));
        let m_h = Itgnn::homogeneous(Platform::Ifttt, 4, ItgnnConfig::default());
        let mut tape = Tape::new();
        let vars = m_h.params().bind(&mut tape);
        let out = m_h.forward(&mut tape, &vars, &homo);
        assert_eq!(tape.value(out.logits).shape(), (1, 2));

        let het = hetero_small();
        let types = vec![
            (Platform::Ifttt, 4),
            (Platform::SmartThings, 4),
            (Platform::Alexa, 6),
        ];
        let m_het = Itgnn::new(&types, ItgnnConfig::default());
        let mut tape2 = Tape::new();
        let vars2 = m_het.params().bind(&mut tape2);
        let out2 = m_het.forward(&mut tape2, &vars2, &het);
        assert!(tape2.value(out2.logits).all_finite());
        assert!(
            out2.aux_loss.is_some(),
            "multi-scale ITGNN carries pool loss"
        );
    }

    #[test]
    fn one_scale_has_no_pool_loss() {
        let cfg = ItgnnConfig {
            n_scales: 1,
            ..Default::default()
        };
        let m = Itgnn::homogeneous(Platform::Ifttt, 4, cfg);
        let g = PreparedGraph::from_graph(&homo_line_graph(4, 4));
        let mut tape = Tape::new();
        let vars = m.params().bind(&mut tape);
        let out = m.forward(&mut tape, &vars, &g);
        assert!(out.aux_loss.is_none());
    }

    #[test]
    fn scale_count_changes_param_count() {
        let small = Itgnn::homogeneous(
            Platform::Ifttt,
            4,
            ItgnnConfig {
                n_scales: 1,
                ..Default::default()
            },
        );
        let big = Itgnn::homogeneous(
            Platform::Ifttt,
            4,
            ItgnnConfig {
                n_scales: 4,
                ..Default::default()
            },
        );
        assert!(big.params().num_scalars() > small.params().num_scalars());
    }

    #[test]
    fn structure_sensitivity() {
        let (a, b) = labeled_pair(4);
        let m = Itgnn::homogeneous(Platform::Ifttt, 4, ItgnnConfig::default());
        let run = |g: &PreparedGraph| {
            let mut tape = Tape::new();
            let vars = m.params().bind(&mut tape);
            let out = m.forward(&mut tape, &vars, g);
            tape.value(out.embedding).clone()
        };
        assert!(run(&a).sq_dist(&run(&b)) > 1e-10);
    }

    #[test]
    fn transfer_freezing_targets_encoder_layers() {
        let mut m = Itgnn::homogeneous(Platform::Ifttt, 4, ItgnnConfig::default());
        let frozen = m.params_mut().freeze_prefix("enc.");
        assert!(frozen > 0);
        // head and fuse stay live
        let total = m.params().len();
        assert!(m.params().frozen_count() < total);
    }

    #[test]
    fn tiny_two_node_graph_is_safe() {
        let g = PreparedGraph::from_graph(&homo_line_graph(2, 4));
        let m = Itgnn::homogeneous(Platform::Ifttt, 4, ItgnnConfig::default());
        let mut tape = Tape::new();
        let vars = m.params().bind(&mut tape);
        let out = m.forward(&mut tape, &vars, &g);
        assert!(tape.value(out.logits).all_finite());
    }
}
