//! GXN baseline (graph cross network): a VIPool pyramid over two scales with
//! GCN propagation at each scale and concatenated readouts. Carries the
//! infomax pooling loss as its auxiliary objective.

use crate::batch::PreparedGraph;
use crate::layers::{readout_mean_max, Dense, GcnLayer};
use crate::models::{GraphModel, ModelConfig, ModelOutput};
use crate::vipool::VIPool;
use glint_tensor::{ParamSet, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct GxnModel {
    params: ParamSet,
    conv0: GcnLayer,
    pool: VIPool,
    conv1: GcnLayer,
    fuse: Dense,
    head: Dense,
    embed: usize,
}

impl GxnModel {
    pub fn new(in_dim: usize, config: ModelConfig) -> Self {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let conv0 = GcnLayer::new(&mut params, "enc.l0", in_dim, config.hidden, &mut rng);
        let pool = VIPool::new(&mut params, "enc.pool", config.hidden, 0.6, &mut rng);
        let conv1 = GcnLayer::new(
            &mut params,
            "enc.l1",
            config.hidden,
            config.hidden,
            &mut rng,
        );
        let fuse = Dense::new(
            &mut params,
            "fuse",
            4 * config.hidden,
            config.embed,
            &mut rng,
        );
        let head = Dense::new(&mut params, "head", config.embed, 2, &mut rng);
        Self {
            params,
            conv0,
            pool,
            conv1,
            fuse,
            head,
            embed: config.embed,
        }
    }
}

impl GraphModel for GxnModel {
    fn name(&self) -> &'static str {
        "GXN"
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn embed_dim(&self) -> usize {
        self.embed
    }

    fn forward(&self, tape: &mut Tape, vars: &[Var], g: &PreparedGraph) -> ModelOutput {
        let x = tape.constant(g.homo_features());
        let h0 = self.conv0.forward(tape, vars, &g.adj_norm, x);
        let a0 = tape.relu(h0);
        let r0 = readout_mean_max(tape, a0);

        let pooled = self
            .pool
            .forward(tape, vars, &g.adj_norm, &g.adj_row, a0, g.n as u64);
        let h1 = self.conv1.forward(tape, vars, &pooled.adj_norm, pooled.h);
        let a1 = tape.relu(h1);
        let r1 = readout_mean_max(tape, a1);

        let red = tape.concat_cols(r0, r1);
        let fused = self.fuse.forward(tape, vars, red);
        let embedding = tape.tanh(fused);
        let logits = self.head.forward(tape, vars, embedding);
        ModelOutput {
            embedding,
            logits,
            aux_loss: Some(pooled.pool_loss),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::tests_support::homo_line_graph;

    #[test]
    fn forward_shapes_and_aux_loss() {
        let g = PreparedGraph::from_graph(&homo_line_graph(8, 4));
        let model = GxnModel::new(4, ModelConfig::default());
        let mut tape = Tape::new();
        let vars = model.params().bind(&mut tape);
        let out = model.forward(&mut tape, &vars, &g);
        assert_eq!(tape.value(out.logits).shape(), (1, 2));
        let aux = out.aux_loss.expect("GXN carries a pooling loss");
        assert!(tape.value(aux).get(0, 0) > 0.0);
    }

    #[test]
    fn works_on_tiny_graphs() {
        // 2-node graphs are the paper's minimum size
        let g = PreparedGraph::from_graph(&homo_line_graph(2, 4));
        let model = GxnModel::new(4, ModelConfig::default());
        let mut tape = Tape::new();
        let vars = model.params().bind(&mut tape);
        let out = model.forward(&mut tape, &vars, &g);
        assert!(tape.value(out.logits).all_finite());
    }
}
