//! GCN baseline (Kipf & Welling): two normalized-propagation layers, a
//! mean‖max readout, and a linear head. Homogeneous graphs only.

use crate::batch::PreparedGraph;
use crate::layers::{readout_mean_max, readout_mean_max_infer, Dense, GcnLayer};
use crate::models::{GraphModel, InferOutput, ModelConfig, ModelOutput};
use glint_tensor::{infer, InferCtx, ParamSet, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct GcnModel {
    params: ParamSet,
    l0: GcnLayer,
    l1: GcnLayer,
    fuse: Dense,
    head: Dense,
    embed: usize,
}

impl GcnModel {
    pub fn new(in_dim: usize, config: ModelConfig) -> Self {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let l0 = GcnLayer::new(&mut params, "enc.l0", in_dim, config.hidden, &mut rng);
        let l1 = GcnLayer::new(
            &mut params,
            "enc.l1",
            config.hidden,
            config.hidden,
            &mut rng,
        );
        let fuse = Dense::new(
            &mut params,
            "fuse",
            2 * config.hidden,
            config.embed,
            &mut rng,
        );
        let head = Dense::new(&mut params, "head", config.embed, 2, &mut rng);
        Self {
            params,
            l0,
            l1,
            fuse,
            head,
            embed: config.embed,
        }
    }
}

impl GraphModel for GcnModel {
    fn name(&self) -> &'static str {
        "GCN"
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn embed_dim(&self) -> usize {
        self.embed
    }

    fn forward(&self, tape: &mut Tape, vars: &[Var], g: &PreparedGraph) -> ModelOutput {
        let x = tape.constant(g.homo_features());
        let h0 = self.l0.forward(tape, vars, &g.adj_norm, x);
        let a0 = tape.relu(h0);
        let h1 = self.l1.forward(tape, vars, &g.adj_norm, a0);
        let a1 = tape.relu(h1);
        let red = readout_mean_max(tape, a1);
        let fused = self.fuse.forward(tape, vars, red);
        let embedding = tape.tanh(fused);
        let logits = self.head.forward(tape, vars, embedding);
        ModelOutput {
            embedding,
            logits,
            aux_loss: None,
        }
    }

    /// Tape-free serving pass (bitwise-identical values to [`forward`]).
    fn forward_infer(&self, ctx: &mut InferCtx, g: &PreparedGraph) -> InferOutput {
        let params = &self.params;
        let x = g.homo_features();
        let mut h = self.l0.forward_infer(ctx, params, &g.adj_norm, &x);
        infer::relu_inplace(&mut h);
        let next = self.l1.forward_infer(ctx, params, &g.adj_norm, &h);
        ctx.release(std::mem::replace(&mut h, next));
        infer::relu_inplace(&mut h);
        let red = readout_mean_max_infer(ctx, &h);
        ctx.release(h);
        let mut embedding = self.fuse.forward_infer(ctx, params, &red);
        ctx.release(red);
        infer::tanh_inplace(&mut embedding);
        let logits = self.head.forward_infer(ctx, params, &embedding);
        InferOutput { embedding, logits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::tests_support::{homo_line_graph, labeled_pair};

    #[test]
    fn forward_shapes() {
        let g = PreparedGraph::from_graph(&homo_line_graph(5, 4));
        let model = GcnModel::new(4, ModelConfig::default());
        let mut tape = Tape::new();
        let vars = model.params().bind(&mut tape);
        let out = model.forward(&mut tape, &vars, &g);
        assert_eq!(tape.value(out.embedding).shape(), (1, 64));
        assert_eq!(tape.value(out.logits).shape(), (1, 2));
        assert!(out.aux_loss.is_none());
    }

    #[test]
    fn embedding_bounded_by_tanh() {
        let g = PreparedGraph::from_graph(&homo_line_graph(4, 3));
        let model = GcnModel::new(3, ModelConfig::default());
        let mut tape = Tape::new();
        let vars = model.params().bind(&mut tape);
        let out = model.forward(&mut tape, &vars, &g);
        assert!(tape
            .value(out.embedding)
            .data()
            .iter()
            .all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn different_graphs_embed_differently() {
        let (ga, gb) = labeled_pair(4);
        let model = GcnModel::new(4, ModelConfig::default());
        let run = |g: &PreparedGraph| {
            let mut tape = Tape::new();
            let vars = model.params().bind(&mut tape);
            let out = model.forward(&mut tape, &vars, g);
            tape.value(out.embedding).clone()
        };
        assert!(run(&ga).sq_dist(&run(&gb)) > 1e-10);
    }
}
