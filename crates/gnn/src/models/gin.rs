//! GIN baseline (Xu et al.): sum-aggregation isomorphism layers with
//! per-layer sum readouts (the jumping-knowledge concatenation of the
//! original paper). Homogeneous graphs only.

use crate::batch::PreparedGraph;
use crate::layers::{readout_sum, readout_sum_infer, Dense, GinLayer};
use crate::models::{GraphModel, InferOutput, ModelConfig, ModelOutput};
use glint_tensor::{infer, InferCtx, Matrix, ParamSet, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct GinModel {
    params: ParamSet,
    layers: Vec<GinLayer>,
    fuse: Dense,
    head: Dense,
    embed: usize,
}

impl GinModel {
    pub fn new(in_dim: usize, config: ModelConfig) -> Self {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let l0 = GinLayer::new(&mut params, "enc.l0", in_dim, config.hidden, &mut rng);
        let l1 = GinLayer::new(
            &mut params,
            "enc.l1",
            config.hidden,
            config.hidden,
            &mut rng,
        );
        let fuse = Dense::new(
            &mut params,
            "fuse",
            2 * config.hidden,
            config.embed,
            &mut rng,
        );
        let head = Dense::new(&mut params, "head", config.embed, 2, &mut rng);
        Self {
            params,
            layers: vec![l0, l1],
            fuse,
            head,
            embed: config.embed,
        }
    }
}

impl GraphModel for GinModel {
    fn name(&self) -> &'static str {
        "GIN"
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn embed_dim(&self) -> usize {
        self.embed
    }

    fn forward(&self, tape: &mut Tape, vars: &[Var], g: &PreparedGraph) -> ModelOutput {
        let x = tape.constant(g.homo_features());
        let mut h = x;
        let mut readouts: Option<Var> = None;
        for layer in &self.layers {
            h = layer.forward(tape, vars, &g.adj_sum, h);
            h = tape.relu(h);
            let r = readout_sum(tape, h);
            readouts = Some(match readouts {
                Some(prev) => tape.concat_cols(prev, r),
                None => r,
            });
        }
        // layer count is a construction-time constant >= 1, so the readout
        // accumulator is always seeded
        let red = readouts.expect("at least one layer");
        let fused = self.fuse.forward(tape, vars, red);
        let embedding = tape.tanh(fused);
        let logits = self.head.forward(tape, vars, embedding);
        ModelOutput {
            embedding,
            logits,
            aux_loss: None,
        }
    }

    /// Tape-free serving pass (bitwise-identical values to [`forward`]).
    fn forward_infer(&self, ctx: &mut InferCtx, g: &PreparedGraph) -> InferOutput {
        let params = &self.params;
        let x = g.homo_features();
        let mut h: Option<Matrix> = None;
        let mut readouts: Option<Matrix> = None;
        for layer in &self.layers {
            let mut next = layer.forward_infer(ctx, params, &g.adj_sum, h.as_ref().unwrap_or(&x));
            if let Some(prev) = h.take() {
                ctx.release(prev);
            }
            infer::relu_inplace(&mut next);
            let r = readout_sum_infer(ctx, &next);
            h = Some(next);
            readouts = Some(match readouts {
                Some(prev) => {
                    let cc = ctx.concat_cols(&prev, &r);
                    ctx.release(prev);
                    ctx.release(r);
                    cc
                }
                None => r,
            });
        }
        if let Some(last) = h {
            ctx.release(last);
        }
        // glint-lint: allow(hot-unwrap) — layer count is a construction-time
        // constant >= 1, so the readout accumulator is always seeded
        let red = readouts.expect("at least one layer");
        let mut embedding = self.fuse.forward_infer(ctx, params, &red);
        ctx.release(red);
        infer::tanh_inplace(&mut embedding);
        let logits = self.head.forward_infer(ctx, params, &embedding);
        InferOutput { embedding, logits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::tests_support::{homo_line_graph, labeled_pair};

    #[test]
    fn forward_shapes() {
        let g = PreparedGraph::from_graph(&homo_line_graph(6, 5));
        let model = GinModel::new(5, ModelConfig::default());
        let mut tape = Tape::new();
        let vars = model.params().bind(&mut tape);
        let out = model.forward(&mut tape, &vars, &g);
        assert_eq!(tape.value(out.logits).shape(), (1, 2));
        assert_eq!(tape.value(out.embedding).shape(), (1, 64));
    }

    #[test]
    fn structure_sensitivity() {
        let (a, b) = labeled_pair(5);
        let model = GinModel::new(5, ModelConfig::default());
        let run = |g: &PreparedGraph| {
            let mut tape = Tape::new();
            let vars = model.params().bind(&mut tape);
            let out = model.forward(&mut tape, &vars, g);
            tape.value(out.embedding).clone()
        };
        assert!(
            run(&a).sq_dist(&run(&b)) > 1e-10,
            "GIN must separate different structures"
        );
    }
}
