//! Heterogeneous baselines of §4.5: MAGCN, MAGXN (MAGNN graph converter in
//! front of GCN / GXN cores) and HGSL (heterogeneous graph structure
//! learning).

use crate::batch::PreparedGraph;
use crate::layers::{readout_mean_max, Dense, GcnLayer};
use crate::metapath::MetapathEncoder;
use crate::models::{GraphModel, ModelOutput};
use crate::vipool::VIPool;
use glint_rules::Platform;
use glint_tensor::{Csr, ParamSet, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// MAGCN: MAGNN converter + two GCN layers.
pub struct MagcnModel {
    params: ParamSet,
    encoder: MetapathEncoder,
    l0: GcnLayer,
    l1: GcnLayer,
    fuse: Dense,
    head: Dense,
    embed: usize,
}

impl MagcnModel {
    pub fn new(types: &[(Platform, usize)], hidden: usize, embed: usize, seed: u64) -> Self {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let encoder = MetapathEncoder::new(&mut params, "enc.meta", types, hidden, &mut rng);
        let l0 = GcnLayer::new(&mut params, "enc.l0", hidden, hidden, &mut rng);
        let l1 = GcnLayer::new(&mut params, "enc.l1", hidden, hidden, &mut rng);
        let fuse = Dense::new(&mut params, "fuse", 2 * hidden, embed, &mut rng);
        let head = Dense::new(&mut params, "head", embed, 2, &mut rng);
        Self {
            params,
            encoder,
            l0,
            l1,
            fuse,
            head,
            embed,
        }
    }
}

impl GraphModel for MagcnModel {
    fn name(&self) -> &'static str {
        "MAGCN"
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn embed_dim(&self) -> usize {
        self.embed
    }

    fn forward(&self, tape: &mut Tape, vars: &[Var], g: &PreparedGraph) -> ModelOutput {
        let h = self.encoder.forward(tape, vars, g);
        let h0 = self.l0.forward(tape, vars, &g.adj_norm, h);
        let a0 = tape.relu(h0);
        let h1 = self.l1.forward(tape, vars, &g.adj_norm, a0);
        let a1 = tape.relu(h1);
        let red = readout_mean_max(tape, a1);
        let fused = self.fuse.forward(tape, vars, red);
        let embedding = tape.tanh(fused);
        let logits = self.head.forward(tape, vars, embedding);
        ModelOutput {
            embedding,
            logits,
            aux_loss: None,
        }
    }
}

/// MAGXN: MAGNN converter + GXN core (VIPool pyramid) — the heavier
/// architecture the paper finds slower and weaker than MAGCN.
pub struct MagxnModel {
    params: ParamSet,
    encoder: MetapathEncoder,
    conv0: GcnLayer,
    pool: VIPool,
    conv1: GcnLayer,
    fuse: Dense,
    head: Dense,
    embed: usize,
}

impl MagxnModel {
    pub fn new(types: &[(Platform, usize)], hidden: usize, embed: usize, seed: u64) -> Self {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let encoder = MetapathEncoder::new(&mut params, "enc.meta", types, hidden, &mut rng);
        let conv0 = GcnLayer::new(&mut params, "enc.l0", hidden, hidden, &mut rng);
        let pool = VIPool::new(&mut params, "enc.pool", hidden, 0.6, &mut rng);
        let conv1 = GcnLayer::new(&mut params, "enc.l1", hidden, hidden, &mut rng);
        let fuse = Dense::new(&mut params, "fuse", 4 * hidden, embed, &mut rng);
        let head = Dense::new(&mut params, "head", embed, 2, &mut rng);
        Self {
            params,
            encoder,
            conv0,
            pool,
            conv1,
            fuse,
            head,
            embed,
        }
    }
}

impl GraphModel for MagxnModel {
    fn name(&self) -> &'static str {
        "MAGXN"
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn embed_dim(&self) -> usize {
        self.embed
    }

    fn forward(&self, tape: &mut Tape, vars: &[Var], g: &PreparedGraph) -> ModelOutput {
        let h = self.encoder.forward(tape, vars, g);
        let h0 = self.conv0.forward(tape, vars, &g.adj_norm, h);
        let a0 = tape.relu(h0);
        let r0 = readout_mean_max(tape, a0);
        let pooled = self
            .pool
            .forward(tape, vars, &g.adj_norm, &g.adj_row, a0, g.n as u64);
        let h1 = self.conv1.forward(tape, vars, &pooled.adj_norm, pooled.h);
        let a1 = tape.relu(h1);
        let r1 = readout_mean_max(tape, a1);
        let red = tape.concat_cols(r0, r1);
        let fused = self.fuse.forward(tape, vars, red);
        let embedding = tape.tanh(fused);
        let logits = self.head.forward(tape, vars, embedding);
        ModelOutput {
            embedding,
            logits,
            aux_loss: Some(pooled.pool_loss),
        }
    }
}

/// HGSL: heterogeneous graph structure *learning* — augments the observed
/// adjacency with a feature-similarity graph computed from the projected
/// node embeddings, then propagates over both structures with separate GCN
/// branches.
pub struct HgslModel {
    params: ParamSet,
    encoder: MetapathEncoder,
    conv_obs: GcnLayer,
    conv_sim: GcnLayer,
    l1: GcnLayer,
    fuse: Dense,
    head: Dense,
    embed: usize,
    /// Cosine-similarity threshold for the learned structure.
    pub sim_threshold: f32,
}

impl HgslModel {
    pub fn new(types: &[(Platform, usize)], hidden: usize, embed: usize, seed: u64) -> Self {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let encoder = MetapathEncoder::new(&mut params, "enc.meta", types, hidden, &mut rng);
        let conv_obs = GcnLayer::new(&mut params, "enc.obs", hidden, hidden, &mut rng);
        let conv_sim = GcnLayer::new(&mut params, "enc.sim", hidden, hidden, &mut rng);
        let l1 = GcnLayer::new(&mut params, "enc.l1", hidden, hidden, &mut rng);
        let fuse = Dense::new(&mut params, "fuse", 2 * hidden, embed, &mut rng);
        let head = Dense::new(&mut params, "head", embed, 2, &mut rng);
        Self {
            params,
            encoder,
            conv_obs,
            conv_sim,
            l1,
            fuse,
            head,
            embed,
            sim_threshold: 0.7,
        }
    }

    /// Feature-similarity graph over current projected features (treated as
    /// a constant structure for this pass — structure updates between steps).
    fn similarity_adjacency(&self, h: &glint_tensor::Matrix) -> Csr {
        let n = h.rows();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let sim = cosine(h.row(i), h.row(j));
                if sim > self.sim_threshold {
                    edges.push((i, j));
                }
            }
        }
        Csr::normalized_adjacency(n, &edges)
    }
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na < 1e-9 || nb < 1e-9 {
        0.0
    } else {
        dot / (na * nb)
    }
}

impl GraphModel for HgslModel {
    fn name(&self) -> &'static str {
        "HGSL"
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn embed_dim(&self) -> usize {
        self.embed
    }

    fn forward(&self, tape: &mut Tape, vars: &[Var], g: &PreparedGraph) -> ModelOutput {
        let h = self.encoder.forward(tape, vars, g);
        let adj_sim = self.similarity_adjacency(tape.value(h));
        let obs = self.conv_obs.forward(tape, vars, &g.adj_norm, h);
        let sim = self.conv_sim.forward(tape, vars, &adj_sim, h);
        let combined = tape.add(obs, sim);
        let a0 = tape.relu(combined);
        let h1 = self.l1.forward(tape, vars, &g.adj_norm, a0);
        let a1 = tape.relu(h1);
        let red = readout_mean_max(tape, a1);
        let fused = self.fuse.forward(tape, vars, red);
        let embedding = tape.tanh(fused);
        let logits = self.head.forward(tape, vars, embedding);
        ModelOutput {
            embedding,
            logits,
            aux_loss: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::tests_support::hetero_small;

    fn types() -> Vec<(Platform, usize)> {
        vec![
            (Platform::Ifttt, 4),
            (Platform::SmartThings, 4),
            (Platform::Alexa, 6),
        ]
    }

    #[test]
    fn magcn_forward() {
        let g = hetero_small();
        let m = MagcnModel::new(&types(), 16, 16, 1);
        let mut tape = Tape::new();
        let vars = m.params().bind(&mut tape);
        let out = m.forward(&mut tape, &vars, &g);
        assert_eq!(tape.value(out.logits).shape(), (1, 2));
        assert!(out.aux_loss.is_none());
    }

    #[test]
    fn magxn_forward_with_pool_loss() {
        let g = hetero_small();
        let m = MagxnModel::new(&types(), 16, 16, 2);
        let mut tape = Tape::new();
        let vars = m.params().bind(&mut tape);
        let out = m.forward(&mut tape, &vars, &g);
        assert!(out.aux_loss.is_some());
        assert!(tape.value(out.logits).all_finite());
    }

    #[test]
    fn magxn_heavier_than_magcn() {
        // the paper attributes MAGXN's weakness to its larger parameterization
        let magcn = MagcnModel::new(&types(), 16, 16, 3);
        let magxn = MagxnModel::new(&types(), 16, 16, 3);
        assert!(magxn.params().num_scalars() > magcn.params().num_scalars());
    }

    #[test]
    fn hgsl_forward_and_similarity_structure() {
        let g = hetero_small();
        let m = HgslModel::new(&types(), 16, 16, 4);
        let mut tape = Tape::new();
        let vars = m.params().bind(&mut tape);
        let out = m.forward(&mut tape, &vars, &g);
        assert!(tape.value(out.logits).all_finite());
        // similarity graph on identical rows links everything
        let h = glint_tensor::Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]]);
        let adj = m.similarity_adjacency(&h);
        let d = adj.to_dense();
        assert!(d.get(0, 1) > 0.0, "identical rows must be linked");
        assert_eq!(d.get(0, 2), d.get(2, 0), "symmetric");
    }
}
