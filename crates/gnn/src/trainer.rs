//! Training loops: ITGNN-S-style weighted classification (Eq. 2) and
//! ITGNN-C-style contrastive embedding learning (Eq. 1), plus evaluation.

use crate::batch::PreparedGraph;
use crate::loss::{eq2_total, sample_pairs};
use crate::models::GraphModel;
use glint_ml::metrics::BinaryMetrics;
use glint_tensor::checkpoint::{
    load_checkpoint, save_checkpoint, CheckpointError, TrainCheckpoint,
};
use glint_tensor::tape::Grads;
use glint_tensor::{par, Adam, Matrix, Optimizer, ParamMismatch, Tape, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;
use std::path::PathBuf;

/// Fail-point site hit after every completed epoch (post-checkpoint) in the
/// resumable training paths.
pub const SITE_EPOCH_END: &str = "trainer.epoch_end";

/// Shared training hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    pub epochs: usize,
    pub lr: f32,
    /// Weight β of the pooling loss in Eq. (2).
    pub beta: f32,
    /// Contrastive margin ε in Eq. (1).
    pub margin: f32,
    /// Pairs per epoch for contrastive training (default: dataset size).
    pub pairs_per_epoch: Option<usize>,
    pub seed: u64,
    /// Explicit class weights; inverse-frequency when None.
    pub class_weights: Option<[f32; 2]>,
    /// Graphs (or pairs) per optimizer step. `1` reproduces classic
    /// per-sample SGD exactly; larger batches accumulate per-sample
    /// gradients — computed concurrently on worker threads — and reduce
    /// them in sample order before a single Adam step, so results are
    /// identical at any thread count for a fixed seed.
    pub batch_size: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 12,
            lr: 3e-3,
            beta: 0.1,
            margin: 5.0,
            pairs_per_epoch: None,
            seed: 0,
            class_weights: None,
            batch_size: 1,
        }
    }
}

/// Reduce per-sample `(flat gradients, loss)` results into one [`Grads`]
/// (mean over the batch) plus the summed loss. Accumulation follows the
/// sample order of `results` — fixed by the caller, never by thread timing.
fn reduce_batch(results: Vec<(Vec<Option<Matrix>>, f32)>) -> (Grads, f32) {
    let n_params = results.first().map_or(0, |(g, _)| g.len());
    let count = results.len();
    let mut sum: Vec<Option<Matrix>> = vec![None; n_params];
    let mut loss = 0.0f32;
    for (flat, l) in results {
        loss += l;
        for (acc, g) in sum.iter_mut().zip(flat) {
            if let Some(g) = g {
                match acc {
                    Some(a) => *a = a.add(&g),
                    None => *acc = Some(g),
                }
            }
        }
    }
    if count > 1 {
        let inv = 1.0 / count as f32;
        for a in sum.iter_mut().flatten() {
            *a = a.scale(inv);
        }
    }
    (Grads::from_options(sum), loss)
}

/// The tape vars a fresh `bind` will produce, computed once up front so the
/// optimizer can be fed batch-reduced gradients without keeping any of the
/// per-sample tapes alive.
fn canonical_vars(model: &dyn GraphModel) -> Vec<Var> {
    model.params().bind(&mut Tape::new())
}

/// Where and how often resumable training writes durable checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Checkpoint file (one file, overwritten atomically each save).
    pub path: PathBuf,
    /// Save after every `every` completed epochs (`1` = every epoch).
    pub every: usize,
}

impl CheckpointPolicy {
    pub fn new(path: impl Into<PathBuf>, every: usize) -> Self {
        Self {
            path: path.into(),
            every: every.max(1),
        }
    }
}

/// Why resumable training stopped short of a finished report.
#[derive(Debug)]
pub enum TrainError {
    /// No graphs (or pairs) to train on.
    EmptyTrainingSet,
    /// A checkpoint could not be written, or an existing one could not be
    /// read (corrupt/truncated/version-mismatch files land here, typed).
    Checkpoint(CheckpointError),
    /// The checkpoint's parameters do not fit the model being resumed.
    Restore(ParamMismatch),
    /// An injected fault (or real IO error) fired at an epoch boundary;
    /// training state up to the last checkpoint is safely on disk.
    Interrupted(std::io::Error),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::EmptyTrainingSet => write!(f, "empty training set"),
            TrainError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            TrainError::Restore(e) => write!(f, "resume rejected: {e}"),
            TrainError::Interrupted(e) => write!(f, "training interrupted: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

impl From<ParamMismatch> for TrainError {
    fn from(e: ParamMismatch) -> Self {
        TrainError::Restore(e)
    }
}

/// Mutable state a trainer carries across epochs; exactly what a checkpoint
/// captures, so `resume(save(state))` is the identity.
struct EpochState {
    opt: Adam,
    rng: StdRng,
    start_epoch: usize,
    losses: Vec<f32>,
}

impl EpochState {
    fn fresh(lr: f32, seed: u64) -> Self {
        Self {
            opt: Adam::new(lr),
            rng: StdRng::seed_from_u64(seed),
            start_epoch: 0,
            losses: Vec::new(),
        }
    }

    /// Resume from `policy.path` when a checkpoint exists there; fresh state
    /// otherwise. A present-but-unreadable checkpoint is a typed error, not
    /// a silent restart — the caller decides whether to delete it.
    fn resume(
        lr: f32,
        seed: u64,
        model: &mut dyn GraphModel,
        policy: Option<&CheckpointPolicy>,
    ) -> Result<Self, TrainError> {
        let Some(policy) = policy else {
            return Ok(Self::fresh(lr, seed));
        };
        if !policy.path.exists() {
            return Ok(Self::fresh(lr, seed));
        }
        let ckpt = load_checkpoint(&policy.path)?;
        model.params_mut().copy_exact_from(&ckpt.params)?;
        let mut opt = Adam::new(lr);
        opt.restore(ckpt.opt);
        Ok(Self {
            opt,
            rng: StdRng::from_state(ckpt.rng_state),
            start_epoch: ckpt.epochs_done,
            losses: ckpt.epoch_losses,
        })
    }

    /// Checkpoint after epoch `done` (1-based count of completed epochs) if
    /// the policy says so, then hit the epoch-end fail point.
    fn epoch_end(
        &mut self,
        done: usize,
        model: &dyn GraphModel,
        policy: Option<&CheckpointPolicy>,
    ) -> Result<(), TrainError> {
        if let Some(policy) = policy {
            if done.is_multiple_of(policy.every) {
                let _span = glint_trace::span("checkpoint");
                let ckpt = TrainCheckpoint {
                    params: model.params().clone(),
                    opt: self.opt.state(),
                    rng_state: self.rng.state(),
                    epochs_done: done,
                    epoch_losses: self.losses.clone(),
                };
                save_checkpoint(&policy.path, &ckpt)?;
                glint_trace::counter("train.checkpoints", 1);
            }
        }
        glint_failpoint::trigger(SITE_EPOCH_END).map_err(TrainError::Interrupted)
    }
}

/// Per-epoch mean losses from a training run.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// Did the loss go down overall?
    pub fn improved(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(a), Some(b)) => b < a,
            _ => false,
        }
    }
}

fn labels_of(graphs: &[PreparedGraph]) -> Vec<usize> {
    graphs
        .iter()
        .map(|g| g.label.expect("training graphs must be labeled"))
        .collect()
}

/// Supervised trainer (ITGNN-S protocol, also used for all baselines).
pub struct ClassifierTrainer {
    pub config: TrainConfig,
}

impl ClassifierTrainer {
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// Train in place; one optimizer step per `batch_size` graphs. The
    /// per-graph forward/backward passes of a batch run concurrently (see
    /// [`par::ordered_map`]); gradients are reduced in batch order, so the
    /// result is independent of the thread count.
    pub fn train(&self, model: &mut dyn GraphModel, train: &[PreparedGraph]) -> TrainReport {
        assert!(!train.is_empty(), "empty training set");
        self.train_inner(model, train, None)
            .expect("training without a checkpoint policy cannot fail")
    }

    /// Like [`train`](Self::train), but checkpoints every
    /// [`CheckpointPolicy::every`] epochs and resumes from `policy.path`
    /// when a checkpoint already exists there. A run killed at any epoch
    /// boundary and resumed produces bitwise the same parameters, losses,
    /// and report as an uninterrupted run with the same config.
    pub fn train_resumable(
        &self,
        model: &mut dyn GraphModel,
        train: &[PreparedGraph],
        policy: &CheckpointPolicy,
    ) -> Result<TrainReport, TrainError> {
        self.train_inner(model, train, Some(policy))
    }

    fn train_inner(
        &self,
        model: &mut dyn GraphModel,
        train: &[PreparedGraph],
        policy: Option<&CheckpointPolicy>,
    ) -> Result<TrainReport, TrainError> {
        if train.is_empty() {
            return Err(TrainError::EmptyTrainingSet);
        }
        let labels = labels_of(train);
        let cw = self.config.class_weights.unwrap_or_else(|| {
            let w = glint_ml::sampling::class_weights(&labels, 2);
            [w[0], w[1]]
        });
        let batch = self.config.batch_size.max(1);
        let vars = canonical_vars(model);
        let mut state = EpochState::resume(self.config.lr, self.config.seed, model, policy)?;
        let _train_span = glint_trace::span("classifier_train");
        for epoch in state.start_epoch..self.config.epochs {
            let _epoch_span = glint_trace::span("epoch");
            let mut order: Vec<usize> = (0..train.len()).collect();
            order.shuffle(&mut state.rng);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(batch) {
                let frozen: &dyn GraphModel = model;
                let results = {
                    let _span = glint_trace::span("forward_backward");
                    par::ordered_map(chunk.len(), |j| {
                        let i = chunk[j];
                        let mut tape = Tape::new();
                        let vars = frozen.params().bind(&mut tape);
                        let out = frozen.forward(&mut tape, &vars, &train[i]);
                        let cls = tape.softmax_cross_entropy(out.logits, &[labels[i]], &cw);
                        let total = eq2_total(&mut tape, cls, out.aux_loss, self.config.beta);
                        let grads = tape.backward(total);
                        let flat = vars.iter().map(|&v| grads.get(v).cloned()).collect();
                        (flat, tape.value(total).get(0, 0))
                    })
                };
                let (grads, loss_sum) = reduce_batch(results);
                epoch_loss += loss_sum;
                if glint_trace::enabled() {
                    glint_trace::counter("train.steps", 1);
                    glint_trace::gauge("train.grad_norm", f64::from(grads.global_norm(&vars)));
                }
                let _opt_span = glint_trace::span("optimizer");
                state.opt.step(model.params_mut(), &vars, &grads);
            }
            state.losses.push(epoch_loss / train.len() as f32);
            if glint_trace::enabled() {
                glint_trace::counter("train.epochs", 1);
                glint_trace::gauge("train.loss", f64::from(epoch_loss / train.len() as f32));
            }
            state.epoch_end(epoch + 1, model, policy)?;
        }
        Ok(TrainReport {
            epoch_losses: state.losses,
        })
    }

    /// Predict the class of one graph. Serving path: tape-free forward on
    /// this thread's pooled [`glint_tensor::infer::InferCtx`] — no autograd
    /// nodes, and at steady state no allocations.
    pub fn predict(model: &dyn GraphModel, g: &PreparedGraph) -> usize {
        glint_tensor::infer::with_ctx(|ctx| {
            let out = model.forward_infer(ctx, g);
            let pred = out.logits.argmax_rows()[0];
            ctx.release(out.embedding);
            ctx.release(out.logits);
            pred
        })
    }

    /// Probability of the threat class (tape-free, see [`predict`](Self::predict)).
    pub fn predict_proba(model: &dyn GraphModel, g: &PreparedGraph) -> f32 {
        glint_tensor::infer::with_ctx(|ctx| {
            let out = model.forward_infer(ctx, g);
            let mut logits = out.logits;
            logits.softmax_rows_inplace();
            let p = logits.get(0, 1);
            ctx.release(out.embedding);
            ctx.release(logits);
            p
        })
    }

    /// Evaluate on labeled graphs with the paper's weighted-F1 convention.
    /// Test graphs are scored concurrently, predictions in input order.
    pub fn evaluate(model: &dyn GraphModel, test: &[PreparedGraph]) -> BinaryMetrics {
        let y_true = labels_of(test);
        let y_pred = par::ordered_map(test.len(), |i| Self::predict(model, &test[i]));
        BinaryMetrics::weighted_from_predictions(&y_true, &y_pred)
    }
}

/// Contrastive trainer (ITGNN-C, Eq. 1 + Algorithm 3's embedding source).
pub struct ContrastiveTrainer {
    pub config: TrainConfig,
}

impl ContrastiveTrainer {
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// Train in place; one optimizer step per `batch_size` contrastive
    /// pairs, with the pairs of a batch processed concurrently and reduced
    /// in pair order (thread-count independent, like the classifier).
    pub fn train(&self, model: &mut dyn GraphModel, train: &[PreparedGraph]) -> TrainReport {
        assert!(!train.is_empty());
        self.train_inner(model, train, None)
            .expect("training without a checkpoint policy cannot fail")
    }

    /// Resumable variant — same contract as
    /// [`ClassifierTrainer::train_resumable`]: kill at any epoch boundary,
    /// resume, and the final parameters are bitwise identical to an
    /// uninterrupted run.
    pub fn train_resumable(
        &self,
        model: &mut dyn GraphModel,
        train: &[PreparedGraph],
        policy: &CheckpointPolicy,
    ) -> Result<TrainReport, TrainError> {
        self.train_inner(model, train, Some(policy))
    }

    fn train_inner(
        &self,
        model: &mut dyn GraphModel,
        train: &[PreparedGraph],
        policy: Option<&CheckpointPolicy>,
    ) -> Result<TrainReport, TrainError> {
        if train.is_empty() {
            return Err(TrainError::EmptyTrainingSet);
        }
        let labels = labels_of(train);
        let n_pairs = self.config.pairs_per_epoch.unwrap_or(train.len());
        let batch = self.config.batch_size.max(1);
        let vars = canonical_vars(model);
        let mut state = EpochState::resume(self.config.lr, self.config.seed, model, policy)?;
        let _train_span = glint_trace::span("contrastive_train");
        for epoch in state.start_epoch..self.config.epochs {
            let _epoch_span = glint_trace::span("epoch");
            let pairs = sample_pairs(&labels, n_pairs, &mut state.rng);
            let mut epoch_loss = 0.0;
            for chunk in pairs.chunks(batch) {
                let frozen: &dyn GraphModel = model;
                let results = {
                    let _span = glint_trace::span("forward_backward");
                    par::ordered_map(chunk.len(), |j| {
                        let (a, b, same) = chunk[j];
                        let mut tape = Tape::new();
                        let vars = frozen.params().bind(&mut tape);
                        let out_a = frozen.forward(&mut tape, &vars, &train[a]);
                        let out_b = frozen.forward(&mut tape, &vars, &train[b]);
                        let contrast = tape.contrastive_pair(
                            out_a.embedding,
                            out_b.embedding,
                            same,
                            self.config.margin,
                        );
                        // pooling losses from both forwards still regularize
                        let with_a =
                            eq2_total(&mut tape, contrast, out_a.aux_loss, self.config.beta);
                        let total = eq2_total(&mut tape, with_a, out_b.aux_loss, self.config.beta);
                        let grads = tape.backward(total);
                        let flat = vars.iter().map(|&v| grads.get(v).cloned()).collect();
                        (flat, tape.value(total).get(0, 0))
                    })
                };
                let (grads, loss_sum) = reduce_batch(results);
                epoch_loss += loss_sum;
                if glint_trace::enabled() {
                    glint_trace::counter("train.steps", 1);
                    glint_trace::gauge("train.grad_norm", f64::from(grads.global_norm(&vars)));
                }
                let _opt_span = glint_trace::span("optimizer");
                state.opt.step(model.params_mut(), &vars, &grads);
            }
            state.losses.push(epoch_loss / pairs.len().max(1) as f32);
            if glint_trace::enabled() {
                glint_trace::counter("train.epochs", 1);
                glint_trace::gauge(
                    "train.loss",
                    f64::from(epoch_loss / pairs.len().max(1) as f32),
                );
            }
            state.epoch_end(epoch + 1, model, policy)?;
        }
        Ok(TrainReport {
            epoch_losses: state.losses,
        })
    }

    /// Latent representation of one graph (Algorithm 3 line 3). Serving
    /// path: tape-free forward on this thread's pooled
    /// [`glint_tensor::infer::InferCtx`].
    pub fn embed(model: &dyn GraphModel, g: &PreparedGraph) -> Vec<f32> {
        glint_tensor::infer::with_ctx(|ctx| {
            let out = model.forward_infer(ctx, g);
            let v = out.embedding.data().to_vec();
            ctx.release(out.embedding);
            ctx.release(out.logits);
            v
        })
    }

    /// Embeddings of a whole set as an `n × embed` matrix. Graphs are
    /// scored concurrently; rows come back in input order regardless of
    /// the thread count.
    pub fn embed_all(model: &dyn GraphModel, graphs: &[PreparedGraph]) -> Matrix {
        let rows = par::ordered_map(graphs.len(), |i| Self::embed(model, &graphs[i]));
        Matrix::from_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::tests_support::homo_line_graph;
    use crate::models::{GcnModel, Itgnn, ItgnnConfig, ModelConfig};
    use glint_graph::graph::{EdgeKind, GraphLabel};
    use glint_rules::Platform;

    /// Tiny synthetic task: threat graphs contain a directed cycle (denser
    /// edge structure), normal graphs are lines. Features overlap.
    fn toy_dataset(n: usize) -> Vec<PreparedGraph> {
        let mut out = Vec::new();
        for i in 0..n {
            let size = 4 + (i % 3);
            let mut g = homo_line_graph(size, 6);
            let threat = i % 2 == 1;
            if threat {
                g.add_edge(size - 1, 0, EdgeKind::ActionTrigger);
                g.add_edge(size / 2, 0, EdgeKind::ActionTrigger);
            }
            out.push(PreparedGraph::from_graph(&g.with_label(if threat {
                GraphLabel::Threat
            } else {
                GraphLabel::Normal
            })));
        }
        out
    }

    #[test]
    fn classifier_training_reduces_loss_and_fits_toy_task() {
        let data = toy_dataset(24);
        let mut model = GcnModel::new(
            6,
            ModelConfig {
                hidden: 16,
                embed: 16,
                seed: 1,
            },
        );
        let trainer = ClassifierTrainer::new(TrainConfig {
            epochs: 30,
            lr: 5e-3,
            ..Default::default()
        });
        let report = trainer.train(&mut model, &data);
        assert!(
            report.improved(),
            "loss did not fall: {:?}",
            report.epoch_losses
        );
        let metrics = ClassifierTrainer::evaluate(&model, &data);
        assert!(metrics.accuracy > 0.9, "toy accuracy {metrics}");
    }

    #[test]
    fn itgnn_fits_toy_task() {
        let data = toy_dataset(20);
        let cfg = ItgnnConfig {
            hidden: 16,
            embed: 16,
            n_scales: 2,
            ..Default::default()
        };
        let mut model = Itgnn::homogeneous(Platform::Ifttt, 6, cfg);
        let trainer = ClassifierTrainer::new(TrainConfig {
            epochs: 25,
            lr: 5e-3,
            ..Default::default()
        });
        trainer.train(&mut model, &data);
        let metrics = ClassifierTrainer::evaluate(&model, &data);
        assert!(metrics.accuracy > 0.85, "ITGNN toy accuracy {metrics}");
    }

    #[test]
    fn contrastive_training_separates_classes() {
        let data = toy_dataset(20);
        let cfg = ItgnnConfig {
            hidden: 16,
            embed: 8,
            n_scales: 2,
            ..Default::default()
        };
        let mut model = Itgnn::homogeneous(Platform::Ifttt, 6, cfg);
        let trainer = ContrastiveTrainer::new(TrainConfig {
            epochs: 20,
            lr: 5e-3,
            margin: 3.0,
            ..Default::default()
        });
        trainer.train(&mut model, &data);
        // intra-class distances must be smaller than inter-class distances
        let emb = ContrastiveTrainer::embed_all(&model, &data);
        let labels: Vec<usize> = data.iter().map(|g| g.label.unwrap()).collect();
        let (mut intra, mut inter, mut n_intra, mut n_inter) = (0.0f32, 0.0f32, 0, 0);
        for i in 0..data.len() {
            for j in (i + 1)..data.len() {
                let d: f32 = emb
                    .row(i)
                    .iter()
                    .zip(emb.row(j))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f32>()
                    .sqrt();
                if labels[i] == labels[j] {
                    intra += d;
                    n_intra += 1;
                } else {
                    inter += d;
                    n_inter += 1;
                }
            }
        }
        let intra = intra / n_intra as f32;
        let inter = inter / n_inter as f32;
        assert!(
            inter > intra,
            "contrastive failed: intra={intra} inter={inter}"
        );
    }

    /// The batched trainers promise thread-count independence: same seed +
    /// same batch size ⇒ bitwise-identical parameters and losses whether
    /// the batch runs on 1 worker or 8.
    #[test]
    fn batched_training_deterministic_across_thread_counts() {
        let data = toy_dataset(16);
        let cfg = TrainConfig {
            epochs: 4,
            lr: 5e-3,
            batch_size: 4,
            ..Default::default()
        };
        let run = |threads: usize| {
            par::with_threads(threads, || {
                let mut model = GcnModel::new(
                    6,
                    ModelConfig {
                        hidden: 16,
                        embed: 16,
                        seed: 7,
                    },
                );
                let report = ClassifierTrainer::new(cfg.clone()).train(&mut model, &data);
                (model, report)
            })
        };
        let (m1, r1) = run(1);
        let (m8, r8) = run(8);
        assert_eq!(r1.epoch_losses, r8.epoch_losses, "loss curves diverged");
        for ((n1, p1), (_, p8)) in m1.params().iter().zip(m8.params().iter()) {
            assert_eq!(p1, p8, "parameter {n1} differs between thread counts");
        }
    }

    #[test]
    fn contrastive_batched_training_deterministic_across_thread_counts() {
        let data = toy_dataset(12);
        let cfg = ItgnnConfig {
            hidden: 12,
            embed: 8,
            n_scales: 2,
            ..Default::default()
        };
        let tcfg = TrainConfig {
            epochs: 3,
            lr: 5e-3,
            margin: 3.0,
            batch_size: 3,
            ..Default::default()
        };
        let run = |threads: usize| {
            par::with_threads(threads, || {
                let mut model = Itgnn::homogeneous(Platform::Ifttt, 6, cfg.clone());
                ContrastiveTrainer::new(tcfg.clone()).train(&mut model, &data);
                ContrastiveTrainer::embed_all(&model, &data)
            })
        };
        assert_eq!(
            run(1),
            run(8),
            "contrastive embeddings differ between thread counts"
        );
    }

    fn ckpt_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("glint_trainer_tests");
        std::fs::create_dir_all(&dir).expect("create test dir");
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path); // each test starts fresh
        path
    }

    fn assert_params_bitwise(a: &dyn GraphModel, b: &dyn GraphModel) {
        for ((name, pa), (_, pb)) in a.params().iter().zip(b.params().iter()) {
            assert_eq!(pa.shape(), pb.shape(), "shape of {name}");
            for (x, y) in pa.data().iter().zip(pb.data()) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "parameter {name} not bitwise equal"
                );
            }
        }
    }

    /// Kill the classifier run at every possible epoch boundary; each
    /// resumed run must match the uninterrupted run bitwise.
    #[test]
    fn classifier_kill_resume_is_bitwise_identical() {
        let data = toy_dataset(12);
        let cfg = TrainConfig {
            epochs: 6,
            lr: 5e-3,
            batch_size: 3,
            seed: 9,
            ..Default::default()
        };
        let fresh_model = || {
            GcnModel::new(
                6,
                ModelConfig {
                    hidden: 8,
                    embed: 8,
                    seed: 5,
                },
            )
        };
        let mut straight = fresh_model();
        let straight_report = ClassifierTrainer::new(cfg.clone()).train(&mut straight, &data);

        for kill_after in 1..cfg.epochs {
            let path = ckpt_path(&format!("classifier_kill_{kill_after}.ckpt"));
            let policy = CheckpointPolicy::new(&path, 1);
            // phase 1: run only `kill_after` epochs, as if the process died
            let mut part = fresh_model();
            let short_cfg = TrainConfig {
                epochs: kill_after,
                ..cfg.clone()
            };
            ClassifierTrainer::new(short_cfg)
                .train_resumable(&mut part, &data, &policy)
                .unwrap();
            // phase 2: brand-new process resumes from the checkpoint
            let mut resumed = fresh_model();
            let report = ClassifierTrainer::new(cfg.clone())
                .train_resumable(&mut resumed, &data, &policy)
                .unwrap();
            assert_params_bitwise(&straight, &resumed);
            assert_eq!(
                straight_report.epoch_losses, report.epoch_losses,
                "loss trace diverged resuming after epoch {kill_after}"
            );
        }
    }

    #[test]
    fn contrastive_kill_resume_is_bitwise_identical() {
        let data = toy_dataset(10);
        let mcfg = ItgnnConfig {
            hidden: 8,
            embed: 8,
            n_scales: 2,
            ..Default::default()
        };
        let cfg = TrainConfig {
            epochs: 4,
            lr: 5e-3,
            margin: 3.0,
            batch_size: 2,
            seed: 3,
            ..Default::default()
        };
        let fresh_model = || Itgnn::homogeneous(Platform::Ifttt, 6, mcfg.clone());
        let mut straight = fresh_model();
        ContrastiveTrainer::new(cfg.clone()).train(&mut straight, &data);

        let kill_after = 2;
        let path = ckpt_path("contrastive_kill.ckpt");
        let policy = CheckpointPolicy::new(&path, 1);
        let mut part = fresh_model();
        ContrastiveTrainer::new(TrainConfig {
            epochs: kill_after,
            ..cfg.clone()
        })
        .train_resumable(&mut part, &data, &policy)
        .unwrap();
        let mut resumed = fresh_model();
        ContrastiveTrainer::new(cfg)
            .train_resumable(&mut resumed, &data, &policy)
            .unwrap();
        assert_params_bitwise(&straight, &resumed);
    }

    /// A resumable run with no pre-existing checkpoint matches plain train.
    #[test]
    fn resumable_fresh_run_matches_plain_train() {
        let data = toy_dataset(10);
        let cfg = TrainConfig {
            epochs: 3,
            lr: 5e-3,
            batch_size: 2,
            ..Default::default()
        };
        let fresh_model = || {
            GcnModel::new(
                6,
                ModelConfig {
                    hidden: 8,
                    embed: 8,
                    seed: 4,
                },
            )
        };
        let mut plain = fresh_model();
        ClassifierTrainer::new(cfg.clone()).train(&mut plain, &data);
        let path = ckpt_path("fresh_run.ckpt");
        let mut resumable = fresh_model();
        ClassifierTrainer::new(cfg)
            .train_resumable(&mut resumable, &data, &CheckpointPolicy::new(&path, 2))
            .unwrap();
        assert_params_bitwise(&plain, &resumable);
    }

    /// Resuming into a model with a different architecture is a typed
    /// error, not a silent partial restore.
    #[test]
    fn resume_into_wrong_architecture_is_rejected() {
        let data = toy_dataset(8);
        let cfg = TrainConfig {
            epochs: 2,
            ..Default::default()
        };
        let path = ckpt_path("wrong_arch.ckpt");
        let policy = CheckpointPolicy::new(&path, 1);
        let mut model = GcnModel::new(
            6,
            ModelConfig {
                hidden: 8,
                embed: 8,
                seed: 1,
            },
        );
        ClassifierTrainer::new(cfg.clone())
            .train_resumable(&mut model, &data, &policy)
            .unwrap();
        let mut other = GcnModel::new(
            6,
            ModelConfig {
                hidden: 12, // different hidden width: shapes cannot match
                embed: 8,
                seed: 1,
            },
        );
        let err = ClassifierTrainer::new(cfg)
            .train_resumable(&mut other, &data, &policy)
            .unwrap_err();
        assert!(matches!(err, TrainError::Restore(_)), "got {err}");
    }

    #[test]
    fn empty_training_set_is_typed_error_in_resumable_path() {
        let path = ckpt_path("empty_set.ckpt");
        let mut model = GcnModel::new(
            6,
            ModelConfig {
                hidden: 8,
                embed: 8,
                seed: 1,
            },
        );
        let err = ClassifierTrainer::new(TrainConfig::default())
            .train_resumable(&mut model, &[], &CheckpointPolicy::new(&path, 1))
            .unwrap_err();
        assert!(matches!(err, TrainError::EmptyTrainingSet));
    }

    #[test]
    fn predict_proba_in_unit_interval() {
        let data = toy_dataset(8);
        let mut model = GcnModel::new(
            6,
            ModelConfig {
                hidden: 8,
                embed: 8,
                seed: 2,
            },
        );
        ClassifierTrainer::new(TrainConfig {
            epochs: 3,
            ..Default::default()
        })
        .train(&mut model, &data);
        for g in &data {
            let p = ClassifierTrainer::predict_proba(&model, g);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
