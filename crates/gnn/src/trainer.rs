//! Training loops: ITGNN-S-style weighted classification (Eq. 2) and
//! ITGNN-C-style contrastive embedding learning (Eq. 1), plus evaluation.

use crate::batch::PreparedGraph;
use crate::loss::{eq2_total, sample_pairs};
use crate::models::GraphModel;
use glint_ml::metrics::BinaryMetrics;
use glint_tensor::tape::Grads;
use glint_tensor::{par, Adam, Matrix, Optimizer, Tape, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Shared training hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    pub epochs: usize,
    pub lr: f32,
    /// Weight β of the pooling loss in Eq. (2).
    pub beta: f32,
    /// Contrastive margin ε in Eq. (1).
    pub margin: f32,
    /// Pairs per epoch for contrastive training (default: dataset size).
    pub pairs_per_epoch: Option<usize>,
    pub seed: u64,
    /// Explicit class weights; inverse-frequency when None.
    pub class_weights: Option<[f32; 2]>,
    /// Graphs (or pairs) per optimizer step. `1` reproduces classic
    /// per-sample SGD exactly; larger batches accumulate per-sample
    /// gradients — computed concurrently on worker threads — and reduce
    /// them in sample order before a single Adam step, so results are
    /// identical at any thread count for a fixed seed.
    pub batch_size: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 12,
            lr: 3e-3,
            beta: 0.1,
            margin: 5.0,
            pairs_per_epoch: None,
            seed: 0,
            class_weights: None,
            batch_size: 1,
        }
    }
}

/// Reduce per-sample `(flat gradients, loss)` results into one [`Grads`]
/// (mean over the batch) plus the summed loss. Accumulation follows the
/// sample order of `results` — fixed by the caller, never by thread timing.
fn reduce_batch(results: Vec<(Vec<Option<Matrix>>, f32)>) -> (Grads, f32) {
    let n_params = results.first().map_or(0, |(g, _)| g.len());
    let count = results.len();
    let mut sum: Vec<Option<Matrix>> = vec![None; n_params];
    let mut loss = 0.0f32;
    for (flat, l) in results {
        loss += l;
        for (acc, g) in sum.iter_mut().zip(flat) {
            if let Some(g) = g {
                match acc {
                    Some(a) => *a = a.add(&g),
                    None => *acc = Some(g),
                }
            }
        }
    }
    if count > 1 {
        let inv = 1.0 / count as f32;
        for a in sum.iter_mut().flatten() {
            *a = a.scale(inv);
        }
    }
    (Grads::from_options(sum), loss)
}

/// The tape vars a fresh `bind` will produce, computed once up front so the
/// optimizer can be fed batch-reduced gradients without keeping any of the
/// per-sample tapes alive.
fn canonical_vars(model: &dyn GraphModel) -> Vec<Var> {
    model.params().bind(&mut Tape::new())
}

/// Per-epoch mean losses from a training run.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// Did the loss go down overall?
    pub fn improved(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(a), Some(b)) => b < a,
            _ => false,
        }
    }
}

fn labels_of(graphs: &[PreparedGraph]) -> Vec<usize> {
    graphs
        .iter()
        .map(|g| g.label.expect("training graphs must be labeled"))
        .collect()
}

/// Supervised trainer (ITGNN-S protocol, also used for all baselines).
pub struct ClassifierTrainer {
    pub config: TrainConfig,
}

impl ClassifierTrainer {
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// Train in place; one optimizer step per `batch_size` graphs. The
    /// per-graph forward/backward passes of a batch run concurrently (see
    /// [`par::ordered_map`]); gradients are reduced in batch order, so the
    /// result is independent of the thread count.
    pub fn train(&self, model: &mut dyn GraphModel, train: &[PreparedGraph]) -> TrainReport {
        assert!(!train.is_empty(), "empty training set");
        let labels = labels_of(train);
        let cw = self.config.class_weights.unwrap_or_else(|| {
            let w = glint_ml::sampling::class_weights(&labels, 2);
            [w[0], w[1]]
        });
        let batch = self.config.batch_size.max(1);
        let vars = canonical_vars(model);
        let mut opt = Adam::new(self.config.lr);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut report = TrainReport::default();
        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(batch) {
                let frozen: &dyn GraphModel = model;
                let results = par::ordered_map(chunk.len(), |j| {
                    let i = chunk[j];
                    let mut tape = Tape::new();
                    let vars = frozen.params().bind(&mut tape);
                    let out = frozen.forward(&mut tape, &vars, &train[i]);
                    let cls = tape.softmax_cross_entropy(out.logits, &[labels[i]], &cw);
                    let total = eq2_total(&mut tape, cls, out.aux_loss, self.config.beta);
                    let grads = tape.backward(total);
                    let flat = vars.iter().map(|&v| grads.get(v).cloned()).collect();
                    (flat, tape.value(total).get(0, 0))
                });
                let (grads, loss_sum) = reduce_batch(results);
                epoch_loss += loss_sum;
                opt.step(model.params_mut(), &vars, &grads);
            }
            report.epoch_losses.push(epoch_loss / train.len() as f32);
        }
        report
    }

    /// Predict the class of one graph.
    pub fn predict(model: &dyn GraphModel, g: &PreparedGraph) -> usize {
        let mut tape = Tape::new();
        let vars = model.params().bind(&mut tape);
        let out = model.forward(&mut tape, &vars, g);
        tape.value(out.logits).argmax_rows()[0]
    }

    /// Probability of the threat class.
    pub fn predict_proba(model: &dyn GraphModel, g: &PreparedGraph) -> f32 {
        let mut tape = Tape::new();
        let vars = model.params().bind(&mut tape);
        let out = model.forward(&mut tape, &vars, g);
        tape.value(out.logits).softmax_rows().get(0, 1)
    }

    /// Evaluate on labeled graphs with the paper's weighted-F1 convention.
    /// Test graphs are scored concurrently, predictions in input order.
    pub fn evaluate(model: &dyn GraphModel, test: &[PreparedGraph]) -> BinaryMetrics {
        let y_true = labels_of(test);
        let y_pred = par::ordered_map(test.len(), |i| Self::predict(model, &test[i]));
        BinaryMetrics::weighted_from_predictions(&y_true, &y_pred)
    }
}

/// Contrastive trainer (ITGNN-C, Eq. 1 + Algorithm 3's embedding source).
pub struct ContrastiveTrainer {
    pub config: TrainConfig,
}

impl ContrastiveTrainer {
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// Train in place; one optimizer step per `batch_size` contrastive
    /// pairs, with the pairs of a batch processed concurrently and reduced
    /// in pair order (thread-count independent, like the classifier).
    pub fn train(&self, model: &mut dyn GraphModel, train: &[PreparedGraph]) -> TrainReport {
        assert!(!train.is_empty());
        let labels = labels_of(train);
        let n_pairs = self.config.pairs_per_epoch.unwrap_or(train.len());
        let batch = self.config.batch_size.max(1);
        let vars = canonical_vars(model);
        let mut opt = Adam::new(self.config.lr);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut report = TrainReport::default();
        for _ in 0..self.config.epochs {
            let pairs = sample_pairs(&labels, n_pairs, &mut rng);
            let mut epoch_loss = 0.0;
            for chunk in pairs.chunks(batch) {
                let frozen: &dyn GraphModel = model;
                let results = par::ordered_map(chunk.len(), |j| {
                    let (a, b, same) = chunk[j];
                    let mut tape = Tape::new();
                    let vars = frozen.params().bind(&mut tape);
                    let out_a = frozen.forward(&mut tape, &vars, &train[a]);
                    let out_b = frozen.forward(&mut tape, &vars, &train[b]);
                    let contrast = tape.contrastive_pair(
                        out_a.embedding,
                        out_b.embedding,
                        same,
                        self.config.margin,
                    );
                    // pooling losses from both forwards still regularize
                    let with_a = eq2_total(&mut tape, contrast, out_a.aux_loss, self.config.beta);
                    let total = eq2_total(&mut tape, with_a, out_b.aux_loss, self.config.beta);
                    let grads = tape.backward(total);
                    let flat = vars.iter().map(|&v| grads.get(v).cloned()).collect();
                    (flat, tape.value(total).get(0, 0))
                });
                let (grads, loss_sum) = reduce_batch(results);
                epoch_loss += loss_sum;
                opt.step(model.params_mut(), &vars, &grads);
            }
            report
                .epoch_losses
                .push(epoch_loss / pairs.len().max(1) as f32);
        }
        report
    }

    /// Latent representation of one graph (Algorithm 3 line 3).
    pub fn embed(model: &dyn GraphModel, g: &PreparedGraph) -> Vec<f32> {
        let mut tape = Tape::new();
        let vars = model.params().bind(&mut tape);
        let out = model.forward(&mut tape, &vars, g);
        tape.value(out.embedding).data().to_vec()
    }

    /// Embeddings of a whole set as an `n × embed` matrix. Graphs are
    /// scored concurrently; rows come back in input order regardless of
    /// the thread count.
    pub fn embed_all(model: &dyn GraphModel, graphs: &[PreparedGraph]) -> Matrix {
        let rows = par::ordered_map(graphs.len(), |i| Self::embed(model, &graphs[i]));
        Matrix::from_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::tests_support::homo_line_graph;
    use crate::models::{GcnModel, Itgnn, ItgnnConfig, ModelConfig};
    use glint_graph::graph::{EdgeKind, GraphLabel};
    use glint_rules::Platform;

    /// Tiny synthetic task: threat graphs contain a directed cycle (denser
    /// edge structure), normal graphs are lines. Features overlap.
    fn toy_dataset(n: usize) -> Vec<PreparedGraph> {
        let mut out = Vec::new();
        for i in 0..n {
            let size = 4 + (i % 3);
            let mut g = homo_line_graph(size, 6);
            let threat = i % 2 == 1;
            if threat {
                g.add_edge(size - 1, 0, EdgeKind::ActionTrigger);
                g.add_edge(size / 2, 0, EdgeKind::ActionTrigger);
            }
            out.push(PreparedGraph::from_graph(&g.with_label(if threat {
                GraphLabel::Threat
            } else {
                GraphLabel::Normal
            })));
        }
        out
    }

    #[test]
    fn classifier_training_reduces_loss_and_fits_toy_task() {
        let data = toy_dataset(24);
        let mut model = GcnModel::new(
            6,
            ModelConfig {
                hidden: 16,
                embed: 16,
                seed: 1,
            },
        );
        let trainer = ClassifierTrainer::new(TrainConfig {
            epochs: 30,
            lr: 5e-3,
            ..Default::default()
        });
        let report = trainer.train(&mut model, &data);
        assert!(
            report.improved(),
            "loss did not fall: {:?}",
            report.epoch_losses
        );
        let metrics = ClassifierTrainer::evaluate(&model, &data);
        assert!(metrics.accuracy > 0.9, "toy accuracy {metrics}");
    }

    #[test]
    fn itgnn_fits_toy_task() {
        let data = toy_dataset(20);
        let cfg = ItgnnConfig {
            hidden: 16,
            embed: 16,
            n_scales: 2,
            ..Default::default()
        };
        let mut model = Itgnn::homogeneous(Platform::Ifttt, 6, cfg);
        let trainer = ClassifierTrainer::new(TrainConfig {
            epochs: 25,
            lr: 5e-3,
            ..Default::default()
        });
        trainer.train(&mut model, &data);
        let metrics = ClassifierTrainer::evaluate(&model, &data);
        assert!(metrics.accuracy > 0.85, "ITGNN toy accuracy {metrics}");
    }

    #[test]
    fn contrastive_training_separates_classes() {
        let data = toy_dataset(20);
        let cfg = ItgnnConfig {
            hidden: 16,
            embed: 8,
            n_scales: 2,
            ..Default::default()
        };
        let mut model = Itgnn::homogeneous(Platform::Ifttt, 6, cfg);
        let trainer = ContrastiveTrainer::new(TrainConfig {
            epochs: 20,
            lr: 5e-3,
            margin: 3.0,
            ..Default::default()
        });
        trainer.train(&mut model, &data);
        // intra-class distances must be smaller than inter-class distances
        let emb = ContrastiveTrainer::embed_all(&model, &data);
        let labels: Vec<usize> = data.iter().map(|g| g.label.unwrap()).collect();
        let (mut intra, mut inter, mut n_intra, mut n_inter) = (0.0f32, 0.0f32, 0, 0);
        for i in 0..data.len() {
            for j in (i + 1)..data.len() {
                let d: f32 = emb
                    .row(i)
                    .iter()
                    .zip(emb.row(j))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f32>()
                    .sqrt();
                if labels[i] == labels[j] {
                    intra += d;
                    n_intra += 1;
                } else {
                    inter += d;
                    n_inter += 1;
                }
            }
        }
        let intra = intra / n_intra as f32;
        let inter = inter / n_inter as f32;
        assert!(
            inter > intra,
            "contrastive failed: intra={intra} inter={inter}"
        );
    }

    /// The batched trainers promise thread-count independence: same seed +
    /// same batch size ⇒ bitwise-identical parameters and losses whether
    /// the batch runs on 1 worker or 8.
    #[test]
    fn batched_training_deterministic_across_thread_counts() {
        let data = toy_dataset(16);
        let cfg = TrainConfig {
            epochs: 4,
            lr: 5e-3,
            batch_size: 4,
            ..Default::default()
        };
        let run = |threads: usize| {
            par::with_threads(threads, || {
                let mut model = GcnModel::new(
                    6,
                    ModelConfig {
                        hidden: 16,
                        embed: 16,
                        seed: 7,
                    },
                );
                let report = ClassifierTrainer::new(cfg.clone()).train(&mut model, &data);
                (model, report)
            })
        };
        let (m1, r1) = run(1);
        let (m8, r8) = run(8);
        assert_eq!(r1.epoch_losses, r8.epoch_losses, "loss curves diverged");
        for ((n1, p1), (_, p8)) in m1.params().iter().zip(m8.params().iter()) {
            assert_eq!(p1, p8, "parameter {n1} differs between thread counts");
        }
    }

    #[test]
    fn contrastive_batched_training_deterministic_across_thread_counts() {
        let data = toy_dataset(12);
        let cfg = ItgnnConfig {
            hidden: 12,
            embed: 8,
            n_scales: 2,
            ..Default::default()
        };
        let tcfg = TrainConfig {
            epochs: 3,
            lr: 5e-3,
            margin: 3.0,
            batch_size: 3,
            ..Default::default()
        };
        let run = |threads: usize| {
            par::with_threads(threads, || {
                let mut model = Itgnn::homogeneous(Platform::Ifttt, 6, cfg.clone());
                ContrastiveTrainer::new(tcfg.clone()).train(&mut model, &data);
                ContrastiveTrainer::embed_all(&model, &data)
            })
        };
        assert_eq!(
            run(1),
            run(8),
            "contrastive embeddings differ between thread counts"
        );
    }

    #[test]
    fn predict_proba_in_unit_interval() {
        let data = toy_dataset(8);
        let mut model = GcnModel::new(
            6,
            ModelConfig {
                hidden: 8,
                embed: 8,
                seed: 2,
            },
        );
        ClassifierTrainer::new(TrainConfig {
            epochs: 3,
            ..Default::default()
        })
        .train(&mut model, &data);
        for g in &data {
            let p = ClassifierTrainer::predict_proba(&model, g);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
