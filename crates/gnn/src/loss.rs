//! Loss composition helpers: Eq. (2) total loss assembly and contrastive
//! pair sampling for Eq. (1).

use glint_tensor::{Tape, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Combine the weighted classification loss with the β-weighted pooling loss
/// (Eq. 2): `L = L_cls + β · L_pool`.
pub fn eq2_total(tape: &mut Tape, cls_loss: Var, aux_loss: Option<Var>, beta: f32) -> Var {
    match aux_loss {
        Some(aux) if beta > 0.0 => {
            let scaled = tape.scale(aux, beta);
            tape.add(cls_loss, scaled)
        }
        _ => cls_loss,
    }
}

/// Sample index pairs for contrastive training: roughly half same-label,
/// half different-label, drawn without replacement per epoch where possible.
pub fn sample_pairs(
    labels: &[usize],
    n_pairs: usize,
    rng: &mut StdRng,
) -> Vec<(usize, usize, bool)> {
    let pos: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|(_, &l)| l == 1)
        .map(|(i, _)| i)
        .collect();
    let neg: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|(_, &l)| l == 0)
        .map(|(i, _)| i)
        .collect();
    let mut pairs = Vec::with_capacity(n_pairs);
    for k in 0..n_pairs {
        let same = k % 2 == 0;
        let pick2 = |v: &Vec<usize>, rng: &mut StdRng| -> Option<(usize, usize)> {
            if v.len() < 2 {
                return None;
            }
            let a = v[rng.gen_range(0..v.len())];
            let mut b = v[rng.gen_range(0..v.len())];
            let mut guard = 0;
            while b == a && guard < 10 {
                b = v[rng.gen_range(0..v.len())];
                guard += 1;
            }
            (a != b).then_some((a, b))
        };
        if same {
            // same-label pair from whichever class can supply one
            let classes: Vec<&Vec<usize>> = {
                let mut c = vec![&pos, &neg];
                c.shuffle(rng);
                c
            };
            if let Some((a, b)) = classes.iter().find_map(|v| pick2(v, rng)) {
                pairs.push((a, b, true));
            }
        } else if !pos.is_empty() && !neg.is_empty() {
            let a = pos[rng.gen_range(0..pos.len())];
            let b = neg[rng.gen_range(0..neg.len())];
            pairs.push((a, b, false));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use glint_tensor::Matrix;
    use rand::SeedableRng;

    #[test]
    fn eq2_adds_beta_weighted_aux() {
        let mut tape = Tape::new();
        let cls = tape.constant(Matrix::full(1, 1, 1.0));
        let aux = tape.constant(Matrix::full(1, 1, 2.0));
        let total = eq2_total(&mut tape, cls, Some(aux), 0.5);
        assert!((tape.value(total).get(0, 0) - 2.0).abs() < 1e-6);
        let total_no_aux = eq2_total(&mut tape, cls, None, 0.5);
        assert_eq!(tape.value(total_no_aux).get(0, 0), 1.0);
    }

    #[test]
    fn pair_sampling_mix() {
        let labels = [0, 0, 0, 0, 1, 1, 1, 1];
        let mut rng = StdRng::seed_from_u64(1);
        let pairs = sample_pairs(&labels, 40, &mut rng);
        assert!(pairs.len() >= 38);
        let same = pairs.iter().filter(|(_, _, s)| *s).count();
        let diff = pairs.len() - same;
        assert!(same >= 15 && diff >= 15, "same={same} diff={diff}");
        for &(a, b, same) in &pairs {
            assert_ne!(a, b);
            assert_eq!(labels[a] == labels[b], same);
        }
    }

    #[test]
    fn pair_sampling_single_class_degrades_gracefully() {
        let labels = [0, 0, 0];
        let mut rng = StdRng::seed_from_u64(2);
        let pairs = sample_pairs(&labels, 10, &mut rng);
        // only same-label pairs are possible
        assert!(pairs.iter().all(|(_, _, s)| *s));
        assert!(!pairs.is_empty());
    }
}
