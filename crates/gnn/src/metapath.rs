//! MAGNN-style metapath-based node transformation (Algorithm 2, lines 1–13):
//! project per-type features into a shared space, aggregate intra-metapath
//! instances, and fuse metapaths with attention into homogeneous-type node
//! embeddings.

use crate::batch::PreparedGraph;
use glint_rules::Platform;
use glint_tensor::optim::ParamId;
use glint_tensor::{infer, init, InferCtx, Matrix, ParamSet, Tape, Var};
use rand::rngs::StdRng;

/// The encoder: per-platform projections + shared attention parameters.
#[derive(Clone, Debug)]
pub struct MetapathEncoder {
    /// (platform, W_A) node-feature projections into the shared space.
    projections: Vec<(Platform, ParamId)>,
    /// Attention transform M (hidden × att_dim) and bias.
    att_m: ParamId,
    att_b: ParamId,
    /// Attention vector q (1 × att_dim).
    att_q: ParamId,
    pub hidden: usize,
    /// When true, skip intra-metapath aggregation (ablation "intra" removed).
    pub disable_intra: bool,
    /// When true, replace attention fusion by uniform averaging (ablation
    /// "inter" removed).
    pub disable_inter: bool,
}

impl MetapathEncoder {
    pub fn new(
        params: &mut ParamSet,
        prefix: &str,
        types: &[(Platform, usize)],
        hidden: usize,
        rng: &mut StdRng,
    ) -> Self {
        let projections = types
            .iter()
            .map(|(p, dim)| {
                let id = params.add(
                    format!("{prefix}.proj.{}", p.name()),
                    init::xavier_uniform(rng, *dim, hidden),
                );
                (*p, id)
            })
            .collect();
        let att_dim = hidden.min(32);
        let att_m = params.add(
            format!("{prefix}.att.m"),
            init::xavier_uniform(rng, hidden, att_dim),
        );
        let att_b = params.add(format!("{prefix}.att.b"), Matrix::zeros(1, att_dim));
        let att_q = params.add(
            format!("{prefix}.att.q"),
            init::xavier_uniform(rng, 1, att_dim),
        );
        Self {
            projections,
            att_m,
            att_b,
            att_q,
            hidden,
            disable_intra: false,
            disable_inter: false,
        }
    }

    /// Project per-type features into the shared space and scatter them into
    /// an n × hidden matrix.
    pub fn project(&self, tape: &mut Tape, vars: &[Var], g: &PreparedGraph) -> Var {
        let mut acc: Option<Var> = None;
        for block in &g.by_type {
            let w = self
                .projections
                .iter()
                .find(|(p, _)| *p == block.platform)
                // a block with no projection is a model-construction bug
                // (projections cover every platform at build time); the
                // detector's degradation layer quarantines the panic to the
                // offending graph
                .unwrap_or_else(|| panic!("no projection for {:?}", block.platform))
                .1;
            let x = tape.constant(block.feats.clone());
            let projected = tape.matmul(x, vars[w.0]); // k × hidden
            let scattered = tape.spmm(&block.select, projected); // n × hidden
            acc = Some(match acc {
                Some(a) => tape.add(a, scattered),
                None => scattered,
            });
        }
        // PreparedGraph construction always emits at least one type block
        // for a non-empty graph, and empty graphs are rejected before
        // projection
        acc.expect("graph has at least one type block")
    }

    /// Tape-free projection/scatter — same kernels as [`project`](Self::project),
    /// but the per-block features feed the matmul directly instead of being
    /// cloned onto a tape first.
    pub fn project_infer(
        &self,
        ctx: &mut InferCtx,
        params: &ParamSet,
        g: &PreparedGraph,
    ) -> Matrix {
        let mut acc: Option<Matrix> = None;
        for block in &g.by_type {
            let w = self
                .projections
                .iter()
                .find(|(p, _)| *p == block.platform)
                // glint-lint: allow(hot-panic) — a block with no projection is
                // a model-construction bug (projections cover every platform
                // at build time); the detector's degradation layer quarantines
                // the panic to the offending graph
                .unwrap_or_else(|| panic!("no projection for {:?}", block.platform))
                .1;
            let projected = ctx.matmul(&block.feats, params.get(w)); // k × hidden
            let scattered = ctx.spmm(&block.select, &projected); // n × hidden
            ctx.release(projected);
            acc = Some(match acc {
                Some(mut a) => {
                    infer::add_assign(&mut a, &scattered);
                    ctx.release(scattered);
                    a
                }
                None => scattered,
            });
        }
        // glint-lint: allow(hot-unwrap) — PreparedGraph construction always
        // emits at least one type block for a non-empty graph, and empty
        // graphs are rejected before projection
        acc.expect("graph has at least one type block")
    }

    /// Full metapath-based node transformation: returns n × hidden
    /// homogeneous-type node embeddings (Algorithm 2 line 13's `G_m` features).
    pub fn forward(&self, tape: &mut Tape, vars: &[Var], g: &PreparedGraph) -> Var {
        let h = self.project(tape, vars, g);
        if self.disable_intra && self.disable_inter {
            // ablation "None": raw projected features only
            return h;
        }
        // intra-metapath aggregation: one summary per metapath
        let ops: Vec<&crate::batch::MetapathOp> = if self.disable_intra {
            // only identity paths (no instance averaging)
            g.metapath_ops
                .iter()
                .filter(|o| o.path.len() == 1)
                .collect()
        } else {
            g.metapath_ops.iter().collect()
        };
        if ops.is_empty() {
            return h;
        }
        let h_paths: Vec<Var> = ops.iter().map(|op| tape.spmm(&op.agg, h)).collect();
        if self.disable_inter || h_paths.len() == 1 {
            // uniform fusion
            let w = tape.constant(Matrix::full(1, h_paths.len(), 1.0 / h_paths.len() as f32));
            return tape.weighted_sum(&h_paths, w);
        }
        // inter-metapath attention: s_p = mean_v sigmoid(M h_p^v + b) over
        // valid rows; β = softmax(q · s_p)
        let mut scores: Option<Var> = None;
        for (op, &hp) in ops.iter().zip(&h_paths) {
            let valid = tape.gather_rows(hp, &op.valid_rows);
            let z = tape.linear(valid, vars[self.att_m.0], vars[self.att_b.0]);
            let sig = tape.sigmoid(z);
            let s_p = tape.mean_rows(sig); // 1 × att_dim
            let qs = tape.mul(s_p, vars[self.att_q.0]);
            let score = tape.sum_all(qs); // 1 × 1
            scores = Some(match scores {
                Some(s) => tape.concat_cols(s, score),
                None => score,
            });
        }
        // the metapath set is fixed at model construction and validated
        // non-empty there
        let beta = tape.softmax_rows(scores.expect("at least one metapath"));
        tape.weighted_sum(&h_paths, beta)
    }

    /// Tape-free metapath transformation mirroring [`forward`](Self::forward):
    /// same intra-metapath aggregation and inter-metapath attention values
    /// (the per-path attention score chain collapses to one `1 × P` buffer
    /// filled left-to-right, exactly the layout the tape's `concat_cols`
    /// chain produces), with the affine+sigmoid attention transform fused.
    pub fn forward_infer(
        &self,
        ctx: &mut InferCtx,
        params: &ParamSet,
        g: &PreparedGraph,
    ) -> Matrix {
        let h = self.project_infer(ctx, params, g);
        if self.disable_intra && self.disable_inter {
            return h;
        }
        let ops: Vec<&crate::batch::MetapathOp> = if self.disable_intra {
            g.metapath_ops
                .iter()
                .filter(|o| o.path.len() == 1)
                .collect()
        } else {
            g.metapath_ops.iter().collect()
        };
        if ops.is_empty() {
            return h;
        }
        let mut h_paths: Vec<Matrix> = Vec::with_capacity(ops.len());
        for op in &ops {
            h_paths.push(ctx.spmm(&op.agg, &h));
        }
        ctx.release(h);
        if self.disable_inter || h_paths.len() == 1 {
            // uniform fusion
            let w = ctx.filled(1, h_paths.len(), 1.0 / h_paths.len() as f32);
            let out = {
                let path_refs: Vec<&Matrix> = h_paths.iter().collect();
                ctx.weighted_sum(&path_refs, &w)
            };
            ctx.release(w);
            for hp in h_paths {
                ctx.release(hp);
            }
            return out;
        }
        let mut scores = ctx.acquire(1, ops.len());
        for (i, (op, hp)) in ops.iter().zip(&h_paths).enumerate() {
            let valid = ctx.gather_rows(hp, &op.valid_rows);
            let mut sig =
                ctx.linear_sigmoid(&valid, params.get(self.att_m), params.get(self.att_b));
            ctx.release(valid);
            let s_p = ctx.mean_rows(&sig); // 1 × att_dim
            ctx.release(std::mem::replace(&mut sig, s_p));
            infer::mul_assign(&mut sig, params.get(self.att_q));
            scores.set(0, i, sig.sum());
            ctx.release(sig);
        }
        scores.softmax_rows_inplace();
        let out = {
            let path_refs: Vec<&Matrix> = h_paths.iter().collect();
            ctx.weighted_sum(&path_refs, &scores)
        };
        ctx.release(scores);
        for hp in h_paths {
            ctx.release(hp);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glint_graph::graph::{EdgeKind, Node};
    use glint_graph::InteractionGraph;
    use glint_rules::RuleId;
    use rand::SeedableRng;

    fn hetero_graph() -> PreparedGraph {
        let mut g = InteractionGraph::new(vec![
            Node {
                rule_id: RuleId(0),
                platform: Platform::Ifttt,
                features: vec![1.0, 0.0],
            },
            Node {
                rule_id: RuleId(1),
                platform: Platform::Alexa,
                features: vec![0.3, 0.6, 0.9],
            },
            Node {
                rule_id: RuleId(2),
                platform: Platform::Ifttt,
                features: vec![0.0, 1.0],
            },
        ]);
        g.add_edge(0, 1, EdgeKind::ActionTrigger);
        g.add_edge(1, 2, EdgeKind::ActionTrigger);
        PreparedGraph::from_graph(&g)
    }

    fn encoder(g: &PreparedGraph) -> (ParamSet, MetapathEncoder) {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(7);
        let types: Vec<(Platform, usize)> = g
            .by_type
            .iter()
            .map(|b| (b.platform, b.feats.cols()))
            .collect();
        let enc = MetapathEncoder::new(&mut params, "enc", &types, 8, &mut rng);
        (params, enc)
    }

    #[test]
    fn projection_unifies_dimensions() {
        let g = hetero_graph();
        let (params, enc) = encoder(&g);
        let mut tape = Tape::new();
        let vars = params.bind(&mut tape);
        let h = enc.project(&mut tape, &vars, &g);
        assert_eq!(tape.value(h).shape(), (3, 8));
        // every row is populated (non-zero with overwhelming probability)
        for r in 0..3 {
            let norm: f32 = tape.value(h).row(r).iter().map(|v| v * v).sum();
            assert!(norm > 1e-9, "row {r} empty after projection");
        }
    }

    #[test]
    fn forward_produces_homogeneous_embeddings() {
        let g = hetero_graph();
        let (params, enc) = encoder(&g);
        let mut tape = Tape::new();
        let vars = params.bind(&mut tape);
        let out = enc.forward(&mut tape, &vars, &g);
        assert_eq!(tape.value(out).shape(), (3, 8));
        assert!(tape.value(out).all_finite());
    }

    #[test]
    fn ablations_change_the_output() {
        let g = hetero_graph();
        let (params, enc) = encoder(&g);
        let run = |enc: &MetapathEncoder| {
            let mut tape = Tape::new();
            let vars = params.bind(&mut tape);
            let out = enc.forward(&mut tape, &vars, &g);
            tape.value(out).clone()
        };
        let full = run(&enc);
        let mut no_intra = enc.clone();
        no_intra.disable_intra = true;
        let mut no_both = enc.clone();
        no_both.disable_intra = true;
        no_both.disable_inter = true;
        assert!(
            full.sq_dist(&run(&no_intra)) > 1e-10,
            "intra ablation is a no-op"
        );
        assert!(
            full.sq_dist(&run(&no_both)) > 1e-10,
            "full ablation is a no-op"
        );
    }

    #[test]
    fn gradients_flow_to_projections() {
        let g = hetero_graph();
        let (params, enc) = encoder(&g);
        let mut tape = Tape::new();
        let vars = params.bind(&mut tape);
        let out = enc.forward(&mut tape, &vars, &g);
        let loss = tape.mean_all(out);
        let grads = tape.backward(loss);
        for (p, id) in &enc.projections {
            let g = grads.get(vars[id.0]);
            assert!(g.is_some(), "no grad for projection of {p:?}");
            assert!(g.unwrap().norm() > 0.0, "zero grad for projection of {p:?}");
        }
    }
}
