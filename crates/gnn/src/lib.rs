//! # glint-gnn
//!
//! Graph neural networks from scratch on the `glint-tensor` autograd
//! substrate — the reproduction of the paper's model zoo:
//!
//! | Paper model | Here |
//! |---|---|
//! | ITGNN (the contribution, Alg. 2) | [`models::itgnn::Itgnn`] |
//! | GCN (Kipf & Welling) | [`models::gcn::GcnModel`] |
//! | GIN (Xu et al.) | [`models::gin::GinModel`] |
//! | GXN (graph cross network, VIPool) | [`models::gxn::GxnModel`] |
//! | InfoGraph (IFG) | [`models::infograph::InfoGraphModel`] |
//! | MAGCN / MAGXN (MAGNN converter + GCN/GXN) | [`models::hetero::MagcnModel`], [`models::hetero::MagxnModel`] |
//! | HGSL (heterogeneous graph structure learning) | [`models::hetero::HgslModel`] |
//!
//! Shared machinery: [`batch::PreparedGraph`] (adjacency variants + typed
//! feature blocks + metapath operators), [`layers`] (GCN / GIN / TAG
//! convolutions, readouts), [`metapath::MetapathEncoder`] (MAGNN-style
//! node transformation), [`vipool::VIPool`] (vertex-infomax pooling with the
//! Eq. 2 auxiliary loss), [`trainer`] (ITGNN-S classification training,
//! ITGNN-C contrastive training, evaluation).

pub mod batch;
pub mod layers;
pub mod loss;
pub mod metapath;
pub mod models;
pub mod trainer;
pub mod vipool;

pub use batch::{GraphSchema, PreparedGraph};
pub use models::{GraphModel, ModelOutput};
pub use trainer::{
    CheckpointPolicy, ClassifierTrainer, ContrastiveTrainer, TrainConfig, TrainError,
};
