//! Graph preparation: adjacency variants, typed feature blocks, and
//! metapath aggregation operators, precomputed once per graph.

use glint_graph::hetero::{default_metapaths, metapath_instances, Metapath};
use glint_graph::InteractionGraph;
use glint_rules::Platform;
use glint_tensor::{Csr, Matrix};

/// Dataset-level schema: which node types occur and their feature dims.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphSchema {
    /// (platform, feature dim), sorted by platform type index.
    pub types: Vec<(Platform, usize)>,
}

impl GraphSchema {
    /// Infer the schema from a set of graphs.
    pub fn infer<'a>(graphs: impl IntoIterator<Item = &'a InteractionGraph>) -> Self {
        let mut types: Vec<(Platform, usize)> = Vec::new();
        for g in graphs {
            for n in g.nodes() {
                match types.iter().find(|(p, _)| *p == n.platform) {
                    Some((p, d)) => {
                        assert_eq!(*d, n.features.len(), "inconsistent feature dim for {p:?}")
                    }
                    None => types.push((n.platform, n.features.len())),
                }
            }
        }
        types.sort_by_key(|(p, _)| p.type_index());
        Self { types }
    }

    pub fn is_heterogeneous(&self) -> bool {
        self.types.len() > 1
    }

    /// Feature dim of the single type (panics when heterogeneous).
    pub fn homo_dim(&self) -> usize {
        assert_eq!(self.types.len(), 1, "homo_dim on a heterogeneous schema");
        self.types[0].1
    }

    pub fn dim_of(&self, p: Platform) -> Option<usize> {
        self.types.iter().find(|(q, _)| *q == p).map(|(_, d)| *d)
    }
}

/// One node type's features inside a graph.
#[derive(Clone, Debug)]
pub struct TypeBlock {
    pub platform: Platform,
    /// Node indices of this type (sorted).
    pub indices: Vec<usize>,
    /// k × d_type feature rows, aligned with `indices`.
    pub feats: Matrix,
    /// n × k selection operator (scatter rows back into graph positions).
    pub select: Csr,
}

/// A metapath aggregation operator: `agg · H` averages, per start node, the
/// projected features over all instances of the metapath.
#[derive(Clone, Debug)]
pub struct MetapathOp {
    pub path: Metapath,
    /// n × n averaging operator (zero rows where no instance starts).
    pub agg: Csr,
    /// Start nodes that have at least one instance.
    pub valid_rows: Vec<usize>,
}

/// A graph with everything the models need, precomputed.
#[derive(Clone, Debug)]
pub struct PreparedGraph {
    pub n: usize,
    /// Symmetrically normalized adjacency with self loops (GCN propagation).
    pub adj_norm: Csr,
    /// Row-normalized adjacency, no self loops (mean aggregation).
    pub adj_row: Csr,
    /// Unnormalized symmetric 0/1 adjacency, no self loops (GIN sum agg).
    pub adj_sum: Csr,
    pub by_type: Vec<TypeBlock>,
    pub metapath_ops: Vec<MetapathOp>,
    pub label: Option<usize>,
    pub is_hetero: bool,
}

impl PreparedGraph {
    pub fn from_graph(g: &InteractionGraph) -> Self {
        let n = g.n_nodes();
        assert!(n > 0, "cannot prepare an empty graph");
        let undirected = g.undirected_edges();
        let adj_norm = Csr::normalized_adjacency(n, &undirected);
        let adj_row = Csr::row_normalized(n, &undirected);
        let mut sum_triplets = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for &(u, v) in &undirected {
            if u != v && seen.insert((u, v)) {
                sum_triplets.push((u, v, 1.0));
            }
            if u != v && seen.insert((v, u)) {
                sum_triplets.push((v, u, 1.0));
            }
        }
        let adj_sum = Csr::from_triplets(n, n, &sum_triplets);

        // typed feature blocks
        let mut by_type: Vec<TypeBlock> = Vec::new();
        for (platform, indices) in glint_graph::hetero::nodes_by_type(g) {
            let dim = g.node(indices[0]).features.len();
            let mut feats = Matrix::zeros(indices.len(), dim);
            for (k, &i) in indices.iter().enumerate() {
                assert_eq!(
                    g.node(i).features.len(),
                    dim,
                    "ragged features within a type"
                );
                feats.row_mut(k).copy_from_slice(&g.node(i).features);
            }
            let select = Csr::from_triplets(
                n,
                indices.len(),
                &indices
                    .iter()
                    .enumerate()
                    .map(|(k, &i)| (i, k, 1.0))
                    .collect::<Vec<_>>(),
            );
            by_type.push(TypeBlock {
                platform,
                indices,
                feats,
                select,
            });
        }

        // metapath operators: identity path per type + default schemas
        let mut metapath_ops = Vec::new();
        for block in &by_type {
            // identity metapath [A]: node aggregates itself
            let path = Metapath(vec![block.platform]);
            let agg = Csr::from_triplets(
                n,
                n,
                &block
                    .indices
                    .iter()
                    .map(|&i| (i, i, 1.0))
                    .collect::<Vec<_>>(),
            );
            metapath_ops.push(MetapathOp {
                path,
                agg,
                valid_rows: block.indices.clone(),
            });
        }
        for path in default_metapaths(g) {
            let mut triplets: Vec<(usize, usize, f32)> = Vec::new();
            let mut valid_rows = Vec::new();
            for v in 0..n {
                let instances = metapath_instances(g, v, &path);
                if instances.is_empty() {
                    continue;
                }
                valid_rows.push(v);
                // average projected features over all nodes of all instances
                let total = (instances.len() * path.len()) as f32;
                for inst in &instances {
                    for &u in inst {
                        triplets.push((v, u, 1.0 / total));
                    }
                }
            }
            if valid_rows.is_empty() {
                continue;
            }
            metapath_ops.push(MetapathOp {
                path,
                agg: Csr::from_triplets(n, n, &triplets),
                valid_rows,
            });
        }

        Self {
            n,
            adj_norm,
            adj_row,
            adj_sum,
            by_type,
            metapath_ops,
            label: g.label.map(|l| l.class()),
            is_hetero: g.is_heterogeneous(),
        }
    }

    /// Uniform feature matrix for homogeneous graphs.
    pub fn homo_features(&self) -> Matrix {
        assert_eq!(
            self.by_type.len(),
            1,
            "homo_features on heterogeneous graph"
        );
        let block = &self.by_type[0];
        // indices are 0..n in order for single-type graphs
        let mut feats = Matrix::zeros(self.n, block.feats.cols());
        for (k, &i) in block.indices.iter().enumerate() {
            feats.row_mut(i).copy_from_slice(block.feats.row(k));
        }
        feats
    }

    /// Prepare a whole dataset.
    pub fn prepare_all(graphs: &[InteractionGraph]) -> Vec<PreparedGraph> {
        graphs.iter().map(Self::from_graph).collect()
    }
}

/// Shared fixtures for this crate's unit tests.
#[cfg(test)]
pub mod tests_support {
    use super::*;
    use glint_graph::graph::{EdgeKind, GraphLabel, Node};
    use glint_rules::RuleId;

    /// A line graph of `n` homogeneous IFTTT nodes with `dim`-d features.
    pub fn homo_line_graph(n: usize, dim: usize) -> InteractionGraph {
        let nodes: Vec<Node> = (0..n)
            .map(|i| Node {
                rule_id: RuleId(i as u32),
                platform: Platform::Ifttt,
                features: (0..dim)
                    .map(|d| ((i * 7 + d * 3) % 5) as f32 / 5.0 + 0.1)
                    .collect(),
            })
            .collect();
        let mut g = InteractionGraph::new(nodes);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(i, i + 1, EdgeKind::ActionTrigger);
        }
        g
    }

    /// Two structurally different prepared graphs with identical dims.
    pub fn labeled_pair(dim: usize) -> (PreparedGraph, PreparedGraph) {
        let a = homo_line_graph(5, dim).with_label(GraphLabel::Normal);
        let mut b_raw = homo_line_graph(5, dim);
        b_raw.add_edge(4, 0, EdgeKind::ActionTrigger); // close the loop
        b_raw.add_edge(2, 0, EdgeKind::ActionTrigger);
        let b = b_raw.with_label(GraphLabel::Threat);
        (PreparedGraph::from_graph(&a), PreparedGraph::from_graph(&b))
    }

    /// A small heterogeneous prepared graph (IFTTT 4-d, Alexa 6-d).
    pub fn hetero_small() -> PreparedGraph {
        let mut g = InteractionGraph::new(vec![
            Node {
                rule_id: RuleId(0),
                platform: Platform::Ifttt,
                features: vec![0.4; 4],
            },
            Node {
                rule_id: RuleId(1),
                platform: Platform::Alexa,
                features: vec![0.2; 6],
            },
            Node {
                rule_id: RuleId(2),
                platform: Platform::Ifttt,
                features: vec![0.9; 4],
            },
            Node {
                rule_id: RuleId(3),
                platform: Platform::SmartThings,
                features: vec![0.5; 4],
            },
        ]);
        g.add_edge(0, 1, EdgeKind::ActionTrigger);
        g.add_edge(1, 2, EdgeKind::ActionTrigger);
        g.add_edge(2, 3, EdgeKind::ActionTrigger);
        PreparedGraph::from_graph(&g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glint_graph::graph::{EdgeKind, Node};
    use glint_rules::RuleId;

    fn node(id: u32, platform: Platform, feats: Vec<f32>) -> Node {
        Node {
            rule_id: RuleId(id),
            platform,
            features: feats,
        }
    }

    fn homo_graph() -> InteractionGraph {
        let mut g = InteractionGraph::new(vec![
            node(0, Platform::Ifttt, vec![1.0, 0.0]),
            node(1, Platform::Ifttt, vec![0.0, 1.0]),
            node(2, Platform::Ifttt, vec![1.0, 1.0]),
        ]);
        g.add_edge(0, 1, EdgeKind::ActionTrigger);
        g.add_edge(1, 2, EdgeKind::ActionTrigger);
        g
    }

    fn hetero_graph() -> InteractionGraph {
        let mut g = InteractionGraph::new(vec![
            node(0, Platform::Ifttt, vec![1.0, 0.0]),
            node(1, Platform::Alexa, vec![0.5, 0.5, 0.5]),
            node(2, Platform::Ifttt, vec![0.0, 1.0]),
        ]);
        g.add_edge(0, 1, EdgeKind::ActionTrigger);
        g.add_edge(1, 2, EdgeKind::ActionTrigger);
        g
    }

    #[test]
    fn schema_inference() {
        let graphs = [homo_graph()];
        let s = GraphSchema::infer(graphs.iter());
        assert!(!s.is_heterogeneous());
        assert_eq!(s.homo_dim(), 2);
        let graphs2 = [hetero_graph()];
        let s2 = GraphSchema::infer(graphs2.iter());
        assert!(s2.is_heterogeneous());
        assert_eq!(s2.dim_of(Platform::Alexa), Some(3));
    }

    #[test]
    fn homo_features_round_trip() {
        let p = PreparedGraph::from_graph(&homo_graph());
        let f = p.homo_features();
        assert_eq!(f.row(0), &[1.0, 0.0]);
        assert_eq!(f.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn type_blocks_select_operators() {
        let p = PreparedGraph::from_graph(&hetero_graph());
        assert_eq!(p.by_type.len(), 2);
        let ifttt = p
            .by_type
            .iter()
            .find(|b| b.platform == Platform::Ifttt)
            .unwrap();
        assert_eq!(ifttt.indices, vec![0, 2]);
        // select is n×k: scattering [a;b] puts a at row 0, b at row 2
        let scattered = ifttt
            .select
            .spmm(&Matrix::from_rows(&[vec![7.0], vec![9.0]]));
        assert_eq!(scattered.get(0, 0), 7.0);
        assert_eq!(scattered.get(1, 0), 0.0);
        assert_eq!(scattered.get(2, 0), 9.0);
    }

    #[test]
    fn metapath_ops_rows_average_to_one() {
        let p = PreparedGraph::from_graph(&hetero_graph());
        for op in &p.metapath_ops {
            let d = op.agg.to_dense();
            for &v in &op.valid_rows {
                let s: f32 = (0..p.n).map(|c| d.get(v, c)).sum();
                assert!(
                    (s - 1.0).abs() < 1e-5,
                    "path {:?} row {v} sums {s}",
                    op.path
                );
            }
        }
    }

    #[test]
    fn identity_paths_cover_every_node() {
        let p = PreparedGraph::from_graph(&hetero_graph());
        let mut covered = vec![false; p.n];
        for op in p.metapath_ops.iter().filter(|o| o.path.len() == 1) {
            for &v in &op.valid_rows {
                covered[v] = true;
            }
        }
        assert!(
            covered.iter().all(|&c| c),
            "identity metapaths must cover all nodes"
        );
    }

    #[test]
    fn adjacency_variants_consistent() {
        let p = PreparedGraph::from_graph(&homo_graph());
        assert_eq!(p.adj_sum.nnz(), 4); // 2 undirected edges
        assert!(p.adj_norm.is_symmetric(1e-6));
    }
}
