//! GNN layers: GCN, GIN, and TAG convolutions plus graph readouts.
//!
//! Each layer owns [`ParamId`]s into the model's [`ParamSet`]; `forward`
//! receives the tape and the vars bound from that set this pass.

use glint_tensor::optim::ParamId;
use glint_tensor::{infer, init, Csr, InferCtx, Matrix, ParamSet, Tape, Var};
use rand::rngs::StdRng;

/// GCN layer: `H' = Â H W + b` (activation applied by the caller).
#[derive(Clone, Debug)]
pub struct GcnLayer {
    w: ParamId,
    b: ParamId,
}

impl GcnLayer {
    pub fn new(
        params: &mut ParamSet,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let w = params.add(
            format!("{prefix}.w"),
            init::xavier_uniform(rng, in_dim, out_dim),
        );
        let b = params.add(format!("{prefix}.b"), Matrix::zeros(1, out_dim));
        Self { w, b }
    }

    pub fn forward(&self, tape: &mut Tape, vars: &[Var], adj_norm: &Csr, h: Var) -> Var {
        let prop = tape.spmm(adj_norm, h);
        tape.linear(prop, vars[self.w.0], vars[self.b.0])
    }

    /// Tape-free forward: same kernels, pooled buffers, no autograd nodes.
    pub fn forward_infer(
        &self,
        ctx: &mut InferCtx,
        params: &ParamSet,
        adj_norm: &Csr,
        h: &Matrix,
    ) -> Matrix {
        let prop = ctx.spmm(adj_norm, h);
        let out = ctx.linear(&prop, params.get(self.w), params.get(self.b));
        ctx.release(prop);
        out
    }
}

/// GIN layer: `H' = MLP((1 + ε) H + Σ_{u∈N(v)} H_u)` with a 2-layer MLP.
#[derive(Clone, Debug)]
pub struct GinLayer {
    eps: ParamId,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
}

impl GinLayer {
    pub fn new(
        params: &mut ParamSet,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let eps = params.add(format!("{prefix}.eps"), Matrix::zeros(1, 1));
        let w1 = params.add(
            format!("{prefix}.w1"),
            init::xavier_uniform(rng, in_dim, out_dim),
        );
        let b1 = params.add(format!("{prefix}.b1"), Matrix::zeros(1, out_dim));
        let w2 = params.add(
            format!("{prefix}.w2"),
            init::xavier_uniform(rng, out_dim, out_dim),
        );
        let b2 = params.add(format!("{prefix}.b2"), Matrix::zeros(1, out_dim));
        Self {
            eps,
            w1,
            b1,
            w2,
            b2,
        }
    }

    pub fn forward(&self, tape: &mut Tape, vars: &[Var], adj_sum: &Csr, h: Var) -> Var {
        let neigh = tape.spmm(adj_sum, h);
        // (1 + ε)·h: scale h by scalar var via weighted_sum
        let one_plus_eps = {
            let one = tape.constant(Matrix::full(1, 1, 1.0));
            tape.add(vars[self.eps.0], one)
        };
        let scaled_self = tape.weighted_sum(&[h], one_plus_eps);
        let agg = tape.add(scaled_self, neigh);
        let z1 = tape.linear(agg, vars[self.w1.0], vars[self.b1.0]);
        let a1 = tape.relu(z1);
        tape.linear(a1, vars[self.w2.0], vars[self.b2.0])
    }

    /// Tape-free forward: the `(1 + ε)·h + Σ_u h_u` aggregation runs as a
    /// zeroed-accumulator axpy plus an in-place add (the exact f32 sequence
    /// of the tape's `weighted_sum` + `add`), and the first MLP layer fuses
    /// bias + ReLU into one pass.
    pub fn forward_infer(
        &self,
        ctx: &mut InferCtx,
        params: &ParamSet,
        adj_sum: &Csr,
        h: &Matrix,
    ) -> Matrix {
        let neigh = ctx.spmm(adj_sum, h);
        let one_plus_eps = params.get(self.eps).get(0, 0) + 1.0;
        let mut agg = ctx.acquire(h.rows(), h.cols());
        agg.axpy(one_plus_eps, h);
        infer::add_assign(&mut agg, &neigh);
        ctx.release(neigh);
        let a1 = ctx.linear_relu(&agg, params.get(self.w1), params.get(self.b1));
        ctx.release(agg);
        let out = ctx.linear(&a1, params.get(self.w2), params.get(self.b2));
        ctx.release(a1);
        out
    }
}

/// TAG convolution (topology-adaptive): `H' = Σ_{k=0..K} Â^k H W_k + b`.
/// Exact polynomial propagation — no convolution approximation (§3.3.1).
#[derive(Clone, Debug)]
pub struct TagConv {
    pub k: usize,
    ws: Vec<ParamId>,
    b: ParamId,
}

impl TagConv {
    pub fn new(
        params: &mut ParamSet,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
        k: usize,
        rng: &mut StdRng,
    ) -> Self {
        let ws = (0..=k)
            .map(|i| {
                params.add(
                    format!("{prefix}.w{i}"),
                    init::xavier_uniform(rng, in_dim, out_dim),
                )
            })
            .collect();
        let b = params.add(format!("{prefix}.b"), Matrix::zeros(1, out_dim));
        Self { k, ws, b }
    }

    pub fn forward(&self, tape: &mut Tape, vars: &[Var], adj_norm: &Csr, h: Var) -> Var {
        let mut power = h; // Â^0 H
        let mut acc = tape.matmul(power, vars[self.ws[0].0]);
        for w in &self.ws[1..] {
            power = tape.spmm(adj_norm, power);
            let term = tape.matmul(power, vars[w.0]);
            acc = tape.add(acc, term);
        }
        tape.add_bias(acc, vars[self.b.0])
    }

    /// Tape-free forward. Each hop's term lands in a scratch buffer and is
    /// added element-wise onto the accumulator — never fused into the matmul
    /// reduction itself, which would reorder the floating-point sums and
    /// break bitwise equivalence with the tape path.
    pub fn forward_infer(
        &self,
        ctx: &mut InferCtx,
        params: &ParamSet,
        adj_norm: &Csr,
        h: &Matrix,
    ) -> Matrix {
        let mut acc = ctx.matmul(h, params.get(self.ws[0]));
        let mut power: Option<Matrix> = None; // Â^k H for k >= 1
        for w in &self.ws[1..] {
            let next = ctx.spmm(adj_norm, power.as_ref().unwrap_or(h));
            if let Some(prev) = power.take() {
                ctx.release(prev);
            }
            let term = ctx.matmul(&next, params.get(*w));
            infer::add_assign(&mut acc, &term);
            ctx.release(term);
            power = Some(next);
        }
        if let Some(p) = power {
            ctx.release(p);
        }
        acc.add_row_broadcast_inplace(params.get(self.b));
        acc
    }
}

/// Dense layer wrapper.
#[derive(Clone, Debug)]
pub struct Dense {
    w: ParamId,
    b: ParamId,
}

impl Dense {
    pub fn new(
        params: &mut ParamSet,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let w = params.add(
            format!("{prefix}.w"),
            init::xavier_uniform(rng, in_dim, out_dim),
        );
        let b = params.add(format!("{prefix}.b"), Matrix::zeros(1, out_dim));
        Self { w, b }
    }

    pub fn forward(&self, tape: &mut Tape, vars: &[Var], x: Var) -> Var {
        tape.linear(x, vars[self.w.0], vars[self.b.0])
    }

    /// Tape-free affine layer.
    pub fn forward_infer(&self, ctx: &mut InferCtx, params: &ParamSet, x: &Matrix) -> Matrix {
        ctx.linear(x, params.get(self.w), params.get(self.b))
    }
}

/// Mean ‖ max readout: n × d → 1 × 2d.
pub fn readout_mean_max(tape: &mut Tape, h: Var) -> Var {
    let mean = tape.mean_rows(h);
    let max = tape.max_rows(h);
    tape.concat_cols(mean, max)
}

/// Tape-free mean ‖ max readout.
pub fn readout_mean_max_infer(ctx: &mut InferCtx, h: &Matrix) -> Matrix {
    let mean = ctx.mean_rows(h);
    let max = ctx.max_rows(h);
    let out = ctx.concat_cols(&mean, &max);
    ctx.release(mean);
    ctx.release(max);
    out
}

/// Sum readout (GIN convention): n × d → 1 × d.
pub fn readout_sum(tape: &mut Tape, h: Var) -> Var {
    tape.sum_rows_readout(h)
}

/// Tape-free sum readout.
pub fn readout_sum_infer(ctx: &mut InferCtx, h: &Matrix) -> Matrix {
    ctx.sum_rows(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glint_tensor::grad_check::check_gradients;
    use rand::SeedableRng;

    fn path_adj(n: usize) -> Csr {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Csr::normalized_adjacency(n, &edges)
    }

    #[test]
    fn gcn_layer_shapes_and_grads() {
        let mut rng = StdRng::seed_from_u64(1);
        let adj = path_adj(4);
        let x0 = init::uniform(&mut rng, 4, 3, 1.0);
        let report = check_gradients(&[x0], 1e-3, |tape, ins| {
            let mut params = ParamSet::new();
            let mut r = StdRng::seed_from_u64(2);
            let layer = GcnLayer::new(&mut params, "gcn", 3, 2, &mut r);
            let vars = params.bind(tape);
            let h = tape.var(ins[0].clone());
            let out = layer.forward(tape, &vars, &adj, h);
            let red = readout_mean_max(tape, out);
            let loss = tape.mean_all(red);
            (loss, vec![h])
        });
        assert!(report.ok(2e-2), "{report:?}");
    }

    #[test]
    fn gin_layer_distinguishes_structures() {
        // GIN with sum aggregation must produce different readouts for a
        // triangle vs a 3-path with identical node features.
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let layer = GinLayer::new(&mut params, "gin", 2, 4, &mut rng);
        let feats = Matrix::from_rows(&vec![vec![1.0, 0.5]; 3]);
        let run = |edges: &[(usize, usize)]| -> Matrix {
            let mut sum_triplets = Vec::new();
            for &(u, v) in edges {
                sum_triplets.push((u, v, 1.0));
                sum_triplets.push((v, u, 1.0));
            }
            let adj = Csr::from_triplets(3, 3, &sum_triplets);
            let mut tape = Tape::new();
            let vars = params.bind(&mut tape);
            let h = tape.constant(feats.clone());
            let out = layer.forward(&mut tape, &vars, &adj, h);
            let red = readout_sum(&mut tape, out);
            tape.value(red).clone()
        };
        let triangle = run(&[(0, 1), (1, 2), (2, 0)]);
        let path = run(&[(0, 1), (1, 2)]);
        assert!(
            triangle.sq_dist(&path) > 1e-6,
            "GIN failed to separate structures"
        );
    }

    #[test]
    fn tag_conv_k0_equals_linear() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(4);
        let conv = TagConv::new(&mut params, "tag", 3, 2, 0, &mut rng);
        let adj = path_adj(3);
        let x = init::uniform(&mut rng, 3, 3, 1.0);
        let mut tape = Tape::new();
        let vars = params.bind(&mut tape);
        let h = tape.constant(x.clone());
        let out = conv.forward(&mut tape, &vars, &adj, h);
        // K=0: no propagation — output is x·W0 + b
        let w0 = params.get(glint_tensor::ParamId(0)).clone();
        let expected = x.matmul(&w0);
        assert!(tape.value(out).sq_dist(&expected) < 1e-8);
    }

    #[test]
    fn tag_conv_uses_neighbourhood() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        let conv = TagConv::new(&mut params, "tag", 2, 2, 2, &mut rng);
        let adj = path_adj(3);
        let run = |x: Matrix| {
            let mut tape = Tape::new();
            let vars = params.bind(&mut tape);
            let h = tape.constant(x);
            let out = conv.forward(&mut tape, &vars, &adj, h);
            tape.value(out).clone()
        };
        let base = run(Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
        ]));
        let moved = run(Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 0.0],
            vec![5.0, 0.0],
        ]));
        // node 0's output must change when node 2 (two hops away) changes
        let delta: f32 = base
            .row(0)
            .iter()
            .zip(moved.row(0))
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(delta > 1e-6, "K=2 TAG conv must see 2-hop context");
    }
}
