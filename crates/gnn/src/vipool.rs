//! Vertex-infomax pooling (VIPool, from GXN) — the multi-scale graph
//! generator of ITGNN (Algorithm 2 lines 15–21) together with the auxiliary
//! pooling loss `L_pool` of Eq. (2).
//!
//! Each vertex is scored by an estimate of the mutual information between
//! its own embedding and its neighbourhood's: `s_v = σ(W_s [h_v ‖ h_{N(v)}])`.
//! The top-⌈ratio·n⌉ vertices are kept (features gated by their scores so
//! gradients reach the scorer), and the infomax objective is a BCE that
//! discriminates true (vertex, neighbourhood) pairs from shuffled ones.

use glint_tensor::optim::ParamId;
use glint_tensor::{infer, init, Csr, InferCtx, Matrix, ParamSet, Tape, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One VIPool stage.
#[derive(Clone, Debug)]
pub struct VIPool {
    w: ParamId,
    b: ParamId,
    /// Bilinear interaction factors: the MI discriminator must score the
    /// *correlation* between a vertex and its neighbourhood, which a linear
    /// map on the concatenation cannot express (identical marginals).
    bilin_a: ParamId,
    bilin_b: ParamId,
    pub ratio: f32,
}

/// Output of a pooling step.
pub struct Pooled {
    /// Gated, pooled node features (k × d).
    pub h: Var,
    /// Normalized adjacency of the induced subgraph.
    pub adj_norm: Csr,
    /// Row-normalized adjacency of the induced subgraph.
    pub adj_row: Csr,
    /// Kept node indices (into the pre-pool graph), sorted.
    pub kept: Vec<usize>,
    /// Infomax BCE loss for this stage (the `L_pool` summand).
    pub pool_loss: Var,
}

/// Output of a tape-free pooling step: the training-only artefacts (negative
/// sampling, infomax BCE) are skipped entirely — serving only needs the
/// pooled features and the induced sub-adjacency.
pub struct PooledInfer {
    /// Gated, pooled node features (k × d).
    pub h: Matrix,
    /// Normalized adjacency of the induced subgraph.
    pub adj_norm: Csr,
    /// Row-normalized adjacency of the induced subgraph.
    pub adj_row: Csr,
    /// Kept node indices (into the pre-pool graph), sorted.
    pub kept: Vec<usize>,
}

impl VIPool {
    pub fn new(
        params: &mut ParamSet,
        prefix: &str,
        dim: usize,
        ratio: f32,
        rng: &mut StdRng,
    ) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0);
        let k = dim.min(16);
        let w = params.add(format!("{prefix}.w"), init::xavier_uniform(rng, 2 * dim, 1));
        let b = params.add(format!("{prefix}.b"), Matrix::zeros(1, 1));
        let bilin_a = params.add(format!("{prefix}.ba"), init::xavier_uniform(rng, dim, k));
        let bilin_b = params.add(format!("{prefix}.bb"), init::xavier_uniform(rng, dim, k));
        Self {
            w,
            b,
            bilin_a,
            bilin_b,
            ratio,
        }
    }

    /// Discriminator logits for (vertex, neighbourhood) rows:
    /// `z = rowsum((H A) ∘ (N B)) + [H ‖ N] w + b`.
    fn score(&self, tape: &mut Tape, vars: &[Var], h: Var, neigh: Var) -> Var {
        let pair = tape.concat_cols(h, neigh);
        let linear = tape.linear(pair, vars[self.w.0], vars[self.b.0]); // n × 1
        let ha = tape.matmul(h, vars[self.bilin_a.0]);
        let nb = tape.matmul(neigh, vars[self.bilin_b.0]);
        let prod = tape.mul(ha, nb);
        let k = tape.value(prod).cols();
        let ones = tape.constant(Matrix::full(k, 1, 1.0));
        let bilinear = tape.matmul(prod, ones); // n × 1
        tape.add(linear, bilinear)
    }

    /// Tape-free discriminator logits — same kernels and element order as
    /// [`score`](Self::score), pooled buffers throughout.
    fn score_infer(
        &self,
        ctx: &mut InferCtx,
        params: &ParamSet,
        h: &Matrix,
        neigh: &Matrix,
    ) -> Matrix {
        let pair = ctx.concat_cols(h, neigh);
        let mut out = ctx.linear(&pair, params.get(self.w), params.get(self.b)); // n × 1
        ctx.release(pair);
        let mut prod = ctx.matmul(h, params.get(self.bilin_a));
        let nb = ctx.matmul(neigh, params.get(self.bilin_b));
        infer::mul_assign(&mut prod, &nb);
        ctx.release(nb);
        let k = prod.cols();
        let ones = ctx.filled(k, 1, 1.0);
        let bilinear = ctx.matmul(&prod, &ones); // n × 1
        ctx.release(prod);
        ctx.release(ones);
        infer::add_assign(&mut out, &bilinear);
        ctx.release(bilinear);
        out
    }

    /// Score, select, gate, and compute the infomax loss.
    ///
    /// `adj_row` provides the mean-neighbourhood operator; `seed` drives the
    /// negative-sample shuffle (deterministic per call site).
    pub fn forward(
        &self,
        tape: &mut Tape,
        vars: &[Var],
        adj_norm: &Csr,
        adj_row: &Csr,
        h: Var,
        seed: u64,
    ) -> Pooled {
        let n = tape.value(h).rows();
        let d = tape.value(h).cols();
        let neigh = tape.spmm(adj_row, h);
        let logits = self.score(tape, vars, h, neigh); // n × 1
        let scores = tape.sigmoid(logits);

        // negatives: same vertices paired with a shuffled neighbourhood
        let mut perm: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        perm.shuffle(&mut rng);
        // ensure it deranges something for n ≥ 2
        if n >= 2 && perm.iter().enumerate().all(|(i, &p)| i == p) {
            perm.swap(0, 1);
        }
        let shuffled_neigh = tape.gather_rows(neigh, &perm);
        let neg_logits = self.score(tape, vars, h, shuffled_neigh);
        let pos_loss = tape.bce_with_logits(logits, &vec![1.0; n]);
        let neg_loss = tape.bce_with_logits(neg_logits, &vec![0.0; n]);
        let sum = tape.add(pos_loss, neg_loss);
        let pool_loss = tape.scale(sum, 0.5);

        // top-k selection by score value (selection itself non-differentiable)
        let k = ((self.ratio * n as f32).ceil() as usize).clamp(1, n);
        let score_vals = tape.value(scores).clone();
        let order = rank_desc(&score_vals);
        let mut kept: Vec<usize> = order[..k].to_vec();
        kept.sort_unstable();

        // gate features by scores so the scorer receives task gradients
        let ones = tape.constant(Matrix::full(1, d, 1.0));
        let gate = tape.matmul(scores, ones); // n × d
        let gated = tape.mul(h, gate);
        let pooled_h = tape.gather_rows(gated, &kept);

        // induced sub-adjacency, re-normalized
        let sub_edges = induced_edges(adj_row, &kept);
        let adj_norm_sub = Csr::normalized_adjacency(k, &sub_edges);
        let adj_row_sub = Csr::row_normalized(k, &sub_edges);
        let _ = adj_norm; // kept in the signature for symmetry with callers
        Pooled {
            h: pooled_h,
            adj_norm: adj_norm_sub,
            adj_row: adj_row_sub,
            kept,
            pool_loss,
        }
    }

    /// Tape-free score/select/gate: identical selection and gated features
    /// to [`forward`](Self::forward) (bitwise — the sigmoid scores, the
    /// `total_cmp` ranking, and the gating product reuse the same f32
    /// arithmetic), minus the negative sampling and infomax loss, which only
    /// training consumes.
    pub fn forward_infer(
        &self,
        ctx: &mut InferCtx,
        params: &ParamSet,
        adj_row: &Csr,
        h: &Matrix,
    ) -> PooledInfer {
        let n = h.rows();
        let d = h.cols();
        let neigh = ctx.spmm(adj_row, h);
        let mut scores = self.score_infer(ctx, params, h, &neigh); // n × 1
        ctx.release(neigh);
        infer::sigmoid_inplace(&mut scores);

        let k = ((self.ratio * n as f32).ceil() as usize).clamp(1, n);
        let order = rank_desc(&scores);
        let mut kept: Vec<usize> = order[..k].to_vec();
        kept.sort_unstable();

        let ones = ctx.filled(1, d, 1.0);
        let mut gated = ctx.matmul(&scores, &ones); // n × d gate
        ctx.release(ones);
        ctx.release(scores);
        // h ∘ gate: f32 multiplication is commutative, so gating in place
        // over the gate buffer matches the tape's `mul(h, gate)` bitwise
        infer::mul_assign(&mut gated, h);
        let pooled_h = ctx.gather_rows(&gated, &kept);
        ctx.release(gated);

        let sub_edges = induced_edges(adj_row, &kept);
        let adj_norm_sub = Csr::normalized_adjacency(k, &sub_edges);
        let adj_row_sub = Csr::row_normalized(k, &sub_edges);
        PooledInfer {
            h: pooled_h,
            adj_norm: adj_norm_sub,
            adj_row: adj_row_sub,
            kept,
        }
    }
}

/// Node order by descending score (column 0), under the IEEE total order:
/// deterministic for any input, including NaN scores from a diverged scorer
/// (NaN ranks first instead of panicking mid-sort).
fn rank_desc(scores: &Matrix) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.rows()).collect();
    order.sort_by(|&a, &b| scores.get(b, 0).total_cmp(&scores.get(a, 0)));
    order
}

/// Edges of the induced subgraph on `kept` (kept must be sorted), relabelled
/// to 0..k.
fn induced_edges(adj: &Csr, kept: &[usize]) -> Vec<(usize, usize)> {
    let mut remap = vec![usize::MAX; adj.cols()];
    for (new, &old) in kept.iter().enumerate() {
        remap[old] = new;
    }
    let mut edges = Vec::new();
    for (new_r, &old_r) in kept.iter().enumerate() {
        for (c, _v) in adj.row_iter(old_r) {
            if remap[c] != usize::MAX && remap[c] != new_r {
                edges.push((new_r, remap[c]));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize, ratio: f32) -> (ParamSet, VIPool, Csr, Csr, Matrix) {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(11);
        let pool = VIPool::new(&mut params, "pool", 4, ratio, &mut rng);
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let adj_norm = Csr::normalized_adjacency(n, &edges);
        let adj_row = Csr::row_normalized(n, &edges);
        let feats = init::uniform(&mut rng, n, 4, 1.0);
        (params, pool, adj_norm, adj_row, feats)
    }

    #[test]
    fn pooling_keeps_ratio_fraction() {
        let (params, pool, adj_norm, adj_row, feats) = setup(10, 0.6);
        let mut tape = Tape::new();
        let vars = params.bind(&mut tape);
        let h = tape.var(feats);
        let out = pool.forward(&mut tape, &vars, &adj_norm, &adj_row, h, 1);
        assert_eq!(out.kept.len(), 6);
        assert_eq!(tape.value(out.h).shape(), (6, 4));
        assert_eq!(out.adj_norm.rows(), 6);
    }

    #[test]
    fn ratio_one_keeps_everything() {
        let (params, pool, adj_norm, adj_row, feats) = setup(5, 1.0);
        let mut tape = Tape::new();
        let vars = params.bind(&mut tape);
        let h = tape.var(feats);
        let out = pool.forward(&mut tape, &vars, &adj_norm, &adj_row, h, 2);
        assert_eq!(out.kept, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pool_loss_is_finite_and_positive() {
        let (params, pool, adj_norm, adj_row, feats) = setup(8, 0.5);
        let mut tape = Tape::new();
        let vars = params.bind(&mut tape);
        let h = tape.var(feats);
        let out = pool.forward(&mut tape, &vars, &adj_norm, &adj_row, h, 3);
        let loss = tape.value(out.pool_loss).get(0, 0);
        assert!(loss.is_finite() && loss > 0.0, "pool loss {loss}");
    }

    #[test]
    fn gradients_reach_scorer_via_gating() {
        let (params, pool, adj_norm, adj_row, feats) = setup(6, 0.5);
        let mut tape = Tape::new();
        let vars = params.bind(&mut tape);
        let h = tape.var(feats);
        let out = pool.forward(&mut tape, &vars, &adj_norm, &adj_row, h, 4);
        // task-style loss on pooled features only (no pool_loss term)
        let loss = tape.mean_all(out.h);
        let grads = tape.backward(loss);
        let w_grad = grads.get(vars[0]).expect("scorer weight grad");
        assert!(
            w_grad.norm() > 0.0,
            "gating must route task gradients to the scorer"
        );
    }

    #[test]
    fn training_on_infomax_reduces_loss() {
        let (mut params, pool, adj_norm, adj_row, feats) = setup(12, 0.5);
        let mut opt = glint_tensor::Adam::new(0.02);
        let mut losses = Vec::new();
        // fixed shuffle (seed 0) so the discriminator has a learnable target
        for _ in 0..80 {
            let mut tape = Tape::new();
            let vars = params.bind(&mut tape);
            let h = tape.constant(feats.clone());
            let out = pool.forward(&mut tape, &vars, &adj_norm, &adj_row, h, 0);
            let grads = tape.backward(out.pool_loss);
            losses.push(tape.value(out.pool_loss).get(0, 0));
            use glint_tensor::Optimizer;
            opt.step(&mut params, &vars, &grads);
        }
        let first = losses[0];
        let last = *losses.last().unwrap();
        assert!(last < first, "infomax loss should fall: {first} → {last}");
        assert!(
            last < 0.693,
            "infomax loss should fall below ln 2, got {last}"
        );
    }

    #[test]
    fn single_node_graph_is_safe() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(13);
        let pool = VIPool::new(&mut params, "pool", 3, 0.5, &mut rng);
        let adj_norm = Csr::normalized_adjacency(1, &[]);
        let adj_row = Csr::row_normalized(1, &[]);
        let mut tape = Tape::new();
        let vars = params.bind(&mut tape);
        let h = tape.var(Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]));
        let out = pool.forward(&mut tape, &vars, &adj_norm, &adj_row, h, 5);
        assert_eq!(out.kept, vec![0]);
    }

    #[test]
    fn rank_desc_is_total_on_nan_scores() {
        let scores =
            Matrix::from_rows(&[vec![0.2], vec![f32::NAN], vec![f32::INFINITY], vec![-1.0]]);
        // NaN sorts above +inf under the IEEE total order, so a diverged
        // scorer is visible in the kept set rather than a sort panic.
        assert_eq!(rank_desc(&scores), vec![1, 2, 0, 3]);
    }
}
