//! Bitwise equivalence of the tape-free inference fast path.
//!
//! The serving contract is strict: `forward_infer` must produce the *same
//! bits* as a tape forward — not merely close values — at any
//! `GLINT_THREADS` setting. These properties are what licenses the
//! detector to skip tape construction entirely when assessing.

use glint_gnn::batch::PreparedGraph;
use glint_gnn::models::{
    GcnModel, GinModel, GraphModel, GxnModel, Itgnn, ItgnnConfig, ModelConfig,
};
use glint_gnn::trainer::ClassifierTrainer;
use glint_graph::graph::{EdgeKind, Node};
use glint_graph::InteractionGraph;
use glint_rules::{Platform, RuleId};
use glint_tensor::{par, InferCtx, Tape};
use proptest::prelude::*;

const DIM: usize = 4;

/// Deterministic pseudo-random node features (no RNG in tests: the seed is
/// part of the proptest case).
fn feat(seed: u64, node: usize, d: usize) -> f32 {
    (((seed as usize).wrapping_add(node * 31 + d * 7) % 97) as f32) / 97.0 - 0.5
}

fn build_graph(
    n: usize,
    raw_edges: &[(usize, usize)],
    seed: u64,
    platforms: &[Platform],
) -> InteractionGraph {
    let nodes: Vec<Node> = (0..n)
        .map(|i| Node {
            rule_id: RuleId(i as u32),
            platform: platforms[i % platforms.len()],
            features: (0..DIM).map(|d| feat(seed, i, d)).collect(),
        })
        .collect();
    let mut g = InteractionGraph::new(nodes);
    for &(u, v) in raw_edges {
        if u % n != v % n {
            g.add_edge(u % n, v % n, EdgeKind::ActionTrigger);
        }
    }
    g
}

fn graph_strategy(platforms: &'static [Platform]) -> impl Strategy<Value = InteractionGraph> {
    (
        2usize..7,
        proptest::collection::vec((0usize..7, 0usize..7), 1..10),
        0u64..1000,
    )
        .prop_map(move |(n, edges, seed)| build_graph(n, &edges, seed, platforms))
}

/// Tape forward → (embedding bits, logits bits).
fn tape_bits(model: &dyn GraphModel, g: &PreparedGraph) -> (Vec<u32>, Vec<u32>) {
    let mut tape = Tape::new();
    let vars = model.params().bind(&mut tape);
    let out = model.forward(&mut tape, &vars, g);
    (
        tape.value(out.embedding)
            .data()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        tape.value(out.logits)
            .data()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
    )
}

/// Tape-free forward → (embedding bits, logits bits).
fn infer_bits(model: &dyn GraphModel, g: &PreparedGraph) -> (Vec<u32>, Vec<u32>) {
    let mut ctx = InferCtx::new();
    let out = model.forward_infer(&mut ctx, g);
    (
        out.embedding.data().iter().map(|v| v.to_bits()).collect(),
        out.logits.data().iter().map(|v| v.to_bits()).collect(),
    )
}

fn itgnn_cfg() -> ItgnnConfig {
    ItgnnConfig {
        hidden: 8,
        embed: 8,
        n_scales: 2,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Homogeneous model zoo: tape forward and tape-free forward agree
    /// bit for bit on embedding and logits.
    #[test]
    fn tape_free_forward_is_bitwise_identical_homo(g in graph_strategy(&[Platform::Ifttt])) {
        let p = PreparedGraph::from_graph(&g);
        let cfg = ModelConfig { hidden: 8, embed: 8, seed: 3 };
        let models: Vec<Box<dyn GraphModel>> = vec![
            Box::new(GcnModel::new(DIM, cfg)),
            Box::new(GinModel::new(DIM, cfg)),
            Box::new(Itgnn::homogeneous(Platform::Ifttt, DIM, itgnn_cfg())),
        ];
        for model in &models {
            prop_assert_eq!(
                tape_bits(&**model, &p),
                infer_bits(&**model, &p),
                "{} tape vs tape-free",
                model.name()
            );
        }
    }

    /// Heterogeneous ITGNN (per-platform projections, metapath attention,
    /// VIPool coarsening): still bitwise-identical.
    #[test]
    fn tape_free_forward_is_bitwise_identical_hetero(
        g in graph_strategy(&[Platform::Ifttt, Platform::SmartThings])
    ) {
        let p = PreparedGraph::from_graph(&g);
        let model = Itgnn::new(
            &[(Platform::Ifttt, DIM), (Platform::SmartThings, DIM)],
            itgnn_cfg(),
        );
        prop_assert_eq!(tape_bits(&model, &p), infer_bits(&model, &p));
    }

    /// Models without a dedicated fast path fall back to the tape inside
    /// `forward_infer` — the default must honour the same contract.
    #[test]
    fn default_forward_infer_fallback_matches_tape(g in graph_strategy(&[Platform::Ifttt])) {
        let p = PreparedGraph::from_graph(&g);
        let model = GxnModel::new(DIM, ModelConfig { hidden: 8, embed: 8, seed: 9 });
        prop_assert_eq!(tape_bits(&model, &p), infer_bits(&model, &p));
    }

    /// The serving wrapper itself: `predict` (tape-free) agrees with the
    /// tape argmax on every graph.
    #[test]
    fn predict_matches_tape_argmax(g in graph_strategy(&[Platform::Ifttt])) {
        let p = PreparedGraph::from_graph(&g);
        let model = Itgnn::homogeneous(Platform::Ifttt, DIM, itgnn_cfg());
        let mut tape = Tape::new();
        let vars = model.params().bind(&mut tape);
        let out = model.forward(&mut tape, &vars, &p);
        let tape_pred = tape.value(out.logits).argmax_rows()[0];
        prop_assert_eq!(ClassifierTrainer::predict(&model, &p), tape_pred);
    }
}

/// A graph big enough that the hidden-layer matmuls cross the parallel
/// dispatch threshold (`MIN_PAR_WORK`), so the 4-thread run genuinely fans
/// out instead of vacuously matching the serial path.
fn large_line_graph() -> InteractionGraph {
    let n = 400;
    let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    build_graph(n, &edges, 17, &[Platform::Ifttt])
}

#[test]
fn tape_free_forward_is_bitwise_identical_across_thread_counts() {
    let p = PreparedGraph::from_graph(&large_line_graph());
    let model = Itgnn::homogeneous(
        Platform::Ifttt,
        DIM,
        ItgnnConfig {
            hidden: 64,
            embed: 16,
            n_scales: 2,
            ..Default::default()
        },
    );
    let serial = par::with_threads(1, || infer_bits(&model, &p));
    let fanned = par::with_threads(4, || infer_bits(&model, &p));
    assert_eq!(serial, fanned, "GLINT_THREADS must not change serving bits");
    let taped = par::with_threads(4, || tape_bits(&model, &p));
    assert_eq!(serial, taped, "tape and tape-free must agree under fan-out");
}

/// Buffer-pool invariant: after a warm-up assessment, repeated serving on
/// the same thread reaches a steady state — the thread-local pool stops
/// growing (every acquire is a recycled buffer, no new allocations).
#[test]
fn thread_pool_stops_growing_after_warmup() {
    let graphs: Vec<PreparedGraph> = (0..4)
        .map(|k| {
            let edges: Vec<(usize, usize)> = (0..5usize).map(|i| (i, (i + k + 1) % 6)).collect();
            PreparedGraph::from_graph(&build_graph(6, &edges, k as u64, &[Platform::Ifttt]))
        })
        .collect();
    let model = Itgnn::homogeneous(Platform::Ifttt, DIM, itgnn_cfg());
    for g in &graphs {
        ClassifierTrainer::predict(&model, g);
        ClassifierTrainer::predict_proba(&model, g);
    }
    let warm = glint_tensor::infer::thread_pool_free_buffers();
    for _ in 0..25 {
        for g in &graphs {
            ClassifierTrainer::predict(&model, g);
            ClassifierTrainer::predict_proba(&model, g);
        }
    }
    let after = glint_tensor::infer::thread_pool_free_buffers();
    assert_eq!(
        warm, after,
        "steady-state serving must recycle, not grow, the activation pool"
    );
}
