//! Property-based tests for the GNN stack: permutation invariance,
//! determinism, and budget sanity across the model zoo.

use glint_gnn::batch::PreparedGraph;
use glint_gnn::models::{
    GcnModel, GinModel, GraphModel, GxnModel, Itgnn, ItgnnConfig, MagcnModel, ModelConfig,
};
use glint_gnn::trainer::ClassifierTrainer;
use glint_graph::graph::{EdgeKind, Node};
use glint_graph::InteractionGraph;
use glint_rules::{Platform, RuleId};
use glint_tensor::Tape;
use proptest::prelude::*;

fn graph_strategy() -> impl Strategy<Value = InteractionGraph> {
    (
        2usize..7,
        proptest::collection::vec((0usize..7, 0usize..7), 1..10),
        0u64..1000,
    )
        .prop_map(|(n, raw_edges, seed)| {
            let nodes: Vec<Node> = (0..n)
                .map(|i| Node {
                    rule_id: RuleId(i as u32),
                    platform: Platform::Ifttt,
                    features: (0..4)
                        .map(|d| (((seed as usize + i * 31 + d * 7) % 97) as f32) / 97.0 - 0.5)
                        .collect(),
                })
                .collect();
            let mut g = InteractionGraph::new(nodes);
            for (u, v) in raw_edges {
                if u % n != v % n {
                    g.add_edge(u % n, v % n, EdgeKind::ActionTrigger);
                }
            }
            g
        })
}

fn permute(g: &InteractionGraph, perm: &[usize]) -> InteractionGraph {
    // perm[new] = old
    let nodes: Vec<Node> = perm.iter().map(|&old| g.node(old).clone()).collect();
    let inv = {
        let mut inv = vec![0usize; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        inv
    };
    let mut out = InteractionGraph::new(nodes);
    for &(u, v, kind) in g.edges() {
        out.add_edge(inv[u], inv[v], kind);
    }
    out
}

fn embed(model: &dyn GraphModel, g: &InteractionGraph) -> Vec<f32> {
    let p = PreparedGraph::from_graph(g);
    let mut tape = Tape::new();
    let vars = model.params().bind(&mut tape);
    let out = model.forward(&mut tape, &vars, &p);
    tape.value(out.embedding).data().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GCN / GIN / MAGCN graph embeddings are invariant to node relabeling
    /// (mean/max/sum readouts over permutation-equivariant layers).
    #[test]
    fn embeddings_are_permutation_invariant(g in graph_strategy(), rot in 1usize..5) {
        let n = g.n_nodes();
        let perm: Vec<usize> = (0..n).map(|i| (i + rot) % n).collect();
        let pg = permute(&g, &perm);
        let cfg = ModelConfig { hidden: 8, embed: 8, seed: 3 };
        let models: Vec<Box<dyn GraphModel>> = vec![
            Box::new(GcnModel::new(4, cfg)),
            Box::new(GinModel::new(4, cfg)),
            Box::new(MagcnModel::new(&[(Platform::Ifttt, 4)], 8, 8, 3)),
        ];
        for model in &models {
            let a = embed(&**model, &g);
            let b = embed(&**model, &pg);
            let dist: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            prop_assert!(dist < 1e-6, "{} not permutation invariant: {dist}", model.name());
        }
    }

    /// Forward passes are deterministic (same graph → same logits).
    #[test]
    fn forward_is_deterministic(g in graph_strategy()) {
        let model = Itgnn::homogeneous(
            Platform::Ifttt,
            4,
            ItgnnConfig { hidden: 8, embed: 8, n_scales: 2, ..Default::default() },
        );
        let a = embed(&model, &g);
        let b = embed(&model, &g);
        prop_assert_eq!(a, b);
    }

    /// All models produce finite logits on arbitrary small graphs.
    #[test]
    fn model_zoo_outputs_are_finite(g in graph_strategy()) {
        let cfg = ModelConfig { hidden: 8, embed: 8, seed: 5 };
        let p = PreparedGraph::from_graph(&g);
        let models: Vec<Box<dyn GraphModel>> = vec![
            Box::new(GcnModel::new(4, cfg)),
            Box::new(GinModel::new(4, cfg)),
            Box::new(GxnModel::new(4, cfg)),
            Box::new(Itgnn::homogeneous(
                Platform::Ifttt,
                4,
                ItgnnConfig { hidden: 8, embed: 8, n_scales: 2, ..Default::default() },
            )),
        ];
        for model in &models {
            let mut tape = Tape::new();
            let vars = model.params().bind(&mut tape);
            let out = model.forward(&mut tape, &vars, &p);
            prop_assert!(tape.value(out.logits).all_finite(), "{}", model.name());
            prop_assert!(tape.value(out.embedding).all_finite(), "{}", model.name());
        }
    }

    /// predict_proba is a probability.
    #[test]
    fn predict_proba_bounds(g in graph_strategy()) {
        let model = GcnModel::new(4, ModelConfig { hidden: 8, embed: 8, seed: 7 });
        let p = ClassifierTrainer::predict_proba(&model, &PreparedGraph::from_graph(&g));
        prop_assert!((0.0..=1.0).contains(&p));
    }
}
