//! Property-based gradient checks for the GNN layer zoo: VIPool, TAG
//! propagation, and the metapath transform, swept over random shapes and
//! seeds against central finite differences.
//!
//! Tolerances: central differences in f32 carry O(h²) truncation error plus
//! O(ε/h) cancellation error, which bottoms out around 1e-3 relative — so
//! the checks accept an element when its absolute *or* relative error
//! clears 5e-3 (see `CheckReport::ok`). Gradients that are wrong in kind
//! (dropped terms, transposed factors, missing chain-rule links) miss by
//! orders of magnitude, so this still catches every structural bug.
//!
//! Non-differentiable pieces are pinned, not averaged over: VIPool's top-k
//! selection is checked through its smooth surrogates (the infomax loss,
//! which bypasses selection, and the gated output at ratio 1.0, where the
//! kept set cannot change under perturbation), and the negative-sample
//! shuffle seed is fixed per case so analytic and numeric passes see the
//! same pairing.

use glint_gnn::batch::PreparedGraph;
use glint_gnn::layers::TagConv;
use glint_gnn::metapath::MetapathEncoder;
use glint_gnn::vipool::VIPool;
use glint_graph::graph::{EdgeKind, Node};
use glint_graph::InteractionGraph;
use glint_rules::{Platform, RuleId};
use glint_tensor::grad_check::{check_gradients, CheckReport};
use glint_tensor::optim::ParamId;
use glint_tensor::{init, Csr, Matrix, ParamSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOL: f32 = 5e-3;

/// Central-difference step: large enough to beat f32 round-off on losses of
/// magnitude ~1, small enough that curvature stays negligible.
const H: f32 = 1e-3;

fn assert_report(report: CheckReport, what: &str) {
    assert!(
        report.ok(TOL),
        "{what}: gradient check failed: {report:?} (worst = (input, elem, analytic, numeric))"
    );
}

/// Shapes of every parameter in registration order, for regenerating a
/// perturbed copy of the full parameter vector.
fn param_shapes(params: &ParamSet) -> Vec<(usize, usize)> {
    (0..params.len())
        .map(|i| {
            let m = params.get(ParamId(i));
            (m.rows(), m.cols())
        })
        .collect()
}

/// Overwrite every parameter with the matching matrix from `mats`.
fn overwrite_params(params: &mut ParamSet, mats: &[Matrix]) {
    assert_eq!(params.len(), mats.len());
    for (i, m) in mats.iter().enumerate() {
        *params.get_mut(ParamId(i)) = m.clone();
    }
}

/// A connected line graph with `extra` deterministic chords.
fn line_edges(n: usize, extra: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    for e in 0..extra {
        let u = (seed as usize + e * 7) % n;
        let v = (seed as usize + e * 13 + 1) % n;
        if u != v {
            edges.push((u, v));
        }
    }
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// TAG propagation: ŷ = Σ_i Â^i H W_i + b. Checked w.r.t. the input
    /// features AND every filter matrix at random shapes, hop counts, and
    /// graph topologies.
    #[test]
    fn tagconv_gradients_match_finite_differences(
        n in 2usize..7,
        in_dim in 2usize..5,
        out_dim in 2usize..4,
        k in 1usize..4,
        seed in 0u64..1000,
    ) {
        let edges = line_edges(n, n / 2, seed);
        let adj = Csr::normalized_adjacency(n, &edges);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa11ce);
        // learn the registration-order shapes from a throwaway instance
        let mut proto = ParamSet::new();
        TagConv::new(&mut proto, "tag", in_dim, out_dim, k, &mut rng);
        let mut inputs = vec![init::uniform(&mut rng, n, in_dim, 1.0)];
        inputs.extend(
            param_shapes(&proto)
                .iter()
                .map(|&(r, c)| init::uniform(&mut rng, r, c, 1.0)),
        );
        let report = check_gradients(&inputs, H, |tape, ins| {
            let mut params = ParamSet::new();
            let mut build_rng = StdRng::seed_from_u64(0);
            let layer = TagConv::new(&mut params, "tag", in_dim, out_dim, k, &mut build_rng);
            overwrite_params(&mut params, &ins[1..]);
            let vars = params.bind(tape);
            let h = tape.var(ins[0].clone());
            let out = layer.forward(tape, &vars, &adj, h);
            let act = tape.sigmoid(out); // curvature so W grads aren't constant
            let loss = tape.mean_all(act);
            let mut checked = vec![h];
            checked.extend(vars);
            (loss, checked)
        });
        assert_report(report, "TagConv");
    }

    /// VIPool's infomax objective (the `L_pool` summand of Eq. 2) is smooth
    /// in the features and all four scorer parameters — top-k selection
    /// never enters this loss.
    #[test]
    fn vipool_infomax_loss_gradients_match_finite_differences(
        n in 2usize..7,
        dim in 2usize..5,
        ratio in 0.3f32..1.0,
        seed in 0u64..1000,
    ) {
        let edges = line_edges(n, 1, seed);
        let adj_norm = Csr::normalized_adjacency(n, &edges);
        let adj_row = Csr::row_normalized(n, &edges);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf00d);
        let mut proto = ParamSet::new();
        VIPool::new(&mut proto, "pool", dim, ratio, &mut rng);
        let mut inputs = vec![init::uniform(&mut rng, n, dim, 1.0)];
        inputs.extend(
            param_shapes(&proto)
                .iter()
                .map(|&(r, c)| init::uniform(&mut rng, r, c, 1.0)),
        );
        let report = check_gradients(&inputs, H, |tape, ins| {
            let mut params = ParamSet::new();
            let mut build_rng = StdRng::seed_from_u64(0);
            let pool = VIPool::new(&mut params, "pool", dim, ratio, &mut build_rng);
            overwrite_params(&mut params, &ins[1..]);
            let vars = params.bind(tape);
            let h = tape.var(ins[0].clone());
            let out = pool.forward(tape, &vars, &adj_norm, &adj_row, h, seed);
            let mut checked = vec![h];
            checked.extend(vars);
            (out.pool_loss, checked)
        });
        assert_report(report, "VIPool infomax loss");
    }

    /// The gated pooled output at ratio 1.0: the kept set is all nodes, so
    /// the whole score→gate→output path is differentiable and the scorer
    /// parameters must receive correct task gradients through the gate.
    #[test]
    fn vipool_gated_output_gradients_match_finite_differences(
        n in 2usize..6,
        dim in 2usize..5,
        seed in 0u64..1000,
    ) {
        let edges = line_edges(n, 1, seed);
        let adj_norm = Csr::normalized_adjacency(n, &edges);
        let adj_row = Csr::row_normalized(n, &edges);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbead);
        let mut proto = ParamSet::new();
        VIPool::new(&mut proto, "pool", dim, 1.0, &mut rng);
        let mut inputs = vec![init::uniform(&mut rng, n, dim, 1.0)];
        inputs.extend(
            param_shapes(&proto)
                .iter()
                .map(|&(r, c)| init::uniform(&mut rng, r, c, 1.0)),
        );
        let report = check_gradients(&inputs, H, |tape, ins| {
            let mut params = ParamSet::new();
            let mut build_rng = StdRng::seed_from_u64(0);
            let pool = VIPool::new(&mut params, "pool", dim, 1.0, &mut build_rng);
            overwrite_params(&mut params, &ins[1..]);
            let vars = params.bind(tape);
            let h = tape.var(ins[0].clone());
            let out = pool.forward(tape, &vars, &adj_norm, &adj_row, h, seed);
            let loss = tape.mean_all(out.h);
            let mut checked = vec![h];
            checked.extend(vars);
            (loss, checked)
        });
        assert_report(report, "VIPool gated output");
    }

    /// The metapath transform (projection + intra aggregation + attention
    /// fusion), checked w.r.t. every parameter on a random two-platform
    /// heterogeneous graph. Node features enter as constants, exactly as in
    /// the real model, so the projections are the first differentiable layer.
    #[test]
    fn metapath_gradients_match_finite_differences(
        n in 3usize..6,
        hidden in 2usize..6,
        seed in 0u64..1000,
    ) {
        let nodes: Vec<Node> = (0..n)
            .map(|i| {
                let platform = if i % 2 == 0 { Platform::Ifttt } else { Platform::Alexa };
                let dim = if i % 2 == 0 { 2 } else { 3 };
                Node {
                    rule_id: RuleId(i as u32),
                    platform,
                    features: (0..dim)
                        .map(|d| (((seed as usize + i * 17 + d * 5) % 89) as f32) / 89.0 - 0.5)
                        .collect(),
                }
            })
            .collect();
        let mut g = InteractionGraph::new(nodes);
        for (u, v) in line_edges(n, 1, seed) {
            g.add_edge(u, v, EdgeKind::ActionTrigger);
        }
        let prepared = PreparedGraph::from_graph(&g);
        let types: Vec<(Platform, usize)> = prepared
            .by_type
            .iter()
            .map(|b| (b.platform, b.feats.cols()))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xcafe);
        let mut proto = ParamSet::new();
        MetapathEncoder::new(&mut proto, "enc", &types, hidden, &mut rng);
        let inputs: Vec<Matrix> = param_shapes(&proto)
            .iter()
            .map(|&(r, c)| init::uniform(&mut rng, r, c, 1.0))
            .collect();
        let report = check_gradients(&inputs, H, |tape, ins| {
            let mut params = ParamSet::new();
            let mut build_rng = StdRng::seed_from_u64(0);
            let enc = MetapathEncoder::new(&mut params, "enc", &types, hidden, &mut build_rng);
            overwrite_params(&mut params, ins);
            let vars = params.bind(tape);
            let out = enc.forward(tape, &vars, &prepared);
            let act = tape.sigmoid(out);
            let loss = tape.mean_all(act);
            (loss, vars)
        });
        assert_report(report, "MetapathEncoder");
    }
}

/// Deterministic spot-check kept outside proptest so a regression names the
/// exact failing configuration instead of a shrunken case.
#[test]
fn tagconv_reference_configuration_grad_checks() {
    let adj = Csr::normalized_adjacency(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
    let mut rng = StdRng::seed_from_u64(99);
    let mut proto = ParamSet::new();
    TagConv::new(&mut proto, "tag", 3, 2, 2, &mut rng);
    let mut inputs = vec![init::uniform(&mut rng, 5, 3, 1.0)];
    inputs.extend(
        param_shapes(&proto)
            .iter()
            .map(|&(r, c)| init::uniform(&mut rng, r, c, 1.0)),
    );
    let report = check_gradients(&inputs, H, |tape, ins| {
        let mut params = ParamSet::new();
        let mut build_rng = StdRng::seed_from_u64(0);
        let layer = TagConv::new(&mut params, "tag", 3, 2, 2, &mut build_rng);
        overwrite_params(&mut params, &ins[1..]);
        let vars = params.bind(tape);
        let h = tape.var(ins[0].clone());
        let out = layer.forward(tape, &vars, &adj, h);
        let act = tape.sigmoid(out);
        let loss = tape.mean_all(act);
        let mut checked = vec![h];
        checked.extend(vars);
        (loss, checked)
    });
    assert_report(report, "TagConv reference");
}
