//! The five smart-home platforms of the paper (Table 2) and their
//! capability profiles.

use serde::{Deserialize, Serialize};

/// A smart-home automation platform.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Platform {
    Ifttt,
    SmartThings,
    Alexa,
    GoogleAssistant,
    HomeAssistant,
}

impl Platform {
    pub fn all() -> &'static [Platform] {
        &[
            Platform::Ifttt,
            Platform::SmartThings,
            Platform::Alexa,
            Platform::GoogleAssistant,
            Platform::HomeAssistant,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            Platform::Ifttt => "IFTTT",
            Platform::SmartThings => "SmartThings",
            Platform::Alexa => "Alexa Skill",
            Platform::GoogleAssistant => "Google Assistant",
            Platform::HomeAssistant => "Home Assistant",
        }
    }

    /// Node-type index for heterogeneous graphs (stable ordering).
    pub fn type_index(self) -> usize {
        match self {
            Platform::Ifttt => 0,
            Platform::SmartThings => 1,
            Platform::Alexa => 2,
            Platform::GoogleAssistant => 3,
            Platform::HomeAssistant => 4,
        }
    }

    /// Voice-assistant platforms use 512-d sentence embeddings; the rest use
    /// 300-d word embeddings (§4.2).
    pub fn is_voice(self) -> bool {
        matches!(self, Platform::Alexa | Platform::GoogleAssistant)
    }

    /// Does the platform's rule format support extra conditions?
    /// (IFTTT applets are single trigger→action; voice commands have none.)
    pub fn supports_conditions(self) -> bool {
        matches!(self, Platform::SmartThings | Platform::HomeAssistant)
    }

    /// Does the platform support multiple actions per rule?
    pub fn supports_multi_action(self) -> bool {
        matches!(
            self,
            Platform::Ifttt | Platform::SmartThings | Platform::HomeAssistant
        )
    }

    /// Paper Table 2 rule counts (the full-scale corpus targets).
    pub fn paper_rule_count(self) -> usize {
        match self {
            Platform::Ifttt => 316_928,
            Platform::SmartThings => 185,
            Platform::Alexa => 5_506,
            Platform::GoogleAssistant => 5_292,
            Platform::HomeAssistant => 574,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_indices_are_distinct_and_dense() {
        let mut idx: Vec<usize> = Platform::all().iter().map(|p| p.type_index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn capability_profiles() {
        assert!(Platform::SmartThings.supports_conditions());
        assert!(!Platform::Ifttt.supports_conditions());
        assert!(!Platform::Alexa.supports_multi_action());
        assert!(Platform::Alexa.is_voice());
        assert!(!Platform::HomeAssistant.is_voice());
    }

    #[test]
    fn table2_counts() {
        assert_eq!(Platform::Ifttt.paper_rule_count(), 316_928);
        let total: usize = Platform::all().iter().map(|p| p.paper_rule_count()).sum();
        assert_eq!(total, 316_928 + 185 + 5_506 + 5_292 + 574);
    }
}
