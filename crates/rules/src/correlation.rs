//! Ground-truth "action → trigger" correlation semantics.
//!
//! This is the physical-world oracle: given rule A's action and rule B's
//! trigger, does executing A invoke B? The paper obtains these labels by
//! manual annotation (13,600 pairs, §4.1); here they follow mechanically from
//! the device/channel taxonomy, which is what makes large-scale corpus
//! labeling possible. The *learned* correlation classifier in `glint-core`
//! recovers this function from rendered text only.

use crate::ast::{Action, Cmp, Rule, StateValue, Trigger};
use crate::channel::{Channel, Effect};
use crate::device::{DeviceKind, Location};
use serde::{Deserialize, Serialize};

/// How an action reaches a trigger.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Via {
    /// The trigger watches the very device the action sets.
    Device(DeviceKind),
    /// The action's physical side effect feeds the trigger's channel.
    Channel(Channel),
}

/// Effective channel influences of setting `device` to `state`.
/// Negative polarities (off/closed) flip Increase↔Decrease and suppress
/// pulses; `Set` effects persist either way.
pub fn effective_affects(device: DeviceKind, state: StateValue) -> Vec<(Channel, Effect)> {
    let positive = state.is_positive();
    device
        .affects()
        .iter()
        .filter_map(|&(c, e)| match (e, positive) {
            (Effect::Pulse, true) => Some((c, Effect::Pulse)),
            (Effect::Pulse, false) => None,
            (Effect::Increase, true) => Some((c, Effect::Increase)),
            (Effect::Increase, false) => Some((c, Effect::Decrease)),
            (Effect::Decrease, true) => Some((c, Effect::Decrease)),
            (Effect::Decrease, false) => Some((c, Effect::Increase)),
            (Effect::Set, _) => Some((c, Effect::Set)),
        })
        .collect()
}

/// Channels on which an Increase/Pulse constitutes a discrete *event*
/// ("motion detected", "smoke detected", "leak detected").
fn is_event_channel(c: Channel) -> bool {
    matches!(
        c,
        Channel::Motion
            | Channel::Smoke
            | Channel::Leak
            | Channel::Contact
            | Channel::Sound
            | Channel::Presence
    )
}

fn locations_couple(a: Location, b: Location, channel: Option<Channel>) -> bool {
    if channel.is_some_and(Channel::is_global) {
        return true;
    }
    a.couples_with(b)
}

/// Does `action` invoke `trigger`? Returns the mediating path if so.
pub fn action_invokes_trigger(action: &Action, trigger: &Trigger) -> Option<Via> {
    let (a_dev, a_loc, a_state) = match action {
        Action::SetState {
            device,
            location,
            state,
            ..
        } => (*device, *location, *state),
        Action::SetLevel {
            device,
            location,
            value,
            ..
        } => (*device, *location, StateValue::Level(*value)),
        // notifications and snapshots are sinks: nothing triggers on them
        Action::Notify | Action::Snapshot { .. } => return None,
    };

    match trigger {
        Trigger::DeviceState {
            device,
            location,
            attribute,
            state,
        } => {
            // direct watch: same device kind + coupled location + the action
            // drives the watched attribute to the watched state
            if *device == a_dev && locations_couple(a_loc, *location, None) {
                let matches_state = match (action, state) {
                    (
                        Action::SetState {
                            attribute: aa,
                            state: as_,
                            ..
                        },
                        s,
                    ) => aa == attribute && as_ == s,
                    (Action::SetLevel { attribute: aa, .. }, StateValue::Level(_)) => {
                        aa == attribute
                    }
                    _ => false,
                };
                if matches_state {
                    return Some(Via::Device(a_dev));
                }
            }
            // indirect: the action's side effect feeds the channel the
            // device-state trigger is observing (e.g. vacuum → motion sensor)
            let watched = crate::ast::device_state_channel(*device, *attribute)?;
            channel_path(a_dev, a_loc, a_state, watched, *location, None)
        }
        Trigger::ChannelEvent { channel, location } => {
            channel_path(a_dev, a_loc, a_state, *channel, *location, None)
                .filter(|_| is_event_channel(*channel))
        }
        Trigger::ChannelThreshold {
            channel,
            location,
            cmp,
            ..
        } => channel_path(a_dev, a_loc, a_state, *channel, *location, Some(*cmp)),
        Trigger::ChannelRange {
            channel, location, ..
        } => {
            // moving the channel in either direction can enter the range
            channel_path(a_dev, a_loc, a_state, *channel, *location, None)
        }
        Trigger::Time(_) | Trigger::Voice | Trigger::Manual => None,
    }
}

/// Can setting `a_dev` to `a_state` at `a_loc` move `channel` at `t_loc` in a
/// direction compatible with `cmp` (if any)?
fn channel_path(
    a_dev: DeviceKind,
    a_loc: Location,
    a_state: StateValue,
    channel: Channel,
    t_loc: Location,
    cmp: Option<Cmp>,
) -> Option<Via> {
    if !locations_couple(a_loc, t_loc, Some(channel)) {
        return None;
    }
    for (c, eff) in effective_affects(a_dev, a_state) {
        if c != channel {
            continue;
        }
        let compatible = matches!(
            (cmp, eff),
            (None, _)
                | (Some(Cmp::Above), Effect::Increase | Effect::Pulse)
                | (Some(Cmp::Below), Effect::Decrease)
                | (Some(_), Effect::Set)
        );
        if compatible {
            return Some(Via::Channel(channel));
        }
    }
    None
}

/// Does any action of `a` invoke the trigger of `b`? (Rule-level query used
/// by the graph builder.)
pub fn action_triggers(a: &Rule, b: &Rule) -> Option<Via> {
    a.actions
        .iter()
        .find_map(|act| action_invokes_trigger(act, &b.trigger))
}

/// Do `a`'s actions and `b`'s trigger reference an overlapping device/channel
/// surface at all? A pair can overlap here and still be uncorrelated (wrong
/// direction, incompatible state, uncoupled rooms) — those are the *hard
/// negatives* a correlation classifier must learn to reject, as opposed to
/// pairs about entirely unrelated devices.
pub fn shares_surface(a: &Rule, b: &Rule) -> bool {
    let mut devices = Vec::new();
    let mut channels = Vec::new();
    for act in &a.actions {
        if let Action::SetState { device, .. } | Action::SetLevel { device, .. } = act {
            devices.push(*device);
            channels.extend(device.affects().iter().map(|&(c, _)| c));
        }
    }
    match &b.trigger {
        Trigger::DeviceState {
            device, attribute, ..
        } => {
            devices.contains(device)
                || crate::ast::device_state_channel(*device, *attribute)
                    .is_some_and(|c| channels.contains(&c))
        }
        Trigger::ChannelEvent { channel, .. }
        | Trigger::ChannelThreshold { channel, .. }
        | Trigger::ChannelRange { channel, .. } => channels.contains(channel),
        Trigger::Time(_) | Trigger::Voice | Trigger::Manual => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Attribute;
    use crate::platform::Platform;

    fn set(
        device: DeviceKind,
        location: Location,
        attribute: Attribute,
        state: StateValue,
    ) -> Action {
        Action::SetState {
            device,
            location,
            attribute,
            state,
        }
    }

    #[test]
    fn direct_device_watch() {
        // "turn off lights" → "if all lights are turned off, lock the door"
        let act = set(
            DeviceKind::Light,
            Location::LivingRoom,
            Attribute::Power,
            StateValue::Off,
        );
        let trig = Trigger::DeviceState {
            device: DeviceKind::Light,
            location: Location::LivingRoom,
            attribute: Attribute::Power,
            state: StateValue::Off,
        };
        assert_eq!(
            action_invokes_trigger(&act, &trig),
            Some(Via::Device(DeviceKind::Light))
        );
    }

    #[test]
    fn opposite_state_does_not_trigger() {
        let act = set(
            DeviceKind::Light,
            Location::LivingRoom,
            Attribute::Power,
            StateValue::On,
        );
        let trig = Trigger::DeviceState {
            device: DeviceKind::Light,
            location: Location::LivingRoom,
            attribute: Attribute::Power,
            state: StateValue::Off,
        };
        // turning it ON cannot fire the "turned off" trigger directly…
        assert_ne!(
            action_invokes_trigger(&act, &trig),
            Some(Via::Device(DeviceKind::Light))
        );
    }

    #[test]
    fn ac_on_feeds_temperature_below_threshold() {
        // "turn on AC" → "if temperature is below 60, close windows"
        let act = set(
            DeviceKind::AirConditioner,
            Location::House,
            Attribute::Power,
            StateValue::On,
        );
        let trig = Trigger::ChannelThreshold {
            channel: Channel::Temperature,
            location: Location::LivingRoom,
            cmp: Cmp::Below,
            value: 60.0,
        };
        assert_eq!(
            action_invokes_trigger(&act, &trig),
            Some(Via::Channel(Channel::Temperature))
        );
        // …but it cannot push temperature ABOVE a threshold
        let trig_hi = Trigger::ChannelThreshold {
            channel: Channel::Temperature,
            location: Location::LivingRoom,
            cmp: Cmp::Above,
            value: 85.0,
        };
        assert_eq!(action_invokes_trigger(&act, &trig_hi), None);
    }

    #[test]
    fn heater_off_cools() {
        let act = set(
            DeviceKind::Heater,
            Location::Bedroom,
            Attribute::Power,
            StateValue::Off,
        );
        let trig = Trigger::ChannelThreshold {
            channel: Channel::Temperature,
            location: Location::Bedroom,
            cmp: Cmp::Below,
            value: 60.0,
        };
        assert!(action_invokes_trigger(&act, &trig).is_some());
    }

    #[test]
    fn vacuum_triggers_motion_sensor() {
        // the §4.7 "trigger intake" physical path
        let act = set(
            DeviceKind::Vacuum,
            Location::Hallway,
            Attribute::Power,
            StateValue::On,
        );
        let trig = Trigger::ChannelEvent {
            channel: Channel::Motion,
            location: Location::Hallway,
        };
        assert_eq!(
            action_invokes_trigger(&act, &trig),
            Some(Via::Channel(Channel::Motion))
        );
        // motion does not carry across uncoupled rooms
        let far = Trigger::ChannelEvent {
            channel: Channel::Motion,
            location: Location::Bedroom,
        };
        assert_eq!(action_invokes_trigger(&act, &far), None);
    }

    #[test]
    fn location_gating_respects_globals() {
        // smoke is global: oven in the kitchen can feed a house smoke trigger
        let act = set(
            DeviceKind::Oven,
            Location::Kitchen,
            Attribute::Power,
            StateValue::On,
        );
        let trig = Trigger::ChannelEvent {
            channel: Channel::Smoke,
            location: Location::Bedroom,
        };
        assert!(action_invokes_trigger(&act, &trig).is_some());
    }

    #[test]
    fn notify_is_a_sink() {
        let trig = Trigger::ChannelEvent {
            channel: Channel::Sound,
            location: Location::House,
        };
        assert_eq!(action_invokes_trigger(&Action::Notify, &trig), None);
    }

    #[test]
    fn time_and_voice_triggers_unreachable() {
        let act = set(
            DeviceKind::Light,
            Location::Bedroom,
            Attribute::Power,
            StateValue::On,
        );
        assert_eq!(action_invokes_trigger(&act, &Trigger::Voice), None);
        assert_eq!(
            action_invokes_trigger(&act, &Trigger::Time(crate::ast::TimeSpec::Sunset)),
            None
        );
    }

    #[test]
    fn rule_level_query() {
        let a = Rule::simple(
            1,
            Platform::Alexa,
            Trigger::Voice,
            vec![set(
                DeviceKind::Light,
                Location::LivingRoom,
                Attribute::Power,
                StateValue::Off,
            )],
        );
        let b = Rule::simple(
            2,
            Platform::Alexa,
            Trigger::DeviceState {
                device: DeviceKind::Light,
                location: Location::LivingRoom,
                attribute: Attribute::Power,
                state: StateValue::Off,
            },
            vec![set(
                DeviceKind::Door,
                Location::Hallway,
                Attribute::LockState,
                StateValue::Locked,
            )],
        );
        assert!(action_triggers(&a, &b).is_some());
        assert!(action_triggers(&b, &a).is_none());
    }
}
