//! # glint-rules
//!
//! The smart-home automation-rule substrate: a structured model of devices,
//! physical channels, trigger-action rules, and the five platforms the paper
//! evaluates (IFTTT, SmartThings, Alexa, Google Assistant, Home Assistant).
//!
//! This crate is the reproduction's stand-in for the paper's crawled rule
//! corpora (Table 2). The key property: every rule carries *ground-truth
//! semantics* (which device it touches, which physical channel its action
//! influences and in which direction), which lets downstream crates
//!
//! - label action→trigger correlation pairs exactly (the paper's manual
//!   labeling of 13.6k pairs, §4.1),
//! - label interaction graphs against the literature's six threat policies
//!   (the paper's 8-week volunteer labeling, §4.2), and
//! - simulate rule execution on the testbed (§4.8),
//!
//! while the *learning* components only ever see the rendered natural-
//! language description (via `glint-nlp` embeddings), exactly as the paper's
//! models only see crawled text.

pub mod ast;
pub mod channel;
pub mod corpus;
pub mod correlation;
pub mod device;
pub mod event;
pub mod platform;
pub mod render;
pub mod scenarios;

pub use ast::{Action, Cmp, Condition, Rule, RuleId, StateValue, TimeSpec, Trigger};
pub use channel::{Channel, Effect};
pub use corpus::{CorpusConfig, CorpusGenerator};
pub use correlation::action_triggers;
pub use device::{Attribute, DeviceKind, Location};
pub use event::{EventKind, EventRecord};
pub use platform::Platform;
